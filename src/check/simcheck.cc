#include "src/check/simcheck.h"

#include <sstream>

namespace rover {
namespace check {

void SimCheck::Attach(Testbed* bed) {
  bed_ = bed;
  bed->SetCheckListener(this);
}

std::string SimCheck::Report() const {
  std::ostringstream out;
  out << violations_.size() << " violation(s)\n";
  for (const auto& v : violations_) {
    out << "  [" << v.invariant << "] " << v.node << ": " << v.detail << "\n";
  }
  return out.str();
}

std::string SimCheck::TraceTail(size_t n) const {
  std::ostringstream out;
  const size_t start = trace_.size() > n ? trace_.size() - n : 0;
  for (size_t i = start; i < trace_.size(); ++i) {
    out << trace_[i] << "\n";
  }
  return out.str();
}

void SimCheck::AddViolation(const std::string& invariant, const std::string& node,
                            const std::string& detail) {
  TraceEvent("VIOLATION [" + invariant + "] " + node + ": " + detail);
  if (violations_.size() >= max_violations_) {
    return;
  }
  violations_.push_back({invariant, node, detail});
}

void SimCheck::TraceEvent(const std::string& line) {
  std::string stamped = line;
  if (bed_ != nullptr) {
    std::ostringstream at;
    at << bed_->loop()->now().micros() / 1000 << "ms ";
    stamped = at.str() + line;
  }
  if (trace_.size() >= kTraceCap) {
    // Drop the older half rather than shifting one-by-one per event.
    trace_.erase(trace_.begin(), trace_.begin() + kTraceCap / 2);
  }
  trace_.push_back(std::move(stamped));
}

SimCheck::CallState& SimCheck::Call(const std::string& client, uint64_t rpc_id) {
  return clients_[client].calls[rpc_id];
}

bool SimCheck::InResentChain(const ClientState& state, uint64_t rpc_id,
                             const std::set<uint64_t>& resent) const {
  uint64_t id = rpc_id;
  // Chains are short (a supersede key's coalescing lineage), but guard
  // against cycles all the same.
  for (int hops = 0; hops < 1024; ++hops) {
    if (resent.count(id) > 0) {
      return true;
    }
    auto it = state.calls.find(id);
    if (it == state.calls.end() || it->second.subsumed_by == 0) {
      return false;
    }
    id = it->second.subsumed_by;
  }
  return false;
}

bool SimCheck::ResolvedOrPending(const ClientState& state, uint64_t rpc_id,
                                 const std::set<uint64_t>& outstanding) const {
  uint64_t id = rpc_id;
  for (int hops = 0; hops < 1024; ++hops) {
    auto it = state.calls.find(id);
    if (it == state.calls.end()) {
      return true;  // untracked: issued before Attach, no claim to make
    }
    const CallState& c = it->second;
    if (c.resolutions > 0 || c.satisfied_via_successor || c.orphaned ||
        outstanding.count(id) > 0) {
      return true;
    }
    if (c.subsumed_by == 0) {
      return false;
    }
    id = c.subsumed_by;  // a pred is healthy if its successor chain is
  }
  return false;
}

// --- client hooks ---

void SimCheck::OnCallIssued(const std::string& client, uint64_t rpc_id, bool logged) {
  TraceEvent(client + " issue rpc=" + std::to_string(rpc_id) + (logged ? " logged" : ""));
  auto& calls = clients_[client].calls;
  auto it = calls.find(rpc_id);
  if (it != calls.end() && it->second.tracked) {
    AddViolation("rpc-id-reuse", client,
                 "rpc " + std::to_string(rpc_id) + " issued twice");
    return;
  }
  CallState& call = calls[rpc_id];
  call.tracked = true;
  call.logged = logged;
}

void SimCheck::OnCallDurable(const std::string& client, uint64_t rpc_id,
                             uint64_t log_record_id) {
  TraceEvent(client + " durable rpc=" + std::to_string(rpc_id) +
             " rec=" + std::to_string(log_record_id));
  ClientState& state = clients_[client];
  CallState& call = state.calls[rpc_id];
  if (call.flush_failed) {
    AddViolation("ack-after-failed-flush", client,
                 "rpc " + std::to_string(rpc_id) +
                     " was durability-acknowledged although its stable-log "
                     "flush terminally failed");
  }
  call.durable_acked = true;
  if (log_record_id != 0) {
    call.log_record_id = log_record_id;
    state.record_to_rpc[log_record_id] = rpc_id;
  }
}

void SimCheck::OnCallFlushFailed(const std::string& client, uint64_t rpc_id) {
  TraceEvent(client + " flush-failed rpc=" + std::to_string(rpc_id));
  CallState& call = Call(client, rpc_id);
  call.flush_failed = true;
  if (call.durable_acked) {
    AddViolation("ack-after-failed-flush", client,
                 "rpc " + std::to_string(rpc_id) +
                     " reported flush-failed after already being "
                     "durability-acknowledged");
  }
}

void SimCheck::OnClientStorageQuarantine(const std::string& client,
                                         const std::vector<uint64_t>& log_record_ids) {
  {
    std::string ids;
    for (uint64_t id : log_record_ids) {
      ids += (ids.empty() ? "" : ",") + std::to_string(id);
    }
    TraceEvent(client + " storage-quarantine recs=[" + ids + "]");
  }
  ClientState& state = clients_[client];
  for (uint64_t record_id : log_record_ids) {
    auto it = state.record_to_rpc.find(record_id);
    if (it == state.record_to_rpc.end()) {
      continue;  // record never acked (or acked before Attach): no claim
    }
    // The acknowledged operation is lost, but detectably: kDataLoss was
    // surfaced and the cache re-validates. Exempt from the silent
    // durability-loss audit.
    state.calls[it->second].storage_lost = true;
  }
}

void SimCheck::OnCallWithdrawn(const std::string& client, uint64_t rpc_id) {
  TraceEvent(client + " withdraw rpc=" + std::to_string(rpc_id));
  Call(client, rpc_id).withdrawn = true;
}

void SimCheck::OnCallCoalesced(const std::string& client, uint64_t pred_rpc_id,
                               uint64_t successor_rpc_id) {
  TraceEvent(client + " coalesce pred=" + std::to_string(pred_rpc_id) + " succ=" +
             std::to_string(successor_rpc_id));
  CallState& pred = Call(client, pred_rpc_id);
  if (pred.subsumed_by != 0 && pred.subsumed_by != successor_rpc_id) {
    AddViolation("double-coalesce", client,
                 "rpc " + std::to_string(pred_rpc_id) + " subsumed by both " +
                     std::to_string(pred.subsumed_by) + " and " +
                     std::to_string(successor_rpc_id));
  }
  pred.subsumed_by = successor_rpc_id;
}

void SimCheck::OnCallResolved(const std::string& client, uint64_t rpc_id,
                              const char* path, bool /*ok*/) {
  TraceEvent(client + " resolve rpc=" + std::to_string(rpc_id) + " via=" + path);
  ClientState& state = clients_[client];
  CallState& call = state.calls[rpc_id];
  call.resolutions++;
  if (call.resolutions > 1) {
    AddViolation("double-resolve", client,
                 "rpc " + std::to_string(rpc_id) + " resolved " +
                     std::to_string(call.resolutions) + " times (last via " +
                     path + ")");
  }
  // A coalescing successor's result is forwarded to every unresolved pred
  // it subsumed (the qrpc client chains the promises); credit the whole
  // subsumption chain so those preds don't read as leaked.
  for (auto& [id, pred] : state.calls) {
    if (pred.resolutions > 0 || pred.satisfied_via_successor || pred.subsumed_by == 0) {
      continue;
    }
    uint64_t succ = pred.subsumed_by;
    for (int hops = 0; hops < 1024 && succ != 0; ++hops) {
      if (succ == rpc_id) {
        pred.satisfied_via_successor = true;
        break;
      }
      auto it = state.calls.find(succ);
      succ = it == state.calls.end() ? 0 : it->second.subsumed_by;
    }
  }
}

void SimCheck::OnClientCrashed(const std::string& client) {
  TraceEvent(client + " client-crash");
  ClientState& state = clients_[client];
  state.crash_pending = true;
  for (auto& [id, call] : state.calls) {
    if (call.resolutions == 0 && !call.satisfied_via_successor) {
      // The process died with the promise unresolved; callers accept that
      // (their closures died too). Recovery decides which of these must
      // come back as resends.
      call.orphaned = true;
    }
  }
}

void SimCheck::OnClientRecovered(const std::string& client,
                                 const std::vector<uint64_t>& resent_list) {
  {
    std::string ids;
    for (uint64_t id : resent_list) {
      ids += (ids.empty() ? "" : ",") + std::to_string(id);
    }
    TraceEvent(client + " client-recover resent=[" + ids + "]");
  }
  ClientState& state = clients_[client];
  const std::set<uint64_t> resent(resent_list.begin(), resent_list.end());
  for (uint64_t id : resent_list) {
    CallState& call = state.calls[id];
    // The recovered request gets a fresh response path: it legitimately
    // resolves again in the new incarnation.
    call.orphaned = false;
    call.resolutions = 0;
    call.satisfied_via_successor = false;
  }
  if (!state.crash_pending) {
    return;  // RecoverFromLog outside a simulated crash: nothing to audit
  }
  state.crash_pending = false;
  // Acknowledged durability: every call whose flush was acked and whose log
  // record was not legitimately withdrawn must survive the crash -- resent
  // itself, or subsumed by a successor that was.
  for (auto& [id, call] : state.calls) {
    if (!call.tracked || !call.durable_acked || call.withdrawn || call.loss_flagged ||
        call.storage_lost) {
      continue;
    }
    if (call.resolutions > 0 || call.satisfied_via_successor) {
      continue;  // already resolved (possibly via a resend of an earlier
                 // crash's coalescing successor) -- nothing left to lose
    }
    if (!InResentChain(state, id, resent)) {
      call.loss_flagged = true;
      AddViolation("durability-loss", client,
                   "rpc " + std::to_string(id) +
                       " was flush-acknowledged but neither it nor a "
                       "coalescing successor was re-sent after crash");
    }
  }
}

// --- server hooks ---

void SimCheck::OnServerExecute(const std::string& server, const std::string& client,
                               uint64_t rpc_id) {
  TraceEvent(server + " execute " + client + "/" + std::to_string(rpc_id));
  ServerState& state = servers_[server];
  const RpcKey key{client, rpc_id};
  if (state.executed.count(key) > 0 && state.evicted.count(key) == 0) {
    AddViolation("double-execute", server,
                 "rpc " + std::to_string(rpc_id) + " from " + client +
                     " dispatched twice in one incarnation");
  }
  if (state.survived.count(key) > 0 && state.evicted.count(key) == 0) {
    AddViolation("replay-as-execute", server,
                 "rpc " + std::to_string(rpc_id) + " from " + client +
                     " re-executed although its response survived recovery");
  }
  state.executed.insert(key);
}

void SimCheck::OnServerReplay(const std::string& server, const std::string& client,
                              uint64_t rpc_id, bool durable) {
  TraceEvent(server + " replay " + client + "/" + std::to_string(rpc_id) +
             (durable ? "" : " UNDURABLE"));
  if (!durable) {
    AddViolation("undurable-replay", server,
                 "rpc " + std::to_string(rpc_id) + " from " + client +
                     " replayed from a response not yet journaled");
  }
}

void SimCheck::OnServerResponseDurable(const std::string& server,
                                       const std::string& client,
                                       uint64_t rpc_id) {
  // Fires when the response journal write completed AND (under semi-sync
  // replication) the backup's acked watermark covered it -- i.e. the moment
  // the response is released toward the client. Cumulative: a later failover
  // audits this set against what the backup actually holds.
  servers_[server].released_ever.insert({client, rpc_id});
}

void SimCheck::OnServerDupCacheEvict(const std::string& server,
                                     const std::string& client, uint64_t rpc_id) {
  TraceEvent(server + " dup-evict " + client + "/" + std::to_string(rpc_id));
  ServerState& state = servers_[server];
  state.evicted.insert({client, rpc_id});
  state.evicted_ever.insert({client, rpc_id});
}

void SimCheck::OnServerCrashed(const std::string& server) {
  TraceEvent(server + " server-crash");
  ServerState& state = servers_[server];
  // New incarnation: in-flight work that never responded may legally run
  // again; what must not is captured by the recovery's survived set.
  state.executed.clear();
  state.evicted.clear();
  state.survived.clear();
}

void SimCheck::OnServerRecovered(
    const std::string& server, uint64_t epoch,
    const std::vector<std::pair<std::string, uint64_t>>& survived_responses) {
  TraceEvent(server + " server-recover epoch=" + std::to_string(epoch) + " survived=" +
             std::to_string(survived_responses.size()));
  ServerState& state = servers_[server];
  if (epoch < state.epoch) {
    AddViolation("epoch-regression", server,
                 "recovered epoch " + std::to_string(epoch) + " < previous " +
                     std::to_string(state.epoch));
  }
  state.epoch = epoch;
  state.survived = std::set<RpcKey>(survived_responses.begin(), survived_responses.end());
}

void SimCheck::OnFailover(
    const std::string& failed_primary, const std::string& backup, uint64_t epoch,
    const std::vector<std::pair<std::string, uint64_t>>& replicated_responses) {
  TraceEvent(backup + " failover from=" + failed_primary +
             " epoch=" + std::to_string(epoch) +
             " replicated=" + std::to_string(replicated_responses.size()));
  ServerState& primary = servers_[failed_primary];
  ServerState& promoted = servers_[backup];
  // Fencing: the promotion epoch must exceed every epoch either node has
  // used, so a stale primary (or its in-flight writes) can never be
  // mistaken for the current incarnation.
  if (epoch <= primary.epoch) {
    AddViolation("failover-fencing", backup,
                 "promoted with epoch " + std::to_string(epoch) +
                     " but dead primary " + failed_primary + " reached epoch " +
                     std::to_string(primary.epoch));
  }
  if (epoch < promoted.epoch) {
    AddViolation("epoch-regression", backup,
                 "promotion epoch " + std::to_string(epoch) + " < previous " +
                     std::to_string(promoted.epoch));
  }
  promoted.epoch = epoch;
  // No acknowledged-work loss: every response the primary released (post
  // backup-ack under semi-sync) must be in the backup's replicated set,
  // minus sanctioned duplicate-cache evictions -- unless the sender had
  // degraded to async, which withdraws the guarantee for this primary.
  const std::set<RpcKey> replicated(replicated_responses.begin(),
                                    replicated_responses.end());
  if (!primary.repl_degraded) {
    for (const RpcKey& key : primary.released_ever) {
      if (primary.evicted_ever.count(key) > 0 || replicated.count(key) > 0) {
        continue;
      }
      AddViolation("failover-acked-loss", failed_primary,
                   "rpc " + std::to_string(key.second) + " from " + key.first +
                       " was released to the client but is missing from the "
                       "promoted backup " + backup);
    }
  }
  // Resends of replicated keys at the new primary must replay, never
  // re-execute: fold them into the survived set the execute check consults.
  promoted.survived.insert(replicated.begin(), replicated.end());
}

void SimCheck::OnReplicationDegraded(const std::string& primary) {
  TraceEvent(primary + " replication-degraded");
  servers_[primary].repl_degraded = true;
}

void SimCheck::OnSessionImportServed(const std::string& client, const std::string& name,
                                     uint64_t version, uint64_t required, bool ok) {
  TraceEvent(client + " session-import " + name + " v=" + std::to_string(version) +
             " floor=" + std::to_string(required) + (ok ? " ok" : " fail"));
  if (ok && version < required) {
    AddViolation("session-guarantee", client,
                 "import of " + name + " served version " + std::to_string(version) +
                     " below session floor " + std::to_string(required));
  }
}

// --- quiesce audit ---

void SimCheck::CheckQuiesced() {
  if (bed_ == nullptr) {
    return;
  }
  for (RoverClientNode* node : bed_->AllClients()) {
    const std::string& host = node->host_name();
    auto cs = clients_.find(host);
    if (cs != clients_.end()) {
      const std::vector<uint64_t> ids = node->qrpc()->OutstandingIds();
      const std::set<uint64_t> outstanding(ids.begin(), ids.end());
      for (const auto& [id, call] : cs->second.calls) {
        if (!call.tracked) {
          continue;
        }
        if (!ResolvedOrPending(cs->second, id, outstanding)) {
          AddViolation("promise-leak", host,
                       "rpc " + std::to_string(id) +
                           " left outstanding_ without ever resolving");
        }
      }
    }
    // Conservation: at quiesce each gauge equals the structure it mirrors.
    // The gauges and TotalQueueDepth() now read the same incremental
    // counters, so the independent witness is AuditQueues(): a structural
    // walk of every destination queue, skipping tombstones.
    const SchedulerQueueAudit audit = node->transport()->scheduler()->AuditQueues();
    if (!audit.per_dest_consistent) {
      AddViolation("queue-index-drift", host,
                   "a per-destination counter disagrees with its queue walk");
    }
    const size_t actual_depth = node->transport()->scheduler()->TotalQueueDepth();
    if (audit.messages != actual_depth) {
      AddViolation("queue-index-drift", host,
                   "TotalQueueDepth=" + std::to_string(actual_depth) +
                       " but the structural walk counts " +
                       std::to_string(audit.messages));
    }
    const obs::Gauge* depth = node->metrics()->FindGauge("scheduler.queue_depth");
    if (depth != nullptr && depth->value() != static_cast<int64_t>(audit.messages)) {
      AddViolation("gauge-drift", host,
                   "scheduler.queue_depth=" + std::to_string(depth->value()) +
                       " but scheduler holds " + std::to_string(audit.messages));
    }
    const obs::Gauge* qbytes =
        node->metrics()->FindGauge("scheduler.queued_payload_bytes");
    if (qbytes != nullptr && qbytes->value() != static_cast<int64_t>(audit.payload_bytes)) {
      AddViolation("gauge-drift", host,
                   "scheduler.queued_payload_bytes=" + std::to_string(qbytes->value()) +
                       " but scheduler holds " + std::to_string(audit.payload_bytes));
    }
    const obs::Gauge* lbytes = node->metrics()->FindGauge("qrpc_client.log_bytes");
    const size_t actual_log = node->log()->TotalBytes();
    if (lbytes != nullptr && lbytes->value() != static_cast<int64_t>(actual_log)) {
      AddViolation("gauge-drift", host,
                   "qrpc_client.log_bytes=" + std::to_string(lbytes->value()) +
                       " but the stable log holds " + std::to_string(actual_log));
    }
  }
  for (RoverServerNode* node : bed_->AllServers()) {
    if (node->dead()) {
      continue;  // killed primary: its process-level structures are gone
    }
    const std::string& host = node->host_name();
    const SchedulerQueueAudit audit = node->transport()->scheduler()->AuditQueues();
    if (!audit.per_dest_consistent) {
      AddViolation("queue-index-drift", host,
                   "a per-destination counter disagrees with its queue walk");
    }
    if (audit.messages != node->transport()->scheduler()->TotalQueueDepth()) {
      AddViolation("queue-index-drift", host,
                   "TotalQueueDepth disagrees with the structural walk");
    }
    const obs::Gauge* depth = node->metrics()->FindGauge("scheduler.queue_depth");
    if (depth != nullptr && depth->value() != static_cast<int64_t>(audit.messages)) {
      AddViolation("gauge-drift", host,
                   "scheduler.queue_depth=" + std::to_string(depth->value()) +
                       " but scheduler holds " + std::to_string(audit.messages));
    }
  }
}

}  // namespace check
}  // namespace rover
