#include "src/check/fuzz.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/core/fault_plan.h"
#include "src/tclite/value.h"
#include "src/util/rng.h"

namespace rover {
namespace check {
namespace {

constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

constexpr uint64_t kHorizonMs = 60'000;

const char* KindToken(const FuzzAction& a) {
  switch (a.kind) {
    case FuzzActionKind::kClientCrash:
      if (a.target == 0) {
        return a.tear ? "client1-crash-tear" : "client1-crash";
      }
      return a.tear ? "client2-crash-tear" : "client2-crash";
    case FuzzActionKind::kServerCrash:
      return a.tear ? "server-crash-tear" : "server-crash";
    case FuzzActionKind::kCorruptImage:
      return "corrupt-image";
    case FuzzActionKind::kBurst:
      return "burst";
    case FuzzActionKind::kDiskTransient:
      return a.target == 0 ? "client1-disk-err"
             : a.target == 1 ? "client2-disk-err"
                             : "server-disk-err";
    case FuzzActionKind::kDiskFull:
      return a.target == 0 ? "client1-disk-full"
             : a.target == 1 ? "client2-disk-full"
                             : "server-disk-full";
    case FuzzActionKind::kDiskFree:
      return a.target == 0 ? "client1-disk-free"
             : a.target == 1 ? "client2-disk-free"
                             : "server-disk-free";
    case FuzzActionKind::kDiskRot:
      return a.target == 0 ? "client1-disk-rot"
             : a.target == 1 ? "client2-disk-rot"
                             : "server-disk-rot";
    case FuzzActionKind::kDiskSyncFail:
      return a.target == 0 ? "client1-disk-syncfail"
             : a.target == 1 ? "client2-disk-syncfail"
                             : "server-disk-syncfail";
  }
  return "unknown";
}

bool KindFromToken(const std::string& token, FuzzAction* out) {
  if (token == "client1-crash" || token == "client1-crash-tear") {
    out->kind = FuzzActionKind::kClientCrash;
    out->target = 0;
    out->tear = token == "client1-crash-tear";
    return true;
  }
  if (token == "client2-crash" || token == "client2-crash-tear") {
    out->kind = FuzzActionKind::kClientCrash;
    out->target = 1;
    out->tear = token == "client2-crash-tear";
    return true;
  }
  if (token == "server-crash" || token == "server-crash-tear") {
    out->kind = FuzzActionKind::kServerCrash;
    out->tear = token == "server-crash-tear";
    return true;
  }
  if (token == "corrupt-image") {
    out->kind = FuzzActionKind::kCorruptImage;
    return true;
  }
  if (token == "burst") {
    out->kind = FuzzActionKind::kBurst;
    return true;
  }
  auto disk = [&](const char* prefix, int target) {
    const std::string p(prefix);
    if (token.rfind(p, 0) != 0) {
      return false;
    }
    const std::string rest = token.substr(p.size());
    if (rest == "disk-err") {
      out->kind = FuzzActionKind::kDiskTransient;
    } else if (rest == "disk-full") {
      out->kind = FuzzActionKind::kDiskFull;
    } else if (rest == "disk-free") {
      out->kind = FuzzActionKind::kDiskFree;
    } else if (rest == "disk-rot") {
      out->kind = FuzzActionKind::kDiskRot;
    } else if (rest == "disk-syncfail") {
      out->kind = FuzzActionKind::kDiskSyncFail;
    } else {
      return false;
    }
    out->target = target;
    return true;
  };
  return disk("client1-", 0) || disk("client2-", 1) || disk("server-", 2);
}

}  // namespace

FuzzPlan MakePlan(uint64_t seed) { return MakePlan(seed, MakePlanOptions{}); }

FuzzPlan MakePlan(uint64_t seed, MakePlanOptions options) {
  Rng rng(seed ^ 0x51c7c4ecull);
  FuzzPlan plan;
  plan.seed = seed;

  // One or two coalescing bursts, each often shadowed by a torn m2 crash a
  // few milliseconds later -- the exact window where an eagerly-withdrawn
  // predecessor record would lose acknowledged work.
  const size_t bursts = 1 + rng.NextBelow(2);
  for (size_t i = 0; i < bursts; ++i) {
    FuzzAction burst;
    burst.kind = FuzzActionKind::kBurst;
    burst.at_ms = 10'000 + rng.NextBelow(35'000);
    plan.actions.push_back(burst);
    if (rng.NextBool(0.6)) {
      FuzzAction crash;
      crash.kind = FuzzActionKind::kClientCrash;
      crash.target = 1;
      crash.tear = rng.NextBool(0.7);
      crash.at_ms = burst.at_ms + 1 + rng.NextBelow(120);
      plan.actions.push_back(crash);
    }
  }

  const size_t extras = 1 + rng.NextBelow(4);
  for (size_t i = 0; i < extras; ++i) {
    FuzzAction a;
    a.at_ms = 5'000 + rng.NextBelow(48'000);
    switch (rng.NextBelow(4)) {
      case 0:
        a.kind = FuzzActionKind::kClientCrash;
        a.target = 0;
        a.tear = rng.NextBool(0.5);
        break;
      case 1:
        a.kind = FuzzActionKind::kClientCrash;
        a.target = 1;
        a.tear = rng.NextBool(0.5);
        break;
      case 2:
        a.kind = FuzzActionKind::kServerCrash;
        a.tear = rng.NextBool(0.5);
        break;
      default:
        a.kind = FuzzActionKind::kCorruptImage;
        break;
    }
    plan.actions.push_back(a);
  }

  if (options.disk_faults) {
    const size_t disk_actions = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < disk_actions; ++i) {
      FuzzAction a;
      a.at_ms = 3'000 + rng.NextBelow(50'000);
      const uint64_t roll = rng.NextBelow(6);
      if (roll <= 1) {
        // Forced write-error burst on any device; sized past the retry
        // budget so the terminal-failure path gets exercised too.
        a.kind = FuzzActionKind::kDiskTransient;
        a.target = static_cast<int>(rng.NextBelow(3));
      } else if (roll <= 3) {
        // Bounded ENOSPC episode, always freed again before the horizon's
        // final sweeps (RunPlan also force-frees as a safety net).
        a.kind = FuzzActionKind::kDiskFull;
        a.target = static_cast<int>(rng.NextBelow(3));
        FuzzAction free_again;
        free_again.kind = FuzzActionKind::kDiskFree;
        free_again.target = a.target;
        free_again.at_ms = a.at_ms + 500 + rng.NextBelow(8'000);
        plan.actions.push_back(free_again);
      } else if (roll == 4) {
        // Bit rot on a client log only: rotting an already-responded server
        // WAL transaction is DETECTED loss (quarantine + epoch bump), which
        // the harness's acked-loss end-to-end check cannot tell from silent
        // loss. The server path is covered by tests/storage_fault_test.cc.
        a.kind = FuzzActionKind::kDiskRot;
        a.target = static_cast<int>(rng.NextBelow(2));
      } else {
        a.kind = FuzzActionKind::kDiskSyncFail;
        a.target = static_cast<int>(rng.NextBelow(3));
      }
      plan.actions.push_back(a);
    }
  }

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FuzzAction& x, const FuzzAction& y) {
                     return x.at_ms < y.at_ms;
                   });
  return plan;
}

FuzzOutcome RunPlan(const FuzzPlan& plan, FuzzRunOptions options) {
  FuzzOutcome outcome;

  Testbed::Options topts;
  topts.server.stable_store.wal_costs = {Duration::Millis(5), 2e6,
                                         /*group_commit=*/true};
  topts.server.stable_store.compact_after_records = 8;
  topts.server.rover.invalidation_ttl = Duration::Seconds(30);
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);

  SimCheck check;
  check.Attach(&bed);

  auto fail = [&](const std::string& invariant, const std::string& node,
                  const std::string& detail) {
    outcome.violations.push_back({invariant, node, detail});
  };

  if (!bed.server()->rover()->CreateObject(
          MakeRdo("journal", "lww", kJournalCode, "")).ok() ||
      !bed.server()->rover()->CreateObject(
          MakeRdo("doc", "lww", kCounterCode, "0")).ok() ||
      !bed.server()->rover()->CreateObject(
          MakeRdo("notes", "lww", kCounterCode, "0")).ok()) {
    fail("harness", "server", "object creation failed");
    outcome.report = "object creation failed";
    return outcome;
  }

  FaultPlan faults(bed.loop(), plan.seed);
  LinkProfile wave = LinkProfile::WaveLan2();
  wave.duplicate_prob = 0.05;
  wave.reorder_prob = 0.05;

  ClientNodeOptions c1opts;
  c1opts.access.subscribe_on_import = true;
  RoverClientNode* m1 = bed.AddClient(
      "m1", wave,
      faults.FlappyConnectivity(Duration::Seconds(8), Duration::Seconds(4),
                                Duration::Millis(kHorizonMs)),
      c1opts);

  ClientNodeOptions c2opts;
  c2opts.access.subscribe_on_import = true;
  c2opts.qrpc.unsafe_eager_coalesce_withdraw_for_test = options.eager_coalesce_bug;
  c2opts.qrpc.unsafe_ack_despite_flush_failure_for_test =
      options.ack_after_failed_flush_bug;
  RoverClientNode* m2 = bed.AddClient(
      "m2", wave,
      faults.FlappyConnectivity(Duration::Seconds(7), Duration::Seconds(5),
                                Duration::Millis(kHorizonMs)),
      c2opts);

  EventLoop* loop = bed.loop();
  auto at = [](uint64_t ms) { return TimePoint::Epoch() + Duration::Millis(ms); };

  // --- fixed workload ---
  // m1: journaled server-side invokes (at-most-once tokens).
  loop->ScheduleAt(at(1'000), [m1] { m1->access()->Import("journal"); });
  constexpr int kTokens = 12;
  std::vector<Promise<InvokeResult>> token_results(kTokens);
  for (int i = 0; i < kTokens; ++i) {
    loop->ScheduleAt(at(2'000 + 3'000 * i), [&token_results, m1, i] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kServer;
      token_results[i] = m1->access()->Invoke("journal", "add",
                                              {"tok" + std::to_string(i)}, io);
    });
  }
  // m2: session-tracked imports (delta / kNotModified traffic via
  // subscribe_on_import invalidations and repeated refetches) plus steady
  // tentative-export pressure on "doc".
  Session session(1);
  for (int i = 0; i < 8; ++i) {
    loop->ScheduleAt(at(1'500 + 7'000 * i), [m2, &session, i] {
      ImportOptions io;
      io.session = &session;
      io.allow_cached = (i % 2) == 0;
      m2->access()->Import("doc", io);
      m2->access()->Import("notes", io);
    });
  }
  for (int i = 0; i < 10; ++i) {
    loop->ScheduleAt(at(4'000 + 5'000 * i), [m2] {
      InvokeOptions io;
      io.force_site = ExecutionSite::kClient;
      auto inv = m2->access()->Invoke("doc", "add", {"1"}, io);
      inv.OnReady([m2](const InvokeResult& r) {
        if (r.status.ok()) {
          m2->access()->Export("doc");
        }
      });
    });
  }

  // --- plan actions ---
  // Disk-fault actions address the device behind a node's stable log; the
  // log models hardware and survives simulated crash-restarts, so the
  // pointer stays valid for the whole run.
  auto disk_log = [m1, m2, &bed](int target) -> StableLog* {
    if (target == 0) {
      return m1->log();
    }
    if (target == 1) {
      return m2->log();
    }
    return bed.server()->stable_store()->wal();
  };
  for (const FuzzAction& action : plan.actions) {
    const FuzzAction a = action;
    switch (a.kind) {
      case FuzzActionKind::kClientCrash: {
        RoverClientNode* victim = a.target == 0 ? m1 : m2;
        loop->ScheduleAt(at(a.at_ms),
                         [victim, a] { victim->SimulateCrashAndRestart(a.tear); });
        break;
      }
      case FuzzActionKind::kServerCrash: {
        RoverServerNode* server = bed.server();
        loop->ScheduleAt(at(a.at_ms),
                         [server, a] { server->SimulateCrashAndRestart(a.tear); });
        break;
      }
      case FuzzActionKind::kCorruptImage:
        loop->ScheduleAt(at(a.at_ms),
                         [m2] { m2->access()->CorruptImportImageForTest("doc"); });
        break;
      case FuzzActionKind::kBurst:
        // Three invoke+export generations 50ms apart: each export's flush
        // is acknowledged before the next supersedes it in the queue, so a
        // disconnected window turns the run into a coalescing chain.
        for (int k = 0; k < 3; ++k) {
          loop->ScheduleAt(at(a.at_ms + 50 * k), [m2] {
            InvokeOptions io;
            io.force_site = ExecutionSite::kClient;
            auto inv = m2->access()->Invoke("doc", "add", {"1"}, io);
            inv.OnReady([m2](const InvokeResult& r) {
              if (r.status.ok()) {
                m2->access()->Export("doc");
              }
            });
          });
        }
        break;
      case FuzzActionKind::kDiskTransient:
        // Six forced errors: past the retry budget (1 + 4 retries), so the
        // flush terminally fails and the refusal/resolution path runs.
        loop->ScheduleAt(at(a.at_ms), [disk_log, a] {
          disk_log(a.target)->device()->InjectTransientWriteErrors(6);
        });
        break;
      case FuzzActionKind::kDiskFull:
        loop->ScheduleAt(at(a.at_ms), [disk_log, a] {
          disk_log(a.target)->device()->ClampCapacityToUsed(160);
        });
        break;
      case FuzzActionKind::kDiskFree:
        loop->ScheduleAt(at(a.at_ms), [disk_log, a] {
          disk_log(a.target)->device()->SetCapacityBytes(0);
        });
        break;
      case FuzzActionKind::kDiskRot:
        loop->ScheduleAt(at(a.at_ms), [disk_log, a] {
          disk_log(a.target)->InjectBitRot(/*selector=*/a.at_ms);
        });
        break;
      case FuzzActionKind::kDiskSyncFail:
        loop->ScheduleAt(at(a.at_ms), [disk_log, a] {
          disk_log(a.target)->device()->FailSyncPermanently();
        });
        break;
    }
  }

  // The fault window ends at the horizon: every device is healed (leftover
  // injected transient errors cleared, capacity clamp lifted) before the
  // final sweeps. Without this, a burst injected after a client's last
  // workload call would sit unconsumed and fail the harness's own
  // convergence imports -- a scheduling artifact, not a protocol bug.
  loop->ScheduleAt(at(kHorizonMs + 500), [disk_log] {
    for (int target = 0; target < 3; ++target) {
      disk_log(target)->device()->Repair();
      disk_log(target)->device()->SetCapacityBytes(0);
    }
  });

  // Final sweeps once the links are permanently up: each client restart
  // re-sends every durable unanswered request, so the run always quiesces
  // with drained logs -- and the recovery audit runs one last time.
  loop->ScheduleAt(at(kHorizonMs + 1'000), [m1] { m1->SimulateCrashAndRestart(false); });
  loop->ScheduleAt(at(kHorizonMs + 2'000), [m2] { m2->SimulateCrashAndRestart(false); });

  bed.Run();

  // --- harness-level end-to-end checks ---
  const std::string server_journal = bed.server()->store()->Get("journal")->data;
  auto tokens = TclListSplit(server_journal);
  if (!tokens.ok()) {
    fail("harness", "server", "journal unparsable: [" + server_journal + "]");
  } else {
    std::set<std::string> unique(tokens->begin(), tokens->end());
    if (unique.size() != tokens->size()) {
      fail("at-most-once-token", "server",
           "a journal add executed twice: [" + server_journal + "]");
    }
    std::set<std::string> issued;
    for (int i = 0; i < kTokens; ++i) {
      issued.insert("tok" + std::to_string(i));
    }
    for (const std::string& tok : *tokens) {
      if (issued.count(tok) == 0) {
        fail("phantom-token", "server", "unknown token " + tok);
      }
    }
    for (int i = 0; i < kTokens; ++i) {
      if (token_results[i].ready() && token_results[i].value().status.ok() &&
          unique.count("tok" + std::to_string(i)) == 0) {
        fail("acked-loss", "server",
             "acknowledged tok" + std::to_string(i) + " missing: [" +
                 server_journal + "]");
      }
    }
  }
  for (RoverClientNode* node : {m1, m2}) {
    if (node->qrpc()->LogDepth() != 0) {
      fail("log-drain", node->host_name(),
           "stable log did not drain: depth " +
               std::to_string(node->qrpc()->LogDepth()));
    }
    if (node->qrpc()->PendingCount() != 0) {
      fail("log-drain", node->host_name(),
           "pending set did not drain: " +
               std::to_string(node->qrpc()->PendingCount()));
    }
  }
  // Convergence: a fresh uncached import must land every client on the
  // server's committed state.
  for (RoverClientNode* node : {m1, m2}) {
    for (const char* name : {"journal", "doc"}) {
      ImportOptions io;
      io.allow_cached = false;
      auto converge = node->access()->Import(name, io);
      if (!converge.Wait(bed.loop()) || !converge.value().status.ok()) {
        fail("convergence", node->host_name(),
             std::string("final import of ") + name + " failed");
        continue;
      }
      auto local = node->access()->ReadCommittedData(name);
      const std::string server_data = bed.server()->store()->Get(name)->data;
      if (!local.ok() || *local != server_data) {
        fail("convergence", node->host_name(),
             std::string(name) + " diverged: client [" +
                 (local.ok() ? *local : "<unreadable>") + "] server [" +
                 server_data + "]");
      }
    }
  }

  check.CheckQuiesced();
  outcome.violations.insert(outcome.violations.end(), check.violations().begin(),
                            check.violations().end());
  outcome.ok = outcome.violations.empty();
  if (!outcome.ok) {
    std::ostringstream report;
    report << "plan failed: " << FormatRepro(plan) << "\n";
    for (const auto& v : outcome.violations) {
      report << "  [" << v.invariant << "] " << v.node << ": " << v.detail << "\n";
    }
    report << "event trace (tail):\n" << check.TraceTail(100);
    outcome.report = report.str();
  }
  return outcome;
}

FuzzPlan ShrinkPlan(const FuzzPlan& plan, FuzzRunOptions options) {
  FuzzPlan current = plan;
  bool shrunk = true;
  while (shrunk && current.actions.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < current.actions.size(); ++i) {
      FuzzPlan candidate = current;
      candidate.actions.erase(candidate.actions.begin() + i);
      if (!RunPlan(candidate, options).ok) {
        current = candidate;
        shrunk = true;
        break;  // restart the scan over the smaller plan
      }
    }
  }
  return current;
}

std::string FormatRepro(const FuzzPlan& plan) {
  std::ostringstream out;
  out << "SIMCHECK_REPRO seed=" << plan.seed << " plan=";
  for (size_t i = 0; i < plan.actions.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << KindToken(plan.actions[i]) << "@" << plan.actions[i].at_ms;
  }
  return out.str();
}

Result<FuzzPlan> ParseRepro(const std::string& line) {
  const std::string seed_tag = "seed=";
  const std::string plan_tag = "plan=";
  const size_t seed_pos = line.find(seed_tag);
  const size_t plan_pos = line.find(plan_tag);
  if (seed_pos == std::string::npos || plan_pos == std::string::npos) {
    return InvalidArgumentError("repro line missing seed= or plan=");
  }
  FuzzPlan plan;
  try {
    plan.seed = std::stoull(line.substr(seed_pos + seed_tag.size()));
  } catch (...) {
    return InvalidArgumentError("unparsable seed");
  }
  std::string actions = line.substr(plan_pos + plan_tag.size());
  if (const size_t space = actions.find(' '); space != std::string::npos) {
    actions = actions.substr(0, space);
  }
  std::istringstream stream(actions);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const size_t atpos = item.find('@');
    if (atpos == std::string::npos) {
      return InvalidArgumentError("action missing @time: " + item);
    }
    FuzzAction action;
    if (!KindFromToken(item.substr(0, atpos), &action)) {
      return InvalidArgumentError("unknown action kind: " + item);
    }
    try {
      action.at_ms = std::stoull(item.substr(atpos + 1));
    } catch (...) {
      return InvalidArgumentError("unparsable action time: " + item);
    }
    plan.actions.push_back(action);
  }
  if (plan.actions.empty()) {
    return InvalidArgumentError("empty plan");
  }
  return plan;
}

}  // namespace check
}  // namespace rover
