// Seeded interleaving fuzzer for SimCheck. A FuzzPlan is a small sorted
// list of fault actions (client/server crash-restarts with optional torn
// writes, cached-image corruption, coalescing export bursts) drawn from a
// seed and executed against a fixed two-client workload over seeded flappy
// links. RunPlan drives the deployment to quiescence under an attached
// SimCheck, then layers harness-level end-to-end checks on top (journal
// at-most-once, acknowledged-work durability, log drain, client/server
// convergence).
//
// On failure, ShrinkPlan greedily drops actions while the plan keeps
// failing, and FormatRepro/ParseRepro round-trip the minimized schedule as
// a one-line reproducer:
//
//   SIMCHECK_REPRO seed=7 plan=burst@20000,client2-crash-tear@20052

#ifndef ROVER_SRC_CHECK_FUZZ_H_
#define ROVER_SRC_CHECK_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/simcheck.h"
#include "src/util/result.h"

namespace rover {
namespace check {

enum class FuzzActionKind {
  kClientCrash,    // crash-restart a client (target: 0 = m1, 1 = m2)
  kServerCrash,    // crash-restart the home server
  kCorruptImage,   // damage m2's cached delta base for "doc"
  kBurst,          // m2 fires a run of coalescing invoke+export generations
  // Storage faults against a node's stable device (target: 0 = m1, 1 = m2,
  // 2 = server WAL). Tokens: clientN-disk-err / -disk-full / -disk-free /
  // -disk-rot / -disk-syncfail (server- for target 2).
  kDiskTransient,  // burst of forced write errors (exceeds the retry budget)
  kDiskFull,       // clamp device capacity to current use (ENOSPC)
  kDiskFree,       // lift the capacity clamp again
  kDiskRot,        // flip bits in a durable record (latent interior rot)
  kDiskSyncFail,   // permanent sync failure (node fail-stops)
};

struct FuzzAction {
  FuzzActionKind kind = FuzzActionKind::kBurst;
  uint64_t at_ms = 0;  // simulated-time offset from epoch
  int target = 0;      // client index for kClientCrash; device for disk kinds
  bool tear = false;   // power cut mid-write for the crash kinds
};

struct FuzzPlan {
  uint64_t seed = 0;
  std::vector<FuzzAction> actions;  // sorted by at_ms
};

struct MakePlanOptions {
  // Also draw storage-fault actions (transient write-error bursts, bounded
  // disk-full episodes always paired with a later free, client bit rot,
  // rare permanent sync failures).
  bool disk_faults = false;
};

struct FuzzRunOptions {
  // Re-introduces the PR-4 coalescing bug (eager predecessor-record
  // withdrawal before the successor is durable). Meta-testing only: the
  // checker must catch it and the shrinker must reduce it.
  bool eager_coalesce_bug = false;
  // Injects the ack-after-failed-flush bug on m2: a call whose stable-log
  // flush terminally failed still gets its durability acknowledgement.
  // Meta-testing only, paired with a clientN-disk-err action.
  bool ack_after_failed_flush_bug = false;
};

struct FuzzOutcome {
  bool ok = false;
  std::vector<Violation> violations;  // SimCheck + harness-level checks
  std::string report;                 // human-readable failure summary
};

// Draws a plan from the seed: crash points, corruption, and bursts over a
// ~55s horizon, biased so a burst is often shadowed by a torn client crash
// (the coalescing durability window). With options.disk_faults, seeded
// storage faults are mixed into the same schedule.
FuzzPlan MakePlan(uint64_t seed);
FuzzPlan MakePlan(uint64_t seed, MakePlanOptions options);

// Builds the deployment, runs the workload with `plan`'s faults injected,
// drains, and reports every violation found.
FuzzOutcome RunPlan(const FuzzPlan& plan, FuzzRunOptions options = {});

// Greedy minimization: repeatedly re-runs the plan with one action dropped
// and keeps the drop whenever the plan still fails. Returns the (possibly
// unchanged) minimized plan; the input must already fail.
FuzzPlan ShrinkPlan(const FuzzPlan& plan, FuzzRunOptions options = {});

std::string FormatRepro(const FuzzPlan& plan);
Result<FuzzPlan> ParseRepro(const std::string& line);

}  // namespace check
}  // namespace rover

#endif  // ROVER_SRC_CHECK_FUZZ_H_
