// SimCheck: a cross-layer invariant checker for simulated Rover
// deployments. It attaches to a Testbed as an obs::CheckListener, shadows
// the QRPC client/server, access manager, and server store through their
// check hooks, and asserts the toolkit's end-to-end correctness contracts
// after every event plus a whole-deployment audit at quiesce:
//
//   * at-most-once execution: a server never dispatches the same
//     (client, rpc_id) twice within an incarnation, and never re-executes a
//     request whose response survived recovery (duplicate-cache evictions
//     are the one sanctioned exception);
//   * no acknowledged-durability loss: a request whose stable-log flush was
//     acknowledged and whose record was not legitimately withdrawn must be
//     re-sent after a client crash, either directly or through the
//     coalescing successor that subsumed it (records lost to DETECTED
//     storage corruption -- quarantined and surfaced as kDataLoss -- are
//     the sanctioned exception);
//   * no ack without durability: a call whose flush terminally failed
//     (retries exhausted, device full, dead device) must never receive a
//     durability acknowledgement;
//   * promise hygiene: every issued QRPC resolves exactly once across the
//     shed / deadline / coalesce / cancel / crash matrix -- no drops, no
//     double-resolves;
//   * session guarantees: an import served to a Session never returns a
//     version below the session's floor (monotonic reads, read-your-writes);
//   * failover safety: a backup promotes with an epoch that fences the dead
//     primary, and every response the primary released to a client (minus
//     sanctioned duplicate-cache evictions) is present in the replicated
//     set the backup took over -- unless the primary's replication sender
//     had announced degraded (async) shipping;
//   * conservation of accounting: at quiesce, the scheduler and stable-log
//     gauges equal the structures they mirror.
//
// Violations accumulate (up to a cap) instead of aborting, so a fuzz run
// reports everything a schedule flushed out; tests assert `ok()`.

#ifndef ROVER_SRC_CHECK_SIMCHECK_H_
#define ROVER_SRC_CHECK_SIMCHECK_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/toolkit.h"
#include "src/obs/check_hooks.h"

namespace rover {
namespace check {

struct Violation {
  std::string invariant;  // e.g. "double-resolve", "durability-loss"
  std::string node;       // host the violation was observed on
  std::string detail;
};

class SimCheck : public obs::CheckListener {
 public:
  SimCheck() = default;

  // Wires this checker into every node of `bed`, current and future.
  void Attach(Testbed* bed);

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::string Report() const;

  // Rolling event trace (most recent kTraceCap hook events, timestamped
  // from the bed's clock when attached): the raw material a failing fuzz
  // schedule is diagnosed from.
  const std::vector<std::string>& trace() const { return trace_; }
  std::string TraceTail(size_t n) const;

  // Whole-deployment audit once the bed has drained: promise hygiene
  // (every tracked call resolved, pending, or crash-orphaned) and
  // gauge-vs-structure conservation on every node. Requires Attach().
  void CheckQuiesced();

  // --- obs::CheckListener ---
  void OnCallIssued(const std::string& client, uint64_t rpc_id, bool logged) override;
  void OnCallDurable(const std::string& client, uint64_t rpc_id,
                     uint64_t log_record_id) override;
  void OnCallFlushFailed(const std::string& client, uint64_t rpc_id) override;
  void OnClientStorageQuarantine(const std::string& client,
                                 const std::vector<uint64_t>& log_record_ids) override;
  void OnCallWithdrawn(const std::string& client, uint64_t rpc_id) override;
  void OnCallCoalesced(const std::string& client, uint64_t pred_rpc_id,
                       uint64_t successor_rpc_id) override;
  void OnCallResolved(const std::string& client, uint64_t rpc_id, const char* path,
                      bool ok) override;
  void OnClientCrashed(const std::string& client) override;
  void OnClientRecovered(const std::string& client,
                         const std::vector<uint64_t>& resent) override;
  void OnServerExecute(const std::string& server, const std::string& client,
                       uint64_t rpc_id) override;
  void OnServerReplay(const std::string& server, const std::string& client,
                      uint64_t rpc_id, bool durable) override;
  void OnServerResponseDurable(const std::string& server, const std::string& client,
                               uint64_t rpc_id) override;
  void OnServerDupCacheEvict(const std::string& server, const std::string& client,
                             uint64_t rpc_id) override;
  void OnServerCrashed(const std::string& server) override;
  void OnServerRecovered(const std::string& server, uint64_t epoch,
                         const std::vector<std::pair<std::string, uint64_t>>&
                             survived_responses) override;
  void OnFailover(const std::string& failed_primary, const std::string& backup,
                  uint64_t epoch,
                  const std::vector<std::pair<std::string, uint64_t>>&
                      replicated_responses) override;
  void OnReplicationDegraded(const std::string& primary) override;
  void OnSessionImportServed(const std::string& client, const std::string& name,
                             uint64_t version, uint64_t required, bool ok) override;

 private:
  struct CallState {
    bool tracked = false;       // we saw OnCallIssued (attach-time leniency)
    bool logged = false;        // written to the stable log at issue
    bool durable_acked = false; // flush acknowledged (committed promise set)
    bool withdrawn = false;     // log record legitimately removed
    int resolutions = 0;        // direct result resolutions observed
    bool satisfied_via_successor = false;  // coalesced pred, successor resolved
    uint64_t subsumed_by = 0;   // successor rpc id, 0 = none
    bool orphaned = false;      // unresolved at a crash, not (yet) resent
    bool loss_flagged = false;  // durability-loss already reported once
    bool flush_failed = false;  // stable-log flush terminally failed
    // Record quarantined (bit rot): acknowledged durability lost, but
    // DETECTED and surfaced -- exempt from the silent durability-loss audit.
    bool storage_lost = false;
    uint64_t log_record_id = 0;  // stable-log record backing the ack
  };
  struct ClientState {
    std::map<uint64_t, CallState> calls;
    bool crash_pending = false;  // crashed, recovery scan not yet run
    // Stable-log record id -> rpc id, built from OnCallDurable; attributes
    // storage-quarantine events to the acknowledged calls they damage.
    std::map<uint64_t, uint64_t> record_to_rpc;
  };
  using RpcKey = std::pair<std::string, uint64_t>;  // (client host, rpc id)
  struct ServerState {
    uint64_t epoch = 0;
    std::set<RpcKey> executed;  // dispatched this incarnation
    std::set<RpcKey> survived;  // responses that survived the last recovery
    std::set<RpcKey> evicted;   // dropped from the duplicate cache
    // Cumulative across incarnations (never cleared by OnServerCrashed):
    // responses actually RELEASED to a client (under semi-sync replication
    // the release hook fires only after the backup acked) and every
    // duplicate-cache eviction ever. Their difference is what a failover
    // must find replicated on the backup.
    std::set<RpcKey> released_ever;
    std::set<RpcKey> evicted_ever;
    // Replication sender degraded to async: released responses are no
    // longer guaranteed to survive a failover of this primary.
    bool repl_degraded = false;
  };

  void AddViolation(const std::string& invariant, const std::string& node,
                    const std::string& detail);
  void TraceEvent(const std::string& line);
  CallState& Call(const std::string& client, uint64_t rpc_id);
  // True when `rpc_id` or any coalescing successor in its subsumption chain
  // is in `resent`.
  bool InResentChain(const ClientState& state, uint64_t rpc_id,
                     const std::set<uint64_t>& resent) const;
  // Resolved, crash-orphaned, still outstanding, or chained to a call that
  // is -- the quiesce-time definition of a healthy promise.
  bool ResolvedOrPending(const ClientState& state, uint64_t rpc_id,
                         const std::set<uint64_t>& outstanding) const;

  Testbed* bed_ = nullptr;
  std::map<std::string, ClientState> clients_;
  std::map<std::string, ServerState> servers_;
  std::vector<Violation> violations_;
  size_t max_violations_ = 64;
  static constexpr size_t kTraceCap = 4096;
  std::vector<std::string> trace_;
};

}  // namespace check
}  // namespace rover

#endif  // ROVER_SRC_CHECK_SIMCHECK_H_
