#include "src/util/delta.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/util/crc32.h"

namespace rover {
namespace {

constexpr uint32_t kMagic = 0x314c4452u;  // "RDL1", little-endian
constexpr size_t kMinMatch = 8;           // shorter copies cost more than literals
constexpr size_t kMaxChainDepth = 16;     // candidate positions probed per hash

uint64_t HashAt(const uint8_t* p) {
  // 8-byte rolling key; multiplicative hash keeps the table well spread for
  // the repetitive text bodies (mail folders, calendars) deltas target.
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 0x9e3779b97f4a7c15ull) >> 32;
}

void EmitLiteral(WireWriter& w, const Bytes& target, size_t start, size_t end) {
  if (end <= start) {
    return;
  }
  const size_t len = end - start;
  w.WriteVarint(static_cast<uint64_t>(len) << 1);  // low bit 0 = literal
  w.WriteRaw(target.data() + start, len);
}

}  // namespace

Bytes DeltaEncode(const Bytes& base, const Bytes& target) {
  WireWriter w;
  w.Reserve(20 + target.size() / 8);
  w.WriteFixed32(kMagic);
  w.WriteFixed32(Crc32(base.data(), base.size()));
  w.WriteFixed32(Crc32(target.data(), target.size()));
  w.WriteVarint(target.size());

  // Index every position of `base` by its 8-byte prefix, newest first.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  if (base.size() >= kMinMatch) {
    index.reserve(base.size());
    for (size_t i = 0; i + kMinMatch <= base.size(); ++i) {
      std::vector<uint32_t>& chain = index[HashAt(base.data() + i)];
      if (chain.size() < kMaxChainDepth) {
        chain.push_back(static_cast<uint32_t>(i));
      }
    }
  }

  size_t literal_start = 0;
  size_t pos = 0;
  while (pos + kMinMatch <= target.size()) {
    size_t best_len = 0;
    size_t best_off = 0;
    auto it = index.find(HashAt(target.data() + pos));
    if (it != index.end()) {
      for (uint32_t cand : it->second) {
        const size_t limit = std::min(base.size() - cand, target.size() - pos);
        size_t len = 0;
        while (len < limit && base[cand + len] == target[pos + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_off = cand;
        }
      }
    }
    if (best_len >= kMinMatch) {
      EmitLiteral(w, target, literal_start, pos);
      w.WriteVarint((static_cast<uint64_t>(best_len) << 1) | 1);  // low bit 1 = copy
      w.WriteVarint(best_off);
      pos += best_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiteral(w, target, literal_start, target.size());
  return w.TakeData();
}

Result<Bytes> DeltaApply(const Bytes& base, const Bytes& delta) {
  WireReader r(delta);
  auto magic = r.ReadFixed32();
  if (!magic.ok() || *magic != kMagic) {
    return DataLossError("delta: bad magic");
  }
  auto base_crc = r.ReadFixed32();
  auto target_crc = r.ReadFixed32();
  auto target_len = r.ReadVarint();
  if (!base_crc.ok() || !target_crc.ok() || !target_len.ok()) {
    return DataLossError("delta: truncated header");
  }
  if (Crc32(base.data(), base.size()) != *base_crc) {
    return FailedPreconditionError("delta: base version mismatch");
  }
  // The header length is wire data, so sanity-check it before trusting it
  // with an allocation: a corrupt varint can claim up to 2^64-1, and
  // reserve() on that throws instead of returning the documented kDataLoss.
  // A well-formed delta cannot reconstruct more than its ops allow -- each
  // op costs at least two bytes and emits at most max(base.size(), 1)
  // bytes (copies are capped by the base; literals carry their own bytes)
  // -- so anything past that bound is corruption. Division keeps the
  // comparison overflow-free.
  const uint64_t per_op_max = std::max<uint64_t>(base.size(), 1);
  if (*target_len > delta.size() &&
      *target_len / per_op_max > delta.size() / 2 + 1) {
    return DataLossError("delta: implausible target length");
  }

  Bytes out;
  out.reserve(static_cast<size_t>(*target_len));
  while (!r.AtEnd()) {
    auto op = r.ReadVarint();
    if (!op.ok()) {
      return DataLossError("delta: truncated op");
    }
    const size_t len = static_cast<size_t>(*op >> 1);
    if (len == 0 || len > *target_len - out.size()) {
      return DataLossError("delta: op overruns target length");
    }
    if (*op & 1) {
      auto off = r.ReadVarint();
      if (!off.ok() || *off > base.size() || len > base.size() - *off) {
        return DataLossError("delta: copy overruns base");
      }
      out.insert(out.end(), base.begin() + static_cast<ptrdiff_t>(*off),
                 base.begin() + static_cast<ptrdiff_t>(*off + len));
    } else {
      auto lit = r.ReadRaw(len);
      if (!lit.ok()) {
        return DataLossError("delta: truncated literal");
      }
      out.insert(out.end(), *lit, *lit + len);
    }
  }
  if (out.size() != *target_len) {
    return DataLossError("delta: reconstructed length mismatch");
  }
  if (Crc32(out.data(), out.size()) != *target_crc) {
    return DataLossError("delta: reconstructed bytes fail checksum");
  }
  return out;
}

}  // namespace rover
