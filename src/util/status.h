// Status: lightweight error propagation without exceptions.
//
// Rover's public API reports failures through rover::Status and
// rover::Result<T> (see result.h). Codes roughly follow the canonical
// error-space used by most production RPC systems, plus kConflict, which
// Rover uses to report update conflicts detected at a home server.

#ifndef ROVER_SRC_UTIL_STATUS_H_
#define ROVER_SRC_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace rover {

enum class StatusCode : uint8_t {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnavailable = 6,        // host disconnected / no usable network
  kDeadlineExceeded = 7,
  kResourceExhausted = 8,  // cache full, log full, sandbox budget spent
  kConflict = 9,           // concurrent update detected at the home server
  kDataLoss = 10,          // corrupt log record / bad checksum
  kUnimplemented = 11,
  kInternal = 12,
  kPermissionDenied = 13,  // request failed the server's authentication check
};

// Human-readable name for a status code ("OK", "CONFLICT", ...).
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional diagnostic message. Copying is cheap
// for OK statuses (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CONFLICT: appointment slot already booked"
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Constructors for each non-OK code.
Status CancelledError(std::string message);
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status ConflictError(std::string message);
Status DataLossError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status PermissionDeniedError(std::string message);

}  // namespace rover

// Propagates a non-OK status to the caller.
#define ROVER_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::rover::Status rover_status_tmp_ = (expr);      \
    if (!rover_status_tmp_.ok()) {                   \
      return rover_status_tmp_;                      \
    }                                                \
  } while (0)

#endif  // ROVER_SRC_UTIL_STATUS_H_
