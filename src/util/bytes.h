// Wire serialization. Rover marshals QRPC requests, RDO descriptors, and
// object payloads into a compact little-endian byte format:
//   - unsigned integers: LEB128 varint
//   - signed integers:   zigzag + varint
//   - fixed 32/64:       little-endian
//   - strings/bytes:     varint length prefix + raw bytes
//
// WireWriter appends to an owned buffer; WireReader consumes a span and
// reports truncation/corruption via Status rather than crashing.

#ifndef ROVER_SRC_UTIL_BYTES_H_
#define ROVER_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace rover {

using Bytes = std::vector<uint8_t>;

inline Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

class WireWriter {
 public:
  WireWriter() = default;

  // Pre-size the buffer for a known (or estimated) encoding size so the hot
  // marshal paths don't pay repeated geometric-growth copies.
  void Reserve(size_t n) { buffer_.reserve(buffer_.size() + n); }

  void WriteVarint(uint64_t v);
  void WriteZigzag(int64_t v);
  void WriteFixed32(uint32_t v);
  void WriteFixed64(uint64_t v);
  void WriteBool(bool v) { WriteVarint(v ? 1 : 0); }
  void WriteDouble(double v);
  void WriteString(std::string_view s);
  void WriteBytes(const Bytes& b);
  void WriteRaw(const void* data, size_t n);

  const Bytes& data() const { return buffer_; }
  Bytes TakeData() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class WireReader {
 public:
  explicit WireReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadZigzag();
  Result<uint32_t> ReadFixed32();
  Result<uint64_t> ReadFixed64();
  Result<bool> ReadBool();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();

  // Borrow `n` raw bytes in place (no copy, no length prefix). The pointer
  // is valid only as long as the underlying buffer.
  Result<const uint8_t*> ReadRaw(size_t n);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Truncated(const char* what) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rover

#endif  // ROVER_SRC_UTIL_BYTES_H_
