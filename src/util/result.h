// Result<T>: value-or-Status, the return type of fallible Rover operations.

#ifndef ROVER_SRC_UTIL_RESULT_H_
#define ROVER_SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace rover {

// Holds either a T or a non-OK Status. Constructing from an OK status is a
// programming error (there would be no value); it is converted to kInternal.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so `return value;` and `return SomeError(...);`
  // both work inside functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  const T& value() const& {
    assert(value_.has_value());
    return *value_;
  }
  T& value() & {
    assert(value_.has_value());
    return *value_;
  }
  T&& value() && {
    assert(value_.has_value());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace rover

// Assigns the value of a Result expression to `lhs`, or propagates the error.
// Usage: ROVER_ASSIGN_OR_RETURN(auto obj, cache.Lookup(id));
#define ROVER_ASSIGN_OR_RETURN(lhs, expr)            \
  ROVER_ASSIGN_OR_RETURN_IMPL_(                      \
      ROVER_RESULT_CONCAT_(rover_result_, __LINE__), lhs, expr)

#define ROVER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define ROVER_RESULT_CONCAT_(a, b) ROVER_RESULT_CONCAT_IMPL_(a, b)
#define ROVER_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // ROVER_SRC_UTIL_RESULT_H_
