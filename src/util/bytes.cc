#include "src/util/bytes.h"

namespace rover {

void WireWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void WireWriter::WriteZigzag(int64_t v) {
  WriteVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void WireWriter::WriteFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::WriteFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteFixed64(bits);
}

void WireWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  WriteRaw(s.data(), s.size());
}

void WireWriter::WriteBytes(const Bytes& b) {
  WriteVarint(b.size());
  WriteRaw(b.data(), b.size());
}

void WireWriter::WriteRaw(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

Status WireReader::Truncated(const char* what) const {
  return DataLossError(std::string("truncated wire data while reading ") + what);
}

Result<uint64_t> WireReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < size_) {
    const uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
      return DataLossError("varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
  return Truncated("varint");
}

Result<int64_t> WireReader::ReadZigzag() {
  ROVER_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
  return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

Result<uint32_t> WireReader::ReadFixed32() {
  if (remaining() < 4) {
    return Truncated("fixed32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

Result<uint64_t> WireReader::ReadFixed64() {
  if (remaining() < 8) {
    return Truncated("fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

Result<bool> WireReader::ReadBool() {
  ROVER_ASSIGN_OR_RETURN(uint64_t v, ReadVarint());
  return v != 0;
}

Result<double> WireReader::ReadDouble() {
  ROVER_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::ReadString() {
  ROVER_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (remaining() < len) {
    return Truncated("string body");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Bytes> WireReader::ReadBytes() {
  ROVER_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (remaining() < len) {
    return Truncated("bytes body");
  }
  Bytes b(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return b;
}

Result<const uint8_t*> WireReader::ReadRaw(size_t n) {
  if (remaining() < n) {
    return Truncated("raw bytes");
  }
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

}  // namespace rover
