#include "src/util/time.h"

#include <cstdio>

namespace rover {

std::string Duration::ToString() const {
  char buf[48];
  if (is_infinite()) {
    return "inf";
  }
  if (micros_ >= 1000000 || micros_ <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds());
  } else if (micros_ >= 1000 || micros_ <= -1000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", seconds());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ToString(); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << t.ToString(); }

}  // namespace rover
