// Delta encoding for object imports. A mobile client that already holds
// version V of an object should not re-fetch the whole body to reach
// version V+k: the server encodes the new bytes against the old version as
// an LZ-style dictionary (copy-from-base + literal runs) and ships the
// delta, which is tiny for the append/edit-heavy mail and calendar
// workloads that dominate slow links (cf. Stanski et al., document
// replication containers for mobile web users).
//
// The format is self-validating: the header carries CRC32s of both the
// base and the reconstructed target, so applying a delta against the wrong
// base version is detected (kFailedPrecondition -> caller falls back to a
// full fetch) and a corrupt or truncated delta never yields silent garbage
// (kDataLoss).
//
//   header := magic "RDL1" | fixed32 base_crc | fixed32 target_crc
//           | varint target_len
//   op     := varint (len << 1 | 1) varint base_offset   -> copy from base
//           | varint (len << 1)     len raw bytes        -> literal run

#ifndef ROVER_SRC_UTIL_DELTA_H_
#define ROVER_SRC_UTIL_DELTA_H_

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace rover {

// Encodes `target` against `base`. Always succeeds; the result can be
// larger than `target` for unrelated inputs -- callers wanting a win must
// compare sizes and ship the full body instead (the server does).
Bytes DeltaEncode(const Bytes& base, const Bytes& target);

// Reconstructs the target from `base` + `delta`.
//   kFailedPrecondition: `base` is not the version the delta was encoded
//     against (base CRC mismatch) -- fall back to a full fetch.
//   kDataLoss: the delta itself is malformed/truncated, or the
//     reconstructed bytes fail the target CRC.
Result<Bytes> DeltaApply(const Bytes& base, const Bytes& delta);

}  // namespace rover

#endif  // ROVER_SRC_UTIL_DELTA_H_
