// Simulated time. All of Rover runs on a virtual clock driven by the
// discrete-event simulator; nothing in the library reads wall-clock time.
//
// Duration and TimePoint are strong wrappers around a signed microsecond
// count. Microsecond resolution is fine: the slowest modelled link
// (2.4 Kbit/s dial-up) transfers one bit in ~417us, and the fastest events
// (local RDO invocations) are modelled at >= 1us granularity.

#ifndef ROVER_SRC_UTIL_TIME_H_
#define ROVER_SRC_UTIL_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace rover {

class Duration {
 public:
  constexpr Duration() : micros_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Infinite() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr bool is_zero() const { return micros_ == 0; }
  constexpr bool is_infinite() const { return micros_ == INT64_MAX; }

  constexpr Duration operator+(Duration d) const { return Duration(micros_ + d.micros_); }
  constexpr Duration operator-(Duration d) const { return Duration(micros_ - d.micros_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(micros_) * k));
  }
  constexpr double operator/(Duration d) const {
    return static_cast<double>(micros_) / static_cast<double>(d.micros_);
  }
  Duration& operator+=(Duration d) {
    micros_ += d.micros_;
    return *this;
  }
  Duration& operator-=(Duration d) {
    micros_ -= d.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  // "12.5ms", "3.2s", "250us"
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : micros_(us) {}
  int64_t micros_;
};

class TimePoint {
 public:
  constexpr TimePoint() : micros_(0) {}

  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint Epoch() { return TimePoint(0); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(micros_ + d.micros()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(micros_ - d.micros()); }
  constexpr Duration operator-(TimePoint t) const {
    return Duration::Micros(micros_ - t.micros_);
  }
  TimePoint& operator+=(Duration d) {
    micros_ += d.micros();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t us) : micros_(us) {}
  int64_t micros_;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace rover

#endif  // ROVER_SRC_UTIL_TIME_H_
