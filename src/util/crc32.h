// CRC-32 (IEEE polynomial). Used to checksum stable-log records so that a
// torn write after a simulated crash is detected during recovery.

#ifndef ROVER_SRC_UTIL_CRC32_H_
#define ROVER_SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rover {

// One-shot CRC of a buffer.
uint32_t Crc32(const void* data, size_t n);

// Incremental form: pass the previous return value as `seed` to extend.
uint32_t Crc32Extend(uint32_t seed, const void* data, size_t n);

}  // namespace rover

#endif  // ROVER_SRC_UTIL_CRC32_H_
