#include "src/util/compress.h"

#include <algorithm>
#include <array>

namespace rover {
namespace {

constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 130;        // 3 + 127
constexpr size_t kMaxDistance = 65535;
constexpr size_t kMaxLiteralRun = 128;   // 1 + 127
constexpr size_t kHashBits = 15;

uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(const uint8_t* input, size_t start, size_t end, Bytes* out) {
  while (start < end) {
    const size_t run = std::min(end - start, kMaxLiteralRun);
    out->push_back(static_cast<uint8_t>(run - 1));
    out->insert(out->end(), input + start, input + start + run);
    start += run;
  }
}

}  // namespace

Bytes LzCompress(const uint8_t* input, size_t size) {
  Bytes out;
  out.reserve(size / 2 + 16);
  const size_t n = size;
  // head[h] is the most recent position with hash h; prev[] forms chains.
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> prev(n, -1);

  size_t literal_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash3(&input[i]);
    size_t best_len = 0;
    size_t best_dist = 0;
    int64_t cand = head[h];
    int chain = 0;
    while (cand >= 0 && i - static_cast<size_t>(cand) <= kMaxDistance && chain < 32) {
      const size_t c = static_cast<size_t>(cand);
      size_t len = 0;
      const size_t limit = std::min(kMaxMatch, n - i);
      while (len < limit && input[c + len] == input[i + len]) {
        ++len;
      }
      if (len >= kMinMatch && len > best_len) {
        best_len = len;
        best_dist = i - c;
        if (len == kMaxMatch) {
          break;
        }
      }
      cand = prev[c];
      ++chain;
    }

    if (best_len >= kMinMatch) {
      FlushLiterals(input, literal_start, i, &out);
      out.push_back(static_cast<uint8_t>(0x80 | (best_len - kMinMatch)));
      out.push_back(static_cast<uint8_t>(best_dist & 0xff));
      out.push_back(static_cast<uint8_t>(best_dist >> 8));
      // Insert the covered positions into the hash chains so later matches
      // can reference the interior of this match.
      const size_t stop = std::min(i + best_len, n - kMinMatch + 1);
      for (size_t j = i; j < stop; ++j) {
        const uint32_t hj = Hash3(&input[j]);
        prev[j] = head[hj];
        head[hj] = static_cast<int64_t>(j);
      }
      i += best_len;
      literal_start = i;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
      ++i;
    }
  }
  FlushLiterals(input, literal_start, n, &out);
  return out;
}

Result<Bytes> LzDecompress(const uint8_t* input, size_t size) {
  Bytes out;
  size_t i = 0;
  const size_t n = size;
  while (i < n) {
    const uint8_t token = input[i++];
    if ((token & 0x80) == 0) {
      const size_t run = static_cast<size_t>(token) + 1;
      if (i + run > n) {
        return DataLossError("LZ literal run past end of input");
      }
      out.insert(out.end(), input + i, input + i + run);
      i += run;
    } else {
      if (i + 2 > n) {
        return DataLossError("LZ match token truncated");
      }
      const size_t len = static_cast<size_t>(token & 0x7f) + kMinMatch;
      const size_t dist =
          static_cast<size_t>(input[i]) | (static_cast<size_t>(input[i + 1]) << 8);
      i += 2;
      if (dist == 0 || dist > out.size()) {
        return DataLossError("LZ match distance out of range");
      }
      // Byte-at-a-time copy: matches may overlap their own output.
      size_t src = out.size() - dist;
      for (size_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    }
  }
  return out;
}

}  // namespace rover
