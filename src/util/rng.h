// Deterministic pseudo-random number generation (xoshiro256** seeded via
// SplitMix64). Every stochastic element of the simulation -- packet loss,
// connectivity schedules, workload generation -- draws from an explicitly
// seeded Rng so that runs are reproducible.

#ifndef ROVER_SRC_UTIL_RNG_H_
#define ROVER_SRC_UTIL_RNG_H_

#include <cstdint>

namespace rover {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

 private:
  uint64_t state_[4];
};

}  // namespace rover

#endif  // ROVER_SRC_UTIL_RNG_H_
