#include "src/util/logging.h"

#include <cstdio>
#include <utility>

namespace rover {
namespace {

LogLevel g_level = LogLevel::kOff;
std::function<TimePoint()> g_time_provider;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logger::level() { return g_level; }

std::function<TimePoint()> Logger::SetTimeProvider(std::function<TimePoint()> provider) {
  auto old = std::move(g_time_provider);
  g_time_provider = std::move(provider);
  return old;
}

void Logger::Emit(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_level) {
    return;
  }
  // Strip the directory prefix for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  if (g_time_provider) {
    std::fprintf(stderr, "[%s %10.6f %s:%d] %s\n", LevelTag(level),
                 g_time_provider().seconds(), base, line, message.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line, message.c_str());
  }
}

}  // namespace rover
