#include "src/util/buffer.h"

namespace rover {
namespace {

// Plain (non-atomic) process counters: the simulator is single-threaded.
uint64_t g_copy_bytes = 0;
uint64_t g_copy_count = 0;

}  // namespace

uint64_t PayloadCopyBytes() { return g_copy_bytes; }
uint64_t PayloadCopyCount() { return g_copy_count; }

void ChargePayloadCopy(size_t bytes) {
  g_copy_bytes += bytes;
  ++g_copy_count;
}

}  // namespace rover
