// Minimal leveled logging. Off by default (benchmarks and tests stay quiet);
// enable with Logger::SetLevel. Log lines carry the simulated timestamp when
// a clock has been registered by the event loop.

#ifndef ROVER_SRC_UTIL_LOGGING_H_
#define ROVER_SRC_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/util/time.h"

namespace rover {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();

  // The sim event loop registers its clock here so log lines can carry
  // virtual timestamps. Returns the previous provider.
  static std::function<TimePoint()> SetTimeProvider(std::function<TimePoint()> provider);

  static void Emit(LogLevel level, const char* file, int line, const std::string& message);
};

// Accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace rover

#define ROVER_LOG(severity)                                                   \
  if (::rover::LogLevel::k##severity < ::rover::Logger::level()) {            \
  } else                                                                      \
    ::rover::LogMessage(::rover::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // ROVER_SRC_UTIL_LOGGING_H_
