#include "src/util/crc32.h"

#include <array>
#include <cstring>

namespace rover {
namespace {

// Slicing-by-8 [Kounavis & Berry]: eight derived tables let the inner loop
// consume 8 bytes per iteration instead of 1, with identical output to the
// classic byte-at-a-time IEEE CRC. Every stable-log append and frame
// checksum funnels through here, so this is squarely on the CPU hot path.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Tables BuildTables() {
  Tables tables;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables.t[0][i];
    for (int slice = 1; slice < 8; ++slice) {
      c = tables.t[0][c & 0xffu] ^ (c >> 8);
      tables.t[slice][i] = c;
    }
  }
  return tables;
}

const Tables& T() {
  static const Tables kTables = BuildTables();
  return kTables;
}

}  // namespace

uint32_t Crc32Extend(uint32_t seed, const void* data, size_t n) {
  const Tables& tb = T();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    // The slicing formula below indexes the tables as if the words were
    // loaded little-endian (byte 0 in the low lane); swap on big-endian
    // hosts so it matches the byte-at-a-time tail loop.
    lo = __builtin_bswap32(lo);
    hi = __builtin_bswap32(hi);
#endif
    lo ^= c;
    c = tb.t[7][lo & 0xffu] ^ tb.t[6][(lo >> 8) & 0xffu] ^
        tb.t[5][(lo >> 16) & 0xffu] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xffu] ^ tb.t[2][(hi >> 8) & 0xffu] ^
        tb.t[1][(hi >> 16) & 0xffu] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = tb.t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t n) { return Crc32Extend(0, data, n); }

}  // namespace rover
