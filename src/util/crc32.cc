#include "src/util/crc32.h"

#include <array>

namespace rover {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

uint32_t Crc32Extend(uint32_t seed, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = Table()[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t n) { return Crc32Extend(0, data, n); }

}  // namespace rover
