// A small LZ77-style compressor used for two ablations the paper calls out:
// the prototype "does not perform any compression on the log" (§5.2) and
// low-bandwidth links benefit from payload compression. The format is
// self-contained:
//
//   token := 0xxxxxxx                  -> literal run of (x+1) bytes follows
//          | 1xxxxxxx d_lo d_hi        -> copy (x+3) bytes from distance d
//
// Distances are 1..65535 within a 64 KiB window. Decompression validates
// every distance and length and reports corruption via Status.

#ifndef ROVER_SRC_UTIL_COMPRESS_H_
#define ROVER_SRC_UTIL_COMPRESS_H_

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace rover {

// Compresses `input`. Output is never more than input.size() + overhead;
// callers that require non-expansion should compare sizes and keep the raw
// form (QRPC does this per-message). The (ptr, len) forms let zero-copy
// payload views compress/decompress without materializing a Bytes first.
Bytes LzCompress(const uint8_t* input, size_t size);
inline Bytes LzCompress(const Bytes& input) {
  return LzCompress(input.data(), input.size());
}

// Inverse of LzCompress. Fails with kDataLoss on malformed input.
Result<Bytes> LzDecompress(const uint8_t* input, size_t size);
inline Result<Bytes> LzDecompress(const Bytes& input) {
  return LzDecompress(input.data(), input.size());
}

}  // namespace rover

#endif  // ROVER_SRC_UTIL_COMPRESS_H_
