// Zero-copy payload buffer. A Buffer is an immutable, ref-counted slice
// view (shared storage + offset/length) over a byte array. Copying a
// Buffer bumps a refcount; slicing aliases the same storage. Payloads
// therefore pay ONE allocation per lifetime instead of a memcpy at every
// layer hop (enqueue -> frame -> deliver -> journal -> ship).
//
// Ownership rules (see docs/architecture.md "Hot-path memory and
// scheduling"):
//   * Construction from Bytes&& adopts the storage without copying; from
//     const Bytes& it copies once (and charges the copy counter).
//   * Views are immutable. The only mutation door is MutableData(), which
//     is copy-on-write: it detaches into private storage unless this view
//     is the sole owner of the whole allocation. In-place damage (fault
//     injection, bit rot) therefore never leaks into other holders.
//   * Slices keep the WHOLE underlying allocation alive. Slicing a tiny
//     header out of a huge frame pins the frame; call Compact()/ToBytes()
//     when a long-lived slice should drop the backing storage.
//
// Every byte memcpy'd into or out of a Buffer is charged to a process-wide
// counter (PayloadCopyBytes / PayloadCopyCount) so benches can report
// bytes-copied-per-op and regressions show up as a number, not a vibe.

#ifndef ROVER_SRC_UTIL_BUFFER_H_
#define ROVER_SRC_UTIL_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/util/bytes.h"

namespace rover {

// Process-wide copy accounting (single-threaded simulator; plain counters).
uint64_t PayloadCopyBytes();
uint64_t PayloadCopyCount();
void ChargePayloadCopy(size_t bytes);

class Buffer {
 public:
  Buffer() = default;

  // Adopts `bytes` -- no copy, the vector's allocation becomes the shared
  // storage. This is THE way payloads enter the zero-copy world.
  Buffer(Bytes&& bytes)  // NOLINT(google-explicit-constructor)
      : storage_(bytes.empty() ? nullptr
                               : std::make_shared<Bytes>(std::move(bytes))),
        len_(storage_ ? storage_->size() : 0) {}

  // Copies `bytes` (charged). Implicit so pre-Buffer call sites keep
  // compiling; hot paths should move instead, and the counter says which
  // ones forgot.
  Buffer(const Bytes& bytes)  // NOLINT(google-explicit-constructor)
      : Buffer(Bytes(bytes)) {
    ChargePayloadCopy(len_);
  }

  static Buffer FromString(std::string_view s) {
    Buffer b{Bytes(s.begin(), s.end())};
    ChargePayloadCopy(b.size());
    return b;
  }
  static Buffer CopyRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    Buffer b{Bytes(p, p + n)};
    ChargePayloadCopy(n);
    return b;
  }

  // Aliasing sub-view; no copy. Clamped to this view's bounds.
  Buffer Slice(size_t offset, size_t length) const {
    Buffer out;
    if (offset >= len_) {
      return out;
    }
    out.storage_ = storage_;
    out.off_ = off_ + offset;
    out.len_ = std::min(length, len_ - offset);
    return out;
  }

  const uint8_t* data() const { return storage_ ? storage_->data() + off_ : nullptr; }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + len_; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  std::string_view view() const {
    return std::string_view(reinterpret_cast<const char*>(data()), len_);
  }

  // Explicit copies out (charged).
  Bytes ToBytes() const {
    ChargePayloadCopy(len_);
    return Bytes(begin(), end());
  }
  std::string ToString() const {
    ChargePayloadCopy(len_);
    return std::string(view());
  }

  // Copy-on-write mutable access, fixed size. Detaches into private storage
  // (charged) unless this view already uniquely owns its whole allocation.
  // Mutating through the returned pointer never affects other views.
  uint8_t* MutableData() {
    if (len_ == 0) {
      return nullptr;
    }
    if (storage_.use_count() != 1 || off_ != 0 || len_ != storage_->size()) {
      Detach();
    }
    return storage_->data() + off_;
  }

  // Drops excess backing storage: after Compact() the view owns exactly its
  // bytes. No-op when already minimal; otherwise one charged copy.
  void Compact() {
    if (storage_ && (off_ != 0 || len_ != storage_->size())) {
      Detach();
    }
  }

  // True when both views alias the same allocation (regardless of range).
  bool SharesStorageWith(const Buffer& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }
  friend bool operator!=(const Buffer& a, const Buffer& b) { return !(a == b); }
  friend bool operator==(const Buffer& a, const Bytes& b) {
    return a.len_ == b.size() &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }
  friend bool operator==(const Bytes& a, const Buffer& b) { return b == a; }

 private:
  void Detach() {
    ChargePayloadCopy(len_);
    storage_ = std::make_shared<Bytes>(begin(), end());
    off_ = 0;
  }

  std::shared_ptr<Bytes> storage_;
  size_t off_ = 0;
  size_t len_ = 0;
};

}  // namespace rover

#endif  // ROVER_SRC_UTIL_BUFFER_H_
