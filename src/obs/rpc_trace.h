// Per-RPC lifecycle tracing. A QRPC's value proposition is surviving
// disconnection, which makes "where is my request right now?" the question
// the toolkit must be able to answer (paper §3.4, user notification). The
// tracer records one span per rpc id with the ordered timeline of its
// lifecycle events:
//
//   enqueued -> logged -> flushed_durable -> transmitted (once per send
//   attempt, so retries are visible) -> responded
//
// plus cancelled/recovered for the corresponding client operations. Spans
// are bounded (oldest dropped beyond `max_spans`), allocation is one vector
// per traced rpc, and recording is O(1) amortized -- cheap enough to leave
// on in benches.

#ifndef ROVER_SRC_OBS_RPC_TRACE_H_
#define ROVER_SRC_OBS_RPC_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace rover {
namespace obs {

enum class RpcEvent {
  kEnqueued,        // QrpcClient::Call accepted the request
  kLogged,          // appended to the stable log (not yet durable)
  kFlushedDurable,  // stable-log flush completed: the commit point
  kTransmitted,     // handed to a link in a frame (repeats per retry)
  kResponded,       // response matched to the outstanding call
  kCancelled,       // cancelled by the application
  kRecovered,       // re-issued from the log after crash recovery
  kDeadlineExceeded,  // per-call deadline fired before a response arrived
  kShed,            // dropped by admission control / queue-pressure shedding
  kPushback,        // server pushback honored: re-dispatch after retry-after
  kCoalesced,       // withdrawn pre-transmission; a supersedable successor
                    // targeting the same (dest, key) answers for it
  kFailover,        // re-routed to the backup after the primary was declared
                    // dead (repeats per re-dispatched attempt)
};

const char* RpcEventName(RpcEvent event);

struct RpcSpanEvent {
  RpcEvent event;
  TimePoint at;
};

struct RpcSpan {
  uint64_t rpc_id = 0;
  std::vector<RpcSpanEvent> events;

  bool Has(RpcEvent event) const;
  // Timestamp of the first occurrence, or nullopt-like epoch check via Has().
  TimePoint FirstTime(RpcEvent event) const;
  size_t CountOf(RpcEvent event) const;
};

class RpcTracer {
 public:
  explicit RpcTracer(size_t max_spans = 1024) : max_spans_(max_spans) {}

  void Record(uint64_t rpc_id, RpcEvent event, TimePoint at);

  const RpcSpan* Find(uint64_t rpc_id) const;

  // The event kinds for one rpc, in recording order (empty if untracked).
  std::vector<RpcEvent> EventSequence(uint64_t rpc_id) const;

  size_t span_count() const { return spans_.size(); }

  // Text dump, one line per event, spans in rpc-id order:
  //   rpc 3: enqueued@0.000000 logged@0.000030 ...
  std::string Render() const;

 private:
  size_t max_spans_;
  std::map<uint64_t, RpcSpan> spans_;
  std::deque<uint64_t> order_;  // insertion order, for bounded eviction
};

}  // namespace obs
}  // namespace rover

#endif  // ROVER_SRC_OBS_RPC_TRACE_H_
