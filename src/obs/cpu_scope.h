// Per-subsystem CPU attribution. A CpuScope is an RAII cycle-counter timer
// charged to one of a fixed set of zones (scheduler dispatch, connectivity
// lookup, event-loop pop, marshalling, WAL flush, invalidation fan-out).
// Scopes nest: a zone is charged only its *exclusive* cycles -- time spent
// inside an enclosed child scope is subtracted -- so the per-zone table
// sums to (at most) total instrumented time instead of double-counting.
//
// Attribution is off by default and costs one predicted branch per scope
// when disabled, so the hot paths stay clean in normal runs. bench_scale
// enables it, publishes the totals into an obs::Registry, and emits them
// into BENCH_scale.json so a regression in one layer is visible as a
// number, not a guess. Single-threaded by design, like the simulator.

#ifndef ROVER_SRC_OBS_CPU_SCOPE_H_
#define ROVER_SRC_OBS_CPU_SCOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rover {
namespace obs {

class Registry;

enum class CpuZone : uint8_t {
  kSchedulerDispatch = 0,  // scheduler enqueue/drain/batch outcome
  kConnectivity,           // peer link lookup + wakeup arming
  kEventLoopPop,           // event-loop pop mechanics (cascade, heap, tombstones)
  kMarshal,                // frame encode/decode
  kWalFlush,               // stable log / WAL flush path
  kInvalidationFanout,     // server invalidation encode + enqueue
  kCount,
};

std::string_view CpuZoneName(CpuZone zone);

struct CpuZoneTotals {
  uint64_t cycles = 0;  // exclusive cycles charged to the zone
  uint64_t enters = 0;  // scope entries
};

class CpuAttribution {
 public:
  static CpuAttribution& Instance();

  // Enabling mid-run is fine; cycles accumulate from that point on.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void Reset();

  const CpuZoneTotals& totals(CpuZone zone) const {
    return totals_[static_cast<size_t>(zone)];
  }

  // Measured once (against the monotonic clock) so cycle totals can be
  // reported as seconds; cached after the first call.
  double CyclesPerSecond();

  // Writes "<prefix>.<zone>.cycles" and "<prefix>.<zone>.enters" counters
  // into `registry`, replacing any previous published values.
  void PublishTo(Registry* registry, const std::string& prefix = "cpu") const;

 private:
  friend class CpuScope;
  static constexpr int kMaxDepth = 16;

  struct Frame {
    CpuZone zone;
    uint64_t start = 0;
    uint64_t child_cycles = 0;  // cycles spent in nested scopes
  };

  bool enabled_ = false;
  int depth_ = 0;
  Frame stack_[kMaxDepth];
  CpuZoneTotals totals_[static_cast<size_t>(CpuZone::kCount)];
  double cycles_per_sec_ = 0;
};

class CpuScope {
 public:
  explicit CpuScope(CpuZone zone);
  ~CpuScope();
  CpuScope(const CpuScope&) = delete;
  CpuScope& operator=(const CpuScope&) = delete;

 private:
  bool active_ = false;
};

}  // namespace obs
}  // namespace rover

#endif  // ROVER_SRC_OBS_CPU_SCOPE_H_
