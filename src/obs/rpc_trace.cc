#include "src/obs/rpc_trace.h"

#include <cstdio>
#include <sstream>

namespace rover {
namespace obs {

const char* RpcEventName(RpcEvent event) {
  switch (event) {
    case RpcEvent::kEnqueued:
      return "enqueued";
    case RpcEvent::kLogged:
      return "logged";
    case RpcEvent::kFlushedDurable:
      return "flushed_durable";
    case RpcEvent::kTransmitted:
      return "transmitted";
    case RpcEvent::kResponded:
      return "responded";
    case RpcEvent::kCancelled:
      return "cancelled";
    case RpcEvent::kRecovered:
      return "recovered";
    case RpcEvent::kDeadlineExceeded:
      return "deadline_exceeded";
    case RpcEvent::kShed:
      return "shed";
    case RpcEvent::kPushback:
      return "pushback";
    case RpcEvent::kCoalesced:
      return "coalesced";
    case RpcEvent::kFailover:
      return "failover";
  }
  return "unknown";
}

bool RpcSpan::Has(RpcEvent event) const {
  for (const RpcSpanEvent& e : events) {
    if (e.event == event) {
      return true;
    }
  }
  return false;
}

TimePoint RpcSpan::FirstTime(RpcEvent event) const {
  for (const RpcSpanEvent& e : events) {
    if (e.event == event) {
      return e.at;
    }
  }
  return TimePoint::Epoch();
}

size_t RpcSpan::CountOf(RpcEvent event) const {
  size_t n = 0;
  for (const RpcSpanEvent& e : events) {
    if (e.event == event) {
      ++n;
    }
  }
  return n;
}

void RpcTracer::Record(uint64_t rpc_id, RpcEvent event, TimePoint at) {
  auto it = spans_.find(rpc_id);
  if (it == spans_.end()) {
    while (spans_.size() >= max_spans_ && !order_.empty()) {
      spans_.erase(order_.front());
      order_.pop_front();
    }
    it = spans_.emplace(rpc_id, RpcSpan{rpc_id, {}}).first;
    order_.push_back(rpc_id);
  }
  it->second.events.push_back(RpcSpanEvent{event, at});
}

const RpcSpan* RpcTracer::Find(uint64_t rpc_id) const {
  auto it = spans_.find(rpc_id);
  return it == spans_.end() ? nullptr : &it->second;
}

std::vector<RpcEvent> RpcTracer::EventSequence(uint64_t rpc_id) const {
  std::vector<RpcEvent> out;
  const RpcSpan* span = Find(rpc_id);
  if (span == nullptr) {
    return out;
  }
  out.reserve(span->events.size());
  for (const RpcSpanEvent& e : span->events) {
    out.push_back(e.event);
  }
  return out;
}

std::string RpcTracer::Render() const {
  std::ostringstream out;
  for (const auto& [id, span] : spans_) {
    out << "rpc " << id << ":";
    for (const RpcSpanEvent& e : span.events) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6f", e.at.seconds());
      out << " " << RpcEventName(e.event) << "@" << buf;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace rover
