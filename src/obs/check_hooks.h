// Cross-layer correctness check hooks. Components (QRPC client/server,
// access manager, server store, toolkit nodes) report lifecycle events
// through this interface so an external invariant checker -- SimCheck,
// src/check -- can assert global properties (at-most-once execution,
// acknowledged-durability, session guarantees, promise hygiene) while a
// simulation runs. Every method has an empty default body: production code
// pays one null-pointer test per event and nothing else, and no component
// grows a dependency on the checker.
//
// Identity convention: `client` and `server` are transport host names (the
// same names message headers carry), and rpc ids are the QRPC ids the
// duplicate-response cache is keyed by, so (client, rpc_id) names one
// logical operation across crashes and resends.

#ifndef ROVER_SRC_OBS_CHECK_HOOKS_H_
#define ROVER_SRC_OBS_CHECK_HOOKS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rover {
namespace obs {

class CheckListener {
 public:
  virtual ~CheckListener() = default;

  // --- QRPC client engine ---

  // A call entered the engine (fires before admission; an admission refusal
  // is reported as a "admission" resolution of the same id).
  virtual void OnCallIssued(const std::string& client, uint64_t rpc_id, bool logged) {}
  // The call's stable-log record flushed and its committed promise resolved
  // -- the durability acknowledgement. Unlogged calls never fire this.
  // `log_record_id` names the stable-log record backing the ack (0 when the
  // caller does not track it); the checker uses it to attribute later
  // storage-quarantine events to the acknowledged operation.
  virtual void OnCallDurable(const std::string& client, uint64_t rpc_id,
                             uint64_t log_record_id = 0) {}
  // The call's stable-log flush terminally FAILED (retries exhausted, device
  // full, or permanent sync failure): the record never became durable, so no
  // durability acknowledgement may ever be delivered for it. An OnCallDurable
  // after this event is the ack-after-failed-flush bug class.
  virtual void OnCallFlushFailed(const std::string& client, uint64_t rpc_id) {}
  // The call's durable log record was deliberately withdrawn (deadline,
  // shed, cancel): it must NOT be resent after a crash, and its durability
  // obligation is released.
  virtual void OnCallWithdrawn(const std::string& client, uint64_t rpc_id) {}
  // `pred_rpc_id` was withdrawn pre-wire because `successor_rpc_id`
  // supersedes it; the predecessor's operation and result are subsumed by
  // the successor from here on.
  virtual void OnCallCoalesced(const std::string& client, uint64_t pred_rpc_id,
                               uint64_t successor_rpc_id) {}
  // Terminal resolution of the call's result promise. `path` names the exit:
  // "response", "deadline", "shed", "cancel", "admission". Exactly one
  // resolution per issued call (coalesced predecessors resolve implicitly
  // with their successor and are tracked through OnCallCoalesced).
  virtual void OnCallResolved(const std::string& client, uint64_t rpc_id,
                              const char* path, bool ok) {}
  // The client host crashed: every unresolved promise dies with the
  // process; only durable log records survive.
  virtual void OnClientCrashed(const std::string& client) {}
  // Recovery re-sent `resent` rpc ids from the durable log (fires after
  // every RecoverFromLog, crash-triggered or not).
  virtual void OnClientRecovered(const std::string& client,
                                 const std::vector<uint64_t>& resent) {}
  // Recovery (or a proactive scrub) found interior-corrupt stable-log
  // records on `client` and quarantined them. `log_record_ids` are the
  // damaged records; the operations they backed were durability-acknowledged
  // and are now lost, but the loss is DETECTED and surfaced (kDataLoss,
  // counters, conservative re-fetch) rather than silent -- the checker
  // exempts these from its silent-durability-loss invariant.
  virtual void OnClientStorageQuarantine(const std::string& client,
                                         const std::vector<uint64_t>& log_record_ids) {}

  // --- QRPC server engine ---

  // A handler is about to execute for (client, rpc_id) -- the application
  // of the operation. At-most-once means this fires at most once per key
  // within a server incarnation (unless the duplicate cache evicted the
  // key) and never for a key whose response survived recovery.
  virtual void OnServerExecute(const std::string& server, const std::string& client,
                               uint64_t rpc_id) {}
  // A duplicate request was answered from the duplicate-response cache.
  // `durable` reports whether the entry's response journal write (when
  // journaling is active) had completed -- replaying an entry whose
  // transaction could still be lost to a crash would acknowledge work the
  // server might forget.
  virtual void OnServerReplay(const std::string& server, const std::string& client,
                              uint64_t rpc_id, bool durable) {}
  // The response journal reported (client, rpc_id)'s transaction durable.
  virtual void OnServerResponseDurable(const std::string& server,
                                       const std::string& client, uint64_t rpc_id) {}
  // The bounded duplicate cache evicted (client, rpc_id): a later resend of
  // that id may legitimately re-execute.
  virtual void OnServerDupCacheEvict(const std::string& server,
                                     const std::string& client, uint64_t rpc_id) {}
  virtual void OnServerCrashed(const std::string& server) {}
  // Recovery finished: `epoch` is the new incarnation and
  // `survived_responses` the (client, rpc_id) keys whose cached responses
  // were restored -- resends of those keys must replay, never re-execute.
  virtual void OnServerRecovered(
      const std::string& server, uint64_t epoch,
      const std::vector<std::pair<std::string, uint64_t>>& survived_responses) {}

  // --- primary/backup replication ---

  // The backup `backup` promoted itself after `failed_primary` died. `epoch`
  // is the fence the backup adopted (it must exceed every epoch the primary
  // ever used) and `replicated_responses` the (client, rpc_id) keys whose
  // responses the primary shipped before dying -- resends of those keys at
  // the backup must replay, never re-execute, and every response the primary
  // RELEASED to a client must appear here (no acknowledged work is lost
  // across the failover).
  virtual void OnFailover(
      const std::string& failed_primary, const std::string& backup, uint64_t epoch,
      const std::vector<std::pair<std::string, uint64_t>>& replicated_responses) {}
  // The primary's replication sender gave up on synchronous shipping (the
  // backup stopped acking past the sync timeout): responses released while
  // degraded are no longer guaranteed to survive a failover, so the checker
  // must stop holding the no-acknowledged-work-loss line for this primary.
  virtual void OnReplicationDegraded(const std::string& primary) {}

  // --- access-manager sessions ---

  // An import tracked by a Session resolved: `version` is what the caller
  // got, `required` the session's RequiredVersion at serve time. Session
  // guarantees demand ok => version >= required.
  virtual void OnSessionImportServed(const std::string& client, const std::string& name,
                                     uint64_t version, uint64_t required, bool ok) {}
};

}  // namespace obs
}  // namespace rover

#endif  // ROVER_SRC_OBS_CHECK_HOOKS_H_
