#include "src/obs/cpu_scope.h"

#include <chrono>

#include "src/obs/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace rover {
namespace obs {

namespace {

inline uint64_t ReadCycleCounter() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace

std::string_view CpuZoneName(CpuZone zone) {
  switch (zone) {
    case CpuZone::kSchedulerDispatch:
      return "scheduler_dispatch";
    case CpuZone::kConnectivity:
      return "connectivity_lookup";
    case CpuZone::kEventLoopPop:
      return "event_loop_pop";
    case CpuZone::kMarshal:
      return "marshal";
    case CpuZone::kWalFlush:
      return "wal_flush";
    case CpuZone::kInvalidationFanout:
      return "invalidation_fanout";
    case CpuZone::kCount:
      break;
  }
  return "unknown";
}

CpuAttribution& CpuAttribution::Instance() {
  static CpuAttribution instance;
  return instance;
}

void CpuAttribution::Reset() {
  for (auto& t : totals_) {
    t = CpuZoneTotals{};
  }
  depth_ = 0;
}

double CpuAttribution::CyclesPerSecond() {
  if (cycles_per_sec_ > 0) {
    return cycles_per_sec_;
  }
  // One short calibration against the monotonic clock. 10ms keeps the
  // relative error well under 1% on anything this repo runs on.
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = ReadCycleCounter();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const std::chrono::duration<double> dt = t1 - t0;
    if (dt.count() >= 0.010) {
      const uint64_t c1 = ReadCycleCounter();
      cycles_per_sec_ = static_cast<double>(c1 - c0) / dt.count();
      break;
    }
  }
  return cycles_per_sec_;
}

void CpuAttribution::PublishTo(Registry* registry, const std::string& prefix) const {
  for (size_t i = 0; i < static_cast<size_t>(CpuZone::kCount); ++i) {
    const std::string base =
        prefix + "." + std::string(CpuZoneName(static_cast<CpuZone>(i)));
    Counter* cycles = registry->counter(base + ".cycles");
    cycles->Reset();
    cycles->Increment(totals_[i].cycles);
    Counter* enters = registry->counter(base + ".enters");
    enters->Reset();
    enters->Increment(totals_[i].enters);
  }
}

CpuScope::CpuScope(CpuZone zone) {
  CpuAttribution& a = CpuAttribution::Instance();
  if (!a.enabled_ || a.depth_ >= CpuAttribution::kMaxDepth) {
    return;
  }
  active_ = true;
  auto& frame = a.stack_[a.depth_++];
  frame.zone = zone;
  frame.child_cycles = 0;
  frame.start = ReadCycleCounter();
}

CpuScope::~CpuScope() {
  if (!active_) {
    return;
  }
  CpuAttribution& a = CpuAttribution::Instance();
  const uint64_t end = ReadCycleCounter();
  const auto& frame = a.stack_[--a.depth_];
  const uint64_t self = end - frame.start;
  auto& totals = a.totals_[static_cast<size_t>(frame.zone)];
  // Exclusive time: subtract what nested scopes already charged elsewhere.
  totals.cycles += self > frame.child_cycles ? self - frame.child_cycles : 0;
  ++totals.enters;
  if (a.depth_ > 0) {
    a.stack_[a.depth_ - 1].child_cycles += self;
  }
}

}  // namespace obs
}  // namespace rover
