#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace rover {
namespace obs {
namespace {

std::string FmtDouble(double v) {
  char buf[64];
  // Shortest reasonable fixed representation; trims trailing zeros so the
  // text render stays diff-friendly.
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s = buf;
  while (s.size() > 1 && s.back() == '0') {
    s.pop_back();
  }
  if (!s.empty() && s.back() == '.') {
    s.pop_back();
  }
  return s;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = DefaultLatencyBoundsSeconds();
  }
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) {
    ++i;
  }
  ++buckets_[i];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Histogram::Reset() {
  buckets_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::vector<double> DefaultLatencyBoundsSeconds() {
  std::vector<double> bounds;
  for (double b = 1e-3; b < 1100.0; b *= 2) {  // 1ms .. ~1024s
    bounds.push_back(b);
  }
  return bounds;
}

Counter* Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name, std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

const Counter* Registry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t Registry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

std::string Registry::Render(RenderFormat format) const {
  std::ostringstream out;
  if (format == RenderFormat::kText) {
    for (const auto& [name, c] : counters_) {
      out << name << " " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
      out << name << " " << g->value() << "\n";
    }
    for (const auto& [name, h] : histograms_) {
      out << name << " count=" << h->count() << " sum=" << FmtDouble(h->sum())
          << " max=" << FmtDouble(h->max()) << "\n";
    }
    return out.str();
  }

  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << c->value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << g->value();
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":{\"count\":" << h->count()
        << ",\"sum\":" << FmtDouble(h->sum()) << ",\"max\":" << FmtDouble(h->max())
        << ",\"buckets\":[";
    const auto& counts = h->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << "{\"le\":";
      if (i < h->bounds().size()) {
        out << FmtDouble(h->bounds()[i]);
      } else {
        out << "\"inf\"";
      }
      out << ",\"count\":" << counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << "}}";
  return out.str();
}

}  // namespace obs
}  // namespace rover
