// Unified metrics registry (observability layer). Every subsystem that used
// to keep an ad-hoc `stats_` struct now owns named instruments in a
// Registry: monotonic counters, settable gauges, and fixed-bucket
// histograms. Instruments are created once (create-or-get by name) and the
// returned handles stay valid for the registry's lifetime, so the hot-path
// cost of an update is a single pointer-chase and add -- no lookups, no
// allocation.
//
// Naming scheme: dotted lowercase paths, "<subsystem>.<metric>"
// (e.g. "scheduler.frames_sent", "stable_log.bytes_flushed"). When several
// hosts share one registry (Testbed does this), components are bound with a
// "<host>." prefix: "mobile.scheduler.frames_sent".
//
// Render() produces the whole registry as deterministic text (one
// "name value" line per instrument, sorted) or JSON, so benches and
// examples can dump a snapshot alongside their tables.

#ifndef ROVER_SRC_OBS_METRICS_H_
#define ROVER_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rover {
namespace obs {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  void Reset() { value_ = 0; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Fixed-bucket histogram. Bounds are inclusive upper edges; observations
// above the last bound land in an implicit overflow bucket, so
// bucket_counts().size() == bounds().size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

// Bucket edges suited to simulated RPC/flush latencies: 1ms .. ~17min,
// exponential base 2.
std::vector<double> DefaultLatencyBoundsSeconds();

enum class RenderFormat { kText, kJson };

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Create-or-get. Handles remain valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> bounds = {});

  // Lookup without creating; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Convenience for tests/adapters: 0 when the counter does not exist.
  uint64_t CounterValue(const std::string& name) const;

  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Deterministic snapshot of every instrument (sorted by name).
  std::string Render(RenderFormat format = RenderFormat::kText) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace rover

#endif  // ROVER_SRC_OBS_METRICS_H_
