// Server stable store (paper §3.1: "every object has a home server" that
// keeps the authoritative copy on stable storage). The server journals each
// RPC's effects as ONE write-ahead transaction record -- the object
// mutations it committed plus the duplicate-cache response entry -- so a
// crash can never make a mutation durable while losing the response that
// proves it ran. Recovery replays snapshot + surviving WAL transactions;
// a torn tail record (CRC failure) drops atomically, leaving the client's
// resend free to re-execute exactly once.
//
// The WAL reuses StableLog (CRC32 framing, SimulateCrash/Recover contract,
// simulated device costs); compaction writes an atomic snapshot of the
// object image and duplicate cache, then truncates the log.

#ifndef ROVER_SRC_STORE_SERVER_STORE_H_
#define ROVER_SRC_STORE_SERVER_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/qrpc/stable_log.h"
#include "src/rdo/rdo.h"
#include "src/sim/event_loop.h"
#include "src/util/buffer.h"
#include "src/util/bytes.h"

namespace rover {

struct ServerStoreOptions {
  // Journal device. The default models battery-backed NVRAM (near-zero
  // latency), keeping the journal off the response critical path; chaos and
  // durability experiments pass disk-like costs instead.
  StableLogCostModel wal_costs{/*flush_base=*/Duration::Zero(),
                               /*write_bytes_per_sec=*/1e12,
                               /*group_commit=*/true};
  // Snapshot + truncate once the WAL holds this many records.
  size_t compact_after_records = 256;
  // Fault schedule for the WAL device (healthy by default). The snapshot
  // area is modelled as a separate preallocated region: snapshot writes do
  // not consume WAL device capacity, which is what lets compaction reclaim
  // space from a full WAL.
  DiskFaultOptions wal_disk_faults;
};

struct ServerStoreStats {
  uint64_t transactions_logged = 0;
  uint64_t snapshots_written = 0;
  uint64_t recoveries = 0;
  uint64_t wal_records_dropped = 0;  // torn-tail/undecodable records rejected
  // Interior-corrupt WAL records (bit rot on an acknowledged transaction)
  // quarantined by recovery or a scrub -- detected data loss, not a torn tail.
  uint64_t wal_interior_quarantined = 0;
};

// One replayable store mutation inside a transaction.
struct ReplayOp {
  bool is_remove = false;
  RdoDescriptor committed;  // valid when !is_remove
  std::string name;         // valid when is_remove
};

struct CachedResponseEntry {
  std::string client;
  uint64_t rpc_id = 0;
  // Shares storage with the dup-cache entry / WAL record it came from.
  Buffer response;
};

// The unit of server durability: everything one RPC changed, journaled
// atomically. Standalone (non-RPC) mutations use has_response = false.
struct ServerTransaction {
  std::vector<ReplayOp> ops;
  bool has_response = false;
  std::string client;
  uint64_t rpc_id = 0;
  Buffer response;

  Bytes Encode() const;
  // Decoded `response` is a slice of `data`'s storage (no copy).
  static Result<ServerTransaction> Decode(const Buffer& data);
};

// Everything Recover() salvages from stable storage.
struct RecoveredServerState {
  uint64_t epoch = 1;
  Bytes object_image;  // ObjectStore::Serialize blob; empty = no snapshot
  std::vector<CachedResponseEntry> snapshot_responses;
  std::vector<ServerTransaction> wal;  // oldest first
  size_t records_dropped = 0;
  // Interior-corrupt records quarantined by this recovery: acknowledged
  // transactions whose bytes rotted. The epoch bump that every recovery
  // performs already forces clients to re-subscribe and refresh.
  size_t interior_quarantined = 0;
};

class ServerStableStore {
 public:
  ServerStableStore(EventLoop* loop, ServerStoreOptions options = {});

  // Appends one transaction to the WAL (not yet durable). Returns record id.
  uint64_t LogTransaction(const ServerTransaction& txn);

  // Durability point: `done` runs when every appended record is on the
  // device -- or when the write terminally fails (non-ok status: the
  // transaction is NOT durable and its response must not leave). Response
  // sends gate on this.
  void Flush(StableLog::FlushCallback done);
  // Legacy form for callers that do not inspect the outcome.
  void Flush(std::function<void()> done);
  void Flush(std::nullptr_t) { Flush(StableLog::FlushCallback{}); }

  bool NeedsCompaction() const {
    return !compaction_in_progress_ && wal_.RecordCount() >= options_.compact_after_records;
  }

  // Writes a snapshot of the full server image (object store + duplicate
  // cache) and truncates the WAL records it covers. The swap is atomic at
  // write completion: a crash mid-snapshot keeps the previous snapshot and
  // the untruncated WAL.
  void WriteSnapshot(Bytes object_image, std::vector<CachedResponseEntry> responses,
                     std::function<void()> done = nullptr);

  // Crash: volatile WAL tail vanishes; with `tear_last_record`, the record
  // under an in-flight device write survives torn (dropped by Recover's CRC
  // scan). A snapshot write in progress is abandoned.
  void SimulateCrash(bool tear_last_record = false);

  // Recovery scan: bumps the (durable) epoch, validates WAL CRCs, decodes
  // surviving transactions. Torn or undecodable records are dropped and
  // counted.
  RecoveredServerState Recover();

  // Proactive CRC sweep over the durable WAL; interior corruption is
  // quarantined and counted. The caller should force a compaction snapshot
  // afterwards so the intact in-memory image re-covers the hole.
  StableLog::ScrubReport ScrubWal();

  uint64_t epoch() const { return epoch_; }

  // Promotion fence: raises the durable epoch to at least `epoch` (never
  // lowers it). A backup taking over adopts one above anything the dead
  // primary ever used, so its responses are distinguishable from stale ones.
  void AdoptEpoch(uint64_t epoch) { epoch_ = std::max(epoch_, epoch); }

  // Highest WAL record id ever assigned by LogTransaction -- monotone across
  // crashes and compactions (the device outlives both). Doubles as the
  // replication sequence baseline when serving a resync snapshot.
  uint64_t last_logged_id() const { return last_logged_id_; }

  size_t WalRecordCount() const { return wal_.RecordCount(); }
  bool CompactionInProgress() const { return compaction_in_progress_; }
  const ServerStoreStats& stats() const { return stats_; }
  // The WAL log (and through it the fault-injectable device).
  StableLog* wal() { return &wal_; }
  StableLog* wal_for_test() { return &wal_; }

 private:
  struct Snapshot {
    bool valid = false;
    Bytes object_image;
    std::vector<CachedResponseEntry> responses;
  };

  EventLoop* loop_;
  ServerStoreOptions options_;
  StableLog wal_;
  Snapshot snapshot_;
  // Server incarnation; persisted trivially (a tiny durable cell), bumped by
  // every Recover() so clients can detect the restart.
  uint64_t epoch_ = 1;
  uint64_t last_logged_id_ = 0;
  bool compaction_in_progress_ = false;
  // Bumped by SimulateCrash so snapshot-completion events scheduled before
  // the crash abandon their swap.
  uint64_t crash_generation_ = 0;
  ServerStoreStats stats_;
};

}  // namespace rover

#endif  // ROVER_SRC_STORE_SERVER_STORE_H_
