// Server-side versioned object store (paper §3.1: "In Rover, every object
// has a home server... Update conflicts are detected at the server, where
// Rover attempts to reconcile them").
//
// Each object keeps its committed descriptor, a bounded version history
// (so resolvers can see the ancestor a client diverged from), and a type
// tag selecting its conflict resolver.

#ifndef ROVER_SRC_STORE_OBJECT_STORE_H_
#define ROVER_SRC_STORE_OBJECT_STORE_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/rdo/rdo.h"
#include "src/util/bytes.h"
#include "src/store/conflict.h"

namespace rover {

struct ObjectStoreStats {
  uint64_t creates = 0;
  uint64_t commits = 0;           // successful exports (incl. resolved)
  uint64_t fast_path_commits = 0; // base version matched, no resolver run
  uint64_t resolved_conflicts = 0;
  uint64_t unresolved_conflicts = 0;
};

struct ExportOutcome {
  uint64_t new_version = 0;
  bool was_conflict = false;   // resolver ran
  RdoDescriptor committed;     // the now-committed descriptor
};

class ObjectStore {
 public:
  explicit ObjectStore(size_t history_limit = 16) : history_limit_(history_limit) {}

  // Creates an object at version 1. Fails if it already exists.
  Status Create(const RdoDescriptor& descriptor);

  // Unconditional replace (server-local mutation, e.g. server-side method
  // execution). Bumps the version.
  Result<uint64_t> Put(const RdoDescriptor& descriptor);

  // Committed descriptor for `name`.
  Result<RdoDescriptor> Get(const std::string& name) const;

  // A specific journaled version of `name`: the committed descriptor or any
  // still-held history entry. kNotFound once the version has aged out of
  // the bounded history -- delta imports then fall back to the full object.
  Result<RdoDescriptor> GetVersion(const std::string& name, uint64_t version) const;

  bool Exists(const std::string& name) const;
  Result<uint64_t> VersionOf(const std::string& name) const;

  // Applies a client export based on `base_version`:
  //  - base == committed version: fast path, commit as version+1.
  //  - base < committed: conflict; run the type resolver with the ancestor
  //    (from history), committed, and proposed states. On success the
  //    merged state commits; on failure returns kConflict.
  Result<ExportOutcome> ApplyExport(const RdoDescriptor& proposed, uint64_t base_version,
                                    const ConflictResolverRegistry& resolvers);

  Status Remove(const std::string& name);

  // Names with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix = "") const;

  size_t ObjectCount() const { return objects_.size(); }
  const ObjectStoreStats& stats() const { return stats_; }

  // Persistence: the paper's home servers keep objects on stable storage.
  // Serialize captures every object's committed descriptor and history;
  // Load rebuilds the store (e.g. after a simulated server restart).
  Bytes Serialize() const;
  Status Load(const Bytes& snapshot);

  // Journal hooks, fired after every committed mutation (Create/Put/
  // ApplyExport commit) and every removal. The server stable store uses
  // them to write-ahead-log mutations without each call site knowing about
  // durability. Replay via RestoreCommit/Remove does NOT fire them.
  using CommitHook = std::function<void(const RdoDescriptor& committed)>;
  using RemoveHook = std::function<void(const std::string& name)>;
  void SetJournalHooks(CommitHook on_commit, RemoveHook on_remove) {
    on_commit_ = std::move(on_commit);
    on_remove_ = std::move(on_remove);
  }

  // WAL replay: re-applies a logged committed descriptor at its recorded
  // version (creating the object if needed), pushing the previous committed
  // state into history. Bypasses resolvers, stats, and journal hooks.
  void RestoreCommit(const RdoDescriptor& committed);

 private:
  struct Entry {
    RdoDescriptor committed;
    std::deque<RdoDescriptor> history;  // older versions, oldest first
  };

  void PushHistory(Entry* entry);

  size_t history_limit_;
  std::map<std::string, Entry> objects_;
  ObjectStoreStats stats_;
  CommitHook on_commit_;
  RemoveHook on_remove_;
};

}  // namespace rover

#endif  // ROVER_SRC_STORE_OBJECT_STORE_H_
