#include "src/store/conflict.h"

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "src/tclite/value.h"

namespace rover {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    lines.push_back(std::move(current));
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

// Longest-common-subsequence keep-masks: keep_a[i] / keep_b[j] are true for
// lines that are part of the common subsequence.
void LcsKeepMasks(const std::vector<std::string>& a, const std::vector<std::string>& b,
                  std::vector<bool>* keep_a, std::vector<bool>* keep_b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      dp[i][j] = a[i] == b[j] ? dp[i + 1][j + 1] + 1 : std::max(dp[i + 1][j], dp[i][j + 1]);
    }
  }
  keep_a->assign(n, false);
  keep_b->assign(m, false);
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      (*keep_a)[i] = true;
      (*keep_b)[j] = true;
      ++i;
      ++j;
    } else if (dp[i + 1][j] >= dp[i][j + 1]) {
      ++i;
    } else {
      ++j;
    }
  }
}

// Per-ancestor-line edit view of one derived version: which ancestor lines
// survive, and what new lines are inserted into each gap. gap[i] holds the
// lines inserted before ancestor line i (gap[n] = insertions at the end).
struct EditView {
  std::vector<bool> keeps;                        // size n
  std::vector<std::vector<std::string>> gaps;     // size n+1
};

EditView BuildEditView(const std::vector<std::string>& ancestor,
                       const std::vector<std::string>& derived) {
  EditView view;
  std::vector<bool> keep_d;
  LcsKeepMasks(ancestor, derived, &view.keeps, &keep_d);
  view.gaps.assign(ancestor.size() + 1, {});
  size_t gap = 0;  // index of the next ancestor line to be matched
  size_t ai = 0;
  for (size_t di = 0; di < derived.size(); ++di) {
    if (keep_d[di]) {
      // Advance ancestor cursor to the matching kept line.
      while (ai < ancestor.size() && !view.keeps[ai]) {
        ++ai;
      }
      ++ai;
      gap = ai;
    } else {
      view.gaps[gap].push_back(derived[di]);
    }
  }
  return view;
}

}  // namespace

Result<std::string> LastWriterWinsResolve(const std::string& ancestor,
                                          const std::string& committed,
                                          const std::string& proposed) {
  return proposed;
}

Result<std::string> SetMergeResolve(const std::string& ancestor,
                                    const std::string& committed,
                                    const std::string& proposed) {
  auto a = TclListSplit(ancestor);
  auto c = TclListSplit(committed);
  auto p = TclListSplit(proposed);
  if (!a.ok() || !c.ok() || !p.ok()) {
    return InvalidArgumentError("set merge: state is not a valid list");
  }
  const std::set<std::string> a_set(a->begin(), a->end());
  const std::set<std::string> p_set(p->begin(), p->end());
  std::set<std::string> removed_by_client;
  for (const std::string& e : *a) {
    if (p_set.count(e) == 0) {
      removed_by_client.insert(e);
    }
  }
  std::vector<std::string> merged;
  std::set<std::string> seen;
  for (const std::string& e : *c) {
    if (removed_by_client.count(e) == 0 && seen.insert(e).second) {
      merged.push_back(e);
    }
  }
  for (const std::string& e : *p) {
    if (a_set.count(e) == 0 && seen.insert(e).second) {
      merged.push_back(e);  // added by the client
    }
  }
  return TclListJoin(merged);
}

Result<std::string> CalendarMergeResolve(const std::string& ancestor,
                                         const std::string& committed,
                                         const std::string& proposed) {
  auto a = TclListSplit(ancestor);
  auto c = TclListSplit(committed);
  auto p = TclListSplit(proposed);
  if (!a.ok() || !c.ok() || !p.ok() || a->size() % 2 != 0 || c->size() % 2 != 0 ||
      p->size() % 2 != 0) {
    return InvalidArgumentError("calendar merge: state is not a valid dict");
  }
  auto to_map = [](const std::vector<std::string>& kv) {
    std::map<std::string, std::string> m;
    for (size_t i = 0; i + 1 < kv.size(); i += 2) {
      m[kv[i]] = kv[i + 1];
    }
    return m;
  };
  const auto am = to_map(*a);
  const auto cm = to_map(*c);
  const auto pm = to_map(*p);

  std::set<std::string> keys;
  for (const auto& [k, v] : am) {
    keys.insert(k);
  }
  for (const auto& [k, v] : cm) {
    keys.insert(k);
  }
  for (const auto& [k, v] : pm) {
    keys.insert(k);
  }

  std::vector<std::string> merged;
  for (const std::string& key : keys) {
    auto find = [&](const std::map<std::string, std::string>& m) {
      auto it = m.find(key);
      return it == m.end() ? std::optional<std::string>() : std::optional(it->second);
    };
    const auto av = find(am);
    const auto cv = find(cm);
    const auto pv = find(pm);
    std::optional<std::string> out;
    if (cv == pv) {
      out = cv;  // both sides agree (includes both-deleted)
    } else if (av == cv) {
      out = pv;  // only the client changed this slot
    } else if (av == pv) {
      out = cv;  // only the server side changed this slot
    } else {
      return ConflictError("calendar slot \"" + key + "\" modified on both sides: \"" +
                           cv.value_or("<deleted>") + "\" vs \"" +
                           pv.value_or("<deleted>") + "\"");
    }
    if (out.has_value()) {
      merged.push_back(key);
      merged.push_back(*out);
    }
  }
  return TclListJoin(merged);
}

Result<std::string> TextMergeResolve(const std::string& ancestor,
                                     const std::string& committed,
                                     const std::string& proposed) {
  const std::vector<std::string> a = SplitLines(ancestor);
  const std::vector<std::string> c = SplitLines(committed);
  const std::vector<std::string> p = SplitLines(proposed);
  if (a.size() > 2000 || c.size() > 2000 || p.size() > 2000) {
    // Quadratic LCS guard: fall back to trivial cases only.
    if (committed == ancestor) {
      return proposed;
    }
    if (proposed == ancestor) {
      return committed;
    }
    return ConflictError("text merge: documents too large for three-way merge");
  }
  const EditView cv = BuildEditView(a, c);
  const EditView pv = BuildEditView(a, p);

  std::vector<std::string> merged;
  for (size_t i = 0; i <= a.size(); ++i) {
    const auto& cg = cv.gaps[i];
    const auto& pg = pv.gaps[i];
    if (!cg.empty() && !pg.empty() && cg != pg) {
      return ConflictError("text merge: conflicting insertions near line " +
                           std::to_string(i + 1));
    }
    const auto& gap = !cg.empty() ? cg : pg;
    merged.insert(merged.end(), gap.begin(), gap.end());
    if (i < a.size()) {
      const bool c_keeps = cv.keeps[i];
      const bool p_keeps = pv.keeps[i];
      if (c_keeps && p_keeps) {
        merged.push_back(a[i]);
      }
      // Deleted by either side: drop the line. A "modification" appears as
      // delete + insert, so a line deleted by one side while the other
      // inserted replacement text adjacent to it merges cleanly unless the
      // insertions collide (handled above).
    }
  }
  return JoinLines(merged);
}

ConflictResolverRegistry::ConflictResolverRegistry() {
  Register("lww", LastWriterWinsResolve);
  Register("set", SetMergeResolve);
  Register("calendar", CalendarMergeResolve);
  Register("text", TextMergeResolve);
}

void ConflictResolverRegistry::Register(const std::string& type, ConflictResolver resolver) {
  resolvers_[type] = std::move(resolver);
}

bool ConflictResolverRegistry::Has(const std::string& type) const {
  return resolvers_.count(type) > 0;
}

Result<std::string> ConflictResolverRegistry::Resolve(const std::string& type,
                                                      const std::string& ancestor,
                                                      const std::string& committed,
                                                      const std::string& proposed) const {
  auto it = resolvers_.find(type);
  if (it == resolvers_.end()) {
    return ConflictError("no resolver registered for type \"" + type +
                         "\"; manual reconciliation required");
  }
  return it->second(ancestor, committed, proposed);
}

}  // namespace rover
