// Primary/backup replication for the server store (log shipping over an
// internal replication channel).
//
// The primary ships every WAL transaction -- object mutations plus the
// duplicate-cache response entry, in commit order -- to a backup
// RoverServerNode as tagged kControl messages, and the backup acknowledges a
// cumulative *replication watermark* (the highest primary WAL sequence it has
// applied AND made durable in its own WAL). Response release on the primary
// is semi-synchronous: an RPC response leaves only once its transaction is
// durable locally and covered by the acked watermark, which is what makes
// "no acknowledged work is lost" hold across a failover. If the backup stops
// acking for longer than `sync_timeout` the sender degrades to asynchronous
// shipping (releases stop waiting) rather than wedging the primary; the
// degrade is counted, reported to the invariant checker, and healed when the
// backup catches back up to the last shipped sequence.
//
// The receiver applies transactions strictly in sequence order. A gap
// (primary restarted and lost queued ship traffic, backup restarted and lost
// its volatile cursor, or the backup attached after the primary already had
// state) is healed by a full resync: the backup requests a snapshot and the
// primary ships its complete image (object store + duplicate cache) with a
// baseline sequence. Deltas never ship: the backup's version journal starts
// empty, so delta imports degrade to full fetches there by design.
//
// Promotion fences the dead primary: the backup adopts
// max(own durable epoch, highest primary epoch seen) + 1, so every response
// it sends carries an epoch strictly above anything the primary ever used,
// and clients treat the change exactly like a server restart (re-subscribe,
// re-validate cached imports). Stale duplicates arriving at the promoted
// backup hit the shipped dup-cache and are replayed, not re-executed.

#ifndef ROVER_SRC_STORE_REPLICATION_H_
#define ROVER_SRC_STORE_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/check_hooks.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/store/server_store.h"
#include "src/transport/transport.h"

namespace rover {

class RoverServer;
class QrpcServer;

struct ReplicationOptions {
  // The other endpoint of the channel: the backup host for a sender, the
  // primary host for a receiver.
  std::string peer;
  // How long a gated response may wait for the backup's ack before the
  // sender degrades to asynchronous shipping. Zero disables the gate
  // entirely (pure async shipping).
  Duration sync_timeout = Duration::Seconds(5);
};

struct ReplicationSenderStats {
  uint64_t transactions_shipped = 0;
  uint64_t bytes_shipped = 0;
  uint64_t acks_received = 0;
  uint64_t resyncs_served = 0;
  uint64_t sync_degrades = 0;
};

// Primary side: ships transactions, tracks the acked watermark, gates
// response releases. Claims the host's kControl handler (free on server
// hosts) for acks and resync requests.
class ReplicationSender {
 public:
  struct ResyncImage {
    Bytes object_image;
    std::vector<CachedResponseEntry> responses;
    uint64_t baseline_seq = 0;
    uint64_t epoch = 1;
  };

  ReplicationSender(EventLoop* loop, TransportManager* transport,
                    ReplicationOptions options);
  ~ReplicationSender();

  // Ships one committed transaction. `seq` is the primary's WAL record id
  // (monotone across crashes and compactions), `epoch` the primary's durable
  // epoch at commit time.
  void Ship(uint64_t seq, uint64_t epoch, const ServerTransaction& txn);

  // Runs `release` once the acked watermark covers `seq` (immediately if it
  // already does, or if the sender is degraded / the gate is disabled).
  void GateRelease(uint64_t seq, std::function<void()> release);

  // Supplies the full-image snapshot served to a backup that requests a
  // resync.
  void SetResyncProvider(std::function<ResyncImage()> provider) {
    resync_provider_ = std::move(provider);
  }

  // Invoked once when the sender gives up on synchronous replication
  // (backup unreachable past sync_timeout).
  void SetDegradeListener(std::function<void()> listener) {
    degrade_listener_ = std::move(listener);
  }

  void BindMetrics(obs::Registry* registry, const std::string& prefix);

  uint64_t last_shipped() const { return last_shipped_; }
  uint64_t acked_watermark() const { return acked_watermark_; }
  // Shipped-but-unacked transactions: the replication lag a failover right
  // now would expose.
  uint64_t LagRecords() const { return last_shipped_ - acked_watermark_; }
  bool degraded() const { return degraded_; }
  const ReplicationSenderStats& stats() const { return stats_; }

 private:
  struct GatedRelease {
    uint64_t seq = 0;
    TimePoint deadline;
    std::function<void()> release;
  };

  void HandleControl(const Message& msg);
  void AckWatermark(uint64_t watermark);
  void ServeResync();
  void ArmDegradeTimer();
  void UpdateLagGauge();

  EventLoop* loop_;
  TransportManager* transport_;
  ReplicationOptions options_;
  std::function<ReplicationSender::ResyncImage()> resync_provider_;
  std::function<void()> degrade_listener_;
  uint64_t last_shipped_ = 0;
  uint64_t acked_watermark_ = 0;
  bool degraded_ = false;
  std::deque<GatedRelease> gated_;  // seq-ordered (commit order)
  bool degrade_timer_armed_ = false;
  ReplicationSenderStats stats_;
  obs::Counter* c_shipped_ = nullptr;
  obs::Counter* c_acks_ = nullptr;
  obs::Counter* c_resyncs_ = nullptr;
  obs::Counter* c_degrades_ = nullptr;
  obs::Gauge* g_lag_ = nullptr;
  obs::Gauge* g_watermark_ = nullptr;
  std::shared_ptr<char> alive_ = std::make_shared<char>('r');
};

struct ReplicationReceiverStats {
  uint64_t transactions_applied = 0;
  uint64_t duplicates_ignored = 0;
  uint64_t acks_sent = 0;
  uint64_t resyncs_requested = 0;
  uint64_t snapshots_applied = 0;
  uint64_t promotions = 0;
};

// Backup side: applies shipped transactions in order to the local server,
// journals them to the local WAL, acks the durable watermark, and performs
// the promotion (epoch fence) when the primary dies.
class ReplicationReceiver {
 public:
  ReplicationReceiver(EventLoop* loop, TransportManager* transport,
                      RoverServer* server, ServerStableStore* stable_store,
                      QrpcServer* qrpc, ReplicationOptions options);
  ~ReplicationReceiver();

  // Fences the dead primary and takes over: bumps the local durable epoch
  // above anything the primary ever used and stops acking. Returns the new
  // epoch. Idempotent.
  uint64_t Promote();

  void SetCheckListener(obs::CheckListener* listener) { check_ = listener; }
  void BindMetrics(obs::Registry* registry, const std::string& prefix);

  bool promoted() const { return promoted_; }
  uint64_t last_applied() const { return last_applied_; }
  uint64_t primary_epoch_seen() const { return primary_epoch_seen_; }
  const ReplicationReceiverStats& stats() const { return stats_; }

 private:
  void HandleControl(const Message& msg);
  void HandleTransaction(uint64_t seq, uint64_t epoch, ServerTransaction txn);
  void HandleSnapshot(uint64_t baseline_seq, uint64_t epoch, Bytes object_image,
                      std::vector<CachedResponseEntry> responses);
  void DrainBuffered();
  void RequestResync();
  void SendAck();

  EventLoop* loop_;
  TransportManager* transport_;
  RoverServer* server_;
  ServerStableStore* stable_store_;  // may be null (volatile backup)
  QrpcServer* qrpc_;
  ReplicationOptions options_;
  obs::CheckListener* check_ = nullptr;
  uint64_t last_applied_ = 0;    // highest seq applied in order
  uint64_t last_durable_ = 0;    // highest seq durable in the local WAL
  uint64_t primary_epoch_seen_ = 1;
  bool promoted_ = false;
  bool resync_pending_ = false;
  std::map<uint64_t, std::pair<uint64_t, ServerTransaction>> buffered_;  // seq -> (epoch, txn)
  ReplicationReceiverStats stats_;
  obs::Counter* c_applied_ = nullptr;
  obs::Counter* c_acks_ = nullptr;
  obs::Counter* c_resyncs_ = nullptr;
  obs::Counter* c_snapshots_ = nullptr;
  obs::Counter* c_promotions_ = nullptr;
  obs::Gauge* g_last_applied_ = nullptr;
  std::shared_ptr<char> alive_ = std::make_shared<char>('r');
};

}  // namespace rover

#endif  // ROVER_SRC_STORE_REPLICATION_H_
