// Type-specific conflict resolution (paper §2, §3.1). When a client
// exports an update whose base version is older than the committed
// version, the home server attempts reconciliation with a resolver chosen
// by the object's type -- the Locus/Bayou-derived idea the paper adopts
// ("Because Rover can employ type-specific concurrency control, we expect
// that many conflicts can be resolved automatically").
//
// A resolver sees three states: the common ancestor the client started
// from, the currently committed state, and the client's proposed state.
// It returns the merged state, or an error when resolution requires the
// user (the result is reflected back to the application).

#ifndef ROVER_SRC_STORE_CONFLICT_H_
#define ROVER_SRC_STORE_CONFLICT_H_

#include <functional>
#include <map>
#include <string>

#include "src/util/result.h"

namespace rover {

using ConflictResolver = std::function<Result<std::string>(
    const std::string& ancestor, const std::string& committed,
    const std::string& proposed)>;

class ConflictResolverRegistry {
 public:
  // Registers the four built-in resolvers ("lww", "set", "calendar",
  // "text") plus the default.
  ConflictResolverRegistry();

  void Register(const std::string& type, ConflictResolver resolver);
  bool Has(const std::string& type) const;

  // Resolves using the resolver for `type` (falling back to the default
  // resolver, which reports an unresolvable conflict).
  Result<std::string> Resolve(const std::string& type, const std::string& ancestor,
                              const std::string& committed,
                              const std::string& proposed) const;

 private:
  std::map<std::string, ConflictResolver> resolvers_;
};

// Built-in resolvers (exposed for direct testing).

// "lww": the proposed update simply wins.
Result<std::string> LastWriterWinsResolve(const std::string& ancestor,
                                          const std::string& committed,
                                          const std::string& proposed);

// "set": states are Tcl lists treated as sets. Merge = committed,
// plus elements the client added, minus elements the client removed.
Result<std::string> SetMergeResolve(const std::string& ancestor,
                                    const std::string& committed,
                                    const std::string& proposed);

// "calendar": states are Tcl dicts slot -> entry. Non-overlapping slot
// changes merge; the same slot changed to different entries on both sides
// is a real (unresolvable) conflict.
Result<std::string> CalendarMergeResolve(const std::string& ancestor,
                                         const std::string& committed,
                                         const std::string& proposed);

// "text": line-based three-way merge; overlapping edits conflict.
Result<std::string> TextMergeResolve(const std::string& ancestor,
                                     const std::string& committed,
                                     const std::string& proposed);

}  // namespace rover

#endif  // ROVER_SRC_STORE_CONFLICT_H_
