#include "src/store/server_store.h"

#include <utility>

namespace rover {

namespace {
constexpr char kTxnTag[] = "TXN";
}  // namespace

Bytes ServerTransaction::Encode() const {
  WireWriter writer;
  writer.WriteString(kTxnTag);
  writer.WriteVarint(ops.size());
  for (const ReplayOp& op : ops) {
    writer.WriteBool(op.is_remove);
    if (op.is_remove) {
      writer.WriteString(op.name);
    } else {
      writer.WriteBytes(op.committed.Encode());
    }
  }
  writer.WriteBool(has_response);
  if (has_response) {
    writer.WriteString(client);
    writer.WriteVarint(rpc_id);
    writer.WriteVarint(response.size());
    // The charged copy on the durable path: response bytes land in the record.
    ChargePayloadCopy(response.size());
    writer.WriteRaw(response.data(), response.size());
  }
  return writer.TakeData();
}

Result<ServerTransaction> ServerTransaction::Decode(const Buffer& data) {
  WireReader reader(data.data(), data.size());
  ROVER_ASSIGN_OR_RETURN(std::string tag, reader.ReadString());
  if (tag != kTxnTag) {
    return DataLossError("not a server transaction record");
  }
  ServerTransaction txn;
  ROVER_ASSIGN_OR_RETURN(uint64_t op_count, reader.ReadVarint());
  for (uint64_t i = 0; i < op_count; ++i) {
    ReplayOp op;
    ROVER_ASSIGN_OR_RETURN(op.is_remove, reader.ReadBool());
    if (op.is_remove) {
      ROVER_ASSIGN_OR_RETURN(op.name, reader.ReadString());
    } else {
      ROVER_ASSIGN_OR_RETURN(Bytes encoded, reader.ReadBytes());
      ROVER_ASSIGN_OR_RETURN(op.committed, RdoDescriptor::Decode(encoded));
    }
    txn.ops.push_back(std::move(op));
  }
  ROVER_ASSIGN_OR_RETURN(txn.has_response, reader.ReadBool());
  if (txn.has_response) {
    ROVER_ASSIGN_OR_RETURN(txn.client, reader.ReadString());
    ROVER_ASSIGN_OR_RETURN(txn.rpc_id, reader.ReadVarint());
    ROVER_ASSIGN_OR_RETURN(uint64_t response_len, reader.ReadVarint());
    if (response_len > reader.remaining()) {
      return DataLossError("truncated response in server transaction");
    }
    ROVER_ASSIGN_OR_RETURN(const uint8_t* response_ptr, reader.ReadRaw(response_len));
    txn.response = data.Slice(static_cast<size_t>(response_ptr - data.data()),
                              static_cast<size_t>(response_len));
  }
  return txn;
}

ServerStableStore::ServerStableStore(EventLoop* loop, ServerStoreOptions options)
    : loop_(loop),
      options_(options),
      wal_(loop, options.wal_costs, options.wal_disk_faults) {}

uint64_t ServerStableStore::LogTransaction(const ServerTransaction& txn) {
  ++stats_.transactions_logged;
  last_logged_id_ = wal_.Append(txn.Encode());
  return last_logged_id_;
}

void ServerStableStore::Flush(StableLog::FlushCallback done) {
  wal_.Flush(std::move(done));
}

void ServerStableStore::Flush(std::function<void()> done) {
  wal_.Flush(std::move(done));
}

void ServerStableStore::WriteSnapshot(Bytes object_image,
                                      std::vector<CachedResponseEntry> responses,
                                      std::function<void()> done) {
  compaction_in_progress_ = true;
  // The snapshot covers the WAL as of now; records appended while the
  // snapshot write runs survive the truncation.
  const uint64_t covered_up_to = wal_.BackRecordId();
  size_t bytes = object_image.size();
  for (const CachedResponseEntry& entry : responses) {
    bytes += entry.client.size() + entry.response.size() + 16;
  }
  const Duration cost = options_.wal_costs.FlushCost(bytes);
  const uint64_t generation = crash_generation_;
  auto pending = std::make_shared<Snapshot>();
  pending->valid = true;
  pending->object_image = std::move(object_image);
  pending->responses = std::move(responses);
  loop_->ScheduleAfter(
      cost, [this, pending, covered_up_to, generation, done = std::move(done)] {
        if (generation != crash_generation_) {
          return;  // crashed mid-write; old snapshot + WAL remain authoritative
        }
        snapshot_ = std::move(*pending);
        wal_.Truncate(covered_up_to);
        compaction_in_progress_ = false;
        ++stats_.snapshots_written;
        if (done) {
          done();
        }
      });
}

void ServerStableStore::SimulateCrash(bool tear_last_record) {
  ++crash_generation_;
  compaction_in_progress_ = false;
  // A tear models a power cut mid-write; a record whose device write
  // already completed (its response may have left) cannot be torn.
  wal_.SimulateCrash(tear_last_record && wal_.WriteInFlight());
}

RecoveredServerState ServerStableStore::Recover() {
  ++stats_.recoveries;
  ++epoch_;
  const StableLog::RecoveryReport report = wal_.RecoverWithReport();

  RecoveredServerState out;
  out.records_dropped = report.torn_tail_dropped;
  // Interior corruption is a different event class from a torn tail: the
  // transaction it held was acknowledged durable. The epoch bump above
  // already invalidates client-side trust in this server's state; surface
  // the count so callers and checkers can tell silent loss from detected.
  out.interior_quarantined = report.quarantined.size();
  stats_.wal_interior_quarantined += report.quarantined.size();
  out.epoch = epoch_;
  if (snapshot_.valid) {
    out.object_image = snapshot_.object_image;
    out.snapshot_responses = snapshot_.responses;
  }
  std::vector<StableLog::Record> records = wal_.DurableRecords();
  for (const StableLog::Record& rec : records) {
    // RecordPayload, not rec.data: the WAL may store records compressed.
    auto payload = wal_.RecordPayload(rec);
    if (!payload.ok()) {
      ++out.records_dropped;
      wal_.RemoveRecord(rec.id);
      continue;
    }
    auto txn = ServerTransaction::Decode(*payload);
    if (!txn.ok()) {
      ++out.records_dropped;
      wal_.RemoveRecord(rec.id);
      continue;
    }
    out.wal.push_back(std::move(*txn));
  }
  stats_.wal_records_dropped += out.records_dropped;
  return out;
}

StableLog::ScrubReport ServerStableStore::ScrubWal() {
  StableLog::ScrubReport report = wal_.Scrub();
  stats_.wal_interior_quarantined += report.quarantined.size();
  return report;
}

}  // namespace rover
