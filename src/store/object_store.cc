#include "src/store/object_store.h"

namespace rover {

Status ObjectStore::Create(const RdoDescriptor& descriptor) {
  if (objects_.count(descriptor.name) > 0) {
    return AlreadyExistsError("object \"" + descriptor.name + "\" already exists");
  }
  Entry entry;
  entry.committed = descriptor;
  entry.committed.version = 1;
  auto inserted = objects_.emplace(descriptor.name, std::move(entry));
  ++stats_.creates;
  if (on_commit_) {
    on_commit_(inserted.first->second.committed);
  }
  return Status::Ok();
}

Result<uint64_t> ObjectStore::Put(const RdoDescriptor& descriptor) {
  auto it = objects_.find(descriptor.name);
  if (it == objects_.end()) {
    ROVER_RETURN_IF_ERROR(Create(descriptor));
    return uint64_t{1};
  }
  Entry& entry = it->second;
  PushHistory(&entry);
  const uint64_t new_version = entry.committed.version + 1;
  entry.committed = descriptor;
  entry.committed.version = new_version;
  ++stats_.commits;
  if (on_commit_) {
    on_commit_(entry.committed);
  }
  return new_version;
}

Result<RdoDescriptor> ObjectStore::Get(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return NotFoundError("object \"" + name + "\" not found");
  }
  return it->second.committed;
}

Result<RdoDescriptor> ObjectStore::GetVersion(const std::string& name,
                                              uint64_t version) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return NotFoundError("object \"" + name + "\" not found");
  }
  if (it->second.committed.version == version) {
    return it->second.committed;
  }
  for (const RdoDescriptor& old : it->second.history) {
    if (old.version == version) {
      return old;
    }
  }
  return NotFoundError("version " + std::to_string(version) + " of \"" + name +
                       "\" no longer journaled");
}

bool ObjectStore::Exists(const std::string& name) const {
  return objects_.count(name) > 0;
}

Result<uint64_t> ObjectStore::VersionOf(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return NotFoundError("object \"" + name + "\" not found");
  }
  return it->second.committed.version;
}

Result<ExportOutcome> ObjectStore::ApplyExport(const RdoDescriptor& proposed,
                                               uint64_t base_version,
                                               const ConflictResolverRegistry& resolvers) {
  auto it = objects_.find(proposed.name);
  if (it == objects_.end()) {
    return NotFoundError("object \"" + proposed.name + "\" not found");
  }
  Entry& entry = it->second;

  if (base_version > entry.committed.version) {
    return InvalidArgumentError("export base version " + std::to_string(base_version) +
                                " is newer than committed version " +
                                std::to_string(entry.committed.version));
  }

  ExportOutcome outcome;
  if (base_version == entry.committed.version) {
    // Fast path: nobody else committed since the client imported.
    PushHistory(&entry);
    entry.committed = proposed;
    entry.committed.version = base_version + 1;
    ++stats_.commits;
    ++stats_.fast_path_commits;
    outcome.new_version = entry.committed.version;
    outcome.committed = entry.committed;
    if (on_commit_) {
      on_commit_(entry.committed);
    }
    return outcome;
  }

  // Conflict: find the ancestor the client diverged from.
  std::string ancestor_data;
  bool found_ancestor = false;
  for (const RdoDescriptor& old : entry.history) {
    if (old.version == base_version) {
      ancestor_data = old.data;
      found_ancestor = true;
      break;
    }
  }
  if (!found_ancestor) {
    // History truncated past the ancestor; treat the empty state as the
    // ancestor (conservative: resolvers see everything as both-modified).
    ancestor_data = "";
  }

  auto merged = resolvers.Resolve(entry.committed.type, ancestor_data,
                                  entry.committed.data, proposed.data);
  if (!merged.ok()) {
    ++stats_.unresolved_conflicts;
    return Status(StatusCode::kConflict,
                  "export of \"" + proposed.name + "\" conflicts: " +
                      std::string(merged.status().message()));
  }
  PushHistory(&entry);
  entry.committed.data = *merged;
  entry.committed.version += 1;
  // Code updates ride along only on the fast path; on conflict the
  // committed code is kept (data is what resolvers understand).
  ++stats_.commits;
  ++stats_.resolved_conflicts;
  outcome.new_version = entry.committed.version;
  outcome.was_conflict = true;
  outcome.committed = entry.committed;
  if (on_commit_) {
    on_commit_(entry.committed);
  }
  return outcome;
}

Status ObjectStore::Remove(const std::string& name) {
  if (objects_.erase(name) == 0) {
    return NotFoundError("object \"" + name + "\" not found");
  }
  if (on_remove_) {
    on_remove_(name);
  }
  return Status::Ok();
}

void ObjectStore::RestoreCommit(const RdoDescriptor& committed) {
  Entry& entry = objects_[committed.name];
  if (entry.committed.version != 0 && entry.committed.version < committed.version) {
    PushHistory(&entry);
  }
  entry.committed = committed;
}

std::vector<std::string> ObjectStore::List(const std::string& prefix) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : objects_) {
    if (name.rfind(prefix, 0) == 0) {
      names.push_back(name);
    }
  }
  return names;
}

Bytes ObjectStore::Serialize() const {
  WireWriter writer;
  writer.WriteVarint(objects_.size());
  for (const auto& [name, entry] : objects_) {
    writer.WriteBytes(entry.committed.Encode());
    writer.WriteVarint(entry.history.size());
    for (const RdoDescriptor& old : entry.history) {
      writer.WriteBytes(old.Encode());
    }
  }
  return writer.TakeData();
}

Status ObjectStore::Load(const Bytes& snapshot) {
  WireReader reader(snapshot);
  ROVER_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  std::map<std::string, Entry> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    ROVER_ASSIGN_OR_RETURN(Bytes committed_bytes, reader.ReadBytes());
    ROVER_ASSIGN_OR_RETURN(RdoDescriptor committed, RdoDescriptor::Decode(committed_bytes));
    Entry entry;
    entry.committed = committed;
    ROVER_ASSIGN_OR_RETURN(uint64_t history_count, reader.ReadVarint());
    for (uint64_t h = 0; h < history_count; ++h) {
      ROVER_ASSIGN_OR_RETURN(Bytes old_bytes, reader.ReadBytes());
      ROVER_ASSIGN_OR_RETURN(RdoDescriptor old, RdoDescriptor::Decode(old_bytes));
      entry.history.push_back(std::move(old));
    }
    loaded.emplace(committed.name, std::move(entry));
  }
  objects_ = std::move(loaded);
  return Status::Ok();
}

void ObjectStore::PushHistory(Entry* entry) {
  entry->history.push_back(entry->committed);
  while (entry->history.size() > history_limit_) {
    entry->history.pop_front();
  }
}

}  // namespace rover
