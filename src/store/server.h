// Rover server (paper §5.1): mediates access to RDOs for client access
// managers. It exposes the toolkit's server-side operations over QRPC --
// import (fetch), export (commit with conflict detection/resolution),
// server-side method invocation, creation, listing -- and pushes
// best-effort invalidation notices to subscribed clients when an object
// commits a new version.

#ifndef ROVER_SRC_STORE_SERVER_H_
#define ROVER_SRC_STORE_SERVER_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/qrpc/qrpc.h"
#include "src/rdo/rdo.h"
#include "src/store/conflict.h"
#include "src/store/object_store.h"

namespace rover {

struct RoverServerOptions {
  ExecLimits rdo_limits;
  RdoCostModel rdo_costs;
  size_t instance_cache_max = 64;
  bool send_invalidations = true;
};

struct RoverServerStats {
  uint64_t imports = 0;
  uint64_t exports = 0;
  uint64_t invokes = 0;
  uint64_t invalidations_sent = 0;
};

// Invalidation control-message payload helpers (shared with the client
// access manager).
Bytes EncodeInvalidation(const std::string& name, uint64_t version);
struct Invalidation {
  std::string name;
  uint64_t version = 0;
};
Result<Invalidation> DecodeInvalidation(const Bytes& payload);

class RoverServer {
 public:
  RoverServer(EventLoop* loop, TransportManager* transport, QrpcServer* qrpc,
              RoverServerOptions options = {});

  ObjectStore* store() { return &store_; }
  ConflictResolverRegistry* resolvers() { return &resolvers_; }
  const RoverServerStats& stats() const { return stats_; }

  // Convenience for tests/benches/examples: create an object directly.
  Status CreateObject(const RdoDescriptor& descriptor);

 private:
  void RegisterMethods();
  void HandleImport(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleExport(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleInvoke(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleCreate(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleList(const RpcRequestBody& req, const Message& envelope,
                  QrpcServer::Responder respond);
  void HandleVersion(const RpcRequestBody& req, const Message& envelope,
                     QrpcServer::Responder respond);
  void HandleSubscribe(const RpcRequestBody& req, const Message& envelope,
                       QrpcServer::Responder respond);
  void HandlePoll(const RpcRequestBody& req, const Message& envelope,
                  QrpcServer::Responder respond);

  // Cached live instance for server-side execution; invalidated on commit.
  Result<RdoInstance*> InstanceFor(const std::string& name);
  void DropInstance(const std::string& name);
  void NotifySubscribers(const std::string& name, uint64_t version,
                         const std::string& except_host);

  EventLoop* loop_;
  TransportManager* transport_;
  QrpcServer* qrpc_;
  RoverServerOptions options_;
  RoverServerStats stats_;
  ObjectStore store_;
  ConflictResolverRegistry resolvers_;
  std::map<std::string, std::unique_ptr<RdoInstance>> instances_;
  std::map<std::string, std::set<std::string>> subscribers_;  // name -> hosts
};

}  // namespace rover

#endif  // ROVER_SRC_STORE_SERVER_H_
