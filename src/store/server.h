// Rover server (paper §5.1): mediates access to RDOs for client access
// managers. It exposes the toolkit's server-side operations over QRPC --
// import (fetch), export (commit with conflict detection/resolution),
// server-side method invocation, creation, listing -- and pushes
// best-effort invalidation notices to subscribed clients when an object
// commits a new version.

#ifndef ROVER_SRC_STORE_SERVER_H_
#define ROVER_SRC_STORE_SERVER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/qrpc/qrpc.h"
#include "src/rdo/rdo.h"
#include "src/store/conflict.h"
#include "src/store/object_store.h"
#include "src/store/server_store.h"

namespace rover {

class ReplicationSender;

struct RoverServerOptions {
  ExecLimits rdo_limits;
  RdoCostModel rdo_costs;
  size_t instance_cache_max = 64;
  bool send_invalidations = true;
  // Invalidations are best-effort: a non-zero TTL withdraws ones still
  // queued for an unreachable subscriber after this long instead of letting
  // them pile up behind a dead link. Zero = queue forever.
  Duration invalidation_ttl = Duration::Zero();
  // After this many consecutive expired invalidations to one host, the host
  // is dropped from every subscription set (it re-subscribes when it next
  // talks to us). Zero disables the garbage collection.
  size_t subscriber_drop_after_failures = 3;
};

struct RoverServerStats {
  uint64_t imports = 0;
  uint64_t exports = 0;
  uint64_t invokes = 0;
  uint64_t invalidations_sent = 0;
  uint64_t invalidations_expired = 0;  // TTL fired before delivery
  uint64_t unsubscribes = 0;
  uint64_t subscribers_dropped = 0;    // GC'd after repeated expiries
  uint64_t deltas_sent = 0;            // imports answered with a delta
  uint64_t imports_not_modified = 0;   // client already held the version
  uint64_t delta_bytes_saved = 0;      // full-body bytes not shipped
  // Storage fault handling (journal device).
  uint64_t wal_space_exhausted = 0;    // journal flushes refused with ENOSPC
  uint64_t wal_space_recoveries = 0;   // degraded episodes ended by compaction
  uint64_t wal_compactions_forced = 0; // compactions run to reclaim WAL space
  uint64_t wal_flush_failures = 0;     // journal flushes terminally failed
};

// Invalidation control-message payload helpers (shared with the client
// access manager).
Bytes EncodeInvalidation(const std::string& name, uint64_t version);
struct Invalidation {
  std::string name;
  uint64_t version = 0;
};
Result<Invalidation> DecodeInvalidation(const Bytes& payload);
Result<Invalidation> DecodeInvalidation(const Buffer& payload);

// Reply wrapper for the two-argument form of rover.import
// ([path, cached_version]); the one-argument form still returns the bare
// encoded descriptor. Shared with the client access manager.
//   kFull:        varint kind | bytes full_encoded_descriptor
//   kDelta:       varint kind | varint base_version | bytes delta
//   kNotModified: varint kind | varint version
enum class ImportReplyKind : uint8_t { kFull = 0, kDelta = 1, kNotModified = 2 };

class RoverServer {
 public:
  // With a non-null `stable_store`, every RPC's store mutations and its
  // duplicate-cache response entry are journaled as one atomic WAL
  // transaction before the response leaves, and the WAL is compacted into
  // snapshots as it grows.
  RoverServer(EventLoop* loop, TransportManager* transport, QrpcServer* qrpc,
              RoverServerOptions options = {}, ServerStableStore* stable_store = nullptr);

  ObjectStore* store() { return &store_; }
  ConflictResolverRegistry* resolvers() { return &resolvers_; }
  const RoverServerStats& stats() const { return stats_; }

  // Convenience for tests/benches/examples: create an object directly.
  Status CreateObject(const RdoDescriptor& descriptor);

  // Rebuilds the server image from recovered stable state: snapshot load,
  // WAL replay (mutations + duplicate-cache entries), epoch installation.
  // Subscriptions and live RDO instances are volatile and start empty.
  void RestoreFromRecovery(const RecoveredServerState& recovered);

  // Reports recovery outcomes (the survived duplicate-response keys) to an
  // external invariant checker. Null disables (the default).
  void SetCheckListener(obs::CheckListener* listener) { check_ = listener; }

  // Proactive WAL scrub: CRC-sweeps the durable journal, quarantines
  // interior-corrupt records, and -- when anything was quarantined and no
  // transaction is mid-journal -- forces a compaction snapshot so the
  // intact in-memory image re-covers the hole. Returns quarantined count.
  size_t ScrubStableStore();

  // Invoked (asynchronously, by the owning node) when a response journal
  // flush terminally fails with kUnavailable -- retries exhausted, device
  // misbehaving beyond the transient model. The in-memory image has then
  // diverged from what stable storage will recover, so the node should
  // fail-stop this incarnation: the client's resend re-executes against
  // recovered state. (Permanent sync failure, kDataLoss, rides the WAL's
  // own fail-stop handler instead.)
  void SetWalFailureHandler(std::function<void()> handler) {
    wal_failure_handler_ = std::move(handler);
  }

  // True while the journal device is out of space and responses are gated
  // on a reclaim compaction.
  bool WalSpaceDegraded() const { return wal_space_degraded_; }

  // Primary role: every journaled transaction is shipped through `sender`
  // and response releases gate on the acked replication watermark (see
  // replication.h). Null (the default) disables shipping.
  void SetReplicationSender(ReplicationSender* sender) { replication_ = sender; }

  // Backup role: applies one transaction shipped by the primary -- store
  // mutations plus the duplicate-cache response entry -- with journal hooks
  // suppressed, then journals it to the local WAL. `done` runs with the
  // local durability outcome; the transaction must only be acked upstream
  // when it is durable here.
  void ApplyReplicatedTransaction(const ServerTransaction& txn,
                                  std::function<void(const Status&)> done);

  // Backup role: replaces the whole server image with a resync snapshot
  // from the primary (object store + duplicate cache) and persists it as a
  // local snapshot. `done` runs once the snapshot is durable locally.
  void AdoptReplicatedSnapshot(Bytes object_image,
                               std::vector<CachedResponseEntry> responses,
                               std::function<void()> done);

  size_t SubscriberCount(const std::string& name) const {
    auto it = subscribers_.find(name);
    return it == subscribers_.end() ? 0 : it->second.size();
  }

 private:
  void RegisterMethods();
  void WireDurability();
  void RecordOp(ReplayOp op);
  void MaybeCompact();
  // Journal ENOSPC path: queue the blocked response release, put the QRPC
  // server into storage-degraded refusal, and drive compaction until the
  // re-flush succeeds (or the retry budget runs out).
  void RecoverWalSpace(std::function<void()> release);
  void TryReclaimWalSpace();
  void FinishWalRecovery(bool ok);
  void OnInvalidationDelivered(const std::string& host, const Status& status);
  void DropSubscriber(const std::string& host);
  void HandleImport(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleExport(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleInvoke(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleCreate(const RpcRequestBody& req, const Message& envelope,
                    QrpcServer::Responder respond);
  void HandleList(const RpcRequestBody& req, const Message& envelope,
                  QrpcServer::Responder respond);
  void HandleVersion(const RpcRequestBody& req, const Message& envelope,
                     QrpcServer::Responder respond);
  void HandleSubscribe(const RpcRequestBody& req, const Message& envelope,
                       QrpcServer::Responder respond);
  void HandleUnsubscribe(const RpcRequestBody& req, const Message& envelope,
                         QrpcServer::Responder respond);
  void HandlePoll(const RpcRequestBody& req, const Message& envelope,
                  QrpcServer::Responder respond);

  // Cached live instance for server-side execution; invalidated on commit.
  Result<RdoInstance*> InstanceFor(const std::string& name);
  void DropInstance(const std::string& name);
  void NotifySubscribers(const std::string& name, uint64_t version,
                         const std::string& except_host);
  // Drains pending_invalidations_: encodes each (name, latest version) ONCE
  // into a refcounted Buffer and enqueues per-subscriber messages that
  // share it -- N sends cost N refcount bumps, not N encodes + N copies.
  void FlushInvalidations();

  EventLoop* loop_;
  TransportManager* transport_;
  QrpcServer* qrpc_;
  RoverServerOptions options_;
  ServerStableStore* stable_store_;  // may be null: volatile server
  ReplicationSender* replication_ = nullptr;  // non-null on a primary
  obs::CheckListener* check_ = nullptr;
  RoverServerStats stats_;
  ObjectStore store_;
  ConflictResolverRegistry resolvers_;
  std::map<std::string, std::unique_ptr<RdoInstance>> instances_;
  std::map<std::string, std::set<std::string>> subscribers_;  // name -> hosts
  // Store mutations made by the handler for (client, rpc_id), buffered until
  // its response is journaled so the pair forms one atomic WAL transaction.
  std::map<std::pair<std::string, uint64_t>, std::vector<ReplayOp>> pending_ops_;
  // Consecutive expired invalidations per subscriber host.
  std::map<std::string, size_t> invalidation_failures_;
  // Same-tick invalidation batching: commits occurring at one virtual
  // instant are coalesced per object (latest version wins) and flushed by a
  // single deferred event, so a burst of imports to one object does not
  // fan out once per commit. Ordered map: flush order is deterministic.
  struct PendingInvalidation {
    uint64_t version = 0;
    std::string except_host;
  };
  std::map<std::string, PendingInvalidation> pending_invalidations_;
  bool invalidation_flush_armed_ = false;
  // True while RestoreFromRecovery replays the WAL: journal hooks must not
  // re-log the replayed mutations.
  bool replaying_ = false;
  // Journal-device ENOSPC recovery: while degraded, new requests are refused
  // (QrpcServer::SetStorageDegraded) and the releases of responses whose
  // journal flush hit ENOSPC wait here for a reclaim compaction.
  bool wal_space_degraded_ = false;
  bool wal_reclaim_in_progress_ = false;
  size_t wal_reclaim_attempts_ = 0;
  std::vector<std::function<void()>> wal_space_waiters_;
  std::function<void()> wal_failure_handler_;
  // Invalidation delivered-callbacks capture a weak_ptr to this token and
  // bail out if the server was destroyed (simulated crash) first.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace rover

#endif  // ROVER_SRC_STORE_SERVER_H_
