#include "src/store/replication.h"

#include <algorithm>
#include <utility>

#include "src/qrpc/qrpc.h"
#include "src/store/server.h"
#include "src/util/logging.h"

namespace rover {
namespace {

// kControl payload tags. Sender -> receiver: RTXN (one shipped transaction),
// RSNP (full-image resync). Receiver -> sender: RACK (cumulative durable
// watermark), RSYN (resync request). Unknown tags are ignored so the channel
// can grow.
constexpr char kTagTxn[] = "RTXN";
constexpr char kTagAck[] = "RACK";
constexpr char kTagResyncRequest[] = "RSYN";
constexpr char kTagSnapshot[] = "RSNP";

Bytes EncodeTxnMessage(uint64_t seq, uint64_t epoch, const ServerTransaction& txn) {
  WireWriter writer;
  writer.WriteString(kTagTxn);
  writer.WriteVarint(seq);
  writer.WriteVarint(epoch);
  writer.WriteBytes(txn.Encode());
  return writer.TakeData();
}

Bytes EncodeAckMessage(uint64_t watermark) {
  WireWriter writer;
  writer.WriteString(kTagAck);
  writer.WriteVarint(watermark);
  return writer.TakeData();
}

Bytes EncodeResyncRequest(uint64_t last_applied) {
  WireWriter writer;
  writer.WriteString(kTagResyncRequest);
  writer.WriteVarint(last_applied);
  return writer.TakeData();
}

Bytes EncodeSnapshotMessage(const ReplicationSender::ResyncImage& image) {
  WireWriter writer;
  writer.WriteString(kTagSnapshot);
  writer.WriteVarint(image.baseline_seq);
  writer.WriteVarint(image.epoch);
  writer.WriteBytes(image.object_image);
  writer.WriteVarint(image.responses.size());
  for (const CachedResponseEntry& r : image.responses) {
    writer.WriteString(r.client);
    writer.WriteVarint(r.rpc_id);
    writer.WriteVarint(r.response.size());
    ChargePayloadCopy(r.response.size());
    writer.WriteRaw(r.response.data(), r.response.size());
  }
  return writer.TakeData();
}

}  // namespace

ReplicationSender::ReplicationSender(EventLoop* loop, TransportManager* transport,
                                     ReplicationOptions options)
    : loop_(loop), transport_(transport), options_(std::move(options)) {
  transport_->SetHandler(MessageType::kControl,
                         [this](const Message& msg) { HandleControl(msg); });
}

ReplicationSender::~ReplicationSender() {
  transport_->SetHandler(MessageType::kControl, nullptr);
}

void ReplicationSender::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  c_shipped_ = registry->counter(prefix + ".txns_shipped");
  c_acks_ = registry->counter(prefix + ".acks_received");
  c_resyncs_ = registry->counter(prefix + ".resyncs_served");
  c_degrades_ = registry->counter(prefix + ".sync_degrades");
  g_lag_ = registry->gauge(prefix + ".lag_records");
  g_watermark_ = registry->gauge(prefix + ".acked_watermark");
}

void ReplicationSender::Ship(uint64_t seq, uint64_t epoch, const ServerTransaction& txn) {
  Message msg;
  msg.header.type = MessageType::kControl;
  msg.header.priority = Priority::kDefault;
  msg.header.dst = options_.peer;
  msg.payload = EncodeTxnMessage(seq, epoch, txn);
  const size_t bytes = msg.payload.size();
  transport_->Send(std::move(msg));
  last_shipped_ = std::max(last_shipped_, seq);
  ++stats_.transactions_shipped;
  stats_.bytes_shipped += bytes;
  if (c_shipped_ != nullptr) {
    c_shipped_->Increment();
  }
  UpdateLagGauge();
}

void ReplicationSender::GateRelease(uint64_t seq, std::function<void()> release) {
  if (options_.sync_timeout <= Duration::Zero() || degraded_ ||
      seq <= acked_watermark_) {
    release();
    return;
  }
  gated_.push_back({seq, loop_->now() + options_.sync_timeout, std::move(release)});
  ArmDegradeTimer();
}

void ReplicationSender::HandleControl(const Message& msg) {
  WireReader reader(msg.payload.data(), msg.payload.size());
  auto tag = reader.ReadString();
  if (!tag.ok()) {
    return;
  }
  if (*tag == kTagAck) {
    auto watermark = reader.ReadVarint();
    if (watermark.ok()) {
      AckWatermark(*watermark);
    }
  } else if (*tag == kTagResyncRequest) {
    ServeResync();
  }
  // Anything else is not replication traffic; ignore.
}

void ReplicationSender::AckWatermark(uint64_t watermark) {
  ++stats_.acks_received;
  if (c_acks_ != nullptr) {
    c_acks_->Increment();
  }
  if (watermark <= acked_watermark_) {
    return;
  }
  acked_watermark_ = watermark;
  while (!gated_.empty() && gated_.front().seq <= acked_watermark_) {
    auto release = std::move(gated_.front().release);
    gated_.pop_front();
    release();
  }
  if (degraded_ && acked_watermark_ >= last_shipped_) {
    // The backup caught back up; future releases gate again.
    degraded_ = false;
  }
  UpdateLagGauge();
}

void ReplicationSender::ServeResync() {
  if (!resync_provider_) {
    return;
  }
  ResyncImage image = resync_provider_();
  Message msg;
  msg.header.type = MessageType::kControl;
  msg.header.priority = Priority::kDefault;
  msg.header.dst = options_.peer;
  msg.payload = EncodeSnapshotMessage(image);
  transport_->Send(std::move(msg));
  ++stats_.resyncs_served;
  if (c_resyncs_ != nullptr) {
    c_resyncs_->Increment();
  }
}

void ReplicationSender::ArmDegradeTimer() {
  if (degrade_timer_armed_ || gated_.empty()) {
    return;
  }
  degrade_timer_armed_ = true;
  loop_->ScheduleAt(gated_.front().deadline,
                    [this, weak = std::weak_ptr<char>(alive_)] {
    if (weak.expired()) {
      return;
    }
    degrade_timer_armed_ = false;
    if (gated_.empty()) {
      return;
    }
    if (loop_->now() >= gated_.front().deadline) {
      // The oldest gated response has waited out the sync window: stop
      // blocking the primary on an unreachable backup. Acked work released
      // from here on is no longer guaranteed to survive a failover, which
      // the checker is told about.
      degraded_ = true;
      ++stats_.sync_degrades;
      if (c_degrades_ != nullptr) {
        c_degrades_->Increment();
      }
      ROVER_LOG(Info) << "replication to " << options_.peer
                      << " degraded to async (watermark " << acked_watermark_
                      << ", shipped " << last_shipped_ << ")";
      while (!gated_.empty()) {
        auto release = std::move(gated_.front().release);
        gated_.pop_front();
        release();
      }
      if (degrade_listener_) {
        degrade_listener_();
      }
      return;
    }
    ArmDegradeTimer();
  });
}

void ReplicationSender::UpdateLagGauge() {
  if (g_lag_ != nullptr) {
    g_lag_->Set(static_cast<int64_t>(last_shipped_ - acked_watermark_));
  }
  if (g_watermark_ != nullptr) {
    g_watermark_->Set(static_cast<int64_t>(acked_watermark_));
  }
}

ReplicationReceiver::ReplicationReceiver(EventLoop* loop, TransportManager* transport,
                                         RoverServer* server,
                                         ServerStableStore* stable_store,
                                         QrpcServer* qrpc, ReplicationOptions options)
    : loop_(loop), transport_(transport), server_(server),
      stable_store_(stable_store), qrpc_(qrpc), options_(std::move(options)) {
  transport_->SetHandler(MessageType::kControl,
                         [this](const Message& msg) { HandleControl(msg); });
  // Bootstrap: pull whatever state the primary already has. Also heals the
  // case where this backup restarted and lost its volatile cursor.
  RequestResync();
}

ReplicationReceiver::~ReplicationReceiver() {
  transport_->SetHandler(MessageType::kControl, nullptr);
}

void ReplicationReceiver::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  c_applied_ = registry->counter(prefix + ".txns_applied");
  c_acks_ = registry->counter(prefix + ".acks_sent");
  c_resyncs_ = registry->counter(prefix + ".resyncs_requested");
  c_snapshots_ = registry->counter(prefix + ".snapshots_applied");
  c_promotions_ = registry->counter(prefix + ".promotions");
  g_last_applied_ = registry->gauge(prefix + ".last_applied");
}

uint64_t ReplicationReceiver::Promote() {
  const uint64_t durable_epoch =
      stable_store_ != nullptr ? stable_store_->epoch() : qrpc_->epoch();
  if (promoted_) {
    return qrpc_->epoch();
  }
  promoted_ = true;
  // Fence the dead primary: every response this server sends from now on
  // carries an epoch strictly above anything the primary ever used, so
  // clients treat the takeover like a restart of their home server.
  // Transactions still buffered behind a sequence gap are discarded: they
  // were never acked, so the primary never released their responses.
  const uint64_t epoch = std::max(durable_epoch, primary_epoch_seen_) + 1;
  if (stable_store_ != nullptr) {
    stable_store_->AdoptEpoch(epoch);
  }
  qrpc_->set_epoch(epoch);
  buffered_.clear();
  ++stats_.promotions;
  if (c_promotions_ != nullptr) {
    c_promotions_->Increment();
  }
  if (check_ != nullptr) {
    std::vector<std::pair<std::string, uint64_t>> replicated;
    for (const auto& r : qrpc_->CachedResponses()) {
      replicated.emplace_back(r.client, r.rpc_id);
    }
    check_->OnFailover(options_.peer, transport_->local_host(), epoch, replicated);
  }
  ROVER_LOG(Info) << transport_->local_host() << " promoted to primary (epoch "
                  << epoch << ", replaces " << options_.peer << ")";
  return epoch;
}

void ReplicationReceiver::HandleControl(const Message& msg) {
  WireReader reader(msg.payload.data(), msg.payload.size());
  auto tag = reader.ReadString();
  if (!tag.ok()) {
    return;
  }
  if (*tag == kTagTxn) {
    auto seq = reader.ReadVarint();
    auto epoch = reader.ReadVarint();
    auto encoded_len = reader.ReadVarint();
    if (!seq.ok() || !epoch.ok() || !encoded_len.ok() ||
        *encoded_len > reader.remaining()) {
      return;
    }
    auto encoded_ptr = reader.ReadRaw(*encoded_len);
    if (!encoded_ptr.ok()) {
      return;
    }
    // Decode straight out of the control payload; the transaction's response
    // slice keeps the frame storage alive through the duplicate cache.
    const Buffer encoded = msg.payload.Slice(
        static_cast<size_t>(*encoded_ptr - msg.payload.data()),
        static_cast<size_t>(*encoded_len));
    auto txn = ServerTransaction::Decode(encoded);
    if (!txn.ok()) {
      ROVER_LOG(Warning) << "dropping undecodable replicated transaction seq "
                      << *seq;
      return;
    }
    HandleTransaction(*seq, *epoch, *std::move(txn));
  } else if (*tag == kTagSnapshot) {
    auto baseline = reader.ReadVarint();
    auto epoch = reader.ReadVarint();
    auto image = reader.ReadBytes();
    auto count = reader.ReadVarint();
    if (!baseline.ok() || !epoch.ok() || !image.ok() || !count.ok()) {
      return;
    }
    std::vector<CachedResponseEntry> responses;
    responses.reserve(*count);
    for (uint64_t i = 0; i < *count; ++i) {
      CachedResponseEntry entry;
      auto client = reader.ReadString();
      auto rpc_id = reader.ReadVarint();
      auto response_len = reader.ReadVarint();
      if (!client.ok() || !rpc_id.ok() || !response_len.ok() ||
          *response_len > reader.remaining()) {
        return;
      }
      auto response_ptr = reader.ReadRaw(*response_len);
      if (!response_ptr.ok()) {
        return;
      }
      entry.client = *std::move(client);
      entry.rpc_id = *rpc_id;
      entry.response = msg.payload.Slice(
          static_cast<size_t>(*response_ptr - msg.payload.data()),
          static_cast<size_t>(*response_len));
      responses.push_back(std::move(entry));
    }
    HandleSnapshot(*baseline, *epoch, *std::move(image), std::move(responses));
  }
}

void ReplicationReceiver::HandleTransaction(uint64_t seq, uint64_t epoch,
                                            ServerTransaction txn) {
  if (promoted_) {
    return;  // the old primary is fenced; nothing it says matters now
  }
  primary_epoch_seen_ = std::max(primary_epoch_seen_, epoch);
  if (seq <= last_applied_) {
    ++stats_.duplicates_ignored;
    SendAck();  // re-ack so a primary that missed it can unblock releases
    return;
  }
  buffered_.emplace(seq, std::make_pair(epoch, std::move(txn)));
  DrainBuffered();
  if (!buffered_.empty() && buffered_.begin()->first > last_applied_ + 1) {
    // Sequence gap: ship traffic was lost with a crashed process (or this
    // backup attached after the primary already had state). Heal with a
    // full-image resync rather than applying out of order.
    RequestResync();
  }
}

void ReplicationReceiver::DrainBuffered() {
  while (true) {
    auto it = buffered_.find(last_applied_ + 1);
    if (it == buffered_.end()) {
      return;
    }
    const uint64_t seq = it->first;
    ServerTransaction txn = std::move(it->second.second);
    buffered_.erase(it);
    last_applied_ = seq;
    ++stats_.transactions_applied;
    if (c_applied_ != nullptr) {
      c_applied_->Increment();
    }
    if (g_last_applied_ != nullptr) {
      g_last_applied_->Set(static_cast<int64_t>(last_applied_));
    }
    server_->ApplyReplicatedTransaction(
        txn, [this, seq, weak = std::weak_ptr<char>(alive_)](const Status& durable) {
          if (weak.expired() || !durable.ok()) {
            return;  // not durable here: never ack it
          }
          last_durable_ = std::max(last_durable_, seq);
          SendAck();
        });
  }
}

void ReplicationReceiver::HandleSnapshot(uint64_t baseline_seq, uint64_t epoch,
                                         Bytes object_image,
                                         std::vector<CachedResponseEntry> responses) {
  resync_pending_ = false;
  if (promoted_) {
    return;
  }
  primary_epoch_seen_ = std::max(primary_epoch_seen_, epoch);
  if (baseline_seq < last_applied_) {
    return;  // stale snapshot from before what we already applied
  }
  last_applied_ = baseline_seq;
  ++stats_.snapshots_applied;
  if (c_snapshots_ != nullptr) {
    c_snapshots_->Increment();
  }
  if (g_last_applied_ != nullptr) {
    g_last_applied_->Set(static_cast<int64_t>(last_applied_));
  }
  server_->AdoptReplicatedSnapshot(
      std::move(object_image), std::move(responses),
      [this, baseline_seq, weak = std::weak_ptr<char>(alive_)] {
        if (weak.expired()) {
          return;
        }
        last_durable_ = std::max(last_durable_, baseline_seq);
        SendAck();
      });
  while (!buffered_.empty() && buffered_.begin()->first <= baseline_seq) {
    buffered_.erase(buffered_.begin());
  }
  DrainBuffered();
}

void ReplicationReceiver::RequestResync() {
  if (resync_pending_ || promoted_) {
    return;
  }
  resync_pending_ = true;
  ++stats_.resyncs_requested;
  if (c_resyncs_ != nullptr) {
    c_resyncs_->Increment();
  }
  Message msg;
  msg.header.type = MessageType::kControl;
  msg.header.priority = Priority::kDefault;
  msg.header.dst = options_.peer;
  msg.payload = EncodeResyncRequest(last_applied_);
  transport_->Send(std::move(msg));
  // The request (or its snapshot) can be lost with a crashing process; ask
  // again if nothing arrives.
  loop_->ScheduleAfter(Duration::Seconds(2),
                       [this, weak = std::weak_ptr<char>(alive_)] {
    if (weak.expired() || !resync_pending_ || promoted_) {
      return;
    }
    resync_pending_ = false;
    RequestResync();
  });
}

void ReplicationReceiver::SendAck() {
  if (promoted_) {
    return;
  }
  Message msg;
  msg.header.type = MessageType::kControl;
  msg.header.priority = Priority::kDefault;
  msg.header.dst = options_.peer;
  msg.payload = EncodeAckMessage(last_durable_);
  transport_->Send(std::move(msg));
  ++stats_.acks_sent;
  if (c_acks_ != nullptr) {
    c_acks_->Increment();
  }
}

}  // namespace rover
