#include "src/store/server.h"

#include <utility>

#include "src/obs/cpu_scope.h"
#include "src/store/replication.h"
#include "src/tclite/value.h"
#include "src/util/delta.h"
#include "src/util/logging.h"

namespace rover {

Bytes EncodeInvalidation(const std::string& name, uint64_t version) {
  WireWriter writer;
  writer.WriteString("INVAL");
  writer.WriteString(name);
  writer.WriteVarint(version);
  return writer.TakeData();
}

namespace {

Result<Invalidation> DecodeInvalidationFrom(WireReader* reader) {
  ROVER_ASSIGN_OR_RETURN(std::string tag, reader->ReadString());
  if (tag != "INVAL") {
    return DataLossError("not an invalidation message");
  }
  Invalidation inval;
  ROVER_ASSIGN_OR_RETURN(inval.name, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(inval.version, reader->ReadVarint());
  return inval;
}

}  // namespace

Result<Invalidation> DecodeInvalidation(const Bytes& payload) {
  WireReader reader(payload);
  return DecodeInvalidationFrom(&reader);
}

Result<Invalidation> DecodeInvalidation(const Buffer& payload) {
  WireReader reader(payload.data(), payload.size());
  return DecodeInvalidationFrom(&reader);
}

namespace {

RpcResponseBody ErrorResponse(const Status& status) {
  RpcResponseBody body;
  body.code = status.code();
  body.error_message = status.message();
  return body;
}

RpcResponseBody ValueResponse(RpcValue value) {
  RpcResponseBody body;
  body.result = std::move(value);
  return body;
}

}  // namespace

RoverServer::RoverServer(EventLoop* loop, TransportManager* transport, QrpcServer* qrpc,
                         RoverServerOptions options, ServerStableStore* stable_store)
    : loop_(loop), transport_(transport), qrpc_(qrpc), options_(options),
      stable_store_(stable_store) {
  RegisterMethods();
  if (stable_store_ != nullptr) {
    WireDurability();
  }
}

void RoverServer::WireDurability() {
  store_.SetJournalHooks(
      [this](const RdoDescriptor& committed) {
        ReplayOp op;
        op.committed = committed;
        RecordOp(std::move(op));
      },
      [this](const std::string& name) {
        ReplayOp op;
        op.is_remove = true;
        op.name = name;
        RecordOp(std::move(op));
      });
  qrpc_->SetResponseJournal([this](const std::string& client, uint64_t rpc_id,
                                   const Buffer& encoded_response,
                                   std::function<void()> release) {
    ServerTransaction txn;
    auto pending = pending_ops_.find({client, rpc_id});
    if (pending != pending_ops_.end()) {
      txn.ops = std::move(pending->second);
      pending_ops_.erase(pending);
    }
    txn.has_response = true;
    txn.client = client;
    txn.rpc_id = rpc_id;
    txn.response = encoded_response;
    const uint64_t seq = stable_store_->LogTransaction(txn);
    if (replication_ != nullptr) {
      replication_->Ship(seq, stable_store_->epoch(), txn);
    }
    stable_store_->Flush([this, seq, weak = std::weak_ptr<char>(alive_),
                          release = std::move(release)](const Status& flushed) mutable {
      if (weak.expired()) {
        return;  // server crashed while the journal write was in flight
      }
      if (flushed.ok()) {
        // Semi-synchronous replication: the response may only leave once
        // the transaction is durable locally AND covered by the backup's
        // acked watermark -- that pairing is what lets a failover promise
        // that no acknowledged work is lost.
        if (replication_ != nullptr) {
          replication_->GateRelease(seq, std::move(release));
        } else {
          release();
        }
        return;
      }
      if (flushed.code() == StatusCode::kResourceExhausted) {
        // Journal device full. The transaction still sits in the WAL's
        // volatile tail; hold the response, refuse new work, and compact to
        // reclaim space. The snapshot captures the already-applied store
        // mutations AND the (undurable) duplicate-cache entry, so the
        // reclaim makes this transaction durable and the release can fire.
        ++stats_.wal_space_exhausted;
        if (replication_ != nullptr) {
          RecoverWalSpace([this, seq, release = std::move(release)]() mutable {
            if (replication_ != nullptr) {
              replication_->GateRelease(seq, std::move(release));
            } else {
              release();
            }
          });
        } else {
          RecoverWalSpace(std::move(release));
        }
        return;
      }
      // Terminal failure: the response must not leave, and the in-memory
      // image (mutations already applied, response cached) has diverged from
      // what stable storage will recover. Fail-stop this incarnation so the
      // client's resend re-executes against recovered state; holding the
      // undurable cached response instead would wedge the call forever.
      // kDataLoss (permanent sync failure) already fail-stops via the WAL's
      // own handler; kUnavailable (retries exhausted) needs ours.
      ++stats_.wal_flush_failures;
      if (flushed.code() == StatusCode::kUnavailable && wal_failure_handler_) {
        wal_failure_handler_();
      }
    });
    MaybeCompact();
  });
}

void RoverServer::RecoverWalSpace(std::function<void()> release) {
  if (release) {
    wal_space_waiters_.push_back(std::move(release));
  }
  if (!wal_space_degraded_) {
    wal_space_degraded_ = true;
    qrpc_->SetStorageDegraded(true);
  }
  if (wal_reclaim_in_progress_) {
    return;  // the running reclaim will drain the waiter queue
  }
  wal_reclaim_in_progress_ = true;
  wal_reclaim_attempts_ = 0;
  TryReclaimWalSpace();
}

void RoverServer::TryReclaimWalSpace() {
  // Bounded: a permanently full device must not keep the event loop alive
  // with reclaim retries forever. On exhaustion the episode ends in failure
  // (waiters drop, responses never leave); the next journal ENOSPC re-arms.
  constexpr size_t kMaxReclaimAttempts = 40;
  if (++wal_reclaim_attempts_ > kMaxReclaimAttempts) {
    FinishWalRecovery(false);
    return;
  }
  auto weak = std::weak_ptr<char>(alive_);
  // Same atomicity rule as MaybeCompact: never snapshot while a handler has
  // mutations buffered but unjournaled. Also wait out any snapshot already
  // in flight (it may free the space itself).
  if (!pending_ops_.empty() || stable_store_->CompactionInProgress()) {
    loop_->ScheduleAfter(Duration::Millis(50), [this, weak] {
      if (!weak.expired()) {
        TryReclaimWalSpace();
      }
    });
    return;
  }
  ++stats_.wal_compactions_forced;
  std::vector<CachedResponseEntry> responses;
  for (auto& cached : qrpc_->CachedResponses()) {
    responses.push_back({cached.client, cached.rpc_id, std::move(cached.response)});
  }
  stable_store_->WriteSnapshot(store_.Serialize(), std::move(responses), [this, weak] {
    if (weak.expired()) {
      return;
    }
    // Snapshot written and the WAL truncated through its back record --
    // including the volatile tail the ENOSPC'd transactions occupy, which
    // the snapshot's duplicate-cache image now covers. Re-flush whatever
    // remains; with the tail reclaimed this normally has nothing to write.
    stable_store_->Flush([this, weak](const Status& reflushed) {
      if (weak.expired()) {
        return;
      }
      if (reflushed.ok()) {
        FinishWalRecovery(true);
        return;
      }
      if (reflushed.code() == StatusCode::kResourceExhausted) {
        loop_->ScheduleAfter(Duration::Millis(250), [this, weak] {
          if (!weak.expired()) {
            TryReclaimWalSpace();
          }
        });
        return;
      }
      ++stats_.wal_flush_failures;
      FinishWalRecovery(false);
    });
  });
}

void RoverServer::FinishWalRecovery(bool ok) {
  wal_reclaim_in_progress_ = false;
  // Cleared even on failure: leaving the refusal up with no reclaim running
  // would wedge the server permanently (refused requests never journal, so
  // nothing would ever re-arm recovery). Letting requests back in means the
  // next ENOSPC restarts a bounded episode -- and succeeds once space frees.
  wal_space_degraded_ = false;
  qrpc_->SetStorageDegraded(false);
  std::vector<std::function<void()>> waiters;
  waiters.swap(wal_space_waiters_);
  if (!ok) {
    // Reclaim could not make the journal durable. The dropped responses stay
    // cached but gated undurable, so resends would wait on releases that can
    // never fire -- fail-stop instead: the crash wipes the duplicate cache
    // and resends re-execute against recovered state.
    if (wal_failure_handler_) {
      wal_failure_handler_();
    }
    return;
  }
  ++stats_.wal_space_recoveries;
  for (auto& release : waiters) {
    release();
  }
}

size_t RoverServer::ScrubStableStore() {
  if (stable_store_ == nullptr) {
    return 0;
  }
  const StableLog::ScrubReport report = stable_store_->ScrubWal();
  if (report.quarantined.empty()) {
    return 0;
  }
  // The in-memory image is intact; re-snapshot it so the quarantined
  // transactions' effects are re-covered by stable state. Skipped when a
  // handler is mid-transaction (same rule as MaybeCompact) -- the next
  // regular compaction closes the hole instead.
  if (pending_ops_.empty() && !stable_store_->CompactionInProgress()) {
    ++stats_.wal_compactions_forced;
    std::vector<CachedResponseEntry> responses;
    for (auto& cached : qrpc_->CachedResponses()) {
      responses.push_back({cached.client, cached.rpc_id, std::move(cached.response)});
    }
    stable_store_->WriteSnapshot(store_.Serialize(), std::move(responses));
  }
  return report.quarantined.size();
}

void RoverServer::RecordOp(ReplayOp op) {
  if (replaying_) {
    return;  // WAL replay must not re-journal itself
  }
  const auto* request = qrpc_->current_request();
  if (request != nullptr) {
    pending_ops_[*request].push_back(std::move(op));
    return;
  }
  // Mutation outside any RPC (direct CreateObject etc.): its own
  // single-op transaction, flushed best-effort.
  ServerTransaction txn;
  txn.ops.push_back(std::move(op));
  const uint64_t seq = stable_store_->LogTransaction(txn);
  if (replication_ != nullptr) {
    replication_->Ship(seq, stable_store_->epoch(), txn);
  }
  stable_store_->Flush(nullptr);
}

void RoverServer::ApplyReplicatedTransaction(const ServerTransaction& txn,
                                             std::function<void(const Status&)> done) {
  replaying_ = true;  // journal hooks must not re-log the shipped mutations
  for (const ReplayOp& op : txn.ops) {
    if (op.is_remove) {
      (void)store_.Remove(op.name);
      DropInstance(op.name);
    } else {
      store_.RestoreCommit(op.committed);
      DropInstance(op.committed.name);
    }
  }
  replaying_ = false;
  if (txn.has_response) {
    qrpc_->RestoreCachedResponse(txn.client, txn.rpc_id, txn.response);
  }
  if (stable_store_ == nullptr) {
    if (done) {
      done(Status::Ok());
    }
    return;
  }
  stable_store_->LogTransaction(txn);
  stable_store_->Flush([weak = std::weak_ptr<char>(alive_),
                        done = std::move(done)](const Status& flushed) {
    if (weak.expired() || !done) {
      return;
    }
    done(flushed);
  });
  MaybeCompact();
}

void RoverServer::AdoptReplicatedSnapshot(Bytes object_image,
                                          std::vector<CachedResponseEntry> responses,
                                          std::function<void()> done) {
  replaying_ = true;
  if (!object_image.empty()) {
    Status loaded = store_.Load(object_image);
    if (!loaded.ok()) {
      ROVER_LOG(Warning) << "replicated snapshot load failed: " << loaded.message();
    }
  }
  replaying_ = false;
  for (const CachedResponseEntry& entry : responses) {
    qrpc_->RestoreCachedResponse(entry.client, entry.rpc_id, entry.response);
  }
  instances_.clear();
  if (stable_store_ == nullptr) {
    if (done) {
      done();
    }
    return;
  }
  stable_store_->WriteSnapshot(store_.Serialize(), std::move(responses), std::move(done));
}

void RoverServer::MaybeCompact() {
  if (!stable_store_->NeedsCompaction()) {
    return;
  }
  // Compaction must not run while any RPC has applied mutations whose
  // transaction is not yet journaled (buffered in pending_ops_): the
  // snapshot would capture those mutations WITHOUT their duplicate-cache
  // responses, and a crash before the straggler's transaction flushes would
  // recover the mutation with no record that its RPC completed -- the
  // client's resend then re-executes it (double-apply). Defer; this is
  // re-checked at every subsequent response journal, and pending_ops_
  // drains as soon as the in-flight handlers respond.
  if (!pending_ops_.empty()) {
    return;
  }
  std::vector<CachedResponseEntry> responses;
  for (auto& cached : qrpc_->CachedResponses()) {
    responses.push_back({cached.client, cached.rpc_id, std::move(cached.response)});
  }
  stable_store_->WriteSnapshot(store_.Serialize(), std::move(responses));
}

void RoverServer::RestoreFromRecovery(const RecoveredServerState& recovered) {
  replaying_ = true;
  std::vector<std::pair<std::string, uint64_t>> survived;
  if (!recovered.object_image.empty()) {
    Status loaded = store_.Load(recovered.object_image);
    if (!loaded.ok()) {
      ROVER_LOG(Warning) << "server snapshot load failed: " << loaded.message();
    }
  }
  for (const CachedResponseEntry& entry : recovered.snapshot_responses) {
    qrpc_->RestoreCachedResponse(entry.client, entry.rpc_id, entry.response);
    survived.emplace_back(entry.client, entry.rpc_id);
  }
  for (const ServerTransaction& txn : recovered.wal) {
    for (const ReplayOp& op : txn.ops) {
      if (op.is_remove) {
        (void)store_.Remove(op.name);  // hooks suppressed by replaying_
      } else {
        store_.RestoreCommit(op.committed);
      }
    }
    if (txn.has_response) {
      qrpc_->RestoreCachedResponse(txn.client, txn.rpc_id, txn.response);
      survived.emplace_back(txn.client, txn.rpc_id);
    }
  }
  replaying_ = false;
  qrpc_->set_epoch(recovered.epoch);
  // Volatile by design: live instances, subscriptions, half-built
  // transactions, delivery failure counts.
  instances_.clear();
  subscribers_.clear();
  pending_ops_.clear();
  invalidation_failures_.clear();
  if (check_ != nullptr) {
    check_->OnServerRecovered(transport_->local_host(), recovered.epoch, survived);
  }
}

void RoverServer::RegisterMethods() {
  auto bind = [this](void (RoverServer::*method)(const RpcRequestBody&, const Message&,
                                                 QrpcServer::Responder)) {
    return [this, method](const RpcRequestBody& req, const Message& envelope,
                          QrpcServer::Responder respond) {
      (this->*method)(req, envelope, std::move(respond));
    };
  };
  qrpc_->RegisterHandler("rover.import", bind(&RoverServer::HandleImport));
  qrpc_->RegisterHandler("rover.export", bind(&RoverServer::HandleExport));
  qrpc_->RegisterHandler("rover.invoke", bind(&RoverServer::HandleInvoke));
  qrpc_->RegisterHandler("rover.create", bind(&RoverServer::HandleCreate));
  qrpc_->RegisterHandler("rover.list", bind(&RoverServer::HandleList));
  qrpc_->RegisterHandler("rover.version", bind(&RoverServer::HandleVersion));
  qrpc_->RegisterHandler("rover.subscribe", bind(&RoverServer::HandleSubscribe));
  qrpc_->RegisterHandler("rover.unsubscribe", bind(&RoverServer::HandleUnsubscribe));
  qrpc_->RegisterHandler("rover.poll", bind(&RoverServer::HandlePoll));
}

Status RoverServer::CreateObject(const RdoDescriptor& descriptor) {
  return store_.Create(descriptor);
}

void RoverServer::HandleImport(const RpcRequestBody& req, const Message& envelope,
                               QrpcServer::Responder respond) {
  ++stats_.imports;
  if (req.args.empty() || req.args.size() > 2) {
    respond(ErrorResponse(
        InvalidArgumentError("rover.import expects [name] or [name, cached_version]")));
    return;
  }
  auto name = RpcValueAsString(req.args[0]);
  if (!name.ok()) {
    respond(ErrorResponse(name.status()));
    return;
  }
  auto descriptor = store_.Get(*name);
  if (!descriptor.ok()) {
    respond(ErrorResponse(descriptor.status()));
    return;
  }
  if (req.args.size() == 1) {
    // Legacy form: the bare encoded descriptor, no wrapper.
    respond(ValueResponse(descriptor->Encode()));
    return;
  }
  // Delta negotiation: the client told us which version it already holds.
  auto cached = RpcValueAsInt(req.args[1]);
  if (!cached.ok()) {
    respond(ErrorResponse(InvalidArgumentError("rover.import: bad cached_version")));
    return;
  }
  const uint64_t cached_version = static_cast<uint64_t>(*cached);
  const Bytes full = descriptor->Encode();
  WireWriter reply;
  if (cached_version == descriptor->version) {
    reply.WriteVarint(static_cast<uint64_t>(ImportReplyKind::kNotModified));
    reply.WriteVarint(descriptor->version);
    ++stats_.imports_not_modified;
    stats_.delta_bytes_saved += full.size();
    respond(ValueResponse(reply.TakeData()));
    return;
  }
  // The store journals a bounded version history; if the client's version
  // is still in it, encode the new bytes against that base.
  auto base = store_.GetVersion(*name, cached_version);
  if (base.ok()) {
    Bytes delta = DeltaEncode(base->Encode(), full);
    if (delta.size() < full.size()) {
      reply.WriteVarint(static_cast<uint64_t>(ImportReplyKind::kDelta));
      reply.WriteVarint(cached_version);
      reply.WriteBytes(delta);
      ++stats_.deltas_sent;
      stats_.delta_bytes_saved += full.size() - delta.size();
      respond(ValueResponse(reply.TakeData()));
      return;
    }
  }
  // Version aged out of the history (or the delta did not shrink anything):
  // ship the whole object, wrapped so the client decodes uniformly.
  reply.WriteVarint(static_cast<uint64_t>(ImportReplyKind::kFull));
  reply.WriteBytes(full);
  respond(ValueResponse(reply.TakeData()));
}

void RoverServer::HandleExport(const RpcRequestBody& req, const Message& envelope,
                               QrpcServer::Responder respond) {
  ++stats_.exports;
  if (req.args.size() != 2) {
    respond(ErrorResponse(
        InvalidArgumentError("rover.export expects [descriptor, base_version]")));
    return;
  }
  auto bytes = RpcValueAsBytes(req.args[0]);
  auto base = RpcValueAsInt(req.args[1]);
  if (!bytes.ok() || !base.ok()) {
    respond(ErrorResponse(InvalidArgumentError("rover.export: bad argument types")));
    return;
  }
  auto proposed = RdoDescriptor::Decode(*bytes);
  if (!proposed.ok()) {
    respond(ErrorResponse(proposed.status()));
    return;
  }
  auto outcome = store_.ApplyExport(*proposed, static_cast<uint64_t>(*base), resolvers_);
  if (!outcome.ok()) {
    RpcResponseBody body = ErrorResponse(outcome.status());
    // On conflict, ship the committed descriptor so the client can
    // reconcile without another round trip.
    if (outcome.status().code() == StatusCode::kConflict) {
      auto committed = store_.Get(proposed->name);
      if (committed.ok()) {
        body.result = committed->Encode();
      }
    }
    respond(body);
    return;
  }
  DropInstance(proposed->name);
  NotifySubscribers(proposed->name, outcome->new_version, envelope.header.src);
  // Response payload: was_conflict flag + the now-committed descriptor
  // (whose data may be a resolver's merge of concurrent updates).
  WireWriter writer;
  writer.WriteBool(outcome->was_conflict);
  writer.WriteBytes(outcome->committed.Encode());
  respond(ValueResponse(writer.TakeData()));
}

Result<RdoInstance*> RoverServer::InstanceFor(const std::string& name) {
  ROVER_ASSIGN_OR_RETURN(RdoDescriptor descriptor, store_.Get(name));
  auto it = instances_.find(name);
  if (it != instances_.end() && it->second->base_version() == descriptor.version) {
    return it->second.get();
  }
  RdoEnvironment env;
  env.host_name = transport_->local_host();
  env.now = [loop = loop_] { return loop->now(); };
  env.log = [](const std::string& line) { ROVER_LOG(Debug) << "rdo: " << line; };
  ROVER_ASSIGN_OR_RETURN(auto instance,
                         RdoInstance::Create(descriptor, env, options_.rdo_limits));
  if (instances_.size() >= options_.instance_cache_max) {
    instances_.clear();  // simple wholesale eviction; instances rebuild cheaply
  }
  RdoInstance* raw = instance.get();
  instances_[name] = std::move(instance);
  return raw;
}

void RoverServer::DropInstance(const std::string& name) { instances_.erase(name); }

void RoverServer::HandleInvoke(const RpcRequestBody& req, const Message& envelope,
                               QrpcServer::Responder respond) {
  ++stats_.invokes;
  if (req.args.size() != 3) {
    respond(ErrorResponse(
        InvalidArgumentError("rover.invoke expects [name, method, argsList]")));
    return;
  }
  auto name = RpcValueAsString(req.args[0]);
  auto method = RpcValueAsString(req.args[1]);
  auto args_list = RpcValueAsString(req.args[2]);
  if (!name.ok() || !method.ok() || !args_list.ok()) {
    respond(ErrorResponse(InvalidArgumentError("rover.invoke: bad argument types")));
    return;
  }
  auto instance = InstanceFor(*name);
  if (!instance.ok()) {
    respond(ErrorResponse(instance.status()));
    return;
  }
  auto method_args = TclListSplit(*args_list);
  if (!method_args.ok()) {
    respond(ErrorResponse(method_args.status()));
    return;
  }
  auto result = (*instance)->Invoke(*method, *method_args);
  if (!result.ok()) {
    respond(ErrorResponse(result.status()));
    return;
  }

  // Read before the commit path below: DropInstance frees the instance.
  const uint64_t command_count = (*instance)->last_invoke_commands();
  uint64_t version = (*instance)->base_version();
  if ((*instance)->dirty()) {
    // Commit the mutated state; the server is the authority, so this is an
    // unconditional Put.
    RdoDescriptor snapshot = (*instance)->Snapshot();
    auto new_version = store_.Put(snapshot);
    if (!new_version.ok()) {
      respond(ErrorResponse(new_version.status()));
      return;
    }
    version = *new_version;
    // Refresh the cached instance's notion of its base version.
    DropInstance(*name);
    NotifySubscribers(*name, version, envelope.header.src);
  }

  // Charge simulated CPU for the interpreted execution, then respond.
  const Duration cost =
      options_.rdo_costs.load_fixed +
      options_.rdo_costs.per_command * static_cast<double>(command_count);
  const std::string value = *result;
  loop_->ScheduleAfter(cost, [respond = std::move(respond), value, version] {
    RpcResponseBody body;
    body.result = value;
    // Version rides in the error_message-free response via a second arg?
    // Keep it simple: result is the method result; clients needing the
    // version use rover.version or the next import.
    respond(body);
  });
}

void RoverServer::HandleCreate(const RpcRequestBody& req, const Message& envelope,
                               QrpcServer::Responder respond) {
  if (req.args.size() != 1) {
    respond(ErrorResponse(InvalidArgumentError("rover.create expects [descriptor]")));
    return;
  }
  auto bytes = RpcValueAsBytes(req.args[0]);
  if (!bytes.ok()) {
    respond(ErrorResponse(bytes.status()));
    return;
  }
  auto descriptor = RdoDescriptor::Decode(*bytes);
  if (!descriptor.ok()) {
    respond(ErrorResponse(descriptor.status()));
    return;
  }
  Status status = store_.Create(*descriptor);
  if (!status.ok()) {
    respond(ErrorResponse(status));
    return;
  }
  respond(ValueResponse(int64_t{1}));
}

void RoverServer::HandleList(const RpcRequestBody& req, const Message& envelope,
                             QrpcServer::Responder respond) {
  std::string prefix;
  if (!req.args.empty()) {
    auto p = RpcValueAsString(req.args[0]);
    if (p.ok()) {
      prefix = *p;
    }
  }
  respond(ValueResponse(TclListJoin(store_.List(prefix))));
}

void RoverServer::HandleVersion(const RpcRequestBody& req, const Message& envelope,
                                QrpcServer::Responder respond) {
  if (req.args.size() != 1) {
    respond(ErrorResponse(InvalidArgumentError("rover.version expects [name]")));
    return;
  }
  auto name = RpcValueAsString(req.args[0]);
  if (!name.ok()) {
    respond(ErrorResponse(name.status()));
    return;
  }
  auto version = store_.VersionOf(*name);
  if (!version.ok()) {
    respond(ErrorResponse(version.status()));
    return;
  }
  respond(ValueResponse(static_cast<int64_t>(*version)));
}

void RoverServer::HandleSubscribe(const RpcRequestBody& req, const Message& envelope,
                                  QrpcServer::Responder respond) {
  if (req.args.size() != 1) {
    respond(ErrorResponse(InvalidArgumentError("rover.subscribe expects [name]")));
    return;
  }
  auto name = RpcValueAsString(req.args[0]);
  if (!name.ok()) {
    respond(ErrorResponse(name.status()));
    return;
  }
  subscribers_[*name].insert(envelope.header.src);
  respond(ValueResponse(int64_t{1}));
}

void RoverServer::HandleUnsubscribe(const RpcRequestBody& req, const Message& envelope,
                                    QrpcServer::Responder respond) {
  if (req.args.size() != 1) {
    respond(ErrorResponse(InvalidArgumentError("rover.unsubscribe expects [name]")));
    return;
  }
  auto name = RpcValueAsString(req.args[0]);
  if (!name.ok()) {
    respond(ErrorResponse(name.status()));
    return;
  }
  auto it = subscribers_.find(*name);
  if (it != subscribers_.end()) {
    it->second.erase(envelope.header.src);
    if (it->second.empty()) {
      subscribers_.erase(it);
    }
  }
  ++stats_.unsubscribes;
  respond(ValueResponse(int64_t{1}));
}

void RoverServer::HandlePoll(const RpcRequestBody& req, const Message& envelope,
                             QrpcServer::Responder respond) {
  // args: [TclList of object paths] -> TclList of committed versions
  // (0 for unknown objects). Clients use this to detect stale cache
  // entries when subscriptions are off ("periodic polling or server
  // callbacks", paper S3.1).
  if (req.args.size() != 1) {
    respond(ErrorResponse(InvalidArgumentError("rover.poll expects [names]")));
    return;
  }
  auto names_list = RpcValueAsString(req.args[0]);
  if (!names_list.ok()) {
    respond(ErrorResponse(names_list.status()));
    return;
  }
  auto names = TclListSplit(*names_list);
  if (!names.ok()) {
    respond(ErrorResponse(names.status()));
    return;
  }
  std::vector<std::string> versions;
  versions.reserve(names->size());
  for (const std::string& name : *names) {
    auto v = store_.VersionOf(name);
    versions.push_back(std::to_string(v.ok() ? *v : 0));
  }
  respond(ValueResponse(TclListJoin(versions)));
}

void RoverServer::NotifySubscribers(const std::string& name, uint64_t version,
                                    const std::string& except_host) {
  if (!options_.send_invalidations) {
    return;
  }
  if (subscribers_.find(name) == subscribers_.end()) {
    return;
  }
  // Coalesce: several commits to one object at the same virtual instant
  // produce one invalidation per subscriber, carrying the latest version.
  PendingInvalidation& pending = pending_invalidations_[name];
  pending.version = std::max(pending.version, version);
  pending.except_host = except_host;
  if (invalidation_flush_armed_) {
    return;
  }
  invalidation_flush_armed_ = true;
  loop_->ScheduleAfter(Duration::Zero(),
                       [this, weak = std::weak_ptr<char>(alive_)] {
                         if (weak.expired()) {
                           return;  // server crashed before the flush ran
                         }
                         FlushInvalidations();
                       });
}

void RoverServer::FlushInvalidations() {
  obs::CpuScope cpu(obs::CpuZone::kInvalidationFanout);
  invalidation_flush_armed_ = false;
  // Swap out: a delivered callback (or re-entrant commit) may add new
  // pending invalidations, which belong to the NEXT flush.
  std::map<std::string, PendingInvalidation> batch;
  batch.swap(pending_invalidations_);
  for (const auto& [name, pending] : batch) {
    auto it = subscribers_.find(name);
    if (it == subscribers_.end()) {
      continue;  // last subscriber left while the flush was queued
    }
    // Encode once; every subscriber's message shares the storage.
    const Buffer payload{EncodeInvalidation(name, pending.version)};
    for (const std::string& host : it->second) {
      if (host == pending.except_host) {
        continue;  // the exporter already knows
      }
      Message msg;
      msg.header.type = MessageType::kControl;
      msg.header.priority = Priority::kBackground;
      msg.header.dst = host;
      msg.payload = payload;  // refcount bump, not a copy
      NetworkScheduler::DeliveredCallback delivered;
      if (options_.invalidation_ttl > Duration::Zero()) {
        delivered = [this, weak = std::weak_ptr<char>(alive_), host](const Status& status) {
          if (weak.expired()) {
            return;  // server crashed while the invalidation was queued
          }
          OnInvalidationDelivered(host, status);
        };
      }
      transport_->Send(std::move(msg), std::move(delivered), options_.invalidation_ttl);
      ++stats_.invalidations_sent;
    }
  }
}

void RoverServer::OnInvalidationDelivered(const std::string& host, const Status& status) {
  if (status.ok()) {
    invalidation_failures_.erase(host);
    return;
  }
  if (status.code() != StatusCode::kDeadlineExceeded) {
    return;  // cancelled for another reason; not evidence the host is gone
  }
  ++stats_.invalidations_expired;
  size_t& failures = invalidation_failures_[host];
  ++failures;
  if (options_.subscriber_drop_after_failures > 0 &&
      failures >= options_.subscriber_drop_after_failures) {
    DropSubscriber(host);
    invalidation_failures_.erase(host);
    ++stats_.subscribers_dropped;
  }
}

void RoverServer::DropSubscriber(const std::string& host) {
  for (auto it = subscribers_.begin(); it != subscribers_.end();) {
    it->second.erase(host);
    if (it->second.empty()) {
      it = subscribers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rover
