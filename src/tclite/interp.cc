#include "src/tclite/interp.h"

#include <utility>

namespace rover {

// Defined in builtins.cc; installs the standard command set.
void RegisterBuiltins(Interp* interp);

Interp::Interp(ExecLimits limits) : limits_(limits), rng_(0x524f564552ULL) {  // "ROVER"
  frames_.emplace_back();
  RegisterBuiltins(this);
}

Result<std::string> Interp::Run(const std::string& script) {
  EvalResult r = Eval(script);
  switch (r.flow) {
    case EvalResult::Flow::kOk:
    case EvalResult::Flow::kReturn:
      return r.value;
    case EvalResult::Flow::kError:
      return InvalidArgumentError(r.error);
    case EvalResult::Flow::kBreak:
      return InvalidArgumentError("invoked \"break\" outside of a loop");
    case EvalResult::Flow::kContinue:
      return InvalidArgumentError("invoked \"continue\" outside of a loop");
  }
  return InternalError("unreachable");
}

const ParsedScript* Interp::GetParsed(const std::string& script, Status* error) {
  auto it = parse_cache_.find(script);
  if (it != parse_cache_.end()) {
    ++stats_.parse_cache_hits;
    return it->second.get();
  }
  auto parsed = ParseScript(script);
  if (!parsed.ok()) {
    *error = parsed.status();
    return nullptr;
  }
  ++stats_.scripts_parsed;
  // Bound the cache; dropping it entirely on overflow is simple and rare.
  if (parse_cache_.size() >= 4096) {
    parse_cache_.clear();
  }
  auto owned = std::make_unique<ParsedScript>(std::move(*parsed));
  const ParsedScript* raw = owned.get();
  parse_cache_.emplace(script, std::move(owned));
  return raw;
}

EvalResult Interp::Eval(const std::string& script) {
  Status parse_error;
  const ParsedScript* parsed = GetParsed(script, &parse_error);
  if (parsed == nullptr) {
    return EvalResult::MakeError(parse_error.message());
  }
  return EvalParsed(*parsed);
}

EvalResult Interp::EvalParsed(const ParsedScript& script) {
  if (++depth_ > limits_.max_depth) {
    --depth_;
    return EvalResult::MakeError("recursion limit exceeded");
  }
  EvalResult result = EvalResult::Ok();
  for (const ParsedCommand& cmd : script.commands) {
    result = EvalCommand(cmd);
    if (result.flow != EvalResult::Flow::kOk) {
      break;
    }
  }
  --depth_;
  return result;
}

EvalResult Interp::EvalCommand(const ParsedCommand& cmd) {
  if (++budget_used_ > limits_.max_commands) {
    return EvalResult::MakeError("command budget exceeded");
  }
  ++stats_.commands_executed;

  std::vector<std::string> args;
  args.reserve(cmd.words.size());
  for (const Word& word : cmd.words) {
    std::string value;
    EvalResult r = SubstituteWord(word, &value);
    if (r.flow != EvalResult::Flow::kOk) {
      if (r.flow != EvalResult::Flow::kError) {
        // break/continue/return inside a substitution propagate (Tcl-ish).
        return r;
      }
      r.error += " (line " + std::to_string(cmd.line) + ")";
      return r;
    }
    args.push_back(std::move(value));
  }
  if (args.empty()) {
    return EvalResult::Ok();
  }
  return Invoke(args);
}

EvalResult Interp::SubstituteWord(const Word& word, std::string* out) {
  if (word.IsPureLiteral()) {
    *out = word.parts[0].text;
    return EvalResult::Ok();
  }
  std::string value;
  for (const WordPart& part : word.parts) {
    switch (part.kind) {
      case WordPart::Kind::kLiteral:
        value += part.text;
        break;
      case WordPart::Kind::kVariable: {
        auto v = GetVar(part.text);
        if (!v.ok()) {
          return EvalResult::MakeError("can't read \"" + part.text +
                                       "\": no such variable");
        }
        value += *v;
        break;
      }
      case WordPart::Kind::kScript: {
        EvalResult r = Eval(part.text);
        if (r.flow == EvalResult::Flow::kReturn) {
          r.flow = EvalResult::Flow::kOk;  // [return x] yields x
        }
        if (r.flow != EvalResult::Flow::kOk) {
          return r;
        }
        value += r.value;
        break;
      }
    }
  }
  *out = std::move(value);
  return EvalResult::Ok();
}

EvalResult Interp::Invoke(const std::vector<std::string>& args) {
  const std::string& name = args[0];
  auto proc_it = procs_.find(name);
  if (proc_it != procs_.end()) {
    return CallProc(name, proc_it->second, args);
  }
  auto cmd_it = commands_.find(name);
  if (cmd_it != commands_.end()) {
    return cmd_it->second(this, args);
  }
  return EvalResult::MakeError("invalid command name \"" + name + "\"");
}

EvalResult Interp::CallProc(const std::string& name, const ProcDef& proc,
                            const std::vector<std::string>& args) {
  const size_t given = args.size() - 1;
  const size_t fixed = proc.params.size() - (proc.varargs ? 1 : 0);

  Frame frame;
  size_t ai = 1;
  for (size_t pi = 0; pi < fixed; ++pi) {
    if (ai < args.size()) {
      frame.vars[proc.params[pi]] = args[ai++];
    } else if (proc.defaults[pi].has_value()) {
      frame.vars[proc.params[pi]] = *proc.defaults[pi];
    } else {
      return EvalResult::MakeError("wrong # args: should be \"" + name + " " +
                                   TclListJoin(proc.params) + "\"");
    }
  }
  if (proc.varargs) {
    std::vector<std::string> rest(args.begin() + static_cast<ptrdiff_t>(ai), args.end());
    frame.vars["args"] = TclListJoin(rest);
  } else if (ai < args.size()) {
    return EvalResult::MakeError("wrong # args: should be \"" + name + " " +
                                 TclListJoin(proc.params) + "\" (got " +
                                 std::to_string(given) + ")");
  }

  if (StorageBytes() > limits_.max_storage_bytes) {
    return EvalResult::MakeError("variable storage limit exceeded");
  }

  frames_.push_back(std::move(frame));
  EvalResult r = Eval(proc.body);
  frames_.pop_back();

  if (r.flow == EvalResult::Flow::kReturn) {
    r.flow = EvalResult::Flow::kOk;
  } else if (r.flow == EvalResult::Flow::kBreak ||
             r.flow == EvalResult::Flow::kContinue) {
    return EvalResult::MakeError("invoked \"break\" or \"continue\" outside of a loop");
  }
  return r;
}

size_t Interp::StorageBytes() const {
  size_t total = 0;
  for (const Frame& f : frames_) {
    for (const auto& [k, v] : f.vars) {
      total += k.size() + v.size() + 32;
    }
  }
  return total;
}

std::pair<size_t, std::string> Interp::ResolveVar(size_t frame, const std::string& name) const {
  size_t f = frame;
  std::string n = name;
  // Alias chains are short; the hop bound guards against cycles.
  for (int hops = 0; hops < 16; ++hops) {
    auto it = frames_[f].links.find(n);
    if (it == frames_[f].links.end()) {
      return {f, n};
    }
    f = it->second.first;
    n = it->second.second;
  }
  return {f, n};
}

void Interp::SetVar(const std::string& name, std::string value) {
  auto [f, n] = ResolveVar(frames_.size() - 1, name);
  frames_[f].vars[n] = std::move(value);
}

Result<std::string> Interp::GetVar(const std::string& name) const {
  auto [f, n] = ResolveVar(frames_.size() - 1, name);
  auto it = frames_[f].vars.find(n);
  if (it == frames_[f].vars.end()) {
    return NotFoundError("no such variable: " + name);
  }
  return it->second;
}

bool Interp::HasVar(const std::string& name) const {
  auto [f, n] = ResolveVar(frames_.size() - 1, name);
  return frames_[f].vars.count(n) > 0;
}

bool Interp::UnsetVar(const std::string& name) {
  auto [f, n] = ResolveVar(frames_.size() - 1, name);
  return frames_[f].vars.erase(n) > 0;
}

Status Interp::LinkUpvar(const std::string& local_name, int level,
                         const std::string& target_name) {
  const int depth = FrameDepth();
  size_t target_frame;
  if (level < 0) {
    target_frame = 0;  // #0: the global frame
  } else {
    if (level > depth) {
      return InvalidArgumentError("upvar level " + std::to_string(level) +
                                  " exceeds call depth " + std::to_string(depth));
    }
    target_frame = static_cast<size_t>(depth - level);
  }
  // Resolve the target through its own aliases so chains stay short.
  auto [f, n] = ResolveVar(target_frame, target_name);
  if (f == frames_.size() - 1 && n == local_name) {
    return InvalidArgumentError("upvar: cannot alias a variable to itself");
  }
  CurrentFrame().links[local_name] = {f, n};
  return Status::Ok();
}

EvalResult Interp::EvalInFrame(int level, const std::string& script) {
  const int depth = FrameDepth();
  int target;
  if (level < 0) {
    target = 0;
  } else {
    if (level > depth) {
      return EvalResult::MakeError("uplevel level " + std::to_string(level) +
                                   " exceeds call depth " + std::to_string(depth));
    }
    target = depth - level;
  }
  // Temporarily shorten the frame stack to the target, evaluate, restore.
  std::vector<Frame> saved(std::make_move_iterator(frames_.begin() + target + 1),
                           std::make_move_iterator(frames_.end()));
  frames_.resize(static_cast<size_t>(target + 1));
  EvalResult result = Eval(script);
  for (Frame& f : saved) {
    frames_.push_back(std::move(f));
  }
  return result;
}

void Interp::SetGlobal(const std::string& name, std::string value) {
  frames_.front().vars[name] = std::move(value);
}

Result<std::string> Interp::GetGlobal(const std::string& name) const {
  auto it = frames_.front().vars.find(name);
  if (it == frames_.front().vars.end()) {
    return NotFoundError("no such global: " + name);
  }
  return it->second;
}

void Interp::LinkGlobal(const std::string& name) {
  if (frames_.size() == 1) {
    return;  // already in the global frame
  }
  CurrentFrame().links[name] = {0, name};
}

void Interp::RegisterCommand(const std::string& name, HostCommand command) {
  commands_[name] = std::move(command);
}

bool Interp::HasCommand(const std::string& name) const {
  return commands_.count(name) > 0 || procs_.count(name) > 0;
}

std::vector<std::string> Interp::CommandNames() const {
  std::vector<std::string> names;
  names.reserve(commands_.size() + procs_.size());
  for (const auto& [name, cmd] : commands_) {
    names.push_back(name);
  }
  for (const auto& [name, proc] : procs_) {
    names.push_back(name);
  }
  return names;
}

void Interp::DefineProc(const std::string& name, ProcDef def) {
  procs_[name] = std::move(def);
}

}  // namespace rover
