// TcLite value helpers. TcLite keeps Tcl's "everything is a string" model:
// commands consume and produce strings, and these helpers give strings
// their numeric and list interpretations.
//
// List syntax follows Tcl: elements separated by whitespace; an element
// containing whitespace or brace characters is wrapped in {braces};
// unbalanced braces fall back to backslash quoting.

#ifndef ROVER_SRC_TCLITE_VALUE_H_
#define ROVER_SRC_TCLITE_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace rover {

// Numeric interpretation. Accepts decimal and 0x hex for ints.
std::optional<int64_t> TclParseInt(std::string_view s);
std::optional<double> TclParseDouble(std::string_view s);

// True/false words: 1/0, true/false, yes/no, on/off (case-insensitive).
std::optional<bool> TclParseBool(std::string_view s);

std::string TclFromInt(int64_t v);
std::string TclFromDouble(double v);
std::string TclFromBool(bool v);

// Splits a Tcl list into elements. Fails on unbalanced braces/quotes.
Result<std::vector<std::string>> TclListSplit(std::string_view list);

// Joins elements into a canonical Tcl list.
std::string TclListJoin(const std::vector<std::string>& elements);

// Quotes one element for inclusion in a list.
std::string TclQuoteElement(std::string_view element);

}  // namespace rover

#endif  // ROVER_SRC_TCLITE_VALUE_H_
