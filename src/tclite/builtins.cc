// Standard TcLite command set. Each builtin receives fully substituted
// arguments (args[0] is the command name); control structures receive
// their bodies as unsubstituted braced strings and evaluate them, exactly
// as in Tcl.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "src/tclite/interp.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

using Args = std::vector<std::string>;

EvalResult ArityError(const std::string& usage) {
  return EvalResult::MakeError("wrong # args: should be \"" + usage + "\"");
}

bool TruthyCondition(Interp* interp, const std::string& expression, EvalResult* failure) {
  EvalResult r = EvalExpr(interp, expression);
  if (r.flow != EvalResult::Flow::kOk) {
    *failure = r;
    return false;
  }
  auto b = TclParseBool(r.value);
  if (!b.has_value()) {
    *failure = EvalResult::MakeError("expected boolean value but got \"" + r.value + "\"");
    return false;
  }
  if (!*b) {
    failure->flow = EvalResult::Flow::kOk;
  }
  return *b;
}

// --- variables ---

EvalResult CmdSet(Interp* interp, const Args& args) {
  if (args.size() == 2) {
    auto v = interp->GetVar(args[1]);
    if (!v.ok()) {
      return EvalResult::MakeError("can't read \"" + args[1] + "\": no such variable");
    }
    return EvalResult::Ok(*v);
  }
  if (args.size() == 3) {
    interp->SetVar(args[1], args[2]);
    return EvalResult::Ok(args[2]);
  }
  return ArityError("set varName ?newValue?");
}

EvalResult CmdUnset(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("unset varName ?varName ...?");
  }
  for (size_t i = 1; i < args.size(); ++i) {
    interp->UnsetVar(args[i]);
  }
  return EvalResult::Ok();
}

EvalResult CmdIncr(Interp* interp, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return ArityError("incr varName ?increment?");
  }
  int64_t delta = 1;
  if (args.size() == 3) {
    auto d = TclParseInt(args[2]);
    if (!d.has_value()) {
      return EvalResult::MakeError("expected integer but got \"" + args[2] + "\"");
    }
    delta = *d;
  }
  int64_t current = 0;
  if (interp->HasVar(args[1])) {
    auto v = interp->GetVar(args[1]);
    auto i = TclParseInt(*v);
    if (!i.has_value()) {
      return EvalResult::MakeError("expected integer but got \"" + *v + "\"");
    }
    current = *i;
  }
  const std::string result = TclFromInt(current + delta);
  interp->SetVar(args[1], result);
  return EvalResult::Ok(result);
}

EvalResult CmdAppend(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("append varName ?value ...?");
  }
  std::string value;
  if (interp->HasVar(args[1])) {
    value = *interp->GetVar(args[1]);
  }
  for (size_t i = 2; i < args.size(); ++i) {
    value += args[i];
  }
  interp->SetVar(args[1], value);
  return EvalResult::Ok(value);
}

// upvar ?level? otherVar myVar ?otherVar myVar ...?
EvalResult CmdUpvar(Interp* interp, const Args& args) {
  size_t i = 1;
  int level = 1;
  if (args.size() > 1) {
    const std::string& first = args[1];
    if (first == "#0") {
      level = -1;
      ++i;
    } else if (auto lv = TclParseInt(first); lv.has_value() && args.size() % 2 == 0) {
      level = static_cast<int>(*lv);
      ++i;
    }
  }
  if (i >= args.size() || (args.size() - i) % 2 != 0) {
    return ArityError("upvar ?level? otherVar myVar ?otherVar myVar ...?");
  }
  for (; i + 1 < args.size(); i += 2) {
    Status status = interp->LinkUpvar(args[i + 1], level, args[i]);
    if (!status.ok()) {
      return EvalResult::MakeError(std::string(status.message()));
    }
  }
  return EvalResult::Ok();
}

// uplevel ?level? arg ?arg ...?
EvalResult CmdUplevel(Interp* interp, const Args& args) {
  size_t i = 1;
  int level = 1;
  if (args.size() > 2) {
    if (args[1] == "#0") {
      level = -1;
      ++i;
    } else if (auto lv = TclParseInt(args[1]); lv.has_value()) {
      level = static_cast<int>(*lv);
      ++i;
    }
  }
  if (i >= args.size()) {
    return ArityError("uplevel ?level? arg ?arg ...?");
  }
  std::string script;
  for (; i < args.size(); ++i) {
    if (!script.empty()) {
      script.push_back(' ');
    }
    script += args[i];
  }
  return interp->EvalInFrame(level, script);
}

EvalResult CmdGlobal(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("global varName ?varName ...?");
  }
  for (size_t i = 1; i < args.size(); ++i) {
    interp->LinkGlobal(args[i]);
  }
  return EvalResult::Ok();
}

// --- control flow ---

EvalResult CmdIf(Interp* interp, const Args& args) {
  // if cond ?then? body ?elseif cond ?then? body ...? ?else? ?body?
  size_t i = 1;
  while (i < args.size()) {
    if (i + 1 >= args.size()) {
      return EvalResult::MakeError("wrong # args: no expression after \"if\" clause");
    }
    const std::string& cond = args[i];
    size_t body_index = i + 1;
    if (body_index < args.size() && args[body_index] == "then") {
      ++body_index;
    }
    if (body_index >= args.size()) {
      return EvalResult::MakeError("wrong # args: no script after \"if\" condition");
    }
    EvalResult failure = EvalResult::Ok();
    if (TruthyCondition(interp, cond, &failure)) {
      return interp->Eval(args[body_index]);
    }
    if (failure.flow != EvalResult::Flow::kOk) {
      return failure;
    }
    i = body_index + 1;
    if (i >= args.size()) {
      return EvalResult::Ok();
    }
    if (args[i] == "elseif") {
      ++i;
      continue;
    }
    if (args[i] == "else") {
      ++i;
      if (i >= args.size()) {
        return EvalResult::MakeError("wrong # args: no script after \"else\"");
      }
      return interp->Eval(args[i]);
    }
    // Bare trailing body acts as else (Tcl compatibility).
    return interp->Eval(args[i]);
  }
  return EvalResult::Ok();
}

EvalResult CmdWhile(Interp* interp, const Args& args) {
  if (args.size() != 3) {
    return ArityError("while test command");
  }
  for (;;) {
    if (!interp->ConsumeBudget()) {
      return EvalResult::MakeError("command budget exceeded");
    }
    EvalResult failure = EvalResult::Ok();
    if (!TruthyCondition(interp, args[1], &failure)) {
      return failure.flow == EvalResult::Flow::kOk ? EvalResult::Ok() : failure;
    }
    EvalResult r = interp->Eval(args[2]);
    if (r.flow == EvalResult::Flow::kBreak) {
      return EvalResult::Ok();
    }
    if (r.flow == EvalResult::Flow::kContinue || r.flow == EvalResult::Flow::kOk) {
      continue;
    }
    return r;  // error or return
  }
}

EvalResult CmdFor(Interp* interp, const Args& args) {
  if (args.size() != 5) {
    return ArityError("for start test next command");
  }
  EvalResult r = interp->Eval(args[1]);
  if (r.flow != EvalResult::Flow::kOk) {
    return r;
  }
  for (;;) {
    if (!interp->ConsumeBudget()) {
      return EvalResult::MakeError("command budget exceeded");
    }
    EvalResult failure = EvalResult::Ok();
    if (!TruthyCondition(interp, args[2], &failure)) {
      return failure.flow == EvalResult::Flow::kOk ? EvalResult::Ok() : failure;
    }
    r = interp->Eval(args[4]);
    if (r.flow == EvalResult::Flow::kBreak) {
      return EvalResult::Ok();
    }
    if (r.flow != EvalResult::Flow::kContinue && r.flow != EvalResult::Flow::kOk) {
      return r;
    }
    r = interp->Eval(args[3]);
    if (r.flow != EvalResult::Flow::kOk) {
      return r;
    }
  }
}

EvalResult CmdForeach(Interp* interp, const Args& args) {
  if (args.size() != 4) {
    return ArityError("foreach varList list body");
  }
  auto names = TclListSplit(args[1]);
  auto values = TclListSplit(args[2]);
  if (!names.ok() || names->empty()) {
    return EvalResult::MakeError("foreach: bad variable list");
  }
  if (!values.ok()) {
    return EvalResult::MakeError("foreach: bad value list");
  }
  size_t i = 0;
  while (i < values->size()) {
    if (!interp->ConsumeBudget()) {
      return EvalResult::MakeError("command budget exceeded");
    }
    for (const std::string& name : *names) {
      interp->SetVar(name, i < values->size() ? (*values)[i] : "");
      ++i;
    }
    EvalResult r = interp->Eval(args[3]);
    if (r.flow == EvalResult::Flow::kBreak) {
      return EvalResult::Ok();
    }
    if (r.flow != EvalResult::Flow::kContinue && r.flow != EvalResult::Flow::kOk) {
      return r;
    }
  }
  return EvalResult::Ok();
}

EvalResult CmdBreak(Interp* interp, const Args& args) { return EvalResult::Break(); }
EvalResult CmdContinue(Interp* interp, const Args& args) { return EvalResult::Continue(); }

EvalResult CmdReturn(Interp* interp, const Args& args) {
  if (args.size() > 2) {
    return ArityError("return ?value?");
  }
  return EvalResult::Return(args.size() == 2 ? args[1] : "");
}

EvalResult CmdError(Interp* interp, const Args& args) {
  if (args.size() != 2) {
    return ArityError("error message");
  }
  return EvalResult::MakeError(args[1]);
}

EvalResult CmdCatch(Interp* interp, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return ArityError("catch script ?resultVarName?");
  }
  EvalResult r = interp->Eval(args[1]);
  std::string code = "0";
  std::string value = r.value;
  switch (r.flow) {
    case EvalResult::Flow::kOk:
      code = "0";
      break;
    case EvalResult::Flow::kError:
      code = "1";
      value = r.error;
      break;
    case EvalResult::Flow::kReturn:
      code = "2";
      break;
    case EvalResult::Flow::kBreak:
      code = "3";
      break;
    case EvalResult::Flow::kContinue:
      code = "4";
      break;
  }
  if (args.size() == 3) {
    interp->SetVar(args[2], value);
  }
  return EvalResult::Ok(code);
}

EvalResult CmdEval(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("eval arg ?arg ...?");
  }
  std::string script;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i > 1) {
      script.push_back(' ');
    }
    script += args[i];
  }
  return interp->Eval(script);
}

EvalResult CmdProc(Interp* interp, const Args& args) {
  if (args.size() != 4) {
    return ArityError("proc name params body");
  }
  auto params = TclListSplit(args[2]);
  if (!params.ok()) {
    return EvalResult::MakeError("proc: bad parameter list");
  }
  Interp::ProcDef def;
  for (size_t i = 0; i < params->size(); ++i) {
    const std::string& p = (*params)[i];
    // A parameter may be {name default}.
    auto parts = TclListSplit(p);
    if (parts.ok() && parts->size() == 2) {
      def.params.push_back((*parts)[0]);
      def.defaults.push_back((*parts)[1]);
    } else {
      def.params.push_back(p);
      def.defaults.push_back(std::nullopt);
    }
    if (i == params->size() - 1 && def.params.back() == "args") {
      def.varargs = true;
    }
  }
  def.body = args[3];
  interp->DefineProc(args[1], std::move(def));
  return EvalResult::Ok();
}

// --- expr ---

EvalResult CmdExpr(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("expr arg ?arg ...?");
  }
  std::string expression;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i > 1) {
      expression.push_back(' ');
    }
    expression += args[i];
  }
  return EvalExpr(interp, expression);
}

// --- lists ---

EvalResult CmdList(Interp* interp, const Args& args) {
  std::vector<std::string> elems(args.begin() + 1, args.end());
  return EvalResult::Ok(TclListJoin(elems));
}

EvalResult CmdLindex(Interp* interp, const Args& args) {
  if (args.size() != 3) {
    return ArityError("lindex list index");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  int64_t index = 0;
  if (args[2] == "end") {
    index = static_cast<int64_t>(elems->size()) - 1;
  } else if (auto i = TclParseInt(args[2])) {
    index = *i;
  } else {
    return EvalResult::MakeError("bad index \"" + args[2] + "\"");
  }
  if (index < 0 || index >= static_cast<int64_t>(elems->size())) {
    return EvalResult::Ok("");
  }
  return EvalResult::Ok((*elems)[static_cast<size_t>(index)]);
}

EvalResult CmdLlength(Interp* interp, const Args& args) {
  if (args.size() != 2) {
    return ArityError("llength list");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  return EvalResult::Ok(TclFromInt(static_cast<int64_t>(elems->size())));
}

EvalResult CmdLappend(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("lappend varName ?value ...?");
  }
  std::string list;
  if (interp->HasVar(args[1])) {
    list = *interp->GetVar(args[1]);
  }
  for (size_t i = 2; i < args.size(); ++i) {
    if (!list.empty()) {
      list.push_back(' ');
    }
    list += TclQuoteElement(args[i]);
  }
  interp->SetVar(args[1], list);
  return EvalResult::Ok(list);
}

EvalResult CmdLrange(Interp* interp, const Args& args) {
  if (args.size() != 4) {
    return ArityError("lrange list first last");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  const int64_t n = static_cast<int64_t>(elems->size());
  auto parse_index = [n](const std::string& s) -> int64_t {
    if (s == "end") {
      return n - 1;
    }
    if (s.rfind("end-", 0) == 0) {
      auto off = TclParseInt(s.substr(4));
      return n - 1 - off.value_or(0);
    }
    return TclParseInt(s).value_or(0);
  };
  int64_t first = std::max<int64_t>(0, parse_index(args[2]));
  int64_t last = std::min(n - 1, parse_index(args[3]));
  std::vector<std::string> out;
  for (int64_t i = first; i <= last; ++i) {
    out.push_back((*elems)[static_cast<size_t>(i)]);
  }
  return EvalResult::Ok(TclListJoin(out));
}

EvalResult CmdLsearch(Interp* interp, const Args& args) {
  if (args.size() != 3) {
    return ArityError("lsearch list pattern");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  for (size_t i = 0; i < elems->size(); ++i) {
    if ((*elems)[i] == args[2]) {
      return EvalResult::Ok(TclFromInt(static_cast<int64_t>(i)));
    }
  }
  return EvalResult::Ok("-1");
}

EvalResult CmdLsort(Interp* interp, const Args& args) {
  // lsort ?-integer? ?-decreasing? list
  if (args.size() < 2) {
    return ArityError("lsort ?options? list");
  }
  bool numeric = false;
  bool decreasing = false;
  for (size_t i = 1; i + 1 < args.size(); ++i) {
    if (args[i] == "-integer") {
      numeric = true;
    } else if (args[i] == "-decreasing") {
      decreasing = true;
    } else if (args[i] == "-increasing") {
      decreasing = false;
    } else {
      return EvalResult::MakeError("lsort: bad option \"" + args[i] + "\"");
    }
  }
  auto elems = TclListSplit(args.back());
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  std::stable_sort(elems->begin(), elems->end(),
                   [numeric](const std::string& a, const std::string& b) {
                     if (numeric) {
                       return TclParseInt(a).value_or(0) < TclParseInt(b).value_or(0);
                     }
                     return a < b;
                   });
  if (decreasing) {
    std::reverse(elems->begin(), elems->end());
  }
  return EvalResult::Ok(TclListJoin(*elems));
}

EvalResult CmdConcat(Interp* interp, const Args& args) {
  std::string out;
  for (size_t i = 1; i < args.size(); ++i) {
    std::string trimmed = args[i];
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(trimmed.front()))) {
      trimmed.erase(trimmed.begin());
    }
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      continue;
    }
    if (!out.empty()) {
      out.push_back(' ');
    }
    out += trimmed;
  }
  return EvalResult::Ok(out);
}

EvalResult CmdJoin(Interp* interp, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return ArityError("join list ?joinString?");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  const std::string sep = args.size() == 3 ? args[2] : " ";
  std::string out;
  for (size_t i = 0; i < elems->size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += (*elems)[i];
  }
  return EvalResult::Ok(out);
}

EvalResult CmdSplit(Interp* interp, const Args& args) {
  if (args.size() != 2 && args.size() != 3) {
    return ArityError("split string ?splitChars?");
  }
  const std::string& s = args[1];
  const std::string chars = args.size() == 3 ? args[2] : " \t\n\r";
  std::vector<std::string> parts;
  if (chars.empty()) {
    for (char c : s) {
      parts.emplace_back(1, c);
    }
  } else {
    std::string current;
    for (char c : s) {
      if (chars.find(c) != std::string::npos) {
        parts.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    parts.push_back(std::move(current));
  }
  return EvalResult::Ok(TclListJoin(parts));
}

bool GlobMatch(std::string_view pattern, std::string_view text);

EvalResult CmdLreverse(Interp* interp, const Args& args) {
  if (args.size() != 2) {
    return ArityError("lreverse list");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  std::reverse(elems->begin(), elems->end());
  return EvalResult::Ok(TclListJoin(*elems));
}

EvalResult CmdLinsert(Interp* interp, const Args& args) {
  if (args.size() < 4) {
    return ArityError("linsert list index element ?element ...?");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  const int64_t n = static_cast<int64_t>(elems->size());
  int64_t index = args[2] == "end" ? n : TclParseInt(args[2]).value_or(0);
  index = std::max<int64_t>(0, std::min(index, n));
  elems->insert(elems->begin() + static_cast<ptrdiff_t>(index), args.begin() + 3,
                args.end());
  return EvalResult::Ok(TclListJoin(*elems));
}

EvalResult CmdLreplace(Interp* interp, const Args& args) {
  if (args.size() < 4) {
    return ArityError("lreplace list first last ?element ...?");
  }
  auto elems = TclListSplit(args[1]);
  if (!elems.ok()) {
    return EvalResult::MakeError(std::string(elems.status().message()));
  }
  const int64_t n = static_cast<int64_t>(elems->size());
  auto parse_index = [n](const std::string& sidx) -> int64_t {
    if (sidx == "end") {
      return n - 1;
    }
    if (sidx.rfind("end-", 0) == 0) {
      return n - 1 - TclParseInt(sidx.substr(4)).value_or(0);
    }
    return TclParseInt(sidx).value_or(0);
  };
  const int64_t first = std::max<int64_t>(0, parse_index(args[2]));
  const int64_t last = std::min(n - 1, parse_index(args[3]));
  std::vector<std::string> out;
  for (int64_t i = 0; i < std::min(first, n); ++i) {
    out.push_back((*elems)[static_cast<size_t>(i)]);
  }
  out.insert(out.end(), args.begin() + 4, args.end());
  for (int64_t i = std::max(last + 1, first); i < n; ++i) {
    out.push_back((*elems)[static_cast<size_t>(i)]);
  }
  return EvalResult::Ok(TclListJoin(out));
}

// switch ?-exact|-glob? value {pattern body ?pattern body ...?}
// or inline: switch value pattern body ?pattern body ...? ?default body?
EvalResult CmdSwitch(Interp* interp, const Args& args) {
  size_t i = 1;
  bool glob = false;
  while (i < args.size() && !args[i].empty() && args[i][0] == '-') {
    if (args[i] == "-glob") {
      glob = true;
    } else if (args[i] == "-exact") {
      glob = false;
    } else if (args[i] == "--") {
      ++i;
      break;
    } else {
      return EvalResult::MakeError("switch: bad option "" + args[i] + """);
    }
    ++i;
  }
  if (i >= args.size()) {
    return ArityError("switch ?options? value pattern body ...");
  }
  const std::string value = args[i++];
  std::vector<std::string> clauses;
  if (args.size() - i == 1) {
    auto split = TclListSplit(args[i]);
    if (!split.ok()) {
      return EvalResult::MakeError("switch: bad pattern/body list");
    }
    clauses = std::move(*split);
  } else {
    clauses.assign(args.begin() + static_cast<ptrdiff_t>(i), args.end());
  }
  if (clauses.size() % 2 != 0) {
    return EvalResult::MakeError("switch: pattern with no body");
  }
  for (size_t c = 0; c + 1 < clauses.size(); c += 2) {
    const std::string& pattern = clauses[c];
    bool match = pattern == "default" && c + 2 >= clauses.size();
    if (!match) {
      match = glob ? GlobMatch(pattern, value) : pattern == value;
    }
    if (match) {
      // "-" body falls through to the next clause's body, as in Tcl.
      size_t body = c + 1;
      while (body + 1 < clauses.size() && clauses[body] == "-") {
        body += 2;
      }
      return interp->Eval(clauses[body]);
    }
  }
  return EvalResult::Ok();
}

EvalResult CmdStringMap(const Args& args, const std::string& s) {
  // string map {from to ...} string
  auto mapping = TclListSplit(args[2]);
  if (!mapping.ok() || mapping->size() % 2 != 0) {
    return EvalResult::MakeError("string map: bad mapping list");
  }
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    bool replaced = false;
    for (size_t m = 0; m + 1 < mapping->size(); m += 2) {
      const std::string& from = (*mapping)[m];
      if (!from.empty() && s.compare(i, from.size(), from) == 0) {
        out += (*mapping)[m + 1];
        i += from.size();
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      out.push_back(s[i++]);
    }
  }
  return EvalResult::Ok(out);
}

// --- dict (minimal, over even-length lists) ---

EvalResult CmdDict(Interp* interp, const Args& args) {
  if (args.size() < 3) {
    return ArityError("dict get|set|exists|keys dict ?key? ?value?");
  }
  const std::string& sub = args[1];
  auto elems = TclListSplit(args[2]);
  if (!elems.ok() || elems->size() % 2 != 0) {
    return EvalResult::MakeError("invalid dictionary value");
  }
  if (sub == "get") {
    if (args.size() != 4) {
      return ArityError("dict get dict key");
    }
    for (size_t i = 0; i + 1 < elems->size(); i += 2) {
      if ((*elems)[i] == args[3]) {
        return EvalResult::Ok((*elems)[i + 1]);
      }
    }
    return EvalResult::MakeError("key \"" + args[3] + "\" not known in dictionary");
  }
  if (sub == "exists") {
    if (args.size() != 4) {
      return ArityError("dict exists dict key");
    }
    for (size_t i = 0; i + 1 < elems->size(); i += 2) {
      if ((*elems)[i] == args[3]) {
        return EvalResult::Ok("1");
      }
    }
    return EvalResult::Ok("0");
  }
  if (sub == "set") {
    if (args.size() != 5) {
      return ArityError("dict set dict key value");
    }
    bool found = false;
    for (size_t i = 0; i + 1 < elems->size(); i += 2) {
      if ((*elems)[i] == args[3]) {
        (*elems)[i + 1] = args[4];
        found = true;
        break;
      }
    }
    if (!found) {
      elems->push_back(args[3]);
      elems->push_back(args[4]);
    }
    return EvalResult::Ok(TclListJoin(*elems));
  }
  if (sub == "keys") {
    std::vector<std::string> keys;
    for (size_t i = 0; i + 1 < elems->size(); i += 2) {
      keys.push_back((*elems)[i]);
    }
    return EvalResult::Ok(TclListJoin(keys));
  }
  return EvalResult::MakeError("dict: unknown subcommand \"" + sub + "\"");
}

// --- strings ---

bool GlobMatch(std::string_view pattern, std::string_view text) {
  size_t p = 0;
  size_t t = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

EvalResult CmdString(Interp* interp, const Args& args) {
  if (args.size() < 3) {
    return ArityError("string subcommand string ?arg ...?");
  }
  const std::string& sub = args[1];
  const std::string& s = args[2];
  if (sub == "length") {
    return EvalResult::Ok(TclFromInt(static_cast<int64_t>(s.size())));
  }
  if (sub == "tolower" || sub == "toupper") {
    std::string out = s;
    for (char& c : out) {
      c = sub == "tolower" ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                           : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return EvalResult::Ok(out);
  }
  if (sub == "trim") {
    std::string out = s;
    while (!out.empty() && std::isspace(static_cast<unsigned char>(out.front()))) {
      out.erase(out.begin());
    }
    while (!out.empty() && std::isspace(static_cast<unsigned char>(out.back()))) {
      out.pop_back();
    }
    return EvalResult::Ok(out);
  }
  if (sub == "index") {
    if (args.size() != 4) {
      return ArityError("string index string charIndex");
    }
    int64_t i = args[3] == "end" ? static_cast<int64_t>(s.size()) - 1
                                 : TclParseInt(args[3]).value_or(-1);
    if (i < 0 || i >= static_cast<int64_t>(s.size())) {
      return EvalResult::Ok("");
    }
    return EvalResult::Ok(std::string(1, s[static_cast<size_t>(i)]));
  }
  if (sub == "range") {
    if (args.size() != 5) {
      return ArityError("string range string first last");
    }
    const int64_t n = static_cast<int64_t>(s.size());
    int64_t first = args[3] == "end" ? n - 1 : TclParseInt(args[3]).value_or(0);
    int64_t last = args[4] == "end" ? n - 1 : TclParseInt(args[4]).value_or(0);
    first = std::max<int64_t>(0, first);
    last = std::min(n - 1, last);
    if (first > last) {
      return EvalResult::Ok("");
    }
    return EvalResult::Ok(s.substr(static_cast<size_t>(first),
                                   static_cast<size_t>(last - first + 1)));
  }
  if (sub == "compare") {
    if (args.size() != 4) {
      return ArityError("string compare string1 string2");
    }
    const int c = s.compare(args[3]);
    return EvalResult::Ok(TclFromInt(c < 0 ? -1 : (c > 0 ? 1 : 0)));
  }
  if (sub == "equal") {
    if (args.size() != 4) {
      return ArityError("string equal string1 string2");
    }
    return EvalResult::Ok(TclFromBool(s == args[3]));
  }
  if (sub == "first") {
    if (args.size() != 4) {
      return ArityError("string first needle haystack");
    }
    const size_t pos = args[3].find(s);
    return EvalResult::Ok(
        TclFromInt(pos == std::string::npos ? -1 : static_cast<int64_t>(pos)));
  }
  if (sub == "match") {
    if (args.size() != 4) {
      return ArityError("string match pattern string");
    }
    return EvalResult::Ok(TclFromBool(GlobMatch(s, args[3])));
  }
  if (sub == "map") {
    if (args.size() != 4) {
      return ArityError("string map mapping string");
    }
    return CmdStringMap(args, args[3]);
  }
  if (sub == "repeat") {
    if (args.size() != 4) {
      return ArityError("string repeat string count");
    }
    const int64_t count = TclParseInt(args[3]).value_or(0);
    std::string out;
    for (int64_t i = 0; i < count; ++i) {
      out += s;
    }
    return EvalResult::Ok(out);
  }
  return EvalResult::MakeError("string: unknown subcommand \"" + sub + "\"");
}

EvalResult CmdFormat(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("format formatString ?arg ...?");
  }
  const std::string& fmt = args[1];
  std::string out;
  size_t arg_index = 2;
  size_t i = 0;
  while (i < fmt.size()) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i++]);
      continue;
    }
    // Collect the directive: %[-][0][width][.prec]conv
    std::string spec = "%";
    ++i;
    while (i < fmt.size() &&
           (fmt[i] == '-' || fmt[i] == '0' || fmt[i] == '.' ||
            std::isdigit(static_cast<unsigned char>(fmt[i])))) {
      spec.push_back(fmt[i++]);
    }
    if (i >= fmt.size()) {
      return EvalResult::MakeError("format: trailing %");
    }
    const char conv = fmt[i++];
    char buf[256];
    if (conv == '%') {
      out.push_back('%');
      continue;
    }
    if (arg_index >= args.size()) {
      return EvalResult::MakeError("format: not enough arguments");
    }
    const std::string& arg = args[arg_index++];
    switch (conv) {
      case 'd': {
        spec += "lld";
        std::snprintf(buf, sizeof(buf), spec.c_str(),
                      static_cast<long long>(TclParseInt(arg).value_or(0)));
        out += buf;
        break;
      }
      case 'x':
      case 'X': {
        spec += conv == 'x' ? "llx" : "llX";
        std::snprintf(buf, sizeof(buf), spec.c_str(),
                      static_cast<long long>(TclParseInt(arg).value_or(0)));
        out += buf;
        break;
      }
      case 'f':
      case 'g':
      case 'e': {
        spec.push_back(conv);
        std::snprintf(buf, sizeof(buf), spec.c_str(), TclParseDouble(arg).value_or(0.0));
        out += buf;
        break;
      }
      case 's': {
        spec.push_back('s');
        std::snprintf(buf, sizeof(buf), spec.c_str(), arg.c_str());
        out += buf;
        break;
      }
      default:
        return EvalResult::MakeError(std::string("format: bad conversion %") + conv);
    }
  }
  return EvalResult::Ok(out);
}

EvalResult CmdPuts(Interp* interp, const Args& args) {
  // puts ?-nonewline? string
  if (args.size() == 2) {
    interp->AppendOutput(args[1] + "\n");
    return EvalResult::Ok();
  }
  if (args.size() == 3 && args[1] == "-nonewline") {
    interp->AppendOutput(args[2]);
    return EvalResult::Ok();
  }
  return ArityError("puts ?-nonewline? string");
}

EvalResult CmdInfo(Interp* interp, const Args& args) {
  if (args.size() < 2) {
    return ArityError("info subcommand ?arg ...?");
  }
  const std::string& sub = args[1];
  if (sub == "exists") {
    if (args.size() != 3) {
      return ArityError("info exists varName");
    }
    return EvalResult::Ok(TclFromBool(interp->HasVar(args[2])));
  }
  if (sub == "commands") {
    return EvalResult::Ok(TclListJoin(interp->CommandNames()));
  }
  if (sub == "procs") {
    std::vector<std::string> names;
    for (const auto& [name, def] : interp->procs()) {
      names.push_back(name);
    }
    return EvalResult::Ok(TclListJoin(names));
  }
  return EvalResult::MakeError("info: unknown subcommand \"" + sub + "\"");
}

}  // namespace

void RegisterBuiltins(Interp* interp) {
  interp->RegisterCommand("set", CmdSet);
  interp->RegisterCommand("unset", CmdUnset);
  interp->RegisterCommand("incr", CmdIncr);
  interp->RegisterCommand("append", CmdAppend);
  interp->RegisterCommand("global", CmdGlobal);
  interp->RegisterCommand("upvar", CmdUpvar);
  interp->RegisterCommand("uplevel", CmdUplevel);
  interp->RegisterCommand("if", CmdIf);
  interp->RegisterCommand("while", CmdWhile);
  interp->RegisterCommand("for", CmdFor);
  interp->RegisterCommand("foreach", CmdForeach);
  interp->RegisterCommand("break", CmdBreak);
  interp->RegisterCommand("continue", CmdContinue);
  interp->RegisterCommand("return", CmdReturn);
  interp->RegisterCommand("error", CmdError);
  interp->RegisterCommand("catch", CmdCatch);
  interp->RegisterCommand("eval", CmdEval);
  interp->RegisterCommand("proc", CmdProc);
  interp->RegisterCommand("expr", CmdExpr);
  interp->RegisterCommand("list", CmdList);
  interp->RegisterCommand("lindex", CmdLindex);
  interp->RegisterCommand("llength", CmdLlength);
  interp->RegisterCommand("lappend", CmdLappend);
  interp->RegisterCommand("lrange", CmdLrange);
  interp->RegisterCommand("lsearch", CmdLsearch);
  interp->RegisterCommand("lsort", CmdLsort);
  interp->RegisterCommand("lreverse", CmdLreverse);
  interp->RegisterCommand("linsert", CmdLinsert);
  interp->RegisterCommand("lreplace", CmdLreplace);
  interp->RegisterCommand("switch", CmdSwitch);
  interp->RegisterCommand("concat", CmdConcat);
  interp->RegisterCommand("join", CmdJoin);
  interp->RegisterCommand("split", CmdSplit);
  interp->RegisterCommand("dict", CmdDict);
  interp->RegisterCommand("string", CmdString);
  interp->RegisterCommand("format", CmdFormat);
  interp->RegisterCommand("puts", CmdPuts);
  interp->RegisterCommand("info", CmdInfo);
}

}  // namespace rover
