// TcLite script parser. Parsing follows Tcl's model: a script is a list of
// commands (split on newlines/semicolons), a command is a list of words,
// and a word is a concatenation of parts -- literal text, $variable
// references, and [bracketed script] substitutions. {Braced} words are a
// single literal part with no substitution. Parsed scripts are immutable
// and cached by the interpreter, since proc bodies and loop bodies are
// re-executed many times.

#ifndef ROVER_SRC_TCLITE_PARSER_H_
#define ROVER_SRC_TCLITE_PARSER_H_

#include <string>
#include <vector>

#include "src/util/result.h"

namespace rover {

struct WordPart {
  enum class Kind {
    kLiteral,   // raw text
    kVariable,  // $name or ${name}: text is the variable name
    kScript,    // [script]: text is the script source
  };
  Kind kind = Kind::kLiteral;
  std::string text;
};

struct Word {
  std::vector<WordPart> parts;

  // True when the word is a single literal part (braced words and plain
  // bare words) -- the evaluator skips substitution entirely.
  bool IsPureLiteral() const {
    return parts.size() == 1 && parts[0].kind == WordPart::Kind::kLiteral;
  }
};

struct ParsedCommand {
  std::vector<Word> words;
  int line = 0;  // 1-based source line, for error messages
};

struct ParsedScript {
  std::vector<ParsedCommand> commands;
};

// Parses TcLite source. Fails on unbalanced braces, brackets, or quotes.
Result<ParsedScript> ParseScript(std::string_view source);

}  // namespace rover

#endif  // ROVER_SRC_TCLITE_PARSER_H_
