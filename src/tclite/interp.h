// TcLite interpreter. A sandboxed, embeddable Tcl-like language: RDO
// methods are TcLite procs; the hosting environment (Rover client or
// server) exposes capabilities as registered host commands. Safety comes
// from the execution limits: a command budget, a recursion-depth cap, and
// a cap on total variable storage, so imported code cannot spin or exhaust
// the host (the paper's "safe execution" goal, §4).

#ifndef ROVER_SRC_TCLITE_INTERP_H_
#define ROVER_SRC_TCLITE_INTERP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/tclite/parser.h"
#include "src/tclite/value.h"
#include "src/util/rng.h"

namespace rover {

// Outcome of evaluating a script or command. `flow` distinguishes normal
// completion from errors and the loop/proc control transfers.
struct EvalResult {
  enum class Flow {
    kOk = 0,
    kError = 1,
    kReturn = 2,
    kBreak = 3,
    kContinue = 4,
  };

  Flow flow = Flow::kOk;
  std::string value;  // result value (or return value)
  std::string error;  // message when flow == kError

  static EvalResult Ok(std::string v = "") {
    return EvalResult{Flow::kOk, std::move(v), ""};
  }
  static EvalResult MakeError(std::string message) {
    return EvalResult{Flow::kError, "", std::move(message)};
  }
  static EvalResult Return(std::string v) {
    return EvalResult{Flow::kReturn, std::move(v), ""};
  }
  static EvalResult Break() { return EvalResult{Flow::kBreak, "", ""}; }
  static EvalResult Continue() { return EvalResult{Flow::kContinue, "", ""}; }

  bool ok() const { return flow == Flow::kOk; }
};

struct ExecLimits {
  uint64_t max_commands = 1'000'000;  // commands per budget window
  int max_depth = 128;                // proc/eval nesting
  size_t max_storage_bytes = 8 << 20; // total variable bytes per frame set
};

struct InterpStats {
  uint64_t commands_executed = 0;  // cumulative, never reset
  uint64_t scripts_parsed = 0;
  uint64_t parse_cache_hits = 0;
};

class Interp {
 public:
  using HostCommand =
      std::function<EvalResult(Interp* interp, const std::vector<std::string>& args)>;

  explicit Interp(ExecLimits limits = {});
  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // --- Evaluation ---

  // Evaluates a script in the current frame. kBreak/kContinue escaping to
  // the top level become errors, matching Tcl.
  EvalResult Eval(const std::string& script);

  // Convenience wrapper: kOk/kReturn produce the value, anything else an
  // error status.
  Result<std::string> Run(const std::string& script);

  // Invokes a command (proc, builtin, or host command) with pre-evaluated
  // arguments. args[0] is the command name.
  EvalResult Invoke(const std::vector<std::string>& args);

  // --- Variables (current frame) ---

  void SetVar(const std::string& name, std::string value);
  Result<std::string> GetVar(const std::string& name) const;
  bool HasVar(const std::string& name) const;
  bool UnsetVar(const std::string& name);

  // Global (frame 0) accessors, used by the embedding to seed state.
  void SetGlobal(const std::string& name, std::string value);
  Result<std::string> GetGlobal(const std::string& name) const;

  // Marks `name` in the current frame as an alias of the global variable.
  void LinkGlobal(const std::string& name);

  // upvar: aliases `local_name` in the current frame to `target_name` in
  // the frame `level` calls up (level 1 = caller; -1 = global frame).
  Status LinkUpvar(const std::string& local_name, int level,
                   const std::string& target_name);

  // uplevel: evaluates `script` in the frame `level` calls up.
  EvalResult EvalInFrame(int level, const std::string& script);

  // Current proc-call depth (0 at top level).
  int FrameDepth() const { return static_cast<int>(frames_.size()) - 1; }

  // --- Commands ---

  void RegisterCommand(const std::string& name, HostCommand command);
  bool HasCommand(const std::string& name) const;
  std::vector<std::string> CommandNames() const;

  // Procs defined by `proc`; exposed so RDOs can serialize their methods.
  struct ProcDef {
    std::vector<std::string> params;          // parameter names
    std::vector<std::optional<std::string>> defaults;  // per-parameter default
    bool varargs = false;                     // last param is `args`
    std::string body;
  };
  const std::map<std::string, ProcDef>& procs() const { return procs_; }
  void DefineProc(const std::string& name, ProcDef def);

  // --- Budget / limits ---

  const ExecLimits& limits() const { return limits_; }
  // Resets the per-window command budget (call before each untrusted entry).
  void ResetBudget() { budget_used_ = 0; }
  uint64_t budget_used() const { return budget_used_; }

  // Charges one unit against the command budget; false once exhausted.
  // Loop builtins call this per iteration so that empty or expr-only loop
  // bodies cannot spin for free.
  bool ConsumeBudget() { return ++budget_used_ <= limits_.max_commands; }

  const InterpStats& stats() const { return stats_; }

  // --- Output ---

  // `puts` appends here; the embedding drains it (e.g. to a UI).
  std::string TakeOutput() { return std::move(output_); }
  const std::string& output() const { return output_; }
  void AppendOutput(const std::string& text) { output_ += text; }

  // Deterministic RNG backing expr's rand()/srand().
  Rng* rng() { return &rng_; }
  void ReseedRng(uint64_t seed) { rng_ = Rng(seed); }

 private:
  friend struct BuiltinRegistrar;

  struct Frame {
    std::map<std::string, std::string> vars;
    // Aliases installed by `global` and `upvar`: local name ->
    // (frame index, name there). Resolution follows chains.
    std::map<std::string, std::pair<size_t, std::string>> links;
  };

  // Follows alias chains from (frame, name) to the owning frame/name.
  std::pair<size_t, std::string> ResolveVar(size_t frame, const std::string& name) const;

  EvalResult EvalParsed(const ParsedScript& script);
  EvalResult EvalCommand(const ParsedCommand& cmd);
  EvalResult SubstituteWord(const Word& word, std::string* out);
  EvalResult CallProc(const std::string& name, const ProcDef& proc,
                      const std::vector<std::string>& args);
  const ParsedScript* GetParsed(const std::string& script, Status* error);
  size_t StorageBytes() const;

  Frame& CurrentFrame() { return frames_.back(); }
  const Frame& CurrentFrame() const { return frames_.back(); }

  ExecLimits limits_;
  InterpStats stats_;
  uint64_t budget_used_ = 0;
  int depth_ = 0;
  std::vector<Frame> frames_;
  std::map<std::string, HostCommand> commands_;
  std::map<std::string, ProcDef> procs_;
  std::map<std::string, std::unique_ptr<ParsedScript>> parse_cache_;
  std::string output_;
  Rng rng_;
};

// Evaluates an expr expression string in `interp` (used by the `expr`,
// `if`, `while`, and `for` builtins). Defined in expr.cc.
EvalResult EvalExpr(Interp* interp, const std::string& expression);

}  // namespace rover

#endif  // ROVER_SRC_TCLITE_INTERP_H_
