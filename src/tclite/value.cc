#include "src/tclite/value.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rover {

std::optional<int64_t> TclParseInt(std::string_view s) {
  // Trim surrounding whitespace.
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  if (s.empty()) {
    return std::nullopt;
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 0);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(v);
}

std::optional<double> TclParseDouble(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  if (s.empty()) {
    return std::nullopt;
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || std::isnan(v)) {
    return std::nullopt;
  }
  return v;
}

std::optional<bool> TclParseBool(std::string_view s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") {
    return false;
  }
  if (auto i = TclParseInt(lower)) {
    return *i != 0;
  }
  return std::nullopt;
}

std::string TclFromInt(int64_t v) { return std::to_string(v); }

std::string TclFromDouble(double v) {
  // Integral doubles keep a trailing ".0" so they stay doubles, as in Tcl.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  if (std::strpbrk(buf, ".eEnN") == nullptr) {
    std::strcat(buf, ".0");
  }
  return buf;
}

std::string TclFromBool(bool v) { return v ? "1" : "0"; }

Result<std::vector<std::string>> TclListSplit(std::string_view list) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = list.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(list[i]))) {
      ++i;
    }
    if (i >= n) {
      break;
    }
    std::string elem;
    if (list[i] == '{') {
      int depth = 1;
      ++i;
      const size_t start = i;
      while (i < n && depth > 0) {
        if (list[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (list[i] == '{') {
          ++depth;
        } else if (list[i] == '}') {
          --depth;
        }
        ++i;
      }
      if (depth != 0) {
        return InvalidArgumentError("unbalanced braces in list");
      }
      elem.assign(list.substr(start, i - start - 1));
      if (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        return InvalidArgumentError("junk after closing brace in list");
      }
    } else if (list[i] == '"') {
      ++i;
      while (i < n && list[i] != '"') {
        if (list[i] == '\\' && i + 1 < n) {
          elem.push_back(list[i + 1]);
          i += 2;
        } else {
          elem.push_back(list[i]);
          ++i;
        }
      }
      if (i >= n) {
        return InvalidArgumentError("unbalanced quote in list");
      }
      ++i;  // closing quote
    } else {
      while (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        if (list[i] == '\\' && i + 1 < n) {
          elem.push_back(list[i + 1]);
          i += 2;
        } else {
          elem.push_back(list[i]);
          ++i;
        }
      }
    }
    out.push_back(std::move(elem));
  }
  return out;
}

namespace {

// Whether `element` can be wrapped in {braces} and parse back verbatim.
// Must mirror TclListSplit's brace scanner exactly: backslash escapes the
// following character (so escaped braces do not count toward depth), and a
// trailing lone backslash would escape our own closing brace.
bool CanBraceQuote(std::string_view element) {
  int depth = 0;
  size_t i = 0;
  while (i < element.size()) {
    const char c = element[i];
    if (c == '\\') {
      if (i + 1 >= element.size()) {
        return false;  // trailing backslash would swallow the close brace
      }
      i += 2;
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth < 0) {
        return false;
      }
    }
    ++i;
  }
  return depth == 0;
}

}  // namespace

std::string TclQuoteElement(std::string_view element) {
  if (element.empty()) {
    return "{}";
  }
  bool needs_quoting = false;
  for (char c : element) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '\\' || c == '[' ||
        c == ']' || c == '$' || c == ';' || c == '{' || c == '}') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) {
    return std::string(element);
  }
  if (CanBraceQuote(element)) {
    std::string out = "{";
    out.append(element);
    out.push_back('}');
    return out;
  }
  // Backslash-quote everything special.
  std::string out;
  for (char c : element) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '{' || c == '}' || c == '"' ||
        c == '\\' || c == '[' || c == ']' || c == '$' || c == ';') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string TclListJoin(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) {
      out.push_back(' ');
    }
    out += TclQuoteElement(elements[i]);
  }
  return out;
}

}  // namespace rover
