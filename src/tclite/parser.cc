#include "src/tclite/parser.h"

#include <cctype>

namespace rover {
namespace {

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

char EscapeChar(char c) {
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case 'a':
      return '\a';
    case '0':
      return '\0';
    default:
      return c;  // \$ \[ \] \{ \} \" \\ \; etc.
  }
}

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  Result<ParsedScript> Parse() {
    ParsedScript script;
    while (pos_ < src_.size()) {
      SkipCommandSeparators();
      if (pos_ >= src_.size()) {
        break;
      }
      if (src_[pos_] == '#') {
        SkipComment();
        continue;
      }
      ParsedCommand cmd;
      cmd.line = line_;
      ROVER_RETURN_IF_ERROR(ParseCommand(&cmd));
      if (!cmd.words.empty()) {
        script.commands.push_back(std::move(cmd));
      }
    }
    return script;
  }

 private:
  void SkipCommandSeparators() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ';' || c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  void SkipComment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      // Backslash-newline continues a comment, as in Tcl.
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      ++pos_;
    }
  }

  bool AtCommandEnd() const {
    return pos_ >= src_.size() || src_[pos_] == '\n' || src_[pos_] == ';';
  }

  void SkipWordSeparators() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  Status ParseCommand(ParsedCommand* cmd) {
    for (;;) {
      SkipWordSeparators();
      if (AtCommandEnd()) {
        if (pos_ < src_.size()) {
          if (src_[pos_] == '\n') {
            ++line_;
          }
          ++pos_;
        }
        return Status::Ok();
      }
      Word word;
      const char c = src_[pos_];
      if (c == '{') {
        ROVER_RETURN_IF_ERROR(ParseBracedWord(&word));
      } else if (c == '"') {
        ROVER_RETURN_IF_ERROR(ParseQuotedWord(&word));
      } else {
        ROVER_RETURN_IF_ERROR(ParseBareWord(&word));
      }
      cmd->words.push_back(std::move(word));
    }
  }

  Status ParseBracedWord(Word* word) {
    // pos_ is at '{'. Capture raw text between balanced braces.
    ++pos_;
    int depth = 1;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        // Backslashes are preserved verbatim inside braces (Tcl rule),
        // except backslash-newline which is a continuation.
        if (src_[pos_ + 1] == '\n') {
          text.push_back(' ');
          ++line_;
          pos_ += 2;
          continue;
        }
        text.push_back(c);
        text.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          ++pos_;
          word->parts.push_back({WordPart::Kind::kLiteral, std::move(text)});
          if (pos_ < src_.size() && !IsWordEnd(src_[pos_])) {
            return InvalidArgumentError("extra characters after close-brace at line " +
                                        std::to_string(line_));
          }
          return Status::Ok();
        }
      } else if (c == '\n') {
        ++line_;
      }
      text.push_back(c);
      ++pos_;
    }
    return InvalidArgumentError("missing close-brace (opened near line " +
                                std::to_string(line_) + ")");
  }

  bool IsWordEnd(char c) const {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';';
  }

  Status ParseQuotedWord(Word* word) {
    ++pos_;  // consume '"'
    std::string literal;
    auto flush = [&] {
      if (!literal.empty()) {
        word->parts.push_back({WordPart::Kind::kLiteral, std::move(literal)});
        literal.clear();
      }
    };
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '"') {
        ++pos_;
        flush();
        if (word->parts.empty()) {
          word->parts.push_back({WordPart::Kind::kLiteral, ""});
        }
        if (pos_ < src_.size() && !IsWordEnd(src_[pos_])) {
          return InvalidArgumentError("extra characters after close-quote at line " +
                                      std::to_string(line_));
        }
        return Status::Ok();
      }
      if (c == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') {
          literal.push_back(' ');
          ++line_;
        } else {
          literal.push_back(EscapeChar(src_[pos_ + 1]));
        }
        pos_ += 2;
        continue;
      }
      if (c == '$') {
        flush();
        ROVER_RETURN_IF_ERROR(ParseVariable(word, &literal));
        continue;
      }
      if (c == '[') {
        flush();
        ROVER_RETURN_IF_ERROR(ParseScriptSub(word));
        continue;
      }
      if (c == '\n') {
        ++line_;
      }
      literal.push_back(c);
      ++pos_;
    }
    return InvalidArgumentError("missing close-quote at line " + std::to_string(line_));
  }

  Status ParseBareWord(Word* word) {
    std::string literal;
    auto flush = [&] {
      if (!literal.empty()) {
        word->parts.push_back({WordPart::Kind::kLiteral, std::move(literal)});
        literal.clear();
      }
    };
    while (pos_ < src_.size() && !IsWordEnd(src_[pos_])) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') {
          break;  // continuation ends the word; separator loop handles it
        }
        literal.push_back(EscapeChar(src_[pos_ + 1]));
        pos_ += 2;
        continue;
      }
      if (c == '$') {
        flush();
        ROVER_RETURN_IF_ERROR(ParseVariable(word, &literal));
        continue;
      }
      if (c == '[') {
        flush();
        ROVER_RETURN_IF_ERROR(ParseScriptSub(word));
        continue;
      }
      literal.push_back(c);
      ++pos_;
    }
    flush();
    if (word->parts.empty()) {
      word->parts.push_back({WordPart::Kind::kLiteral, ""});
    }
    return Status::Ok();
  }

  // pos_ is at '$'. Appends a kVariable part, or a literal '$' if no name
  // follows (Tcl rule).
  Status ParseVariable(Word* word, std::string* literal) {
    ++pos_;
    if (pos_ < src_.size() && src_[pos_] == '{') {
      ++pos_;
      std::string name;
      while (pos_ < src_.size() && src_[pos_] != '}') {
        name.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) {
        return InvalidArgumentError("missing close-brace for ${name} at line " +
                                    std::to_string(line_));
      }
      ++pos_;
      word->parts.push_back({WordPart::Kind::kVariable, std::move(name)});
      return Status::Ok();
    }
    std::string name;
    while (pos_ < src_.size() && IsVarNameChar(src_[pos_])) {
      name.push_back(src_[pos_++]);
    }
    if (name.empty()) {
      literal->push_back('$');
      return Status::Ok();
    }
    word->parts.push_back({WordPart::Kind::kVariable, std::move(name)});
    return Status::Ok();
  }

  // pos_ is at '['. Captures balanced script text, honouring nested
  // brackets, braces, quotes, and escapes.
  Status ParseScriptSub(Word* word) {
    ++pos_;
    const int start_line = line_;
    std::string text;
    int bracket_depth = 1;
    int brace_depth = 0;
    bool in_quote = false;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(c);
        text.push_back(src_[pos_ + 1]);
        if (src_[pos_ + 1] == '\n') {
          ++line_;
        }
        pos_ += 2;
        continue;
      }
      if (in_quote) {
        if (c == '"') {
          in_quote = false;
        }
      } else if (brace_depth > 0) {
        if (c == '{') {
          ++brace_depth;
        } else if (c == '}') {
          --brace_depth;
        }
      } else {
        switch (c) {
          case '"':
            in_quote = true;
            break;
          case '{':
            ++brace_depth;
            break;
          case '[':
            ++bracket_depth;
            break;
          case ']':
            --bracket_depth;
            if (bracket_depth == 0) {
              ++pos_;
              word->parts.push_back({WordPart::Kind::kScript, std::move(text)});
              return Status::Ok();
            }
            break;
          default:
            break;
        }
      }
      if (c == '\n') {
        ++line_;
      }
      text.push_back(c);
      ++pos_;
    }
    return InvalidArgumentError("missing close-bracket (opened at line " +
                                std::to_string(start_line) + ")");
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<ParsedScript> ParseScript(std::string_view source) {
  return Parser(source).Parse();
}

}  // namespace rover
