// Expression evaluator for the `expr` builtin (also used by if/while/for
// conditions). Supports Tcl's numeric tower (int64 + double), string
// comparison, the standard operator set with C precedence, the ternary
// operator, and a small math-function library.
//
// Divergence from Tcl, by design: $var and [script] substitutions inside
// an expression are performed during tokenization, so operands of && and
// || are substituted even when short-circuited (evaluation itself still
// short-circuits).

#include <cmath>
#include <string>
#include <variant>
#include <vector>

#include "src/tclite/interp.h"
#include "src/tclite/value.h"

// Propagates a non-OK EvalResult out of the current parse function.
#define ROVER_EXPR_STEP(call)                          \
  do {                                                 \
    EvalResult rover_expr_step_ = (call);              \
    if (rover_expr_step_.flow != EvalResult::Flow::kOk) { \
      return rover_expr_step_;                         \
    }                                                  \
  } while (0)

namespace rover {
namespace {

struct ExprValue {
  std::variant<int64_t, double, std::string> v;

  bool is_int() const { return std::holds_alternative<int64_t>(v); }
  bool is_double() const { return std::holds_alternative<double>(v); }
  bool is_numeric() const { return !std::holds_alternative<std::string>(v); }

  double AsDouble() const {
    if (is_int()) {
      return static_cast<double>(std::get<int64_t>(v));
    }
    if (is_double()) {
      return std::get<double>(v);
    }
    return 0.0;
  }
  int64_t AsInt() const {
    if (is_int()) {
      return std::get<int64_t>(v);
    }
    if (is_double()) {
      return static_cast<int64_t>(std::get<double>(v));
    }
    return 0;
  }
  std::string AsString() const {
    if (is_int()) {
      return TclFromInt(std::get<int64_t>(v));
    }
    if (is_double()) {
      return TclFromDouble(std::get<double>(v));
    }
    return std::get<std::string>(v);
  }
  bool Truthy() const {
    if (is_int()) {
      return std::get<int64_t>(v) != 0;
    }
    if (is_double()) {
      return std::get<double>(v) != 0.0;
    }
    return TclParseBool(std::get<std::string>(v)).value_or(!std::get<std::string>(v).empty());
  }

  static ExprValue FromString(const std::string& s) {
    if (auto i = TclParseInt(s)) {
      return ExprValue{*i};
    }
    if (auto d = TclParseDouble(s)) {
      return ExprValue{*d};
    }
    return ExprValue{s};
  }
  static ExprValue Bool(bool b) { return ExprValue{static_cast<int64_t>(b ? 1 : 0)}; }
};

struct Token {
  enum class Kind { kValue, kOp, kIdent, kLParen, kRParen, kComma, kEnd };
  Kind kind = Kind::kEnd;
  ExprValue value;    // kValue
  std::string text;   // kOp / kIdent
};

class Lexer {
 public:
  Lexer(Interp* interp, const std::string& src) : interp_(interp), src_(src) {}

  EvalResult Tokenize(std::vector<Token>* out) {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        out->push_back(LexNumber());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                      src_[pos_] == '_')) {
          ident.push_back(src_[pos_++]);
        }
        out->push_back(Token{Token::Kind::kIdent, {}, ident});
        continue;
      }
      if (c == '$') {
        ++pos_;
        std::string name;
        if (pos_ < src_.size() && src_[pos_] == '{') {
          ++pos_;
          while (pos_ < src_.size() && src_[pos_] != '}') {
            name.push_back(src_[pos_++]);
          }
          if (pos_ >= src_.size()) {
            return EvalResult::MakeError("expr: missing } in variable reference");
          }
          ++pos_;
        } else {
          while (pos_ < src_.size() &&
                 (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                  src_[pos_] == '_' || src_[pos_] == ':')) {
            name.push_back(src_[pos_++]);
          }
        }
        auto v = interp_->GetVar(name);
        if (!v.ok()) {
          return EvalResult::MakeError("can't read \"" + name + "\": no such variable");
        }
        out->push_back(Token{Token::Kind::kValue, ExprValue::FromString(*v), ""});
        continue;
      }
      if (c == '[') {
        // Balanced-bracket scan, then evaluate.
        size_t depth = 1;
        size_t start = ++pos_;
        while (pos_ < src_.size() && depth > 0) {
          if (src_[pos_] == '[') {
            ++depth;
          } else if (src_[pos_] == ']') {
            --depth;
          }
          ++pos_;
        }
        if (depth != 0) {
          return EvalResult::MakeError("expr: missing ]");
        }
        const std::string script = src_.substr(start, pos_ - start - 1);
        EvalResult r = interp_->Eval(script);
        if (r.flow == EvalResult::Flow::kReturn) {
          r.flow = EvalResult::Flow::kOk;
        }
        if (r.flow != EvalResult::Flow::kOk) {
          return r;
        }
        out->push_back(Token{Token::Kind::kValue, ExprValue::FromString(r.value), ""});
        continue;
      }
      if (c == '"' || c == '{') {
        const char close = c == '"' ? '"' : '}';
        ++pos_;
        std::string text;
        int depth = 1;
        while (pos_ < src_.size()) {
          if (c == '{' && src_[pos_] == '{') {
            ++depth;
          } else if (src_[pos_] == close) {
            if (--depth == 0) {
              break;
            }
          }
          if (src_[pos_] == '\\' && c == '"' && pos_ + 1 < src_.size()) {
            text.push_back(src_[pos_ + 1]);
            pos_ += 2;
            continue;
          }
          text.push_back(src_[pos_++]);
        }
        if (pos_ >= src_.size()) {
          return EvalResult::MakeError("expr: unterminated string");
        }
        ++pos_;
        // Quoted operands are strings even when they look numeric? Tcl
        // treats them as whatever they parse to; we match Tcl.
        out->push_back(Token{Token::Kind::kValue, ExprValue::FromString(text), ""});
        continue;
      }
      if (c == '(') {
        out->push_back(Token{Token::Kind::kLParen, {}, "("});
        ++pos_;
        continue;
      }
      if (c == ')') {
        out->push_back(Token{Token::Kind::kRParen, {}, ")"});
        ++pos_;
        continue;
      }
      if (c == ',') {
        out->push_back(Token{Token::Kind::kComma, {}, ","});
        ++pos_;
        continue;
      }
      // Operators, longest-match.
      static const char* kOps[] = {"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
                                   "+", "-", "*", "/", "%", "<", ">", "!", "~",
                                   "&", "^", "|", "?", ":"};
      bool matched = false;
      for (const char* op : kOps) {
        const size_t len = std::char_traits<char>::length(op);
        if (src_.compare(pos_, len, op) == 0) {
          out->push_back(Token{Token::Kind::kOp, {}, op});
          pos_ += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        return EvalResult::MakeError(std::string("expr: unexpected character '") + c + "'");
      }
    }
    out->push_back(Token{Token::Kind::kEnd, {}, ""});
    return EvalResult::Ok();
  }

 private:
  Token LexNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (src_.compare(pos_, 2, "0x") == 0 || src_.compare(pos_, 2, "0X") == 0) {
      pos_ += 2;
      while (pos_ < src_.size() && std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
    } else {
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '.') {
        is_double = true;
        ++pos_;
        while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
      }
      if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
        is_double = true;
        ++pos_;
        if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
          ++pos_;
        }
        while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
      }
    }
    const std::string text = src_.substr(start, pos_ - start);
    if (is_double) {
      return Token{Token::Kind::kValue, ExprValue{TclParseDouble(text).value_or(0.0)}, ""};
    }
    return Token{Token::Kind::kValue, ExprValue{TclParseInt(text).value_or(0)}, ""};
  }

  Interp* interp_;
  const std::string& src_;
  size_t pos_ = 0;
};

class ExprParser {
 public:
  ExprParser(Interp* interp, std::vector<Token> tokens)
      : interp_(interp), tokens_(std::move(tokens)) {}

  EvalResult Parse() {
    ExprValue v;
    EvalResult r = Ternary(&v);
    if (r.flow != EvalResult::Flow::kOk) {
      return r;
    }
    if (Peek().kind != Token::Kind::kEnd) {
      return EvalResult::MakeError("expr: trailing tokens");
    }
    return EvalResult::Ok(v.AsString());
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool MatchOp(const char* op) {
    if (Peek().kind == Token::Kind::kOp && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  EvalResult Ternary(ExprValue* out) {
    ROVER_EXPR_STEP(LogicalOr(out));
    if (MatchOp("?")) {
      ExprValue a;
      ExprValue b;
      ROVER_EXPR_STEP(Ternary(&a));
      if (!MatchOp(":")) {
        return EvalResult::MakeError("expr: expected : in ?: operator");
      }
      ROVER_EXPR_STEP(Ternary(&b));
      *out = out->Truthy() ? a : b;
    }
    return EvalResult::Ok();
  }

  EvalResult LogicalOr(ExprValue* out) {
    ROVER_EXPR_STEP(LogicalAnd(out));
    while (MatchOp("||")) {
      ExprValue rhs;
      ROVER_EXPR_STEP(LogicalAnd(&rhs));
      *out = ExprValue::Bool(out->Truthy() || rhs.Truthy());
    }
    return EvalResult::Ok();
  }

  EvalResult LogicalAnd(ExprValue* out) {
    ROVER_EXPR_STEP(BitOr(out));
    while (MatchOp("&&")) {
      ExprValue rhs;
      ROVER_EXPR_STEP(BitOr(&rhs));
      *out = ExprValue::Bool(out->Truthy() && rhs.Truthy());
    }
    return EvalResult::Ok();
  }

  EvalResult BitOr(ExprValue* out) {
    ROVER_EXPR_STEP(BitXor(out));
    while (MatchOp("|")) {
      ExprValue rhs;
      ROVER_EXPR_STEP(BitXor(&rhs));
      *out = ExprValue{out->AsInt() | rhs.AsInt()};
    }
    return EvalResult::Ok();
  }

  EvalResult BitXor(ExprValue* out) {
    ROVER_EXPR_STEP(BitAnd(out));
    while (MatchOp("^")) {
      ExprValue rhs;
      ROVER_EXPR_STEP(BitAnd(&rhs));
      *out = ExprValue{out->AsInt() ^ rhs.AsInt()};
    }
    return EvalResult::Ok();
  }

  EvalResult BitAnd(ExprValue* out) {
    ROVER_EXPR_STEP(Equality(out));
    while (Peek().kind == Token::Kind::kOp && Peek().text == "&") {
      ++pos_;
      ExprValue rhs;
      ROVER_EXPR_STEP(Equality(&rhs));
      *out = ExprValue{out->AsInt() & rhs.AsInt()};
    }
    return EvalResult::Ok();
  }

  static int Compare(const ExprValue& a, const ExprValue& b) {
    if (a.is_numeric() && b.is_numeric()) {
      const double x = a.AsDouble();
      const double y = b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const std::string x = a.AsString();
    const std::string y = b.AsString();
    return x < y ? -1 : (x > y ? 1 : 0);
  }

  EvalResult Equality(ExprValue* out) {
    ROVER_EXPR_STEP(Relational(out));
    for (;;) {
      if (MatchOp("==")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Relational(&rhs));
        *out = ExprValue::Bool(Compare(*out, rhs) == 0);
      } else if (MatchOp("!=")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Relational(&rhs));
        *out = ExprValue::Bool(Compare(*out, rhs) != 0);
      } else if (Peek().kind == Token::Kind::kIdent &&
                 (Peek().text == "eq" || Peek().text == "ne")) {
        const bool want_equal = Next().text == "eq";
        ExprValue rhs;
        ROVER_EXPR_STEP(Relational(&rhs));
        *out = ExprValue::Bool((out->AsString() == rhs.AsString()) == want_equal);
      } else {
        return EvalResult::Ok();
      }
    }
  }

  EvalResult Relational(ExprValue* out) {
    ROVER_EXPR_STEP(Shift(out));
    for (;;) {
      if (MatchOp("<=")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Shift(&rhs));
        *out = ExprValue::Bool(Compare(*out, rhs) <= 0);
      } else if (MatchOp(">=")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Shift(&rhs));
        *out = ExprValue::Bool(Compare(*out, rhs) >= 0);
      } else if (MatchOp("<")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Shift(&rhs));
        *out = ExprValue::Bool(Compare(*out, rhs) < 0);
      } else if (MatchOp(">")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Shift(&rhs));
        *out = ExprValue::Bool(Compare(*out, rhs) > 0);
      } else {
        return EvalResult::Ok();
      }
    }
  }

  EvalResult Shift(ExprValue* out) {
    ROVER_EXPR_STEP(Additive(out));
    for (;;) {
      if (MatchOp("<<")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Additive(&rhs));
        *out = ExprValue{out->AsInt() << (rhs.AsInt() & 63)};
      } else if (MatchOp(">>")) {
        ExprValue rhs;
        ROVER_EXPR_STEP(Additive(&rhs));
        *out = ExprValue{out->AsInt() >> (rhs.AsInt() & 63)};
      } else {
        return EvalResult::Ok();
      }
    }
  }

  static ExprValue Arith(char op, const ExprValue& a, const ExprValue& b, EvalResult* err) {
    if (a.is_int() && b.is_int()) {
      const int64_t x = a.AsInt();
      const int64_t y = b.AsInt();
      switch (op) {
        case '+':
          return ExprValue{x + y};
        case '-':
          return ExprValue{x - y};
        case '*':
          return ExprValue{x * y};
        case '/':
          if (y == 0) {
            *err = EvalResult::MakeError("divide by zero");
            return ExprValue{int64_t{0}};
          }
          return ExprValue{x / y};
        case '%':
          if (y == 0) {
            *err = EvalResult::MakeError("divide by zero");
            return ExprValue{int64_t{0}};
          }
          return ExprValue{x % y};
      }
    }
    if (!a.is_numeric() || !b.is_numeric()) {
      *err = EvalResult::MakeError("can't use non-numeric string as operand of \"" +
                                   std::string(1, op) + "\"");
      return ExprValue{int64_t{0}};
    }
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    switch (op) {
      case '+':
        return ExprValue{x + y};
      case '-':
        return ExprValue{x - y};
      case '*':
        return ExprValue{x * y};
      case '/':
        if (y == 0.0) {
          *err = EvalResult::MakeError("divide by zero");
          return ExprValue{int64_t{0}};
        }
        return ExprValue{x / y};
      case '%':
        return ExprValue{std::fmod(x, y)};
    }
    *err = EvalResult::MakeError("bad arithmetic operator");
    return ExprValue{int64_t{0}};
  }

  EvalResult Additive(ExprValue* out) {
    ROVER_EXPR_STEP(Multiplicative(out));
    for (;;) {
      char op = 0;
      if (MatchOp("+")) {
        op = '+';
      } else if (MatchOp("-")) {
        op = '-';
      } else {
        return EvalResult::Ok();
      }
      ExprValue rhs;
      ROVER_EXPR_STEP(Multiplicative(&rhs));
      EvalResult err = EvalResult::Ok();
      *out = Arith(op, *out, rhs, &err);
      if (err.flow != EvalResult::Flow::kOk) {
        return err;
      }
    }
  }

  EvalResult Multiplicative(ExprValue* out) {
    ROVER_EXPR_STEP(Unary(out));
    for (;;) {
      char op = 0;
      if (MatchOp("*")) {
        op = '*';
      } else if (MatchOp("/")) {
        op = '/';
      } else if (MatchOp("%")) {
        op = '%';
      } else {
        return EvalResult::Ok();
      }
      ExprValue rhs;
      ROVER_EXPR_STEP(Unary(&rhs));
      EvalResult err = EvalResult::Ok();
      *out = Arith(op, *out, rhs, &err);
      if (err.flow != EvalResult::Flow::kOk) {
        return err;
      }
    }
  }

  EvalResult Unary(ExprValue* out) {
    if (MatchOp("-")) {
      ROVER_EXPR_STEP(Unary(out));
      if (out->is_int()) {
        *out = ExprValue{-out->AsInt()};
      } else if (out->is_double()) {
        *out = ExprValue{-out->AsDouble()};
      } else {
        return EvalResult::MakeError("can't negate non-numeric value");
      }
      return EvalResult::Ok();
    }
    if (MatchOp("+")) {
      return Unary(out);
    }
    if (MatchOp("!")) {
      ROVER_EXPR_STEP(Unary(out));
      *out = ExprValue::Bool(!out->Truthy());
      return EvalResult::Ok();
    }
    if (MatchOp("~")) {
      ROVER_EXPR_STEP(Unary(out));
      *out = ExprValue{~out->AsInt()};
      return EvalResult::Ok();
    }
    return Primary(out);
  }

  EvalResult Primary(ExprValue* out) {
    const Token& t = Peek();
    if (t.kind == Token::Kind::kValue) {
      *out = Next().value;
      return EvalResult::Ok();
    }
    if (t.kind == Token::Kind::kLParen) {
      ++pos_;
      ROVER_EXPR_STEP(Ternary(out));
      if (Peek().kind != Token::Kind::kRParen) {
        return EvalResult::MakeError("expr: expected )");
      }
      ++pos_;
      return EvalResult::Ok();
    }
    if (t.kind == Token::Kind::kIdent) {
      const std::string name = Next().text;
      if (name == "true") {
        *out = ExprValue::Bool(true);
        return EvalResult::Ok();
      }
      if (name == "false") {
        *out = ExprValue::Bool(false);
        return EvalResult::Ok();
      }
      return Function(name, out);
    }
    return EvalResult::MakeError("expr: unexpected token");
  }

  EvalResult Function(const std::string& name, ExprValue* out) {
    if (Peek().kind != Token::Kind::kLParen) {
      // A bare word is a string operand (Tcl would error; we are lenient
      // so `expr {$state eq idle}` works).
      *out = ExprValue{name};
      return EvalResult::Ok();
    }
    ++pos_;
    std::vector<ExprValue> args;
    if (Peek().kind != Token::Kind::kRParen) {
      for (;;) {
        ExprValue v;
        ROVER_EXPR_STEP(Ternary(&v));
        args.push_back(v);
        if (Peek().kind == Token::Kind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    if (Peek().kind != Token::Kind::kRParen) {
      return EvalResult::MakeError("expr: expected ) after function arguments");
    }
    ++pos_;

    auto need = [&](size_t n) {
      return args.size() == n
                 ? EvalResult::Ok()
                 : EvalResult::MakeError("expr: wrong # args for " + name + "()");
    };
    if (name == "abs") {
      ROVER_EXPR_STEP(need(1));
      *out = args[0].is_int() ? ExprValue{std::abs(args[0].AsInt())}
                              : ExprValue{std::fabs(args[0].AsDouble())};
      return EvalResult::Ok();
    }
    if (name == "int") {
      ROVER_EXPR_STEP(need(1));
      *out = ExprValue{args[0].AsInt()};
      return EvalResult::Ok();
    }
    if (name == "double") {
      ROVER_EXPR_STEP(need(1));
      *out = ExprValue{args[0].AsDouble()};
      return EvalResult::Ok();
    }
    if (name == "round") {
      ROVER_EXPR_STEP(need(1));
      *out = ExprValue{static_cast<int64_t>(std::llround(args[0].AsDouble()))};
      return EvalResult::Ok();
    }
    if (name == "sqrt") {
      ROVER_EXPR_STEP(need(1));
      *out = ExprValue{std::sqrt(args[0].AsDouble())};
      return EvalResult::Ok();
    }
    if (name == "floor") {
      ROVER_EXPR_STEP(need(1));
      *out = ExprValue{std::floor(args[0].AsDouble())};
      return EvalResult::Ok();
    }
    if (name == "ceil") {
      ROVER_EXPR_STEP(need(1));
      *out = ExprValue{std::ceil(args[0].AsDouble())};
      return EvalResult::Ok();
    }
    if (name == "pow") {
      ROVER_EXPR_STEP(need(2));
      *out = ExprValue{std::pow(args[0].AsDouble(), args[1].AsDouble())};
      return EvalResult::Ok();
    }
    if (name == "fmod") {
      ROVER_EXPR_STEP(need(2));
      *out = ExprValue{std::fmod(args[0].AsDouble(), args[1].AsDouble())};
      return EvalResult::Ok();
    }
    if (name == "min" || name == "max") {
      if (args.empty()) {
        return EvalResult::MakeError("expr: " + name + "() needs at least one argument");
      }
      ExprValue best = args[0];
      for (size_t i = 1; i < args.size(); ++i) {
        const bool greater = args[i].AsDouble() > best.AsDouble();
        if ((name == "max") == greater) {
          best = args[i];
        }
      }
      *out = best;
      return EvalResult::Ok();
    }
    if (name == "rand") {
      ROVER_EXPR_STEP(need(0));
      *out = ExprValue{interp_->rng()->NextDouble()};
      return EvalResult::Ok();
    }
    if (name == "srand") {
      ROVER_EXPR_STEP(need(1));
      interp_->ReseedRng(static_cast<uint64_t>(args[0].AsInt()));
      *out = ExprValue{int64_t{0}};
      return EvalResult::Ok();
    }
    return EvalResult::MakeError("expr: unknown function \"" + name + "\"");
  }

  Interp* interp_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

EvalResult EvalExpr(Interp* interp, const std::string& expression) {
  std::vector<Token> tokens;
  Lexer lexer(interp, expression);
  EvalResult r = lexer.Tokenize(&tokens);
  if (r.flow != EvalResult::Flow::kOk) {
    return r;
  }
  return ExprParser(interp, std::move(tokens)).Parse();
}

}  // namespace rover
