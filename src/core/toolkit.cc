#include "src/core/toolkit.h"

#include <utility>

#include "src/util/logging.h"

namespace rover {

RoverClientNode::RoverClientNode(EventLoop* loop, Host* host, ClientNodeOptions options)
    : loop_(loop), host_(host), options_(std::move(options)) {
  log_ = std::make_unique<StableLog>(loop_, options_.log_costs, options_.disk_faults);
  log_->BindMetrics(&metrics_, "stable_log");
  // Permanent sync failure is fail-stop: the node treats it as a crash.
  log_->SetFailStopHandler([this] { OnStorageFailStop(); });
  Build();
  ArmScrubTimer();
}

void RoverClientNode::ArmScrubTimer() {
  if (options_.scrub_interval.is_zero()) {
    return;
  }
  // The node outlives every loop event (the testbed tears the loop down
  // with the nodes), so a plain `this` capture is safe here.
  loop_->ScheduleAfter(options_.scrub_interval, [this] {
    metrics_.counter("storage_scrub.runs")->Increment();
    const size_t quarantined = ScrubStorage();
    metrics_.counter("storage_scrub.quarantined")->Increment(quarantined);
    ArmScrubTimer();
  });
}

void RoverClientNode::OnStorageFailStop() {
  if (!log_->device()->sync_failed()) {
    return;  // an earlier fail-stop already replaced the device
  }
  ++storage_fail_stops_;
  // Model the operator swapping the dead disk during the reboot: without a
  // working device the node could never ack durability again, so the
  // deployment would have no post-fault convergence path.
  log_->device()->Repair();
  SimulateCrashAndRestart(false);
}

size_t RoverClientNode::ScrubStorage() {
  const StableLog::ScrubReport report = log_->Scrub();
  if (report.quarantined.empty()) {
    return 0;
  }
  if (check_ != nullptr) {
    check_->OnClientStorageQuarantine(host_name(), report.quarantined);
  }
  // The quarantined records' operations were durability-acknowledged and
  // are now lost: fail their calls loudly (kDataLoss) and conservatively
  // re-validate the whole cache against the server.
  qrpc_client_->FailQuarantinedRecords(report.quarantined);
  access_manager_->MarkAllImportsStale();
  return report.quarantined.size();
}

void RoverClientNode::Build() {
  transport_ = std::make_unique<TransportManager>(loop_, host_, options_.scheduler);
  qrpc_client_ =
      std::make_unique<QrpcClient>(loop_, transport_.get(), log_.get(), options_.qrpc);
  access_manager_ = std::make_unique<AccessManager>(loop_, transport_.get(),
                                                    qrpc_client_.get(), options_.access);
  if (!options_.auth_token.empty()) {
    transport_->set_auth_token(options_.auth_token);
  }
  // One registry per node: every subsystem's instruments under its own
  // "<subsystem>." prefix, one tracer shared by the QRPC client (enqueue/
  // log/flush/respond events) and the scheduler (transmit events). A
  // rebuilt component starts at zero, so re-binding after a crash keeps the
  // registry's counters cumulative.
  transport_->scheduler()->BindMetrics(&metrics_, "scheduler");
  transport_->BindMetrics(&metrics_, "transport");
  qrpc_client_->BindMetrics(&metrics_, "qrpc_client");
  access_manager_->BindMetrics(&metrics_, "access_manager");
  qrpc_client_->SetTracer(&tracer_);
  transport_->scheduler()->SetTracer(&tracer_);
  if (check_ != nullptr) {
    qrpc_client_->SetCheckListener(check_);
    access_manager_->SetCheckListener(check_);
  }
}

void RoverClientNode::SetCheckListener(obs::CheckListener* listener) {
  check_ = listener;
  qrpc_client_->SetCheckListener(listener);
  access_manager_->SetCheckListener(listener);
}

size_t RoverClientNode::SimulateCrashAndRestart(bool tear_last_log_record) {
  if (check_ != nullptr) {
    check_->OnClientCrashed(host_name());
  }
  // Stable storage at crash time: the cache snapshot, the rpc-id counter
  // (both persisted alongside the log), and the durable log records. The
  // failover engagement travels with them: once the primary has been
  // declared dead it stays dead, so the rebuilt client must re-route its
  // recovered resends to the backup, not fire them at a fenced corpse.
  const Bytes cache_snapshot = access_manager_->SerializeCache();
  const uint64_t next_rpc_id = qrpc_client_->next_rpc_id();
  const bool failover_engaged = qrpc_client_->failover_engaged();
  // A tear models a power cut mid-write; records whose flush completed
  // (whose commit promises may have resolved) cannot be torn after the fact.
  log_->SimulateCrash(tear_last_log_record && log_->WriteInFlight());

  // Process state dies with the process.
  access_manager_.reset();
  qrpc_client_.reset();
  transport_.reset();

  const StableLog::RecoveryReport report = log_->RecoverWithReport();
  Build();
  qrpc_client_->set_next_rpc_id(next_rpc_id);
  if (failover_engaged) {
    qrpc_client_->TriggerFailover();  // re-engage before RecoverFromLog re-sends
  }
  Status loaded = access_manager_->LoadCache(cache_snapshot);
  if (!loaded.ok()) {
    ROVER_LOG(Warning) << "client cache reload failed: " << loaded.message();
  }
  if (!report.quarantined.empty()) {
    // Interior corruption: acknowledged operations whose records rotted.
    // Reported BEFORE RecoverFromLog so the checker exempts them from its
    // silent-durability-loss audit, then the cache re-validates everything
    // the lost operations might have touched.
    if (check_ != nullptr) {
      check_->OnClientStorageQuarantine(host_name(), report.quarantined);
    }
    access_manager_->MarkAllImportsStale();
  }
  return qrpc_client_->RecoverFromLog();
}

RoverServerNode::RoverServerNode(EventLoop* loop, Host* host, ServerNodeOptions options)
    : loop_(loop), host_(host), options_(std::move(options)),
      stable_store_(loop, options_.stable_store) {
  // Permanent WAL sync failure is fail-stop: the node treats it as a crash.
  stable_store_.wal()->SetFailStopHandler([this] { OnStorageFailStop(); });
  Build();
  ArmScrubTimer();
}

void RoverServerNode::ArmScrubTimer() {
  if (options_.scrub_interval.is_zero() || dead_) {
    return;
  }
  loop_->ScheduleAfter(options_.scrub_interval, [this] {
    if (dead_) {
      return;
    }
    metrics_.counter("storage_scrub.runs")->Increment();
    const size_t quarantined = ScrubStorage();
    metrics_.counter("storage_scrub.quarantined")->Increment(quarantined);
    ArmScrubTimer();
  });
}

void RoverServerNode::EnableReplicationPrimary(const std::string& backup_host,
                                               Duration sync_timeout) {
  repl_primary_peer_ = backup_host;
  repl_backup_peer_.clear();
  repl_sync_timeout_ = sync_timeout;
  BuildReplication();
}

void RoverServerNode::EnableReplicationBackup(const std::string& primary_host) {
  repl_backup_peer_ = primary_host;
  repl_primary_peer_.clear();
  BuildReplication();
}

void RoverServerNode::BuildReplication() {
  // Both roles claim the host's kControl handler, which is why a node holds
  // at most one of them.
  repl_sender_.reset();
  repl_receiver_.reset();
  if (rover_server_ != nullptr) {
    rover_server_->SetReplicationSender(nullptr);
  }
  if (!repl_primary_peer_.empty()) {
    ReplicationOptions ropts;
    ropts.peer = repl_primary_peer_;
    ropts.sync_timeout = repl_sync_timeout_;
    repl_sender_ = std::make_unique<ReplicationSender>(loop_, transport_.get(), ropts);
    repl_sender_->SetResyncProvider([this] {
      ReplicationSender::ResyncImage img;
      img.object_image = rover_server_->store()->Serialize();
      for (const QrpcServer::CachedResponse& cr : qrpc_server_->CachedResponses()) {
        img.responses.push_back(CachedResponseEntry{cr.client, cr.rpc_id, cr.response});
      }
      img.baseline_seq = stable_store_.last_logged_id();
      img.epoch = stable_store_.epoch();
      return img;
    });
    repl_sender_->SetDegradeListener([this] {
      ROVER_LOG(Warning) << host_name()
                         << ": replication degraded to async (backup not acking)";
      if (check_ != nullptr) {
        check_->OnReplicationDegraded(host_name());
      }
    });
    repl_sender_->BindMetrics(&metrics_, "replication_sender");
    rover_server_->SetReplicationSender(repl_sender_.get());
  } else if (!repl_backup_peer_.empty()) {
    ReplicationOptions ropts;
    ropts.peer = repl_backup_peer_;
    repl_receiver_ = std::make_unique<ReplicationReceiver>(
        loop_, transport_.get(), rover_server_.get(),
        options_.durable ? &stable_store_ : nullptr, qrpc_server_.get(), ropts);
    if (check_ != nullptr) {
      repl_receiver_->SetCheckListener(check_);
    }
    repl_receiver_->BindMetrics(&metrics_, "replication_receiver");
  }
}

uint64_t RoverServerNode::Promote() {
  if (repl_receiver_ == nullptr || dead_) {
    return 0;
  }
  return repl_receiver_->Promote();
}

void RoverServerNode::Kill() {
  if (dead_) {
    return;
  }
  dead_ = true;
  if (check_ != nullptr) {
    check_->OnServerCrashed(host_name());
  }
  // The dead host's interfaces never come back: parked client queues
  // conclude the destination is unreachable, which force-opens their
  // breaker and (via the breaker observer) triggers failover.
  for (Link* link : host_->links()) {
    link->ForceDown();
  }
  repl_sender_.reset();
  repl_receiver_.reset();
  rover_server_.reset();
  qrpc_server_.reset();
  transport_.reset();
  stable_store_.SimulateCrash(false);
}

void RoverServerNode::OnStorageFailStop() {
  if (!stable_store_.wal()->device()->sync_failed()) {
    return;  // an earlier fail-stop already replaced the device
  }
  RequestWalFailStop();
}

void RoverServerNode::RequestWalFailStop() {
  if (wal_failstop_pending_ || dead_) {
    return;  // several journal flushes can fail in one episode; crash once
  }
  wal_failstop_pending_ = true;
  loop_->ScheduleAfter(Duration::Zero(), [this] {
    wal_failstop_pending_ = false;
    if (dead_) {
      return;
    }
    ++storage_fail_stops_;
    if (failstop_failover_handler_) {
      // A backup exists: storage death is terminal for this node, and the
      // handler moves the service instead of resurrecting the disk.
      auto handler = failstop_failover_handler_;
      Kill();
      handler();
      return;
    }
    if (stable_store_.wal()->device()->sync_failed()) {
      // Operator swaps the dead disk during the reboot (see the client-side
      // counterpart): recovery then proceeds from snapshot + surviving WAL.
      stable_store_.wal()->device()->Repair();
    }
    SimulateCrashAndRestart(false);
  });
}

size_t RoverServerNode::ScrubStorage() {
  return dead_ ? 0 : rover_server_->ScrubStableStore();
}

void RoverServerNode::Build() {
  transport_ = std::make_unique<TransportManager>(loop_, host_, options_.scheduler);
  qrpc_server_ = std::make_unique<QrpcServer>(loop_, transport_.get(), options_.qrpc);
  rover_server_ = std::make_unique<RoverServer>(
      loop_, transport_.get(), qrpc_server_.get(), options_.rover,
      options_.durable ? &stable_store_ : nullptr);
  // A response-journal flush that exhausts its retries (kUnavailable) is
  // fail-stop, like a permanent sync failure: the in-memory image diverged
  // from what stable storage will recover, so discard the incarnation and
  // let resends re-execute against recovered state.
  rover_server_->SetWalFailureHandler([this] { RequestWalFailStop(); });
  transport_->scheduler()->BindMetrics(&metrics_, "scheduler");
  qrpc_server_->BindMetrics(&metrics_, "qrpc_server");
  transport_->BindMetrics(&metrics_, "transport");
  if (check_ != nullptr) {
    qrpc_server_->SetCheckListener(check_);
    rover_server_->SetCheckListener(check_);
  }
  BuildReplication();
}

void RoverServerNode::SetCheckListener(obs::CheckListener* listener) {
  check_ = listener;
  if (qrpc_server_ != nullptr) {
    qrpc_server_->SetCheckListener(listener);
  }
  if (rover_server_ != nullptr) {
    rover_server_->SetCheckListener(listener);
  }
  if (repl_receiver_ != nullptr) {
    repl_receiver_->SetCheckListener(listener);
  }
}

RecoveredServerState RoverServerNode::SimulateCrashAndRestart(bool tear_last_wal_record) {
  if (dead_) {
    return RecoveredServerState{};  // killed for good; nothing restarts
  }
  if (check_ != nullptr) {
    check_->OnServerCrashed(host_name());
  }
  stable_store_.SimulateCrash(tear_last_wal_record);

  // Process state dies with the process. The replication endpoints hold the
  // transport, so they go first.
  repl_sender_.reset();
  repl_receiver_.reset();
  rover_server_.reset();
  qrpc_server_.reset();
  transport_.reset();

  RecoveredServerState recovered = stable_store_.Recover();
  Build();
  rover_server_->RestoreFromRecovery(recovered);
  return recovered;
}

Testbed::Testbed(Options options) : options_(std::move(options)), network_(&loop_) {
  Host* host = network_.AddHost(options_.server_name);
  server_ = std::make_unique<RoverServerNode>(&loop_, host, options_.server);
}

RoverServerNode* Testbed::AddServer(const std::string& name, ServerNodeOptions options) {
  auto it = extra_servers_.find(name);
  if (it != extra_servers_.end()) {
    return it->second.get();
  }
  Host* host = network_.AddHost(name);
  auto node = std::make_unique<RoverServerNode>(&loop_, host, options);
  RoverServerNode* raw = node.get();
  if (check_ != nullptr) {
    raw->SetCheckListener(check_);
  }
  extra_servers_.emplace(name, std::move(node));
  return raw;
}

RoverServerNode* Testbed::AddBackup(const std::string& name, LinkProfile repl_link,
                                    ServerNodeOptions options, Duration sync_timeout) {
  RoverServerNode* backup = AddServer(name, std::move(options));
  AddLink(options_.server_name, name, std::move(repl_link));
  server_->EnableReplicationPrimary(name, sync_timeout);
  backup->EnableReplicationBackup(options_.server_name);
  return backup;
}

RoverServerNode* Testbed::FindServer(const std::string& name) {
  if (name == options_.server_name) {
    return server_.get();
  }
  auto it = extra_servers_.find(name);
  return it == extra_servers_.end() ? nullptr : it->second.get();
}

Link* Testbed::AddLink(const std::string& host_a, const std::string& host_b,
                       LinkProfile profile, std::unique_ptr<ConnectivitySchedule> schedule) {
  return network_.Connect(host_a, host_b, std::move(profile), std::move(schedule));
}

RoverClientNode* Testbed::AddClient(const std::string& name, LinkProfile profile,
                                    std::unique_ptr<ConnectivitySchedule> schedule,
                                    ClientNodeOptions options) {
  network_.Connect(name, options_.server_name, std::move(profile), std::move(schedule));
  auto it = clients_.find(name);
  if (it != clients_.end()) {
    return it->second.get();  // extra link attached to an existing client
  }
  if (options.access.server_host.empty() || options.access.server_host == "server") {
    options.access.server_host = options_.server_name;
  }
  auto node =
      std::make_unique<RoverClientNode>(&loop_, network_.FindHost(name), options);
  RoverClientNode* raw = node.get();
  if (check_ != nullptr) {
    raw->SetCheckListener(check_);
  }
  clients_.emplace(name, std::move(node));
  return raw;
}

RoverClientNode* Testbed::AddDetachedClient(const std::string& name,
                                            ClientNodeOptions options) {
  auto it = clients_.find(name);
  if (it != clients_.end()) {
    return it->second.get();
  }
  if (options.access.server_host.empty() || options.access.server_host == "server") {
    options.access.server_host = options_.server_name;
  }
  Host* host = network_.AddHost(name);
  auto node = std::make_unique<RoverClientNode>(&loop_, host, options);
  RoverClientNode* raw = node.get();
  if (check_ != nullptr) {
    raw->SetCheckListener(check_);
  }
  clients_.emplace(name, std::move(node));
  return raw;
}

SmtpRelay* Testbed::AddRelay(const std::string& relay_name, const std::string& client_name,
                             LinkProfile client_link, LinkProfile server_link) {
  network_.Connect(client_name, relay_name, std::move(client_link));
  network_.Connect(relay_name, options_.server_name, std::move(server_link));
  Relay relay;
  relay.transport =
      std::make_unique<TransportManager>(&loop_, network_.FindHost(relay_name));
  relay.relay = std::make_unique<SmtpRelay>(&loop_, relay.transport.get());
  SmtpRelay* raw = relay.relay.get();
  relays_.emplace(relay_name, std::move(relay));
  return raw;
}

RoverClientNode* Testbed::client(const std::string& name) {
  auto it = clients_.find(name);
  return it == clients_.end() ? nullptr : it->second.get();
}

std::vector<RoverClientNode*> Testbed::AllClients() {
  std::vector<RoverClientNode*> out;
  out.reserve(clients_.size());
  for (auto& [name, node] : clients_) {
    out.push_back(node.get());
  }
  return out;
}

std::vector<RoverServerNode*> Testbed::AllServers() {
  std::vector<RoverServerNode*> out;
  out.reserve(1 + extra_servers_.size());
  out.push_back(server_.get());
  for (auto& [name, node] : extra_servers_) {
    out.push_back(node.get());
  }
  return out;
}

void Testbed::SetCheckListener(obs::CheckListener* listener) {
  check_ = listener;
  server_->SetCheckListener(listener);
  for (auto& [name, node] : extra_servers_) {
    node->SetCheckListener(listener);
  }
  for (auto& [name, node] : clients_) {
    node->SetCheckListener(listener);
  }
}

RdoDescriptor MakeRdo(const std::string& name, const std::string& type,
                      const std::string& code, const std::string& data) {
  RdoDescriptor d;
  d.name = name;
  d.type = type;
  d.code = code;
  d.data = data;
  return d;
}

}  // namespace rover
