// Toolkit facades. RoverClientNode and RoverServerNode bundle the pieces a
// Rover endpoint needs (transport manager, stable log, QRPC engine, access
// manager / object store), and Testbed assembles a complete simulated
// deployment -- one home server plus any number of mobile clients over
// configurable links -- in a few lines. Examples, tests, and every bench
// harness build on Testbed.

#ifndef ROVER_SRC_CORE_TOOLKIT_H_
#define ROVER_SRC_CORE_TOOLKIT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/access_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/rpc_trace.h"
#include "src/qrpc/qrpc.h"
#include "src/qrpc/stable_log.h"
#include "src/sim/network.h"
#include "src/store/replication.h"
#include "src/store/server.h"
#include "src/transport/smtp.h"
#include "src/transport/transport.h"

namespace rover {

struct ClientNodeOptions {
  SchedulerOptions scheduler;
  StableLogCostModel log_costs;
  // Fault schedule for the stable-log device (healthy by default).
  DiskFaultOptions disk_faults;
  QrpcClientOptions qrpc;
  AccessManagerOptions access;
  std::string auth_token;  // stamped on every outbound message
  // Non-zero: proactively CRC-sweep the stable log every interval, so latent
  // bit rot is quarantined (and surfaced) before the next crash recovery
  // trips over it. The periodic timer keeps the event loop non-quiescent --
  // drive simulations that enable it with RunFor, not Run.
  Duration scrub_interval = Duration::Zero();
};

// A mobile host: access manager over QRPC over the network scheduler,
// with a stable operation log. Every subsystem's instruments live in one
// node-wide metrics registry, and the QRPC client + scheduler share one
// per-RPC lifecycle tracer.
class RoverClientNode {
 public:
  RoverClientNode(EventLoop* loop, Host* host, ClientNodeOptions options = {});

  AccessManager* access() { return access_manager_.get(); }
  QrpcClient* qrpc() { return qrpc_client_.get(); }
  StableLog* log() { return log_.get(); }
  TransportManager* transport() { return transport_.get(); }
  const std::string& host_name() const { return transport_->local_host(); }

  // Simulated crash + reboot. Volatile state (unflushed log tail,
  // outstanding promises, scheduler queues, live RDO instances) vanishes;
  // stable state (durable log records, the cache snapshot, the rpc-id
  // counter) survives. The node is rebuilt and every durable logged
  // request re-sent. Returns the number of requests re-sent.
  size_t SimulateCrashAndRestart(bool tear_last_log_record = false);

  // Proactive CRC sweep over the durable log. Quarantined records' calls
  // fail with kDataLoss, the quarantine is reported to the checker, and the
  // cache conservatively re-validates everything. Returns quarantined count.
  size_t ScrubStorage();

  // Times the stable device reported a permanent sync failure and the node
  // fail-stopped (crash + disk replacement + restart) in response.
  uint64_t storage_fail_stops() const { return storage_fail_stops_; }

  // Unified view over scheduler, stable log, qrpc client, and access
  // manager instruments; render with metrics()->Render(). Counters are
  // cumulative across crash-restarts.
  obs::Registry* metrics() { return &metrics_; }
  obs::RpcTracer* tracer() { return &tracer_; }

  // Attaches an invariant checker to the qrpc client and access manager.
  // Survives SimulateCrashAndRestart (the rebuilt components are re-wired),
  // and the crash itself is reported via OnClientCrashed.
  void SetCheckListener(obs::CheckListener* listener);

 private:
  void Build();
  void OnStorageFailStop();
  void ArmScrubTimer();

  EventLoop* loop_;
  Host* host_;
  ClientNodeOptions options_;
  obs::CheckListener* check_ = nullptr;
  uint64_t storage_fail_stops_ = 0;
  // Declared before the components so it outlives their metric handles.
  obs::Registry metrics_;
  obs::RpcTracer tracer_;
  // The stable log models the device itself, so it survives crashes; the
  // rest is process state, torn down and rebuilt by SimulateCrashAndRestart.
  std::unique_ptr<StableLog> log_;
  std::unique_ptr<TransportManager> transport_;
  std::unique_ptr<QrpcClient> qrpc_client_;
  std::unique_ptr<AccessManager> access_manager_;
};

struct ServerNodeOptions {
  SchedulerOptions scheduler;
  QrpcServerOptions qrpc;
  RoverServerOptions rover;
  ServerStoreOptions stable_store;
  // Journal object mutations + duplicate-cache responses to the stable
  // store (write-ahead, per-RPC atomic transactions). Off = the seed's
  // volatile server: a crash loses everything.
  bool durable = true;
  // Non-zero: proactively CRC-sweep the WAL every interval (see the client
  // counterpart). Keeps the event loop non-quiescent; use RunFor.
  Duration scrub_interval = Duration::Zero();
};

// A home server: object store + QRPC dispatch over a stable store.
class RoverServerNode {
 public:
  RoverServerNode(EventLoop* loop, Host* host, ServerNodeOptions options = {});

  RoverServer* rover() { return rover_server_.get(); }
  ObjectStore* store() { return rover_server_->store(); }
  QrpcServer* qrpc() { return qrpc_server_.get(); }
  TransportManager* transport() { return transport_.get(); }
  ServerStableStore* stable_store() { return &stable_store_; }

  // --- primary/backup replication ---
  // Makes this node the replication primary: every committed WAL transaction
  // ships to `backup_host`, and response release waits for the backup's ack
  // (up to `sync_timeout`; see ReplicationOptions). Requires durable = true.
  // Mutually exclusive with EnableReplicationBackup on the same node.
  // Survives SimulateCrashAndRestart.
  void EnableReplicationPrimary(const std::string& backup_host,
                                Duration sync_timeout = Duration::Seconds(5));
  // Makes this node the hot standby for `primary_host`: shipped transactions
  // are applied (and journaled, when durable) as they arrive, and a full
  // resync is requested on attach or after any sequence gap.
  void EnableReplicationBackup(const std::string& primary_host);
  ReplicationSender* replication_sender() { return repl_sender_.get(); }
  ReplicationReceiver* replication_receiver() { return repl_receiver_.get(); }

  // Fences the dead primary and takes over (see ReplicationReceiver::
  // Promote). Returns the new epoch, or 0 if this node is not a backup.
  uint64_t Promote();

  // Permanent fail-stop, the failover trigger: reports the crash, downs
  // every attached link for good, and tears the process down without
  // rebuilding it. Unlike SimulateCrashAndRestart the node never comes
  // back -- the backup owns the service from here on. Idempotent.
  void Kill();
  bool dead() const { return dead_; }

  // When set, a WAL fail-stop (permanent sync failure, exhausted response-
  // journal flush retries) Kill()s the node and invokes the handler instead
  // of crash-restarting in place -- the deployment-level failover path for
  // storage death. The handler typically promotes the backup and triggers
  // client failover.
  void SetFailStopFailoverHandler(std::function<void()> handler) {
    failstop_failover_handler_ = std::move(handler);
  }

  // Simulated crash + reboot. Volatile state (subscriptions, live RDO
  // instances, queued/in-flight responses, unflushed WAL tail) vanishes;
  // the stable store survives. Recovery bumps the server epoch (so clients
  // detect the restart), replays snapshot + WAL, and rebuilds the node.
  RecoveredServerState SimulateCrashAndRestart(bool tear_last_wal_record = false);

  // Proactive CRC sweep over the durable WAL (see RoverServer::
  // ScrubStableStore). Returns quarantined record count.
  size_t ScrubStorage();

  // Times the WAL device forced a fail-stop (permanent sync failure, or a
  // response-journal flush whose retries were exhausted) and the node
  // crash-restarted in response.
  uint64_t storage_fail_stops() const { return storage_fail_stops_; }

  // Unified view over the server's scheduler and qrpc instruments.
  // Counters are cumulative across crash-restarts.
  obs::Registry* metrics() { return &metrics_; }

  // Attaches an invariant checker to the qrpc server and rover server.
  // Survives SimulateCrashAndRestart; the crash is reported via
  // OnServerCrashed and recovery via OnServerRecovered.
  void SetCheckListener(obs::CheckListener* listener);

  const std::string& host_name() const { return transport_->local_host(); }

 private:
  void Build();
  void BuildReplication();
  void OnStorageFailStop();
  void ArmScrubTimer();
  // Schedules an async crash-restart of this incarnation (at most one in
  // flight); fired from WAL flush callbacks, which must not tear the server
  // down re-entrantly.
  void RequestWalFailStop();

  EventLoop* loop_;
  Host* host_;
  ServerNodeOptions options_;
  obs::CheckListener* check_ = nullptr;
  uint64_t storage_fail_stops_ = 0;
  bool wal_failstop_pending_ = false;
  bool dead_ = false;
  // Replication role (at most one non-empty), re-applied on every rebuild.
  std::string repl_primary_peer_;  // set = this node ships to that backup
  std::string repl_backup_peer_;   // set = this node receives from that primary
  Duration repl_sync_timeout_ = Duration::Seconds(5);
  std::function<void()> failstop_failover_handler_;
  // Declared before the components so it outlives their metric handles.
  obs::Registry metrics_;
  // The stable store models the device itself, so it survives crashes.
  ServerStableStore stable_store_;
  std::unique_ptr<TransportManager> transport_;
  std::unique_ptr<QrpcServer> qrpc_server_;
  std::unique_ptr<RoverServer> rover_server_;
  std::unique_ptr<ReplicationSender> repl_sender_;
  std::unique_ptr<ReplicationReceiver> repl_receiver_;
};

// A complete simulated deployment.
class Testbed {
 public:
  struct Options {
    std::string server_name = "server";
    ServerNodeOptions server;
  };

  Testbed() : Testbed(Options()) {}
  explicit Testbed(Options options);

  EventLoop* loop() { return &loop_; }
  Network* network() { return &network_; }
  RoverServerNode* server() { return server_.get(); }

  // Adds another home server (objects name it via rover://<name>/<path>).
  RoverServerNode* AddServer(const std::string& name, ServerNodeOptions options = {});
  RoverServerNode* FindServer(const std::string& name);

  // Connects any two existing hosts directly (e.g. a client to a second
  // home server).
  Link* AddLink(const std::string& host_a, const std::string& host_b, LinkProfile profile,
                std::unique_ptr<ConnectivitySchedule> schedule = nullptr);

  // Adds a hot-standby backup for the main server: a new server node,
  // linked to the primary by `repl_link` (the replication channel), with
  // the primary shipping to it and the backup receiving. Clients that
  // should survive the primary's death also need their own link to the
  // backup (AddLink) and the failover route in ClientNodeOptions::
  // qrpc.failover_primary / failover_backup.
  RoverServerNode* AddBackup(const std::string& name, LinkProfile repl_link,
                             ServerNodeOptions options = {},
                             Duration sync_timeout = Duration::Seconds(5));

  // Adds a mobile client connected to the server by `profile` (with an
  // optional connectivity schedule). Call again with the same name to add
  // a second link to an existing client.
  RoverClientNode* AddClient(const std::string& name, LinkProfile profile,
                             std::unique_ptr<ConnectivitySchedule> schedule = nullptr,
                             ClientNodeOptions options = {});

  // Adds a client with no links at all (attach links explicitly with
  // AddLink/AddRelay -- e.g. a relay-only client that never talks to the
  // server directly).
  RoverClientNode* AddDetachedClient(const std::string& name,
                                     ClientNodeOptions options = {});

  // Adds an SMTP relay host reachable from both the named client and the
  // server over always-up links (the paper's e-mail transport).
  SmtpRelay* AddRelay(const std::string& relay_name, const std::string& client_name,
                      LinkProfile client_link, LinkProfile server_link);

  RoverClientNode* client(const std::string& name);

  // Every client / server node currently in the bed (for whole-deployment
  // sweeps such as SimCheck's quiesce audit).
  std::vector<RoverClientNode*> AllClients();
  std::vector<RoverServerNode*> AllServers();

  // Attaches an invariant checker to every node, current and future.
  void SetCheckListener(obs::CheckListener* listener);

  // Runs the simulation until quiescent.
  void Run() { loop_.Run(); }
  void RunFor(Duration d) { loop_.RunFor(d); }

 private:
  obs::CheckListener* check_ = nullptr;
  Options options_;
  EventLoop loop_;
  Network network_;
  std::unique_ptr<RoverServerNode> server_;
  std::map<std::string, std::unique_ptr<RoverServerNode>> extra_servers_;
  std::map<std::string, std::unique_ptr<RoverClientNode>> clients_;
  struct Relay {
    std::unique_ptr<TransportManager> transport;
    std::unique_ptr<SmtpRelay> relay;
  };
  std::map<std::string, Relay> relays_;
};

// Convenience: a descriptor with the given name/type/code/data.
RdoDescriptor MakeRdo(const std::string& name, const std::string& type,
                      const std::string& code, const std::string& data);

}  // namespace rover

#endif  // ROVER_SRC_CORE_TOOLKIT_H_
