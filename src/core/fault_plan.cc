#include "src/core/fault_plan.h"

#include <utility>

namespace rover {

void FaultPlan::CrashServerAt(RoverServerNode* server, TimePoint t, bool tear_last_record) {
  loop_->ScheduleAt(t, [this, server, tear_last_record] {
    server->SimulateCrashAndRestart(tear_last_record);
    ++server_crashes_executed_;
  });
}

void FaultPlan::CrashClientAt(RoverClientNode* client, TimePoint t, bool tear_last_record) {
  loop_->ScheduleAt(t, [this, client, tear_last_record] {
    client_recoveries_resent_ += client->SimulateCrashAndRestart(tear_last_record);
    ++client_crashes_executed_;
  });
}

void FaultPlan::ScheduleRandomFaults(RoverServerNode* server,
                                     const std::vector<RoverClientNode*>& clients,
                                     RandomFaultOptions options) {
  const uint64_t span = static_cast<uint64_t>(options.horizon.micros());
  auto random_time = [this, span] {
    return TimePoint::FromMicros(static_cast<int64_t>(rng_.NextBelow(span > 0 ? span : 1)));
  };
  for (size_t i = 0; i < options.server_crashes; ++i) {
    CrashServerAt(server, random_time(), rng_.NextBool(options.tear_probability));
  }
  for (RoverClientNode* client : clients) {
    for (size_t i = 0; i < options.client_crashes; ++i) {
      CrashClientAt(client, random_time(), rng_.NextBool(options.tear_probability));
    }
  }
}

std::unique_ptr<IntervalConnectivity> FaultPlan::FlappyConnectivity(Duration mean_up,
                                                                    Duration mean_down,
                                                                    Duration horizon) {
  std::vector<IntervalConnectivity::Interval> intervals;
  TimePoint t = TimePoint::Epoch();
  const TimePoint end = TimePoint::Epoch() + horizon;
  bool up = true;
  while (t < end) {
    Duration span = Duration::Seconds(
        rng_.NextExponential((up ? mean_up : mean_down).seconds()));
    if (span < Duration::Millis(1)) {
      span = Duration::Millis(1);  // guarantee forward progress
    }
    if (up) {
      TimePoint finish = t + span;
      if (finish > end) {
        finish = end;
      }
      intervals.push_back({t, finish});
    }
    t = t + span;
    up = !up;
  }
  // Permanently up after the fault window, so queued work always drains.
  intervals.push_back({end, TimePoint::FromMicros(INT64_MAX)});
  return std::make_unique<IntervalConnectivity>(std::move(intervals));
}

}  // namespace rover
