#include "src/core/fault_plan.h"

#include <utility>

namespace rover {

void FaultPlan::CrashServerAt(RoverServerNode* server, TimePoint t, bool tear_last_record) {
  loop_->ScheduleAt(t, [this, server, tear_last_record] {
    server->SimulateCrashAndRestart(tear_last_record);
    ++server_crashes_executed_;
  });
}

void FaultPlan::CrashClientAt(RoverClientNode* client, TimePoint t, bool tear_last_record) {
  loop_->ScheduleAt(t, [this, client, tear_last_record] {
    client_recoveries_resent_ += client->SimulateCrashAndRestart(tear_last_record);
    ++client_crashes_executed_;
  });
}

void FaultPlan::ScheduleRandomFaults(RoverServerNode* server,
                                     const std::vector<RoverClientNode*>& clients,
                                     RandomFaultOptions options) {
  const uint64_t span = static_cast<uint64_t>(options.horizon.micros());
  auto random_time = [this, span] {
    return TimePoint::FromMicros(static_cast<int64_t>(rng_.NextBelow(span > 0 ? span : 1)));
  };
  for (size_t i = 0; i < options.server_crashes; ++i) {
    CrashServerAt(server, random_time(), rng_.NextBool(options.tear_probability));
  }
  for (RoverClientNode* client : clients) {
    for (size_t i = 0; i < options.client_crashes; ++i) {
      CrashClientAt(client, random_time(), rng_.NextBool(options.tear_probability));
    }
  }
}

void FaultPlan::ScheduleFailover(RoverServerNode* primary, RoverServerNode* backup,
                                 const std::vector<RoverClientNode*>& clients,
                                 FailoverOptions options) {
  TimePoint kill_at = options.at;
  if (kill_at == TimePoint::Epoch()) {
    const uint64_t span = static_cast<uint64_t>(options.horizon.micros());
    kill_at = TimePoint::FromMicros(
        static_cast<int64_t>(rng_.NextBelow(span > 0 ? span : 1)));
  }
  loop_->ScheduleAt(kill_at, [this, primary] {
    primary->Kill();
    ++failovers_executed_;
  });
  loop_->ScheduleAt(kill_at + options.detection_delay, [backup, clients] {
    backup->Promote();
    for (RoverClientNode* client : clients) {
      client->qrpc()->TriggerFailover();
    }
  });
}

void FaultPlan::ScheduleRandomDiskFaults(RoverServerNode* server,
                                         const std::vector<RoverClientNode*>& clients,
                                         DiskFaultScheduleOptions options) {
  if (server != nullptr) {
    ScheduleDeviceFaults(server->stable_store()->wal(), options);
  }
  for (RoverClientNode* client : clients) {
    ScheduleDeviceFaults(client->log(), options);
  }
}

void FaultPlan::ScheduleDeviceFaults(StableLog* log,
                                     const DiskFaultScheduleOptions& options) {
  // The StableLog (and its device) models hardware: it outlives simulated
  // crash-restarts, so capturing the pointer here is safe.
  const uint64_t span = static_cast<uint64_t>(options.horizon.micros());
  auto random_time = [this, span] {
    return TimePoint::FromMicros(static_cast<int64_t>(rng_.NextBelow(span > 0 ? span : 1)));
  };
  for (size_t i = 0; i < options.transient_bursts; ++i) {
    const size_t errors =
        1 + rng_.NextBelow(options.max_burst_errors > 0 ? options.max_burst_errors : 1);
    loop_->ScheduleAt(random_time(), [this, log, errors] {
      log->device()->InjectTransientWriteErrors(errors);
      ++disk_faults_injected_;
    });
  }
  for (size_t i = 0; i < options.disk_full_episodes; ++i) {
    // Clamp capacity to what is already used (plus a little slack) at a
    // random time, then free the device again after an exponential hold --
    // truncated to the horizon so every episode ends inside the window.
    const TimePoint start = random_time();
    Duration hold =
        Duration::Seconds(rng_.NextExponential(options.disk_full_mean.seconds()));
    if (hold < Duration::Millis(10)) {
      hold = Duration::Millis(10);
    }
    TimePoint end = start + hold;
    const TimePoint horizon_end = TimePoint::Epoch() + options.horizon;
    if (end > horizon_end) {
      end = horizon_end;
    }
    const size_t slack = 64 + rng_.NextBelow(512);
    loop_->ScheduleAt(start, [this, log, slack] {
      log->device()->ClampCapacityToUsed(slack);
      ++disk_faults_injected_;
    });
    loop_->ScheduleAt(end, [log] { log->device()->SetCapacityBytes(0); });
  }
  for (size_t i = 0; i < options.bitrot_injections; ++i) {
    const uint64_t selector = rng_.NextU64();
    loop_->ScheduleAt(random_time(), [this, log, selector] {
      log->InjectBitRot(selector);
      ++disk_faults_injected_;
    });
  }
  if (options.sync_fail_probability > 0 && rng_.NextBool(options.sync_fail_probability)) {
    loop_->ScheduleAt(random_time(), [this, log] {
      log->device()->FailSyncPermanently();
      ++disk_faults_injected_;
    });
  }
}

std::unique_ptr<IntervalConnectivity> FaultPlan::FlappyConnectivity(Duration mean_up,
                                                                    Duration mean_down,
                                                                    Duration horizon) {
  std::vector<IntervalConnectivity::Interval> intervals;
  TimePoint t = TimePoint::Epoch();
  const TimePoint end = TimePoint::Epoch() + horizon;
  bool up = true;
  while (t < end) {
    Duration span = Duration::Seconds(
        rng_.NextExponential((up ? mean_up : mean_down).seconds()));
    if (span < Duration::Millis(1)) {
      span = Duration::Millis(1);  // guarantee forward progress
    }
    if (up) {
      TimePoint finish = t + span;
      if (finish > end) {
        finish = end;
      }
      intervals.push_back({t, finish});
    }
    t = t + span;
    up = !up;
  }
  // Permanently up after the fault window, so queued work always drains.
  intervals.push_back({end, TimePoint::FromMicros(INT64_MAX)});
  return std::make_unique<IntervalConnectivity>(std::move(intervals));
}

}  // namespace rover
