// Deterministic fault-injection plans for chaos testing. A FaultPlan
// schedules client/server crash-restarts (optionally tearing the last
// stable-log record, as a power cut mid-write would) and builds seeded
// flappy-link connectivity schedules, either at explicit times or at
// seeded-random times over a horizon. Every draw comes from one seeded
// Rng, so a failing schedule replays exactly from its seed.

#ifndef ROVER_SRC_CORE_FAULT_PLAN_H_
#define ROVER_SRC_CORE_FAULT_PLAN_H_

#include <memory>
#include <vector>

#include "src/core/toolkit.h"
#include "src/sim/connectivity.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace rover {

struct RandomFaultOptions {
  Duration horizon = Duration::Seconds(60);  // faults fall in [0, horizon)
  size_t server_crashes = 1;
  size_t client_crashes = 1;   // per client
  // Probability a crash also tears the record under the in-flight device
  // write (power cut mid-write).
  double tear_probability = 0.5;
};

// Failover injection: kill the primary for good at a (possibly seeded-
// random) time, then -- one failure-detection delay later -- promote the
// backup and engage every client's failover route. The delay models the
// time real detectors (missed heartbeats, broken connections) need; during
// it, in-flight work is neither answered nor re-routed.
struct FailoverOptions {
  // Explicit kill time; unset (epoch) = drawn uniformly over [0, horizon).
  TimePoint at = TimePoint::Epoch();
  Duration horizon = Duration::Seconds(60);
  Duration detection_delay = Duration::Millis(200);
};

// Seeded storage-fault schedule over the same horizon: transient write-error
// bursts, bounded disk-full episodes (always freed before the horizon ends so
// post-fault convergence stays reachable), latent bit rot, and -- rarely --
// a permanent sync failure (fail-stop at the node layer).
struct DiskFaultScheduleOptions {
  Duration horizon = Duration::Seconds(60);
  size_t transient_bursts = 2;      // per device
  size_t max_burst_errors = 4;      // forced errors per burst, 1..max
  size_t disk_full_episodes = 1;    // per device
  Duration disk_full_mean = Duration::Seconds(5);  // mean episode length
  size_t bitrot_injections = 1;     // per device
  double sync_fail_probability = 0.0;  // per device, at most one
};

class FaultPlan {
 public:
  FaultPlan(EventLoop* loop, uint64_t seed) : loop_(loop), rng_(seed) {}

  // Explicit schedule: crash + restart the node at `t`.
  void CrashServerAt(RoverServerNode* server, TimePoint t, bool tear_last_record = false);
  void CrashClientAt(RoverClientNode* client, TimePoint t, bool tear_last_record = false);

  // Seeded-random schedule: crashes uniformly over the horizon.
  void ScheduleRandomFaults(RoverServerNode* server,
                            const std::vector<RoverClientNode*>& clients,
                            RandomFaultOptions options = {});

  // Kills `primary` permanently (Kill(), links down for good), then after
  // `detection_delay` promotes `backup` and calls TriggerFailover on every
  // client's QRPC engine. Works with any kill time, including mid-WAL-flush
  // or mid-coalesce -- whatever the simulation happens to be doing then.
  void ScheduleFailover(RoverServerNode* primary, RoverServerNode* backup,
                        const std::vector<RoverClientNode*>& clients,
                        FailoverOptions options = {});

  // Seeded-random storage faults against every node's stable device (the
  // server's WAL and each client's operation log). All randomness is drawn
  // at schedule time, so a plan replays exactly from its seed regardless of
  // how the simulation interleaves.
  void ScheduleRandomDiskFaults(RoverServerNode* server,
                                const std::vector<RoverClientNode*>& clients,
                                DiskFaultScheduleOptions options = {});

  // Random up/down connectivity over [0, horizon), permanently up from the
  // horizon onwards -- unlike MakeRandomConnectivity, whose schedule ends
  // down forever, so post-fault convergence is always reachable.
  std::unique_ptr<IntervalConnectivity> FlappyConnectivity(Duration mean_up,
                                                           Duration mean_down,
                                                           Duration horizon);

  Rng* rng() { return &rng_; }
  size_t server_crashes_executed() const { return server_crashes_executed_; }
  size_t client_crashes_executed() const { return client_crashes_executed_; }
  size_t client_recoveries_resent() const { return client_recoveries_resent_; }
  size_t disk_faults_injected() const { return disk_faults_injected_; }
  size_t failovers_executed() const { return failovers_executed_; }

 private:
  void ScheduleDeviceFaults(StableLog* log, const DiskFaultScheduleOptions& options);

  EventLoop* loop_;
  Rng rng_;
  size_t server_crashes_executed_ = 0;
  size_t client_crashes_executed_ = 0;
  size_t client_recoveries_resent_ = 0;  // total requests re-sent by RecoverFromLog
  size_t disk_faults_injected_ = 0;      // storage-fault events executed
  size_t failovers_executed_ = 0;        // primary kills + promotions executed
};

}  // namespace rover

#endif  // ROVER_SRC_CORE_FAULT_PLAN_H_
