// Migration policy (paper §1, §6.2): "Depending on the power of the
// mobile host and the available bandwidth, Rover dynamically adapts and
// moves functionality between the client and the server." For Rover Ical,
// shipping the interactive RDO to the client wins on slow links and is the
// only option while disconnected; on a fast LAN, leaving execution at the
// server is competitive and saves client resources.

#ifndef ROVER_SRC_RDO_MIGRATION_H_
#define ROVER_SRC_RDO_MIGRATION_H_

#include <string>

namespace rover {

enum class ExecutionSite {
  kClient,
  kServer,
};

struct MigrationPolicy {
  enum class Mode {
    kAlwaysClient,  // invoke cached RDOs locally whenever possible
    kAlwaysServer,  // ship every invocation to the home server
    kAdaptive,      // pick by current link quality (threshold below)
  };

  Mode mode = Mode::kAdaptive;
  // kAdaptive: execute at the client when the best available link offers
  // less bandwidth than this (or there is no link at all). Default sits
  // between WaveLAN (2 Mbit/s) and Ethernet (10 Mbit/s): LAN-connected
  // hosts use the server, everything slower runs locally.
  double client_threshold_bps = 5e6;

  // `cached` : the RDO is loaded in the local cache.
  // `connected` / `best_bandwidth_bps` : current link state to the server.
  ExecutionSite Decide(bool cached, bool connected, double best_bandwidth_bps) const {
    if (!connected) {
      return ExecutionSite::kClient;  // only choice; fails upward if not cached
    }
    switch (mode) {
      case Mode::kAlwaysClient:
        return cached ? ExecutionSite::kClient : ExecutionSite::kServer;
      case Mode::kAlwaysServer:
        return ExecutionSite::kServer;
      case Mode::kAdaptive:
        if (cached && best_bandwidth_bps < client_threshold_bps) {
          return ExecutionSite::kClient;
        }
        return ExecutionSite::kServer;
    }
    return ExecutionSite::kServer;
  }
};

inline const char* ExecutionSiteName(ExecutionSite site) {
  return site == ExecutionSite::kClient ? "client" : "server";
}

}  // namespace rover

#endif  // ROVER_SRC_RDO_MIGRATION_H_
