#include "src/rdo/rdo.h"

#include <utility>

namespace rover {

size_t RdoDescriptor::ByteSize() const {
  size_t total = name.size() + type.size() + code.size() + data.size() + 64;
  for (const auto& [k, v] : metadata) {
    total += k.size() + v.size() + 16;
  }
  return total;
}

Bytes RdoDescriptor::Encode() const {
  WireWriter writer;
  writer.WriteString(name);
  writer.WriteVarint(version);
  writer.WriteString(type);
  writer.WriteString(code);
  writer.WriteString(data);
  writer.WriteVarint(metadata.size());
  for (const auto& [k, v] : metadata) {
    writer.WriteString(k);
    writer.WriteString(v);
  }
  return writer.TakeData();
}

Result<RdoDescriptor> RdoDescriptor::Decode(const Bytes& bytes) {
  WireReader reader(bytes);
  RdoDescriptor d;
  ROVER_ASSIGN_OR_RETURN(d.name, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(d.version, reader.ReadVarint());
  ROVER_ASSIGN_OR_RETURN(d.type, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(d.code, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(d.data, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
  if (n > reader.remaining() + 1) {
    return DataLossError("RDO metadata count implausible");
  }
  for (uint64_t i = 0; i < n; ++i) {
    ROVER_ASSIGN_OR_RETURN(std::string k, reader.ReadString());
    ROVER_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
    d.metadata.emplace(std::move(k), std::move(v));
  }
  return d;
}

Result<std::unique_ptr<RdoInstance>> RdoInstance::Create(const RdoDescriptor& descriptor,
                                                         const RdoEnvironment& env,
                                                         ExecLimits limits) {
  auto instance = std::unique_ptr<RdoInstance>(new RdoInstance(descriptor, limits));
  Interp* interp = &instance->interp_;

  // Host capability bindings.
  const std::string host_name = env.host_name;
  interp->RegisterCommand(
      "rover-host", [host_name](Interp*, const std::vector<std::string>&) {
        return EvalResult::Ok(host_name);
      });
  if (env.now) {
    auto now = env.now;
    interp->RegisterCommand("rover-now", [now](Interp*, const std::vector<std::string>&) {
      return EvalResult::Ok(std::to_string(now().micros()));
    });
  }
  if (env.log) {
    auto log = env.log;
    interp->RegisterCommand(
        "rover-log", [log](Interp*, const std::vector<std::string>& args) {
          std::string line;
          for (size_t i = 1; i < args.size(); ++i) {
            if (i > 1) {
              line.push_back(' ');
            }
            line += args[i];
          }
          log(line);
          return EvalResult::Ok();
        });
  }

  // Evaluate the code (method definitions) under the sandbox budget.
  interp->ResetBudget();
  auto code_result = interp->Run(descriptor.code);
  if (!code_result.ok()) {
    return InvalidArgumentError("RDO " + descriptor.name +
                                ": code failed to load: " + code_result.status().message());
  }
  interp->SetGlobal("state", descriptor.data);
  return instance;
}

Result<std::string> RdoInstance::Invoke(const std::string& method,
                                        const std::vector<std::string>& args) {
  if (!HasMethod(method)) {
    return NotFoundError("RDO " + descriptor_.name + ": no method \"" + method + "\"");
  }
  const std::string before = ReadState();
  interp_.ResetBudget();
  const uint64_t commands_before = interp_.stats().commands_executed;

  std::vector<std::string> call;
  call.reserve(args.size() + 1);
  call.push_back(method);
  call.insert(call.end(), args.begin(), args.end());
  EvalResult r = interp_.Invoke(call);

  last_invoke_commands_ = interp_.stats().commands_executed - commands_before;
  if (r.flow == EvalResult::Flow::kError) {
    return InvalidArgumentError("RDO " + descriptor_.name + "." + method + ": " + r.error);
  }
  if (ReadState() != before) {
    dirty_ = true;
  }
  return r.value;
}

RdoDescriptor RdoInstance::Snapshot() const {
  RdoDescriptor d = descriptor_;
  d.data = ReadState();
  return d;
}

std::string RdoInstance::ReadState() const {
  auto v = interp_.GetGlobal("state");
  return v.ok() ? *v : "";
}

void RdoInstance::WriteState(const std::string& state) {
  interp_.SetGlobal("state", state);
  descriptor_.data = state;
  dirty_ = false;
}

bool RdoInstance::HasMethod(const std::string& method) const {
  return interp_.procs().count(method) > 0;
}

std::vector<std::string> RdoInstance::Methods() const {
  std::vector<std::string> out;
  for (const auto& [name, def] : interp_.procs()) {
    out.push_back(name);
  }
  return out;
}

}  // namespace rover
