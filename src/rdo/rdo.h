// Relocatable Dynamic Objects (paper §3.3, §4). An RDO bundles code
// (TcLite procs), data (the object's state), and a version; it can be
// shipped in either direction between client and server and invoked where
// it lands. The descriptor is the wire/storage form; an instance is a
// descriptor loaded into a sandboxed interpreter.
//
// Conventions an RDO follows:
//   * its code defines procs (the object's methods);
//   * object state lives in the global TcLite variable `state`
//     (methods access it with `global state`);
//   * a method returns its result as a string.

#ifndef ROVER_SRC_RDO_RDO_H_
#define ROVER_SRC_RDO_RDO_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/tclite/interp.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/time.h"

namespace rover {

struct RdoDescriptor {
  std::string name;     // unique object name (URN-style), e.g. "mail/inbox/7"
  uint64_t version = 0; // committed version this descriptor reflects
  std::string type;     // resolver key: "lww", "set", "calendar", "text", ...
  std::string code;     // TcLite source defining the object's methods
  std::string data;     // serialized state (assigned to global `state`)
  std::map<std::string, std::string> metadata;

  size_t ByteSize() const;  // approximate in-memory/cache footprint

  Bytes Encode() const;
  static Result<RdoDescriptor> Decode(const Bytes& bytes);
};

// Host capabilities exposed to RDO code. All are optional; absent hooks
// leave the corresponding TcLite commands returning errors.
struct RdoEnvironment {
  std::string host_name;                          // bound as [rover-host]
  std::function<TimePoint()> now;                 // bound as [rover-now] (micros)
  std::function<void(const std::string&)> log;    // bound as `rover-log msg`
};

// Cost model: invoking interpreted code consumes simulated CPU.
struct RdoCostModel {
  Duration per_command = Duration::Micros(2);  // per interpreted command
  Duration load_fixed = Duration::Micros(200); // interp setup + code eval
};

class RdoInstance {
 public:
  // Loads `descriptor` into a fresh sandboxed interpreter: evaluates the
  // code (defining methods) and installs the state.
  static Result<std::unique_ptr<RdoInstance>> Create(const RdoDescriptor& descriptor,
                                                     const RdoEnvironment& env,
                                                     ExecLimits limits = {});

  const std::string& name() const { return descriptor_.name; }
  uint64_t base_version() const { return descriptor_.version; }
  const RdoDescriptor& descriptor() const { return descriptor_; }

  // Invokes method `method` with `args`. Returns the method's result.
  // The command budget is reset per invocation, so one runaway method
  // cannot starve later ones.
  Result<std::string> Invoke(const std::string& method,
                             const std::vector<std::string>& args);

  // Interpreted commands executed by the most recent Invoke (drives the
  // simulated CPU charge).
  uint64_t last_invoke_commands() const { return last_invoke_commands_; }

  // True if any invocation has (possibly) modified the state since load /
  // last snapshot.
  bool dirty() const { return dirty_; }

  // Current state serialized back into a descriptor (same code, fresh
  // data, version unchanged -- the caller assigns the new version).
  RdoDescriptor Snapshot() const;

  // Directly reads/replaces the state variable (used by reconciliation).
  std::string ReadState() const;
  void WriteState(const std::string& state);

  bool HasMethod(const std::string& method) const;
  std::vector<std::string> Methods() const;

  Interp* interp() { return &interp_; }

 private:
  RdoInstance(const RdoDescriptor& descriptor, ExecLimits limits)
      : descriptor_(descriptor), interp_(limits) {}

  RdoDescriptor descriptor_;
  Interp interp_;
  uint64_t last_invoke_commands_ = 0;
  bool dirty_ = false;
};

}  // namespace rover

#endif  // ROVER_SRC_RDO_RDO_H_
