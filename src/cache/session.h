// Session guarantees for weakly-consistent access (paper §2: Rover borrows
// session guarantees from Bayou [53]). A Session records, per object, the
// newest version this session has read and the versions its own exports
// produced. The access manager consults it so that within one session:
//
//   * monotonic reads: an import never returns a version older than one
//     the session already saw;
//   * read-your-writes: after a successful export, an import returns at
//     least the exported version.

#ifndef ROVER_SRC_CACHE_SESSION_H_
#define ROVER_SRC_CACHE_SESSION_H_

#include <cstdint>
#include <map>
#include <string>

namespace rover {

class Session {
 public:
  explicit Session(uint64_t id = 0) : id_(id) {}

  uint64_t id() const { return id_; }

  // Minimum version an import of `name` may return for this session.
  uint64_t RequiredVersion(const std::string& name) const {
    uint64_t required = 0;
    auto r = reads_.find(name);
    if (r != reads_.end()) {
      required = r->second;
    }
    auto w = writes_.find(name);
    if (w != writes_.end() && w->second > required) {
      required = w->second;
    }
    return required;
  }

  void RecordRead(const std::string& name, uint64_t version) {
    uint64_t& v = reads_[name];
    if (version > v) {
      v = version;
    }
  }

  void RecordWrite(const std::string& name, uint64_t version) {
    uint64_t& v = writes_[name];
    if (version > v) {
      v = version;
    }
  }

  // Distinct objects this session has read or written. An object both read
  // and written counts once (the maps are keyed by name, so the union is a
  // sorted-merge of their keys).
  size_t ObjectsTouched() const {
    size_t touched = reads_.size();
    auto r = reads_.begin();
    for (const auto& [name, version] : writes_) {
      while (r != reads_.end() && r->first < name) {
        ++r;
      }
      if (r == reads_.end() || r->first != name) {
        ++touched;
      }
    }
    return touched;
  }

 private:
  uint64_t id_;
  std::map<std::string, uint64_t> reads_;
  std::map<std::string, uint64_t> writes_;
};

}  // namespace rover

#endif  // ROVER_SRC_CACHE_SESSION_H_
