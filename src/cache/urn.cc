#include "src/cache/urn.h"

namespace rover {

namespace {
constexpr char kScheme[] = "rover://";
constexpr size_t kSchemeLen = 8;
}  // namespace

bool IsRoverUrn(const std::string& name) {
  return name.rfind(kScheme, 0) == 0;
}

Result<RoverUrn> ParseRoverUrn(const std::string& name) {
  if (!IsRoverUrn(name)) {
    return InvalidArgumentError("not a rover:// URN: " + name);
  }
  const size_t slash = name.find('/', kSchemeLen);
  if (slash == std::string::npos || slash == kSchemeLen) {
    return InvalidArgumentError("URN missing server or path: " + name);
  }
  RoverUrn urn;
  urn.server = name.substr(kSchemeLen, slash - kSchemeLen);
  urn.path = name.substr(slash + 1);
  if (urn.path.empty()) {
    return InvalidArgumentError("URN has empty path: " + name);
  }
  return urn;
}

RoverUrn ResolveObjectName(const std::string& name, const std::string& default_server) {
  if (IsRoverUrn(name)) {
    auto urn = ParseRoverUrn(name);
    if (urn.ok()) {
      return *urn;
    }
    // Malformed URNs fall through as literal paths on the default server;
    // the server will report NOT_FOUND.
  }
  return RoverUrn{default_server, name};
}

std::string MakeRoverUrn(const std::string& server, const std::string& path) {
  return std::string(kScheme) + server + "/" + path;
}

}  // namespace rover
