#include "src/cache/access_manager.h"

#include <algorithm>
#include <utility>

#include "src/tclite/value.h"
#include "src/util/delta.h"
#include "src/util/logging.h"

namespace rover {

std::string FormatQueueStatus(const QueueStatus& status) {
  std::string out = status.connected ? "connected" : "DISCONNECTED";
  if (status.queued_qrpcs == 0) {
    out += " | 0 queued";
  } else {
    out += " | " + std::to_string(status.queued_qrpcs) + " ops queued";
  }
  if (status.tentative_objects == 0) {
    out += " | all committed";
  } else {
    out += " | " + std::to_string(status.tentative_objects) + " tentative objects";
  }
  if (status.degraded) {
    out += " | DEGRADED";
  }
  if (status.storage_degraded) {
    out += " | STORAGE FULL";
  }
  return out;
}

AccessManager::AccessManager(EventLoop* loop, TransportManager* transport,
                             QrpcClient* qrpc, AccessManagerOptions options)
    : loop_(loop), transport_(transport), qrpc_(qrpc), options_(std::move(options)) {
  WireMetrics(&own_metrics_, "access_manager");
  transport_->SetHandler(MessageType::kControl,
                         [this](const Message& msg) { HandleControl(msg); });
  transport_->scheduler()->SetQueueObserver([this](size_t) { NotifyStatus(); });
  qrpc_->SetEpochObserver([this](const std::string& server, uint64_t epoch) {
    OnServerRestart(server, epoch);
  });
  if (!options_.poll_interval.is_zero()) {
    SchedulePoll();
  }
}

void AccessManager::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_cache_hits_ = registry->counter(prefix + ".cache_hits");
  c_cache_misses_ = registry->counter(prefix + ".cache_misses");
  c_imports_completed_ = registry->counter(prefix + ".imports_completed");
  c_exports_completed_ = registry->counter(prefix + ".exports_completed");
  c_local_invokes_ = registry->counter(prefix + ".local_invokes");
  c_remote_invokes_ = registry->counter(prefix + ".remote_invokes");
  c_evictions_ = registry->counter(prefix + ".evictions");
  c_invalidations_received_ = registry->counter(prefix + ".invalidations_received");
  c_polls_sent_ = registry->counter(prefix + ".polls_sent");
  c_poll_staleness_detected_ = registry->counter(prefix + ".poll_staleness_detected");
  c_conflicts_resolved_ = registry->counter(prefix + ".conflicts_resolved");
  c_conflicts_unresolved_ = registry->counter(prefix + ".conflicts_unresolved");
  c_prefetch_issued_ = registry->counter(prefix + ".prefetch_issued");
  c_server_restarts_observed_ = registry->counter(prefix + ".server_restarts_observed");
  c_prefetches_shed_ = registry->counter(prefix + ".prefetches_shed");
  c_degraded_entered_ = registry->counter(prefix + ".degraded_entered");
  c_cache_overflow_events_ = registry->counter(prefix + ".cache_overflow_events");
  c_delta_hits_ = registry->counter(prefix + ".delta_hits");
  c_delta_full_ = registry->counter(prefix + ".delta_full");
  c_delta_not_modified_ = registry->counter(prefix + ".delta_not_modified");
  c_delta_fallbacks_ = registry->counter(prefix + ".delta_fallbacks");
  c_delta_bytes_saved_ = registry->counter(prefix + ".delta_bytes_saved");
  c_storage_stale_marks_ = registry->counter(prefix + ".storage_stale_marks");
  g_degraded_ = registry->gauge(prefix + ".degraded");
  g_cache_overflow_bytes_ = registry->gauge(prefix + ".cache_overflow_bytes");
}

void AccessManager::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const AccessManagerStats carried = stats();
  WireMetrics(registry, prefix);
  c_cache_hits_->Increment(carried.cache_hits);
  c_cache_misses_->Increment(carried.cache_misses);
  c_imports_completed_->Increment(carried.imports_completed);
  c_exports_completed_->Increment(carried.exports_completed);
  c_local_invokes_->Increment(carried.local_invokes);
  c_remote_invokes_->Increment(carried.remote_invokes);
  c_evictions_->Increment(carried.evictions);
  c_invalidations_received_->Increment(carried.invalidations_received);
  c_polls_sent_->Increment(carried.polls_sent);
  c_poll_staleness_detected_->Increment(carried.poll_staleness_detected);
  c_conflicts_resolved_->Increment(carried.conflicts_resolved);
  c_conflicts_unresolved_->Increment(carried.conflicts_unresolved);
  c_prefetch_issued_->Increment(carried.prefetch_issued);
  c_server_restarts_observed_->Increment(carried.server_restarts_observed);
  c_prefetches_shed_->Increment(carried.prefetches_shed);
  c_degraded_entered_->Increment(carried.degraded_entered);
  c_cache_overflow_events_->Increment(carried.cache_overflow_events);
  c_delta_hits_->Increment(carried.delta_hits);
  c_delta_full_->Increment(carried.delta_full);
  c_delta_not_modified_->Increment(carried.delta_not_modified);
  c_delta_fallbacks_->Increment(carried.delta_fallbacks);
  c_delta_bytes_saved_->Increment(carried.delta_bytes_saved);
  c_storage_stale_marks_->Increment(carried.storage_stale_marks);
  g_degraded_->Set(degraded_ ? 1 : 0);
  UpdateOverflowGauge();
}

AccessManagerStats AccessManager::stats() const {
  AccessManagerStats s;
  s.cache_hits = c_cache_hits_->value();
  s.cache_misses = c_cache_misses_->value();
  s.imports_completed = c_imports_completed_->value();
  s.exports_completed = c_exports_completed_->value();
  s.local_invokes = c_local_invokes_->value();
  s.remote_invokes = c_remote_invokes_->value();
  s.evictions = c_evictions_->value();
  s.invalidations_received = c_invalidations_received_->value();
  s.polls_sent = c_polls_sent_->value();
  s.poll_staleness_detected = c_poll_staleness_detected_->value();
  s.conflicts_resolved = c_conflicts_resolved_->value();
  s.conflicts_unresolved = c_conflicts_unresolved_->value();
  s.prefetch_issued = c_prefetch_issued_->value();
  s.server_restarts_observed = c_server_restarts_observed_->value();
  s.prefetches_shed = c_prefetches_shed_->value();
  s.degraded_entered = c_degraded_entered_->value();
  s.cache_overflow_events = c_cache_overflow_events_->value();
  s.delta_hits = c_delta_hits_->value();
  s.delta_full = c_delta_full_->value();
  s.delta_not_modified = c_delta_not_modified_->value();
  s.delta_fallbacks = c_delta_fallbacks_->value();
  s.delta_bytes_saved = c_delta_bytes_saved_->value();
  s.storage_stale_marks = c_storage_stale_marks_->value();
  return s;
}

void AccessManager::SchedulePoll() {
  loop_->ScheduleAfter(options_.poll_interval,
                       [this, weak = std::weak_ptr<char>(alive_)] {
    if (weak.expired()) {
      return;  // manager destroyed (simulated crash) with the timer pending
    }
    RunPoll();
    SchedulePoll();
  });
}

void AccessManager::RunPoll() {
  // Group cached object paths by home server; one rover.poll per server.
  std::map<std::string, std::vector<std::string>> by_server;   // server -> paths
  std::map<std::string, std::vector<std::string>> keys_order;  // server -> cache keys
  for (const auto& [key, entry] : cache_) {
    if (entry.stale) {
      continue;  // already known stale
    }
    const RoverUrn urn = Resolve(key);
    if (!ConnectedTo(urn.server)) {
      continue;  // polling while disconnected would just queue traffic
    }
    by_server[urn.server].push_back(urn.path);
    keys_order[urn.server].push_back(key);
  }
  for (const auto& [server, paths] : by_server) {
    c_polls_sent_->Increment();
    // Best-effort; the next poll repeats it. A newer poll covers everything
    // an unsent older one would, so it supersedes it in the queue.
    QrpcCallOptions poll_opts = MakeCallOptions(Priority::kBackground, false);
    poll_opts.supersede_key = "poll:" + server;
    QrpcCall call = qrpc_->Call(server, "rover.poll", {TclListJoin(paths)},
                                poll_opts);
    const std::vector<std::string> keys = keys_order[server];
    call.result.OnReady([this, keys](const QrpcResult& rpc) {
      if (!rpc.status.ok()) {
        return;
      }
      auto versions_list = RpcValueAsString(rpc.value);
      if (!versions_list.ok()) {
        return;
      }
      auto versions = TclListSplit(*versions_list);
      if (!versions.ok() || versions->size() != keys.size()) {
        return;
      }
      for (size_t i = 0; i < keys.size(); ++i) {
        Entry* entry = FindEntry(keys[i]);
        if (entry == nullptr) {
          continue;  // evicted meanwhile
        }
        const uint64_t server_version =
            static_cast<uint64_t>(TclParseInt((*versions)[i]).value_or(0));
        if (server_version > entry->committed.version) {
          entry->stale = true;
          c_poll_staleness_detected_->Increment();
        }
      }
    });
  }
}

double AccessManager::BestBandwidthBps() const {
  return BestBandwidthBpsTo(options_.server_host);
}

double AccessManager::BestBandwidthBpsTo(const std::string& server) const {
  double best = 0.0;
  for (Link* link : transport_->host()->LinksTo(server)) {
    if (link->IsUp()) {
      best = std::max(best, link->profile().bandwidth_bps);
    }
  }
  return best;
}

bool AccessManager::Connected() const { return ConnectedTo(options_.server_host); }

bool AccessManager::ConnectedTo(const std::string& server) const {
  return transport_->host()->CanReach(server);
}

RoverUrn AccessManager::Resolve(const std::string& name) const {
  return ResolveObjectName(name, options_.server_host);
}

std::string AccessManager::ServerFor(const std::string& name) const {
  return Resolve(name).server;
}

QrpcCallOptions AccessManager::MakeCallOptions(Priority priority, bool log_request) const {
  QrpcCallOptions options;
  options.priority = priority;
  options.log_request = log_request;
  if (!options_.relay_host.empty()) {
    options.via_relay = true;
    options.relay_host = options_.relay_host;
  }
  return options;
}

AccessManager::Entry* AccessManager::FindEntry(const std::string& name) {
  auto it = cache_.find(name);
  return it == cache_.end() ? nullptr : &it->second;
}

const AccessManager::Entry* AccessManager::FindEntry(const std::string& name) const {
  auto it = cache_.find(name);
  return it == cache_.end() ? nullptr : &it->second;
}

void AccessManager::Touch(Entry* entry) { entry->last_use_seq = ++use_seq_; }

bool AccessManager::HasCached(const std::string& name) const {
  return FindEntry(name) != nullptr;
}

bool AccessManager::IsTentative(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->tentative;
}

size_t AccessManager::TentativeCount() const {
  size_t n = 0;
  for (const auto& [name, entry] : cache_) {
    if (entry.tentative) {
      ++n;
    }
  }
  return n;
}

Result<std::string> AccessManager::ReadData(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return NotFoundError("object \"" + name + "\" not in cache");
  }
  return entry->instance->ReadState();
}

Result<std::string> AccessManager::ReadCommittedData(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return NotFoundError("object \"" + name + "\" not in cache");
  }
  return entry->committed.data;
}

Result<uint64_t> AccessManager::CachedVersion(const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return NotFoundError("object \"" + name + "\" not in cache");
  }
  return entry->committed.version;
}

void AccessManager::Evict(const std::string& name) {
  auto it = cache_.find(name);
  if (it == cache_.end()) {
    return;
  }
  cache_bytes_ -= it->second.bytes;
  cache_.erase(it);
  UpdateOverflowGauge();
  if (subscribed_.erase(name) > 0) {
    // Tell the server to stop invalidating us for an object we no longer
    // hold; best-effort and unlogged (a lost unsubscribe only costs the
    // server a few wasted invalidations until its GC drops us).
    const RoverUrn urn = Resolve(name);
    qrpc_->Call(urn.server, "rover.unsubscribe", {urn.path},
                MakeCallOptions(Priority::kBackground, /*log_request=*/false));
  }
}

size_t AccessManager::MarkAllImportsStale() {
  size_t marked = 0;
  for (auto& [name, entry] : cache_) {
    if (!entry.stale) {
      entry.stale = true;
      ++marked;
    }
  }
  if (marked > 0) {
    c_storage_stale_marks_->Increment(marked);
  }
  return marked;
}

bool AccessManager::CorruptImportImageForTest(const std::string& name) {
  Entry* entry = FindEntry(name);
  if (entry == nullptr || entry->import_image.empty()) {
    return false;
  }
  for (size_t i = 0; i < entry->import_image.size(); i += 7) {
    entry->import_image[i] ^= 0x5a;
  }
  return true;
}

void AccessManager::SetStatusCallback(StatusCallback callback) {
  status_callback_ = std::move(callback);
  NotifyStatus();
}

void AccessManager::UpdateDegraded(size_t queue_depth) {
  if (options_.degraded_queue_depth == 0) {
    return;
  }
  if (!degraded_ && queue_depth >= options_.degraded_queue_depth) {
    degraded_ = true;
    c_degraded_entered_->Increment();
    g_degraded_->Set(1);
    if (!prefetch_queue_.empty()) {
      c_prefetches_shed_->Increment(prefetch_queue_.size());
      prefetch_queue_.clear();
    }
    ROVER_LOG(Warning) << "access manager degraded: scheduler depth "
                       << queue_depth << " >= " << options_.degraded_queue_depth
                       << "; shedding prefetches (tentative ops still queue)";
  } else if (degraded_ && queue_depth <= options_.degraded_queue_depth / 2) {
    // Hysteresis: recover only once the backlog has clearly drained, so a
    // depth oscillating around the threshold does not flap the mode.
    degraded_ = false;
    g_degraded_->Set(0);
    ROVER_LOG(Info) << "access manager recovered from degraded mode"
                    << " (scheduler depth " << queue_depth << ")";
  }
}

void AccessManager::NotifyStatus() {
  const size_t depth = transport_->scheduler()->TotalQueueDepth();
  UpdateDegraded(depth);
  if (depth == 0 && !prefetch_queue_.empty()) {
    // The link went idle; spend it on cache warming.
    loop_->ScheduleAfter(Duration::Zero(), [this, weak = std::weak_ptr<char>(alive_)] {
      if (!weak.expired()) {
        PumpPrefetchQueue();
      }
    });
  }
  if (!status_callback_) {
    return;
  }
  QueueStatus status;
  status.queued_qrpcs = depth;
  status.tentative_objects = TentativeCount();
  status.connected = Connected();
  status.degraded = degraded_;
  status.storage_degraded = qrpc_->StorageDegraded();
  status_callback_(status);
}

// --- Import ---

Promise<ImportResult> AccessManager::Import(const std::string& name, ImportOptions options) {
  Promise<ImportResult> promise;
  if (options.session != nullptr) {
    Session* session = options.session;
    promise.OnReady([session](const ImportResult& r) {
      if (r.status.ok()) {
        session->RecordRead(r.name, r.version);
      }
    });
  }

  Entry* entry = FindEntry(name);
  const uint64_t required =
      options.session != nullptr ? options.session->RequiredVersion(name) : 0;
  // A stale (invalidated) entry is still better than nothing while the
  // home server is unreachable: serve it rather than queueing a refetch
  // the caller may wait hours for -- availability over freshness, the
  // toolkit's defining trade (tentative-data semantics, paper S3.1).
  const bool serve_stale_offline =
      entry != nullptr && entry->stale && !ConnectedTo(Resolve(name).server);
  if (entry != nullptr && options.allow_cached &&
      (!entry->stale || serve_stale_offline) && entry->committed.version >= required) {
    c_cache_hits_->Increment();
    Touch(entry);
    if (options.pin) {
      entry->pinned = true;
    }
    ImportResult result;
    result.status = Status::Ok();
    result.name = name;
    result.version = entry->committed.version;
    result.from_cache = true;
    if (check_ != nullptr && options.session != nullptr) {
      check_->OnSessionImportServed(transport_->local_host(), name,
                                    entry->committed.version, required, true);
    }
    loop_->ScheduleAfter(Duration::Zero(),
                         [this, weak = std::weak_ptr<char>(alive_), promise,
                          result]() mutable {
      if (weak.expired()) {
        return;
      }
      result.completed_at = loop_->now();
      promise.Set(result);
    });
    return promise;
  }

  c_cache_misses_->Increment();
  auto [it, first] = pending_imports_.try_emplace(name);
  ImportWaiter waiter;
  waiter.promise = promise;
  waiter.required = required;
  waiter.has_session = options.session != nullptr;
  it->second.waiters.push_back(std::move(waiter));
  if (required > it->second.required_version) {
    it->second.required_version = required;
  }
  if (options.pin) {
    it->second.pin = true;
  }
  if (first) {
    it->second.priority = options.priority;
    StartImportRpc(name, options.priority);
  } else if (options.priority < it->second.priority) {
    // Escalate: re-request at the higher priority rather than letting a
    // user wait behind prefetch traffic.
    it->second.priority = options.priority;
    StartImportRpc(name, options.priority);
  }
  return promise;
}

void AccessManager::StartImportRpc(const std::string& name, Priority priority,
                                   bool allow_delta) {
  const RoverUrn urn = Resolve(name);
  Entry* cached = FindEntry(name);
  // With a cached server image, send its version and accept a delta reply.
  const bool want_delta = options_.delta_imports && allow_delta &&
                          cached != nullptr && !cached->import_image.empty();
  QrpcCallOptions copts = MakeCallOptions(priority);
  // Re-requests of the same object (priority escalations, repeated stale
  // refreshes) supersede any not-yet-transmitted predecessor import.
  copts.supersede_key = "import:" + urn.path;
  QrpcCall call =
      want_delta
          ? qrpc_->Call(urn.server, "rover.import",
                        {urn.path,
                         static_cast<int64_t>(cached->committed.version)},
                        copts)
          : qrpc_->Call(urn.server, "rover.import", {urn.path}, copts);
  latest_import_rpc_[name] = call.rpc_id;
  const uint64_t my_rpc = call.rpc_id;
  call.result.OnReady([this, name, my_rpc, want_delta,
                       priority](const QrpcResult& rpc) {
    auto latest = latest_import_rpc_.find(name);
    if (latest == latest_import_rpc_.end() || latest->second != my_rpc) {
      // Superseded (this promise was chained to the newest rpc's result) or
      // a priority escalation re-requested the object: the newest rpc's own
      // handler drives the install, with the decode rules of the request it
      // actually sent.
      return;
    }
    ImportResult result;
    result.name = name;
    result.completed_at = loop_->now();
    if (!rpc.status.ok()) {
      result.status = rpc.status;
      FinishImport(name, result);
      return;
    }
    auto bytes = RpcValueAsBytes(rpc.value);
    if (!bytes.ok()) {
      result.status = bytes.status();
      FinishImport(name, result);
      return;
    }

    // The one-argument form replies with the bare encoded descriptor; the
    // two-argument (delta) form wraps the reply in an ImportReplyKind.
    Bytes full;
    if (!want_delta) {
      full = std::move(*bytes);
    } else {
      WireReader reader(*bytes);
      auto kind = reader.ReadVarint();
      if (!kind.ok()) {
        result.status = kind.status();
        FinishImport(name, result);
        return;
      }
      switch (static_cast<ImportReplyKind>(*kind)) {
        case ImportReplyKind::kNotModified: {
          auto version = reader.ReadVarint();
          Entry* entry = FindEntry(name);
          auto pending = pending_imports_.find(name);
          const uint64_t floor = pending != pending_imports_.end()
                                     ? pending->second.required_version
                                     : 0;
          if (!version.ok() || entry == nullptr ||
              entry->committed.version != *version ||
              entry->committed.version < floor) {
            // The entry changed (or vanished) while the rpc was in flight,
            // or a session waiter needs a newer version than the one the
            // server just confirmed (its state may predate an export the
            // session saw committed elsewhere); the cached copy cannot
            // answer this import.
            c_delta_fallbacks_->Increment();
            StartImportRpc(name, priority, /*allow_delta=*/false);
            return;
          }
          c_delta_not_modified_->Increment();
          c_delta_bytes_saved_->Increment(entry->import_image.size());
          entry->stale = false;
          Touch(entry);
          if (pending != pending_imports_.end() && pending->second.pin) {
            entry->pinned = true;
          }
          result.status = Status::Ok();
          result.version = entry->committed.version;
          FinishImport(name, result);
          return;
        }
        case ImportReplyKind::kDelta: {
          auto base = reader.ReadVarint();
          auto delta = reader.ReadBytes();
          Entry* entry = FindEntry(name);
          Result<Bytes> applied = DataLossError("malformed delta import reply");
          if (base.ok() && delta.ok()) {
            if (entry == nullptr || entry->committed.version != *base ||
                entry->import_image.empty()) {
              applied = FailedPreconditionError("delta base no longer cached");
            } else {
              applied = DeltaApply(entry->import_image, *delta);
            }
          }
          if (!applied.ok()) {
            // Wrong base, corrupt image, or mangled delta: never install a
            // suspect object. Drop the image and re-fetch the full body.
            if (entry != nullptr) {
              entry->import_image.clear();
            }
            c_delta_fallbacks_->Increment();
            StartImportRpc(name, priority, /*allow_delta=*/false);
            return;
          }
          c_delta_hits_->Increment();
          if (applied->size() > delta->size()) {
            c_delta_bytes_saved_->Increment(applied->size() - delta->size());
          }
          full = std::move(*applied);
          break;
        }
        case ImportReplyKind::kFull: {
          auto body = reader.ReadBytes();
          if (!body.ok()) {
            result.status = body.status();
            FinishImport(name, result);
            return;
          }
          c_delta_full_->Increment();
          full = std::move(*body);
          break;
        }
        default:
          result.status = DataLossError("unknown import reply kind");
          FinishImport(name, result);
          return;
      }
    }

    auto descriptor = RdoDescriptor::Decode(full);
    if (!descriptor.ok()) {
      result.status = descriptor.status();
      FinishImport(name, result);
      return;
    }
    // Cache under the caller's name (which may be a URN); the descriptor
    // keeps the server-side path for exports.
    RdoDescriptor keyed = *descriptor;
    keyed.name = name;
    keyed.metadata["rover.path"] = descriptor->name;
    const uint64_t version = descriptor->version;
    auto pending = pending_imports_.find(name);
    const bool pin = pending != pending_imports_.end() && pending->second.pin;
    auto image = std::make_shared<Bytes>(std::move(full));
    InstallDescriptor(keyed, pin, [this, name, version, image](const Status& s) {
      if (s.ok()) {
        Entry* entry = FindEntry(name);
        if (entry != nullptr && entry->committed.version == version) {
          // The exact server-encoded bytes of this version: the delta base
          // for the next re-fetch.
          entry->import_image = std::move(*image);
        }
      }
      ImportResult r;
      r.name = name;
      r.status = s;
      r.version = version;
      r.completed_at = loop_->now();
      FinishImport(name, r);
      if (s.ok() && options_.subscribe_on_import) {
        const RoverUrn sub_urn = Resolve(name);
        // Best-effort; re-subscribes on refetch and on server restart.
        subscribed_.insert(name);
        qrpc_->Call(sub_urn.server, "rover.subscribe", {sub_urn.path},
                    MakeCallOptions(Priority::kBackground, /*log_request=*/false));
      }
    });
  });
}

void AccessManager::InstallDescriptor(const RdoDescriptor& descriptor, bool pin,
                                      std::function<void(const Status&)> done) {
  Entry* existing = FindEntry(descriptor.name);
  if (existing != nullptr && existing->tentative) {
    // Never clobber local uncommitted work: refresh the committed view
    // only. base_version intentionally keeps pointing at the version the
    // tentative state diverged from.
    existing->committed = descriptor;
    existing->stale = false;
    Touch(existing);
    loop_->ScheduleAfter(Duration::Zero(), [done] { done(Status::Ok()); });
    return;
  }

  RdoEnvironment env;
  env.host_name = transport_->local_host();
  env.now = [loop = loop_] { return loop->now(); };
  env.log = [](const std::string& line) { ROVER_LOG(Debug) << "rdo: " << line; };
  auto instance = RdoInstance::Create(descriptor, env, options_.rdo_limits);
  if (!instance.ok()) {
    const Status status = instance.status();
    loop_->ScheduleAfter(Duration::Zero(), [done, status] { done(status); });
    return;
  }

  // Charge the interpreter-load CPU cost before the object is usable.
  const Duration cost = options_.rdo_costs.load_fixed;
  auto instance_ptr = std::make_shared<std::unique_ptr<RdoInstance>>(std::move(*instance));
  loop_->ScheduleAfter(cost, [this, weak = std::weak_ptr<char>(alive_), descriptor, pin,
                              instance_ptr, done] {
    if (weak.expired()) {
      return;  // manager destroyed while the install cost was charging
    }
    Entry* entry = FindEntry(descriptor.name);
    if (entry != nullptr) {
      cache_bytes_ -= entry->bytes;
    } else {
      entry = &cache_[descriptor.name];
    }
    entry->committed = descriptor;
    entry->instance = std::move(*instance_ptr);
    entry->base_version = descriptor.version;
    entry->tentative = false;
    entry->stale = false;
    entry->pinned = entry->pinned || pin;
    entry->bytes = descriptor.ByteSize();
    cache_bytes_ += entry->bytes;
    Touch(entry);
    EvictIfNeeded();
    done(Status::Ok());
  });
}

void AccessManager::FinishImport(const std::string& name, const ImportResult& result) {
  if (result.status.ok()) {
    c_imports_completed_->Increment();
  }
  latest_import_rpc_.erase(name);
  auto it = pending_imports_.find(name);
  if (it == pending_imports_.end()) {
    return;  // a faster duplicate request already resolved the waiters
  }
  std::vector<ImportWaiter> waiters = std::move(it->second.waiters);
  pending_imports_.erase(it);
  for (auto& waiter : waiters) {
    ImportResult r = result;
    if (r.status.ok() && r.version < waiter.required) {
      // The fetch succeeded but at a version below this waiter's session
      // floor (e.g. the home server lost state and restarted older).
      // Failing the import preserves monotonic reads / read-your-writes
      // rather than silently handing the session the past.
      r.status = FailedPreconditionError(
          "session requires " + name + " version >= " +
          std::to_string(waiter.required) + ", import returned " +
          std::to_string(r.version));
    }
    if (check_ != nullptr && waiter.has_session) {
      check_->OnSessionImportServed(transport_->local_host(), name, r.version,
                                    waiter.required, r.status.ok());
    }
    waiter.promise.Set(r);
  }
  NotifyStatus();
}

void AccessManager::UpdateOverflowGauge() {
  const size_t over = cache_bytes_ > options_.cache_capacity_bytes
                          ? cache_bytes_ - options_.cache_capacity_bytes
                          : 0;
  g_cache_overflow_bytes_->Set(static_cast<int64_t>(over));
  if (over == 0) {
    overflowing_ = false;
  }
}

void AccessManager::EvictIfNeeded() {
  while (cache_bytes_ > options_.cache_capacity_bytes) {
    // LRU among evictable entries.
    std::string victim;
    uint64_t oldest = UINT64_MAX;
    for (const auto& [name, entry] : cache_) {
      if (entry.tentative || entry.pinned) {
        continue;
      }
      if (entry.last_use_seq < oldest) {
        oldest = entry.last_use_seq;
        victim = name;
      }
    }
    if (victim.empty()) {
      // Everything is tentative or pinned; allow overflow -- durable local
      // work is never discarded to make room. Surface the overage instead
      // of letting it grow silently (one warning per episode).
      UpdateOverflowGauge();
      if (!overflowing_) {
        overflowing_ = true;
        c_cache_overflow_events_->Increment();
        ROVER_LOG(Warning)
            << "cache over capacity by "
            << (cache_bytes_ - options_.cache_capacity_bytes)
            << " bytes with nothing evictable (all tentative or pinned)";
      }
      return;
    }
    c_evictions_->Increment();
    Evict(victim);
  }
  UpdateOverflowGauge();
}

// --- Invoke ---

Result<RdoInstance*> AccessManager::LocalInstance(const std::string& name) {
  Entry* entry = FindEntry(name);
  if (entry == nullptr || entry->instance == nullptr) {
    return NotFoundError("object \"" + name + "\" not in cache");
  }
  Touch(entry);
  return entry->instance.get();
}

Promise<InvokeResult> AccessManager::Invoke(const std::string& name,
                                            const std::string& method,
                                            std::vector<std::string> args,
                                            InvokeOptions options) {
  Promise<InvokeResult> promise;
  const RoverUrn urn = Resolve(name);
  const bool cached = HasCached(name);
  const bool connected = ConnectedTo(urn.server);
  ExecutionSite site =
      options.force_site.has_value()
          ? *options.force_site
          : options_.migration.Decide(cached, connected,
                                      BestBandwidthBpsTo(urn.server));
  if (site == ExecutionSite::kClient && !cached && connected &&
      !options.force_site.has_value()) {
    site = ExecutionSite::kServer;  // nothing local to run; ship the call
  }

  if (site == ExecutionSite::kClient) {
    auto instance = LocalInstance(name);
    if (!instance.ok()) {
      InvokeResult result;
      result.status = UnavailableError("object \"" + name +
                                       "\" not cached and host is disconnected");
      result.site = ExecutionSite::kClient;
      loop_->ScheduleAfter(Duration::Zero(), [promise, result]() mutable {
        promise.Set(result);
      });
      return promise;
    }
    c_local_invokes_->Increment();
    auto value = (*instance)->Invoke(method, args);
    const Duration cost =
        options_.rdo_costs.per_command *
        static_cast<double>((*instance)->last_invoke_commands());
    Entry* entry = FindEntry(name);
    const bool now_tentative = (*instance)->dirty();
    if (entry != nullptr && now_tentative && !entry->tentative) {
      entry->tentative = true;
      NotifyStatus();
    }
    InvokeResult result;
    result.site = ExecutionSite::kClient;
    if (value.ok()) {
      result.value = *value;
    } else {
      result.status = value.status();
    }
    loop_->ScheduleAfter(cost, [this, weak = std::weak_ptr<char>(alive_), promise,
                                result]() mutable {
      if (weak.expired()) {
        return;
      }
      result.completed_at = loop_->now();
      promise.Set(result);
    });
    return promise;
  }

  // Remote execution at the home server.
  c_remote_invokes_->Increment();
  QrpcCall call = qrpc_->Call(urn.server, "rover.invoke",
                              {urn.path, std::string(method), TclListJoin(args)},
                              MakeCallOptions(options.priority));
  call.result.OnReady([this, promise](const QrpcResult& rpc) mutable {
    InvokeResult result;
    result.site = ExecutionSite::kServer;
    result.completed_at = rpc.completed_at;
    result.status = rpc.status;
    if (rpc.status.ok()) {
      auto value = RpcValueAsString(rpc.value);
      if (value.ok()) {
        result.value = *value;
      } else {
        result.status = value.status();
      }
    }
    promise.Set(result);
  });
  return promise;
}

// --- Export ---

Promise<ExportResult> AccessManager::Export(const std::string& name, Priority priority) {
  Promise<ExportResult> promise;
  Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    ExportResult result;
    result.status = NotFoundError("object \"" + name + "\" not in cache");
    loop_->ScheduleAfter(Duration::Zero(),
                         [promise, result]() mutable { promise.Set(result); });
    return promise;
  }
  if (!entry->tentative) {
    ExportResult result;
    result.status = Status::Ok();
    result.new_version = entry->committed.version;
    loop_->ScheduleAfter(Duration::Zero(),
                         [promise, result]() mutable { promise.Set(result); });
    return promise;
  }

  RdoDescriptor snapshot = entry->instance->Snapshot();
  const RoverUrn urn = Resolve(name);
  snapshot.name = urn.path;  // the server knows the object by its path
  const uint64_t base_version = entry->base_version;
  QrpcCallOptions copts = MakeCallOptions(priority);
  // A newer export of the same object snapshots the full tentative state,
  // so it subsumes any not-yet-transmitted predecessor export.
  copts.supersede_key = "export:" + urn.path;
  QrpcCall call =
      qrpc_->Call(urn.server, "rover.export",
                  {snapshot.Encode(), static_cast<int64_t>(base_version)}, copts);
  latest_export_rpc_[name] = call.rpc_id;
  const uint64_t my_rpc = call.rpc_id;
  call.result.OnReady([this, name, my_rpc, promise](const QrpcResult& rpc) mutable {
    // A coalesced export's promise is chained to the newest rpc's result,
    // so this handler may run for a response another rpc owns: only the
    // newest rpc installs state, bumps counters, and reports conflicts --
    // a stale handler just relays the outcome to its caller.
    auto latest = latest_export_rpc_.find(name);
    const bool newest = latest != latest_export_rpc_.end() && latest->second == my_rpc;
    if (newest) {
      latest_export_rpc_.erase(latest);
    }
    ExportResult result;
    result.completed_at = rpc.completed_at;
    Entry* entry = newest ? FindEntry(name) : nullptr;

    if (rpc.status.ok()) {
      auto payload = RpcValueAsBytes(rpc.value);
      if (!payload.ok()) {
        result.status = payload.status();
        promise.Set(result);
        return;
      }
      WireReader reader(*payload);
      auto was_conflict = reader.ReadBool();
      auto committed_bytes = reader.ReadBytes();
      if (!was_conflict.ok() || !committed_bytes.ok()) {
        result.status = DataLossError("malformed export response");
        promise.Set(result);
        return;
      }
      auto committed = RdoDescriptor::Decode(*committed_bytes);
      if (!committed.ok()) {
        result.status = committed.status();
        promise.Set(result);
        return;
      }
      result.status = Status::Ok();
      result.new_version = committed->version;
      result.server_resolved = *was_conflict;
      if (newest) {
        if (*was_conflict) {
          c_conflicts_resolved_->Increment();
        }
        c_exports_completed_->Increment();
      }
      if (entry != nullptr) {
        cache_bytes_ -= entry->bytes;
        committed->name = name;  // keep the caller's cache key
        entry->committed = *committed;
        entry->base_version = committed->version;
        // Adopt the (possibly merged) committed state locally.
        entry->instance->WriteState(committed->data);
        entry->tentative = false;
        entry->stale = false;
        entry->bytes = entry->committed.ByteSize();
        cache_bytes_ += entry->bytes;
        // The raw server bytes of the new committed version double as the
        // delta base for the next import.
        entry->import_image = *committed_bytes;
      }
      if (newest) {
        NotifyStatus();
      }
      promise.Set(result);
      return;
    }

    result.status = rpc.status;
    if (newest && rpc.status.code() == StatusCode::kConflict) {
      c_conflicts_unresolved_->Increment();
      // The server shipped its committed descriptor along with the refusal.
      auto payload = RpcValueAsBytes(rpc.value);
      if (payload.ok()) {
        auto committed = RdoDescriptor::Decode(*payload);
        if (committed.ok() && entry != nullptr) {
          committed->name = name;  // keep the caller's cache key
          entry->committed = *committed;  // refresh the committed view
          entry->import_image = *payload;
          if (conflict_callback_) {
            conflict_callback_(name, entry->instance->ReadState(), *committed);
          }
        }
      }
    }
    promise.Set(result);
  });
  return promise;
}

// --- Prefetch ---

void AccessManager::Prefetch(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    if (HasCached(name)) {
      continue;
    }
    if (degraded_ || qrpc_->StorageDegraded()) {
      // Cache warming is the first load we sacrifice under pressure --
      // scheduler backlog or a full stable device alike; the caller can
      // re-issue once the condition clears.
      c_prefetches_shed_->Increment();
      continue;
    }
    prefetch_queue_.push_back(name);
  }
  PumpPrefetchQueue();
}

void AccessManager::PumpPrefetchQueue() {
  while (!degraded_ && !qrpc_->StorageDegraded() &&
         prefetch_in_flight_ < options_.max_background_imports &&
         !prefetch_queue_.empty()) {
    if (options_.prefetch_only_when_idle &&
        transport_->scheduler()->TotalQueueDepth() > 0) {
      return;  // re-pumped from NotifyStatus when the queue drains
    }
    const std::string name = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    if (HasCached(name)) {
      continue;
    }
    ++prefetch_in_flight_;
    c_prefetch_issued_->Increment();
    ImportOptions options;
    options.priority = Priority::kBackground;
    Promise<ImportResult> p = Import(name, options);
    p.OnReady([this](const ImportResult&) {
      --prefetch_in_flight_;
      PumpPrefetchQueue();
    });
  }
}

// --- Persistence ---

Bytes AccessManager::SerializeCache() const {
  WireWriter writer;
  writer.WriteVarint(cache_.size());
  for (const auto& [name, entry] : cache_) {
    writer.WriteString(name);
    writer.WriteBytes(entry.committed.Encode());
    writer.WriteVarint(entry.base_version);
    writer.WriteBool(entry.tentative);
    writer.WriteString(entry.tentative ? entry.instance->ReadState() : "");
    writer.WriteBool(entry.pinned);
    writer.WriteBytes(entry.import_image);
  }
  return writer.TakeData();
}

Status AccessManager::LoadCache(const Bytes& snapshot) {
  WireReader reader(snapshot);
  ROVER_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    ROVER_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    ROVER_ASSIGN_OR_RETURN(Bytes descriptor_bytes, reader.ReadBytes());
    ROVER_ASSIGN_OR_RETURN(uint64_t base_version, reader.ReadVarint());
    ROVER_ASSIGN_OR_RETURN(bool tentative, reader.ReadBool());
    ROVER_ASSIGN_OR_RETURN(std::string tentative_state, reader.ReadString());
    ROVER_ASSIGN_OR_RETURN(bool pinned, reader.ReadBool());
    ROVER_ASSIGN_OR_RETURN(Bytes import_image, reader.ReadBytes());
    ROVER_ASSIGN_OR_RETURN(RdoDescriptor descriptor,
                           RdoDescriptor::Decode(descriptor_bytes));

    RdoEnvironment env;
    env.host_name = transport_->local_host();
    env.now = [loop = loop_] { return loop->now(); };
    env.log = [](const std::string& line) { ROVER_LOG(Debug) << "rdo: " << line; };
    auto instance = RdoInstance::Create(descriptor, env, options_.rdo_limits);
    if (!instance.ok()) {
      ROVER_LOG(Warning) << "cache load: skipping " << name << ": " << instance.status();
      continue;
    }
    Entry& entry = cache_[name];
    if (entry.instance != nullptr) {
      cache_bytes_ -= entry.bytes;
    }
    entry.committed = descriptor;
    entry.instance = std::move(*instance);
    entry.base_version = base_version;
    entry.tentative = tentative;
    if (tentative) {
      entry.instance->WriteState(tentative_state);
      // WriteState clears dirty; the entry-level flag carries tentativeness.
    }
    entry.pinned = pinned;
    entry.import_image = std::move(import_image);
    entry.bytes = entry.committed.ByteSize();
    cache_bytes_ += entry.bytes;
    Touch(&entry);
  }
  EvictIfNeeded();
  NotifyStatus();
  return Status::Ok();
}

// --- Invalidations ---

void AccessManager::HandleControl(const Message& msg) {
  auto inval = DecodeInvalidation(msg.payload);
  if (!inval.ok()) {
    return;  // not for us
  }
  c_invalidations_received_->Increment();
  // The server names objects by path; cache keys may be URNs, so match on
  // (home server, path).
  for (auto& [key, entry] : cache_) {
    const RoverUrn urn = Resolve(key);
    if (urn.server == msg.header.src && urn.path == inval->name &&
        entry.committed.version < inval->version) {
      entry.stale = true;
    }
  }
}

void AccessManager::OnServerRestart(const std::string& server, uint64_t /*epoch*/) {
  c_server_restarts_observed_->Increment();
  // The restarted server lost its volatile subscription table, and anything
  // it committed that never reached its stable store is gone: re-validate
  // every cached import from it (tentative work is preserved -- only the
  // committed view is marked stale) and re-issue our subscriptions.
  for (auto& [key, entry] : cache_) {
    if (Resolve(key).server == server) {
      entry.stale = true;
    }
  }
  for (const std::string& key : subscribed_) {
    const RoverUrn urn = Resolve(key);
    if (urn.server != server) {
      continue;
    }
    qrpc_->Call(urn.server, "rover.subscribe", {urn.path},
                MakeCallOptions(Priority::kBackground, /*log_request=*/false));
  }
}

}  // namespace rover
