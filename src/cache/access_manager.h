// Client-side access manager (paper §3.1, §5.2): "A mobile host imports
// objects into its local cache and exports updated objects back to their
// home servers." The access manager owns the object cache, decides where
// each invocation executes (migration policy), tracks tentative vs
// committed state, and surfaces queue/consistency information for user
// notification.
//
// All operations are non-blocking and return promises resolved on the
// event loop -- import can complete from the cache immediately or after an
// arbitrarily long disconnection.

#ifndef ROVER_SRC_CACHE_ACCESS_MANAGER_H_
#define ROVER_SRC_CACHE_ACCESS_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cache/session.h"
#include "src/cache/urn.h"
#include "src/obs/metrics.h"
#include "src/qrpc/promise.h"
#include "src/qrpc/qrpc.h"
#include "src/rdo/migration.h"
#include "src/rdo/rdo.h"
#include "src/store/server.h"  // invalidation wire helpers

namespace rover {

struct AccessManagerOptions {
  std::string server_host = "server";
  size_t cache_capacity_bytes = 4 << 20;
  ExecLimits rdo_limits;
  RdoCostModel rdo_costs;
  MigrationPolicy migration;
  bool subscribe_on_import = false;  // ask the server for invalidations
  size_t max_background_imports = 4; // prefetch throttle
  // Issue prefetches only while the send queue is idle, so background
  // cache-warming never delays a foreground request on a slow link.
  bool prefetch_only_when_idle = true;
  // When non-zero, periodically rover.poll each home server for the
  // versions of cached objects and mark stale entries (the alternative to
  // subscriptions; paper S3.1 "periodic polling or server callbacks").
  Duration poll_interval = Duration::Zero();
  // When set, every QRPC travels through this SMTP relay instead of a
  // direct connection (responses return the same way). For hosts that can
  // only reach their home servers by mail.
  std::string relay_host;
  // Degraded mode (0 = never): when the scheduler's queue depth reaches
  // this, the manager sheds its prefetch queue and refuses new prefetches
  // until the depth falls back below half the threshold. Tentative-op
  // queuing (imports, invokes, exports) stays fully alive -- degraded mode
  // sacrifices cache warming, never the disconnected-operation promise.
  size_t degraded_queue_depth = 0;
  // Delta imports: when re-fetching an object whose server-encoded image is
  // still cached, send the cached version id and accept a delta reply
  // (applied locally, CRC-validated; any mismatch falls back to a full
  // re-fetch). The big import-size win on CSLIP links (E12).
  bool delta_imports = true;
};

struct ImportResult {
  Status status;
  std::string name;
  uint64_t version = 0;
  bool from_cache = false;
  TimePoint completed_at;
};

struct InvokeResult {
  Status status;
  std::string value;
  ExecutionSite site = ExecutionSite::kClient;
  TimePoint completed_at;
};

struct ExportResult {
  Status status;               // kConflict => unresolved, tentative kept
  uint64_t new_version = 0;
  bool server_resolved = false;  // a resolver merged concurrent updates
  TimePoint completed_at;
};

struct InvokeOptions {
  Priority priority = Priority::kForeground;
  // Overrides the migration policy when set.
  std::optional<ExecutionSite> force_site;
  Session* session = nullptr;
};

struct ImportOptions {
  Priority priority = Priority::kForeground;
  bool allow_cached = true;  // false forces a server round trip
  bool pin = false;          // exempt from eviction
  Session* session = nullptr;
};

// Snapshot assembled from the metrics registry (see stats()).
struct AccessManagerStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t imports_completed = 0;
  uint64_t exports_completed = 0;
  uint64_t local_invokes = 0;
  uint64_t remote_invokes = 0;
  uint64_t evictions = 0;
  uint64_t invalidations_received = 0;
  uint64_t polls_sent = 0;
  uint64_t poll_staleness_detected = 0;
  uint64_t conflicts_resolved = 0;
  uint64_t conflicts_unresolved = 0;
  uint64_t prefetch_issued = 0;
  // Server epoch bumps observed in responses: each one means the server
  // restarted, so subscriptions were re-issued and its imports marked stale.
  uint64_t server_restarts_observed = 0;
  uint64_t prefetches_shed = 0;       // dropped on entering/while degraded
  uint64_t degraded_entered = 0;      // times degraded mode engaged
  // EvictIfNeeded found only tentative/pinned entries and let the cache
  // overflow its capacity (each overage episode counts once).
  uint64_t cache_overflow_events = 0;
  uint64_t delta_hits = 0;          // imports answered with an applied delta
  uint64_t delta_full = 0;          // delta requested, server sent full body
  uint64_t delta_not_modified = 0;  // cached version was already current
  uint64_t delta_fallbacks = 0;     // delta failed to apply; full re-fetch
  uint64_t delta_bytes_saved = 0;   // full-body bytes the wire never carried
  // Cache entries marked stale by MarkAllImportsStale (storage-loss sweeps).
  uint64_t storage_stale_marks = 0;
};

// Snapshot handed to the status callback whenever it changes -- the
// toolkit's "user notification" information (paper §3.4).
struct QueueStatus {
  size_t queued_qrpcs = 0;       // operations waiting for connectivity
  size_t tentative_objects = 0;  // locally modified, not yet committed
  bool connected = false;
  bool degraded = false;         // overload: prefetching suspended
  // The stable-log device is full: new durable operations are refused
  // (kResourceExhausted) until log compaction frees space.
  bool storage_degraded = false;
};

// Renders the status as the one-line indicator the paper's applications
// display ("because the mobile environment may rapidly change ... it is
// important to present the user with information about its current state"):
//   "connected | 0 queued | all committed"
//   "DISCONNECTED | 3 ops queued | 2 tentative objects"
std::string FormatQueueStatus(const QueueStatus& status);

class AccessManager {
 public:
  using StatusCallback = std::function<void(const QueueStatus&)>;
  // Fired when an export is rejected with an unresolvable conflict:
  // (name, local tentative state, server committed descriptor).
  using ConflictCallback = std::function<void(const std::string& name,
                                              const std::string& tentative_data,
                                              const RdoDescriptor& committed)>;

  AccessManager(EventLoop* loop, TransportManager* transport, QrpcClient* qrpc,
                AccessManagerOptions options = {});

  // --- the toolkit's four core operations ---

  Promise<ImportResult> Import(const std::string& name, ImportOptions options = {});

  Promise<InvokeResult> Invoke(const std::string& name, const std::string& method,
                               std::vector<std::string> args, InvokeOptions options = {});

  Promise<ExportResult> Export(const std::string& name,
                               Priority priority = Priority::kDefault);

  // Background import of a batch of objects (cache warming for
  // disconnection; paper §3.1 "filling the cache with useful information").
  void Prefetch(const std::vector<std::string>& names);

  // --- cache inspection ---

  bool HasCached(const std::string& name) const;
  bool IsTentative(const std::string& name) const;
  size_t TentativeCount() const;
  // Current (tentative if modified, else committed) state of a cached object.
  Result<std::string> ReadData(const std::string& name) const;
  // Last known committed state, ignoring tentative local mutations.
  Result<std::string> ReadCommittedData(const std::string& name) const;
  Result<uint64_t> CachedVersion(const std::string& name) const;
  size_t CacheBytes() const { return cache_bytes_; }
  size_t CachedObjectCount() const { return cache_.size(); }

  // Drops a cached object (tentative state is lost). Pinned entries can be
  // dropped explicitly even though eviction skips them.
  void Evict(const std::string& name);

  // Conservative response to detected stable-storage loss (quarantined log
  // records): marks every cached entry stale so the next access
  // re-validates against the home server. Tentative local state is kept --
  // only trust in the committed view is withdrawn. Returns entries marked.
  size_t MarkAllImportsStale();

  // --- persistence ---
  // Rover keeps the object cache on stable storage so a reboot does not
  // empty it. SerializeCache captures every entry (committed descriptor,
  // base version, tentative state, pinned flag); LoadCache rebuilds the
  // cache in a fresh access manager, preserving tentative work.
  Bytes SerializeCache() const;
  Status LoadCache(const Bytes& snapshot);

  // Damages the cached server-encoded image for `name` in place, as stable-
  // storage corruption would; the next delta import must detect the bad
  // base and fall back to a full fetch. Returns false when there is no
  // image. Test-only.
  bool CorruptImportImageForTest(const std::string& name);

  // --- notification ---

  void SetStatusCallback(StatusCallback callback);
  void SetConflictCallback(ConflictCallback callback) {
    conflict_callback_ = std::move(callback);
  }

  // Reports session-tracked import outcomes to an external invariant
  // checker. Null disables (the default).
  void SetCheckListener(obs::CheckListener* listener) { check_ = listener; }

  // Re-homes the manager's instruments into `registry` under "<prefix>."
  // names, carrying current values over.
  void BindMetrics(obs::Registry* registry, const std::string& prefix = "access_manager");

  // Snapshot adapter over the registry counters (kept for existing callers).
  AccessManagerStats stats() const;
  const AccessManagerOptions& options() const { return options_; }

  // Best currently-up bandwidth to the default home server (or a named
  // host), 0 when disconnected.
  double BestBandwidthBps() const;
  double BestBandwidthBpsTo(const std::string& server) const;
  bool Connected() const;
  bool ConnectedTo(const std::string& server) const;

  // True while degraded mode has prefetching suspended (see
  // AccessManagerOptions::degraded_queue_depth).
  bool Degraded() const { return degraded_; }

  // Home server for `name` ("rover://host/path" URNs name their server;
  // bare paths use the default).
  std::string ServerFor(const std::string& name) const;

 private:
  struct Entry {
    RdoDescriptor committed;                 // last known committed version
    std::unique_ptr<RdoInstance> instance;   // live interpreter
    // Version the *local state* diverged from -- the base for exports.
    // Unlike committed.version, this does NOT advance when the committed
    // view is refreshed while tentative changes exist; otherwise a retry
    // after a conflict would take the server's fast path and clobber
    // concurrent updates.
    uint64_t base_version = 0;
    bool tentative = false;                  // local uncommitted mutations
    bool stale = false;                      // invalidated by the server
    bool pinned = false;
    uint64_t last_use_seq = 0;
    size_t bytes = 0;
    // Exact server-encoded bytes of `committed` (the image the server sent
    // or would send for this version): the dictionary a delta import is
    // applied against. Empty = delta unavailable, request the full body.
    Bytes import_image;
  };

  Entry* FindEntry(const std::string& name);
  const Entry* FindEntry(const std::string& name) const;
  void Touch(Entry* entry);
  void InstallDescriptor(const RdoDescriptor& descriptor, bool pin,
                         std::function<void(const Status&)> done);
  void EvictIfNeeded();
  void HandleControl(const Message& msg);
  void OnServerRestart(const std::string& server, uint64_t epoch);
  void NotifyStatus();
  void StartImportRpc(const std::string& name, Priority priority,
                      bool allow_delta = true);
  RoverUrn Resolve(const std::string& name) const;
  void SchedulePoll();
  void RunPoll();
  QrpcCallOptions MakeCallOptions(Priority priority, bool log_request = true) const;
  void FinishImport(const std::string& name, const ImportResult& result);
  void PumpPrefetchQueue();
  void UpdateDegraded(size_t queue_depth);
  void UpdateOverflowGauge();
  void WireMetrics(obs::Registry* registry, const std::string& prefix);

  Result<RdoInstance*> LocalInstance(const std::string& name);

  EventLoop* loop_;
  TransportManager* transport_;
  QrpcClient* qrpc_;
  AccessManagerOptions options_;
  obs::CheckListener* check_ = nullptr;
  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_imports_completed_ = nullptr;
  obs::Counter* c_exports_completed_ = nullptr;
  obs::Counter* c_local_invokes_ = nullptr;
  obs::Counter* c_remote_invokes_ = nullptr;
  obs::Counter* c_evictions_ = nullptr;
  obs::Counter* c_invalidations_received_ = nullptr;
  obs::Counter* c_polls_sent_ = nullptr;
  obs::Counter* c_poll_staleness_detected_ = nullptr;
  obs::Counter* c_conflicts_resolved_ = nullptr;
  obs::Counter* c_conflicts_unresolved_ = nullptr;
  obs::Counter* c_prefetch_issued_ = nullptr;
  obs::Counter* c_server_restarts_observed_ = nullptr;
  obs::Counter* c_prefetches_shed_ = nullptr;
  obs::Counter* c_degraded_entered_ = nullptr;
  obs::Counter* c_cache_overflow_events_ = nullptr;
  obs::Counter* c_delta_hits_ = nullptr;
  obs::Counter* c_delta_full_ = nullptr;
  obs::Counter* c_delta_not_modified_ = nullptr;
  obs::Counter* c_delta_fallbacks_ = nullptr;
  obs::Counter* c_delta_bytes_saved_ = nullptr;
  obs::Counter* c_storage_stale_marks_ = nullptr;
  obs::Gauge* g_degraded_ = nullptr;
  obs::Gauge* g_cache_overflow_bytes_ = nullptr;
  std::map<std::string, Entry> cache_;
  size_t cache_bytes_ = 0;
  uint64_t use_seq_ = 0;
  // In-flight imports, coalesced by name. If a foreground import arrives
  // while a background fetch for the same object is pending, a second RPC
  // is issued at the higher priority (imports are idempotent), so user
  // requests never wait at prefetch priority.
  struct ImportWaiter {
    Promise<ImportResult> promise;
    // Session floor recorded at join time: the version below which this
    // waiter must NOT be handed an ok result (monotonic reads /
    // read-your-writes). 0 = no session constraint.
    uint64_t required = 0;
    bool has_session = false;
  };
  struct PendingImport {
    std::vector<ImportWaiter> waiters;
    Priority priority = Priority::kBackground;
    // Pin applies at install, before EvictIfNeeded runs: an entry imported
    // with pin=true must not evict itself when it alone exceeds capacity.
    bool pin = false;
    // Max of the waiters' session floors: a kNotModified reply confirming a
    // version below this cannot satisfy every waiter and falls back to a
    // full re-fetch.
    uint64_t required_version = 0;
  };
  std::map<std::string, PendingImport> pending_imports_;
  // Newest import rpc issued per name. An import response handler whose rpc
  // is no longer the newest does nothing: either it was superseded (its
  // promise chained to the newest rpc's result) or a priority escalation
  // re-requested the object and the newest response drives the install.
  std::map<std::string, uint64_t> latest_import_rpc_;
  // Newest export rpc issued per name, mirroring latest_import_rpc_: when a
  // queued export is coalesced, the predecessor's promise is chained to the
  // newest rpc's result, so both handlers see the same response. Only the
  // newest rpc's handler installs state, bumps completion/conflict
  // counters, and invokes conflict_callback_; stale handlers just relay
  // the outcome to their caller.
  std::map<std::string, uint64_t> latest_export_rpc_;
  std::deque<std::string> prefetch_queue_;
  size_t prefetch_in_flight_ = 0;
  bool degraded_ = false;
  // True while cache_bytes_ exceeds capacity with nothing evictable; the
  // flag gives each overage episode exactly one warning + counter bump.
  bool overflowing_ = false;
  // Cache keys we hold (volatile, server-side) subscriptions for; re-issued
  // when the server's epoch bumps, withdrawn on eviction.
  std::set<std::string> subscribed_;
  StatusCallback status_callback_;
  ConflictCallback conflict_callback_;
  // Loop-scheduled callbacks (poll timer, install cost, prefetch pump)
  // capture a weak_ptr to this token and bail out once it is gone, so an
  // access manager destroyed by a simulated crash is never touched by
  // events already in the loop.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace rover

#endif  // ROVER_SRC_CACHE_ACCESS_MANAGER_H_
