// Object naming (paper §2): "Objects are named using Universal Resource
// Names"; every object has a home server. A fully qualified Rover name is
//
//   rover://<server-host>/<path>
//
// and a bare name ("mail/inbox") is resolved against the access manager's
// default server. The path (without the scheme/host) is the key in the
// home server's object store, so the same path can exist on different
// servers independently.

#ifndef ROVER_SRC_CACHE_URN_H_
#define ROVER_SRC_CACHE_URN_H_

#include <string>

#include "src/util/result.h"

namespace rover {

struct RoverUrn {
  std::string server;  // home server host name
  std::string path;    // object key at that server
};

// True if `name` uses the rover:// scheme.
bool IsRoverUrn(const std::string& name);

// Parses "rover://server/path". Fails on malformed URNs.
Result<RoverUrn> ParseRoverUrn(const std::string& name);

// Resolves `name` (URN or bare path) against `default_server`.
RoverUrn ResolveObjectName(const std::string& name, const std::string& default_server);

// Builds the canonical URN string.
std::string MakeRoverUrn(const std::string& server, const std::string& path);

}  // namespace rover

#endif  // ROVER_SRC_CACHE_URN_H_
