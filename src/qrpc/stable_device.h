// Simulated stable-storage device with an injectable fault model. StableLog
// (and through it the server WAL) routes every device write through this
// abstraction so storage failures become first-class, schedulable events:
//
//   - transient write errors (EIO-style): the write burns its device time but
//     the sync fails; the caller may retry.
//   - capacity exhaustion (ENOSPC-style): writes beyond `capacity_bytes` are
//     refused until space is released (truncation/compaction) or the limit is
//     lifted.
//   - latent bit rot: a successful write may silently corrupt a byte of the
//     record it just stored; the damage only surfaces later, at CRC-checking
//     read or recovery time.
//   - permanent sync failure: after `fail_sync_after_writes` writes (or an
//     explicit FailSyncPermanently()) every sync fails forever. The policy
//     layer treats this as fail-stop -- a device that lies about durability
//     must never back an acknowledgement.
//
// Faults are drawn from a seeded Rng, so a schedule replays deterministically;
// the Inject*/Clamp* methods let fault plans and tests force specific events
// at specific times instead of (or on top of) probabilistic draws.

#ifndef ROVER_SRC_QRPC_STABLE_DEVICE_H_
#define ROVER_SRC_QRPC_STABLE_DEVICE_H_

#include <cstddef>
#include <cstdint>

#include "src/util/rng.h"

namespace rover {

struct DiskFaultOptions {
  uint64_t seed = 0;
  // Probability that a device write fails with a transient error.
  double transient_write_error_prob = 0.0;
  // Usable capacity in bytes; 0 means unbounded.
  size_t capacity_bytes = 0;
  // Probability that a successful write leaves latent corruption in the
  // newest record it stored.
  double bitrot_prob = 0.0;
  // After this many write attempts, sync fails permanently. 0 = never.
  uint64_t fail_sync_after_writes = 0;
};

struct StableDeviceStats {
  uint64_t writes_ok = 0;
  uint64_t transient_errors = 0;
  uint64_t no_space_errors = 0;
  uint64_t sync_failures = 0;
  uint64_t bitrot_injected = 0;
  uint64_t repairs = 0;
};

class StableDevice {
 public:
  enum class WriteOutcome {
    kOk,
    kTransientError,  // retryable
    kNoSpace,         // refused: over capacity
    kSyncFailed,      // permanent: device can no longer guarantee durability
  };

  explicit StableDevice(DiskFaultOptions options = {});

  // True when `bytes` more can be stored within the capacity limit.
  bool HasSpaceFor(size_t bytes) const;

  // One device write of `bytes`. On kOk the bytes are charged against
  // capacity; every other outcome leaves used_bytes() unchanged.
  WriteOutcome Write(size_t bytes);

  // Returns previously written bytes to the free pool (truncation,
  // compaction, or quarantine of a stored record).
  void Release(size_t bytes);

  // Accounts bytes that reached the platter outside a completed Write()
  // (a torn record surviving a crash mid-write).
  void Charge(size_t bytes);

  // Drawn once per record a successful write stored; true means the caller
  // should plant latent corruption in that record.
  bool DrawBitRot();

  // --- fault injection (fault plans / tests) ---

  // The next `n` writes fail with a transient error regardless of the
  // probabilistic schedule.
  void InjectTransientWriteErrors(size_t n);

  // Sets the capacity limit (0 = unbounded). Lowering it below used_bytes()
  // does not destroy data; it only refuses further writes.
  void SetCapacityBytes(size_t bytes);

  // Clamps capacity to used_bytes() + slack: the disk is now (nearly) full.
  void ClampCapacityToUsed(size_t slack);

  void FailSyncPermanently();

  // Models the operator swapping in a healthy replacement device: clears the
  // sync failure, pending injected errors, and the probabilistic fault
  // schedule. Stored bytes and the capacity limit survive (the log contents
  // were salvaged onto the new device).
  void Repair();

  bool sync_failed() const { return sync_failed_; }
  size_t used_bytes() const { return used_bytes_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  const StableDeviceStats& stats() const { return stats_; }

 private:
  DiskFaultOptions options_;
  Rng rng_;
  size_t used_bytes_ = 0;
  size_t capacity_bytes_ = 0;
  size_t forced_transient_errors_ = 0;
  bool sync_failed_ = false;
  uint64_t writes_attempted_ = 0;
  StableDeviceStats stats_;
};

}  // namespace rover

#endif  // ROVER_SRC_QRPC_STABLE_DEVICE_H_
