// Stable operation log (paper §5.2). Every QRPC is appended to a log on
// stable storage before it is handed to the network scheduler, so that a
// crash or battery pull never loses a queued operation. "The flush is on
// the critical path for message sending", which experiment E2 measures.
//
// The simulated device charges a fixed per-flush cost (seek + sync) plus a
// per-byte transfer cost, and can fail: transient write errors are retried
// with bounded jittered backoff, capacity exhaustion refuses the flush with
// kResourceExhausted, and a permanently failed sync is fail-stop (see
// SetFailStopHandler). Records carry a CRC32; SimulateCrash can tear the
// tail record, and recovery distinguishes a legitimate torn tail (truncated
// silently, as a real redo log would) from interior corruption -- bit rot in
// a record whose write was acknowledged -- which is quarantined and reported
// so upper layers can surface kDataLoss instead of silently losing work.

#ifndef ROVER_SRC_QRPC_STABLE_LOG_H_
#define ROVER_SRC_QRPC_STABLE_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/qrpc/stable_device.h"
#include "src/sim/event_loop.h"
#include "src/transport/overload.h"
#include "src/util/buffer.h"
#include "src/util/bytes.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace rover {

struct StableLogCostModel {
  // Fixed cost per flush: rotational/flash sync latency.
  Duration flush_base = Duration::Millis(8);
  // Sequential write bandwidth of the stable store.
  double write_bytes_per_sec = 2e6;
  // Group commit [Hagmann 87, cited by the paper as an optimization its
  // prototype skipped]: flushes requested while a device write is in
  // progress coalesce into one following write instead of queueing a
  // serial write each. A burst of N queued QRPCs then pays ~2 sync costs
  // instead of N. On by default; E2/E8 quantify the win.
  bool group_commit = true;
  // Compress record payloads before they hit the device (the prototype
  // "does not perform any compression on the log", §5.2). A record is
  // stored compressed only when that actually shrinks it; Recover() and
  // RecordPayload() transparently decompress. Opt-in: it trades CPU for
  // flush bytes, which only pays off on byte-constrained stable stores.
  bool compress_log = false;
  // Transient device write errors are retried up to this many times with
  // decorrelated-jitter backoff before the flush fails with kUnavailable.
  size_t flush_max_retries = 4;
  Duration flush_retry_base = Duration::Millis(2);
  Duration flush_retry_max = Duration::Millis(200);

  Duration FlushCost(size_t bytes) const {
    return flush_base + Duration::Seconds(static_cast<double>(bytes) / write_bytes_per_sec);
  }
};

// Snapshot assembled from the metrics registry (see stats()).
struct StableLogStats {
  uint64_t appends = 0;
  uint64_t flushes = 0;
  uint64_t bytes_flushed = 0;
  Duration flush_time_total;
  uint64_t raw_bytes_appended = 0;     // payload bytes before compression
  uint64_t stored_bytes_appended = 0;  // bytes the device actually holds
  uint64_t records_compressed = 0;
  uint64_t flush_transient_errors = 0;  // device write errors observed
  uint64_t flush_retries = 0;           // retry attempts scheduled
  uint64_t flush_failures = 0;          // flushes that terminally failed
  uint64_t flush_enospc = 0;            // flushes refused for capacity
  uint64_t flush_sync_failures = 0;     // flushes failed by a dead sync
  uint64_t records_quarantined = 0;     // interior-corrupt records removed
  uint64_t torn_tail_records_dropped = 0;
};

class StableLog {
 public:
  struct Record {
    uint64_t id = 0;
    // Stored form: LZ-compressed when `compressed` is set. A Buffer so the
    // log can retain the caller's payload without copying it; simulated
    // device damage (bit rot, torn writes) goes through MutableData(),
    // whose copy-on-write keeps other holders of the same bytes intact.
    Buffer data;
    uint32_t crc = 0;  // CRC of the stored form (what the device holds)
    bool durable = false;
    bool compressed = false;
    size_t raw_size = 0;  // pre-compression payload size (== data.size() if raw)
  };

  // Outcome of a recovery scan (see RecoverWithReport).
  struct RecoveryReport {
    size_t valid = 0;              // records that survive
    size_t torn_tail_dropped = 0;  // trailing CRC failures, silently truncated
    std::vector<uint64_t> quarantined;  // interior-corrupt record ids removed
  };

  struct ScrubReport {
    size_t scanned = 0;
    std::vector<uint64_t> quarantined;
  };

  // Runs when the flush terminally completes; a non-ok status means the
  // covered records did NOT become durable (kUnavailable: retries exhausted,
  // kResourceExhausted: device full, kDataLoss: permanent sync failure).
  using FlushCallback = std::function<void(const Status&)>;

  StableLog(EventLoop* loop, StableLogCostModel cost_model = {},
            DiskFaultOptions disk_faults = {});

  // Appends a record to the in-memory tail (not yet durable). Returns its
  // id. Takes a Buffer: an rvalue Bytes adopts without copying, and a
  // payload already living in a Buffer is retained by refcount.
  uint64_t Append(Buffer data);

  // Makes all appended records durable. `done` runs once the (simulated)
  // device write terminally completes -- successfully or not; flushes are
  // serialized in FIFO order. Records already covered by an in-flight write
  // are not written again -- an overlapping flush only pays for (and charges
  // stats for) the remainder.
  void Flush(FlushCallback done);
  // Legacy form for callers that do not inspect the outcome.
  void Flush(std::function<void()> done);
  void Flush(std::nullptr_t) { Flush(FlushCallback{}); }

  // True when no appended record is awaiting a flush.
  bool FullyDurable() const;

  // True while a simulated device write is in progress. Only then can a
  // crash physically tear a record; toolkit-level crash APIs gate their
  // tear flag on this so a record whose write completed (and may have been
  // acknowledged) is never retroactively corrupted.
  bool WriteInFlight() const {
    return write_in_progress_ || !flush_in_flight_ids_.empty();
  }

  // True when the device has room for a new record of `payload_bytes` on
  // top of everything already appended but not yet stored. The admission
  // path checks this before accepting a durable enqueue so a full disk
  // surfaces as kResourceExhausted at call time, not as a failed flush.
  bool HasSpaceFor(size_t payload_bytes) const;

  // Removes records with id <= `up_to_id` (they have been acknowledged).
  void Truncate(uint64_t up_to_id);

  // Removes one record anywhere in the log (e.g. a cancelled request).
  bool RemoveRecord(uint64_t id);

  // All durable records, oldest first.
  std::vector<Record> DurableRecords() const;

  size_t RecordCount() const { return records_.size(); }

  // Total payload bytes of records currently in the log (durable or not).
  // The QRPC client's admission control bounds this against its byte budget.
  size_t TotalBytes() const { return total_bytes_; }

  // The record with the given id, or nullptr. The pointer is invalidated by
  // any mutation of the log.
  const Record* FindRecord(uint64_t id) const;

  // The record's original (uncompressed) payload. Readers must use this
  // instead of touching `data` directly -- with compress_log on, `data`
  // holds the stored form. Uncompressed records cost a refcount bump, not
  // a copy. kDataLoss if the record is corrupt (CRC mismatch, i.e. latent
  // bit rot surfacing at read time).
  Result<Buffer> RecordPayload(const Record& rec) const;

  // Id of the oldest record still in the log, or 0 when empty.
  uint64_t FrontRecordId() const { return records_.empty() ? 0 : records_.front().id; }

  // Id of the newest record in the log, or 0 when empty. Snapshot-based
  // compaction captures this before writing a snapshot and truncates up to
  // it afterwards, leaving records appended meanwhile in place.
  uint64_t BackRecordId() const { return records_.empty() ? 0 : records_.back().id; }

  // Crash: in-memory (non-durable) records vanish. If `tear_last_record`,
  // the final durable record is corrupted as a torn write would.
  void SimulateCrash(bool tear_last_record = false);

  // Recovery scan: validates CRCs. Trailing CRC failures are a torn tail
  // and truncate silently (the pre-fault behaviour); a CRC failure with a
  // valid record after it is interior corruption -- the write was
  // acknowledged and later rotted -- and is quarantined and reported so the
  // caller can surface kDataLoss instead of silently losing work.
  RecoveryReport RecoverWithReport();

  // Compatibility wrapper: returns the number of surviving records.
  size_t Recover();

  // Proactive CRC sweep over durable records; interior corruption found
  // outside recovery is quarantined the same way.
  ScrubReport Scrub();

  // Plants latent corruption in a stored (durable) record, preferring an
  // interior one; `selector` picks among candidates deterministically.
  // Returns the damaged record's id, or 0 when no durable record exists.
  uint64_t InjectBitRot(uint64_t selector);

  // Runs (once per failure episode, asynchronously) when a flush fails
  // because the device's sync is permanently broken. The node layer treats
  // this as fail-stop: crash + device replacement, never an ack over a
  // lying device.
  void SetFailStopHandler(std::function<void()> handler) {
    fail_stop_handler_ = std::move(handler);
  }

  StableDevice* device() { return &device_; }
  const StableDevice* device() const { return &device_; }

  // Re-homes the log's instruments into `registry` under "<prefix>." names,
  // carrying current values over.
  void BindMetrics(obs::Registry* registry, const std::string& prefix = "stable_log");

  // Snapshot adapter over the registry counters (kept for existing callers).
  StableLogStats stats() const;
  const StableLogCostModel& cost_model() const { return cost_model_; }

 private:
  // One terminal device write: the id set it covers, the bytes it charges,
  // and the flush callbacks waiting on it. Retries re-use the job; a crash
  // invalidates it via the generation stamp.
  struct WriteJob {
    std::vector<uint64_t> ids;  // sorted
    size_t bytes = 0;
    size_t attempt = 0;
    bool group = false;
    uint64_t generation = 0;
    std::vector<FlushCallback> callbacks;
  };

  void FlushInternal(FlushCallback done);
  void StartGroupWrite();
  void ScheduleAttempt(std::shared_ptr<WriteJob> job);
  void CompleteWrite(const std::shared_ptr<WriteJob>& job, const Status& status);
  void MarkDurable(const WriteJob& job);
  void WireMetrics(obs::Registry* registry, const std::string& prefix);
  void ChargeWrite(size_t bytes, Duration cost);
  size_t PendingStoredBytes() const;

  EventLoop* loop_;
  StableLogCostModel cost_model_;
  StableDevice device_;
  DecorrelatedJitterBackoff flush_backoff_;
  std::function<void()> fail_stop_handler_;
  std::deque<Record> records_;
  uint64_t next_id_ = 1;
  size_t total_bytes_ = 0;  // sum of records_[i].data.size()
  TimePoint flush_busy_until_ = TimePoint::Epoch();
  // Ids covered by a device write that has started but not completed;
  // overlapping flushes skip these instead of charging for them twice.
  std::set<uint64_t> flush_in_flight_ids_;
  // Group-commit state.
  bool write_in_progress_ = false;
  std::vector<FlushCallback> waiting_flushes_;
  // Bumped by SimulateCrash; pending write completions and retries from
  // before the crash notice the stamp changed and do nothing.
  uint64_t crash_generation_ = 0;

  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::Counter* c_appends_ = nullptr;
  obs::Counter* c_flushes_ = nullptr;
  obs::Counter* c_bytes_flushed_ = nullptr;
  obs::Counter* c_flush_time_micros_ = nullptr;
  obs::Counter* c_raw_bytes_appended_ = nullptr;
  obs::Counter* c_stored_bytes_appended_ = nullptr;
  obs::Counter* c_records_compressed_ = nullptr;
  obs::Counter* c_flush_transient_errors_ = nullptr;
  obs::Counter* c_flush_retries_ = nullptr;
  obs::Counter* c_flush_failures_ = nullptr;
  obs::Counter* c_flush_enospc_ = nullptr;
  obs::Counter* c_flush_sync_failures_ = nullptr;
  obs::Counter* c_records_quarantined_ = nullptr;
  obs::Counter* c_torn_tail_dropped_ = nullptr;
  obs::Gauge* g_compression_ratio_pct_ = nullptr;
  obs::Gauge* g_device_used_bytes_ = nullptr;
  obs::Histogram* h_flush_seconds_ = nullptr;
};

}  // namespace rover

#endif  // ROVER_SRC_QRPC_STABLE_LOG_H_
