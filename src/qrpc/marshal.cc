#include "src/qrpc/marshal.h"

namespace rover {
namespace {

enum class ValueTag : uint8_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
  kBytes = 3,
};

}  // namespace

void EncodeRpcValue(const RpcValue& value, WireWriter* writer) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    writer->WriteVarint(static_cast<uint64_t>(ValueTag::kInt));
    writer->WriteZigzag(*i);
  } else if (const auto* d = std::get_if<double>(&value)) {
    writer->WriteVarint(static_cast<uint64_t>(ValueTag::kDouble));
    writer->WriteDouble(*d);
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    writer->WriteVarint(static_cast<uint64_t>(ValueTag::kString));
    writer->WriteString(*s);
  } else {
    writer->WriteVarint(static_cast<uint64_t>(ValueTag::kBytes));
    writer->WriteBytes(std::get<Bytes>(value));
  }
}

Result<RpcValue> DecodeRpcValue(WireReader* reader) {
  ROVER_ASSIGN_OR_RETURN(uint64_t tag, reader->ReadVarint());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kInt: {
      ROVER_ASSIGN_OR_RETURN(int64_t v, reader->ReadZigzag());
      return RpcValue(v);
    }
    case ValueTag::kDouble: {
      ROVER_ASSIGN_OR_RETURN(double v, reader->ReadDouble());
      return RpcValue(v);
    }
    case ValueTag::kString: {
      ROVER_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return RpcValue(std::move(v));
    }
    case ValueTag::kBytes: {
      ROVER_ASSIGN_OR_RETURN(Bytes v, reader->ReadBytes());
      return RpcValue(std::move(v));
    }
  }
  return DataLossError("bad RpcValue tag");
}

void EncodeRpcArgs(const RpcArgs& args, WireWriter* writer) {
  writer->WriteVarint(args.size());
  for (const RpcValue& v : args) {
    EncodeRpcValue(v, writer);
  }
}

Result<RpcArgs> DecodeRpcArgs(WireReader* reader) {
  ROVER_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  if (count > reader->remaining() + 1) {
    return DataLossError("RpcArgs count implausible");
  }
  RpcArgs args;
  args.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ROVER_ASSIGN_OR_RETURN(RpcValue v, DecodeRpcValue(reader));
    args.push_back(std::move(v));
  }
  return args;
}

Bytes RpcRequestBody::Encode() const {
  WireWriter writer;
  writer.WriteString(method);
  EncodeRpcArgs(args, &writer);
  return writer.TakeData();
}

namespace {

Result<RpcRequestBody> DecodeRequestFrom(WireReader* reader) {
  RpcRequestBody body;
  ROVER_ASSIGN_OR_RETURN(body.method, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(body.args, DecodeRpcArgs(reader));
  return body;
}

}  // namespace

Result<RpcRequestBody> RpcRequestBody::Decode(const Bytes& payload) {
  WireReader reader(payload);
  return DecodeRequestFrom(&reader);
}

Result<RpcRequestBody> RpcRequestBody::Decode(const Buffer& payload) {
  WireReader reader(payload.data(), payload.size());
  return DecodeRequestFrom(&reader);
}

Status RpcResponseBody::ToStatus() const {
  if (code == StatusCode::kOk) {
    return Status::Ok();
  }
  return Status(code, error_message);
}

Bytes RpcResponseBody::Encode() const {
  WireWriter writer;
  writer.WriteVarint(static_cast<uint64_t>(code));
  writer.WriteString(error_message);
  EncodeRpcValue(result, &writer);
  writer.WriteVarint(server_epoch);
  writer.WriteVarint(retry_after_micros);
  return writer.TakeData();
}

namespace {

Result<RpcResponseBody> DecodeResponseFrom(WireReader* reader);

}  // namespace

Result<RpcResponseBody> RpcResponseBody::Decode(const Bytes& payload) {
  WireReader reader(payload);
  return DecodeResponseFrom(&reader);
}

Result<RpcResponseBody> RpcResponseBody::Decode(const Buffer& payload) {
  WireReader reader(payload.data(), payload.size());
  return DecodeResponseFrom(&reader);
}

namespace {

Result<RpcResponseBody> DecodeResponseFrom(WireReader* reader_ptr) {
  WireReader& reader = *reader_ptr;
  RpcResponseBody body;
  ROVER_ASSIGN_OR_RETURN(uint64_t code, reader.ReadVarint());
  if (code > static_cast<uint64_t>(StatusCode::kPermissionDenied)) {
    return DataLossError("bad status code in response");
  }
  body.code = static_cast<StatusCode>(code);
  ROVER_ASSIGN_OR_RETURN(body.error_message, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(body.result, DecodeRpcValue(&reader));
  // Trailers: absent in responses cached before each field existed.
  if (reader.remaining() > 0) {
    ROVER_ASSIGN_OR_RETURN(body.server_epoch, reader.ReadVarint());
  }
  if (reader.remaining() > 0) {
    ROVER_ASSIGN_OR_RETURN(body.retry_after_micros, reader.ReadVarint());
  }
  return body;
}

}  // namespace

Result<int64_t> RpcValueAsInt(const RpcValue& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return *i;
  }
  return InvalidArgumentError("RpcValue is not an int");
}

Result<double> RpcValueAsDouble(const RpcValue& value) {
  if (const auto* d = std::get_if<double>(&value)) {
    return *d;
  }
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return static_cast<double>(*i);
  }
  return InvalidArgumentError("RpcValue is not a double");
}

Result<std::string> RpcValueAsString(const RpcValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    return *s;
  }
  return InvalidArgumentError("RpcValue is not a string");
}

Result<Bytes> RpcValueAsBytes(const RpcValue& value) {
  if (const auto* b = std::get_if<Bytes>(&value)) {
    return *b;
  }
  return InvalidArgumentError("RpcValue is not bytes");
}

}  // namespace rover
