#include "src/qrpc/stable_log.h"

#include <memory>

#include <algorithm>
#include <utility>

#include "src/obs/cpu_scope.h"
#include "src/util/compress.h"
#include "src/util/crc32.h"

namespace rover {

namespace {
constexpr size_t kRecordFraming = 16;  // id + length + crc framing bytes
}  // namespace

StableLog::StableLog(EventLoop* loop, StableLogCostModel cost_model,
                     DiskFaultOptions disk_faults)
    : loop_(loop),
      cost_model_(cost_model),
      device_(disk_faults),
      flush_backoff_(cost_model.flush_retry_base, cost_model.flush_retry_max,
                     disk_faults.seed ^ 0xf1005bacc0ffULL) {
  WireMetrics(&own_metrics_, "stable_log");
}

void StableLog::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_appends_ = registry->counter(prefix + ".appends");
  c_flushes_ = registry->counter(prefix + ".flushes");
  c_bytes_flushed_ = registry->counter(prefix + ".bytes_flushed");
  c_flush_time_micros_ = registry->counter(prefix + ".flush_time_micros");
  c_raw_bytes_appended_ = registry->counter(prefix + ".raw_bytes_appended");
  c_stored_bytes_appended_ = registry->counter(prefix + ".stored_bytes_appended");
  c_records_compressed_ = registry->counter(prefix + ".records_compressed");
  c_flush_transient_errors_ = registry->counter(prefix + ".flush_transient_errors");
  c_flush_retries_ = registry->counter(prefix + ".flush_retries");
  c_flush_failures_ = registry->counter(prefix + ".flush_failures");
  c_flush_enospc_ = registry->counter(prefix + ".flush_enospc");
  c_flush_sync_failures_ = registry->counter(prefix + ".flush_sync_failures");
  c_records_quarantined_ = registry->counter(prefix + ".records_quarantined");
  c_torn_tail_dropped_ = registry->counter(prefix + ".torn_tail_records_dropped");
  g_compression_ratio_pct_ = registry->gauge(prefix + ".compression_ratio_pct");
  g_device_used_bytes_ = registry->gauge(prefix + ".device_used_bytes");
  h_flush_seconds_ = registry->histogram(prefix + ".flush_seconds");
}

void StableLog::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const StableLogStats carried = stats();
  const uint64_t raw_bytes = c_raw_bytes_appended_->value();
  const uint64_t stored_bytes = c_stored_bytes_appended_->value();
  const uint64_t compressed = c_records_compressed_->value();
  const int64_t ratio = g_compression_ratio_pct_->value();
  WireMetrics(registry, prefix);
  c_appends_->Increment(carried.appends);
  c_flushes_->Increment(carried.flushes);
  c_bytes_flushed_->Increment(carried.bytes_flushed);
  c_flush_time_micros_->Increment(static_cast<uint64_t>(carried.flush_time_total.micros()));
  c_raw_bytes_appended_->Increment(raw_bytes);
  c_stored_bytes_appended_->Increment(stored_bytes);
  c_records_compressed_->Increment(compressed);
  c_flush_transient_errors_->Increment(carried.flush_transient_errors);
  c_flush_retries_->Increment(carried.flush_retries);
  c_flush_failures_->Increment(carried.flush_failures);
  c_flush_enospc_->Increment(carried.flush_enospc);
  c_flush_sync_failures_->Increment(carried.flush_sync_failures);
  c_records_quarantined_->Increment(carried.records_quarantined);
  c_torn_tail_dropped_->Increment(carried.torn_tail_records_dropped);
  g_compression_ratio_pct_->Set(ratio);
  g_device_used_bytes_->Set(static_cast<int64_t>(device_.used_bytes()));
}

StableLogStats StableLog::stats() const {
  StableLogStats s;
  s.appends = c_appends_->value();
  s.flushes = c_flushes_->value();
  s.bytes_flushed = c_bytes_flushed_->value();
  s.flush_time_total = Duration::Micros(static_cast<int64_t>(c_flush_time_micros_->value()));
  s.raw_bytes_appended = c_raw_bytes_appended_->value();
  s.stored_bytes_appended = c_stored_bytes_appended_->value();
  s.records_compressed = c_records_compressed_->value();
  s.flush_transient_errors = c_flush_transient_errors_->value();
  s.flush_retries = c_flush_retries_->value();
  s.flush_failures = c_flush_failures_->value();
  s.flush_enospc = c_flush_enospc_->value();
  s.flush_sync_failures = c_flush_sync_failures_->value();
  s.records_quarantined = c_records_quarantined_->value();
  s.torn_tail_records_dropped = c_torn_tail_dropped_->value();
  return s;
}

void StableLog::ChargeWrite(size_t bytes, Duration cost) {
  c_flushes_->Increment();
  c_bytes_flushed_->Increment(bytes);
  c_flush_time_micros_->Increment(static_cast<uint64_t>(cost.micros()));
  h_flush_seconds_->Observe(cost.seconds());
}

size_t StableLog::PendingStoredBytes() const {
  size_t bytes = 0;
  for (const Record& rec : records_) {
    if (!rec.durable) {
      bytes += rec.data.size() + kRecordFraming;
    }
  }
  return bytes;
}

bool StableLog::HasSpaceFor(size_t payload_bytes) const {
  // Conservative: assumes the new record stores uncompressed.
  return device_.HasSpaceFor(PendingStoredBytes() + payload_bytes + kRecordFraming);
}

uint64_t StableLog::Append(Buffer data) {
  Record rec;
  rec.id = next_id_++;
  rec.raw_size = data.size();
  if (cost_model_.compress_log) {
    Bytes packed = LzCompress(data.data(), data.size());
    if (packed.size() < data.size()) {
      rec.compressed = true;
      rec.data = std::move(packed);
      c_records_compressed_->Increment();
    }
  }
  if (!rec.compressed) {
    rec.data = std::move(data);
  }
  // The CRC covers the stored form: that is what the device holds and what
  // a torn write damages.
  rec.crc = Crc32(rec.data.data(), rec.data.size());
  rec.durable = false;
  total_bytes_ += rec.data.size();
  c_raw_bytes_appended_->Increment(rec.raw_size);
  c_stored_bytes_appended_->Increment(rec.data.size());
  if (const uint64_t raw = c_raw_bytes_appended_->value(); raw > 0) {
    g_compression_ratio_pct_->Set(
        static_cast<int64_t>(100 * c_stored_bytes_appended_->value() / raw));
  }
  records_.push_back(std::move(rec));
  c_appends_->Increment();
  return records_.back().id;
}

const StableLog::Record* StableLog::FindRecord(uint64_t id) const {
  for (const Record& rec : records_) {
    if (rec.id == id) {
      return &rec;
    }
  }
  return nullptr;
}

Result<Buffer> StableLog::RecordPayload(const Record& rec) const {
  if (Crc32(rec.data.data(), rec.data.size()) != rec.crc) {
    return DataLossError("stable log: record CRC mismatch (latent corruption)");
  }
  if (!rec.compressed) {
    return rec.data;  // refcount bump; no copy
  }
  ROVER_ASSIGN_OR_RETURN(Bytes raw,
                         LzDecompress(rec.data.data(), rec.data.size()));
  if (raw.size() != rec.raw_size) {
    return DataLossError("stable log: decompressed record size mismatch");
  }
  return Buffer(std::move(raw));
}

void StableLog::Flush(FlushCallback done) { FlushInternal(std::move(done)); }

void StableLog::Flush(std::function<void()> done) {
  if (!done) {
    FlushInternal(FlushCallback{});
    return;
  }
  // Legacy callers observe completion, not the outcome.
  FlushInternal([done = std::move(done)](const Status&) { done(); });
}

void StableLog::FlushInternal(FlushCallback done) {
  obs::CpuScope cpu(obs::CpuZone::kWalFlush);
  if (cost_model_.group_commit) {
    waiting_flushes_.push_back(std::move(done));
    if (!write_in_progress_) {
      StartGroupWrite();
    }
    return;
  }
  // Collect only records no write is covering yet: an overlapping flush
  // must not re-write (and re-charge for) bytes already on their way to
  // the device.
  auto job = std::make_shared<WriteJob>();
  job->group = false;
  job->generation = crash_generation_;
  for (const Record& rec : records_) {
    if (!rec.durable && flush_in_flight_ids_.count(rec.id) == 0) {
      job->bytes += rec.data.size() + kRecordFraming;
      job->ids.push_back(rec.id);
    }
  }
  if (job->ids.empty()) {
    // Nothing new to write. Completion still waits for any in-flight
    // writes (the durability point this flush was asked to reach), or runs
    // asynchronously right away when the log is already durable. NOTE: the
    // serial path's overlap shortcut reports Ok without re-checking the
    // overlapped write's outcome; group commit is the fault-accurate path.
    if (done) {
      auto run = [done = std::move(done)] { done(Status::Ok()); };
      if (flush_in_flight_ids_.empty()) {
        loop_->ScheduleAfter(Duration::Zero(), std::move(run));
      } else {
        loop_->ScheduleAt(flush_busy_until_, std::move(run));
      }
    }
    return;
  }
  if (done) {
    job->callbacks.push_back(std::move(done));
  }
  flush_in_flight_ids_.insert(job->ids.begin(), job->ids.end());
  ScheduleAttempt(std::move(job));
}

void StableLog::StartGroupWrite() {
  // One device write covers every record appended so far; flush requests
  // arriving while it runs join the *next* write.
  auto job = std::make_shared<WriteJob>();
  job->group = true;
  job->generation = crash_generation_;
  for (const Record& rec : records_) {
    if (!rec.durable) {
      job->bytes += rec.data.size() + kRecordFraming;
      job->ids.push_back(rec.id);
    }
  }
  job->callbacks = std::move(waiting_flushes_);
  waiting_flushes_.clear();
  if (job->ids.empty()) {
    loop_->ScheduleAfter(Duration::Zero(), [job] {
      for (auto& cb : job->callbacks) {
        if (cb) {
          cb(Status::Ok());
        }
      }
    });
    return;
  }
  write_in_progress_ = true;
  ScheduleAttempt(std::move(job));
}

void StableLog::ScheduleAttempt(std::shared_ptr<WriteJob> job) {
  // Fail fast -- without burning device time -- when the write cannot
  // possibly succeed: the sync is permanently dead, or capacity cannot hold
  // the job. Completion still runs asynchronously so callers never see
  // their callback re-enter them from inside Flush().
  Status precheck = Status::Ok();
  if (device_.sync_failed()) {
    c_flush_sync_failures_->Increment();
    precheck = DataLossError("stable device: sync permanently failed");
  } else if (!device_.HasSpaceFor(job->bytes)) {
    c_flush_enospc_->Increment();
    precheck = ResourceExhaustedError("stable device: out of space");
  }
  if (!precheck.ok()) {
    loop_->ScheduleAfter(Duration::Zero(), [this, job, precheck] {
      if (job->generation != crash_generation_) {
        return;
      }
      CompleteWrite(job, precheck);
    });
    return;
  }
  const Duration cost = cost_model_.FlushCost(job->bytes);
  TimePoint finish;
  if (job->group) {
    finish = loop_->now() + cost;
  } else {
    const TimePoint start = std::max(loop_->now(), flush_busy_until_);
    finish = start + cost;
    flush_busy_until_ = finish;
  }
  ChargeWrite(job->bytes, cost);
  loop_->ScheduleAt(finish, [this, job] {
    if (job->generation != crash_generation_) {
      return;  // the node crashed mid-write; recovery re-validates the log
    }
    switch (device_.Write(job->bytes)) {
      case StableDevice::WriteOutcome::kOk:
        MarkDurable(*job);
        CompleteWrite(job, Status::Ok());
        return;
      case StableDevice::WriteOutcome::kTransientError: {
        c_flush_transient_errors_->Increment();
        if (job->attempt >= cost_model_.flush_max_retries) {
          CompleteWrite(job, UnavailableError(
                                 "stable device: flush retries exhausted"));
          return;
        }
        ++job->attempt;
        c_flush_retries_->Increment();
        const Duration delay = flush_backoff_.Next();
        if (!job->group) {
          flush_busy_until_ = std::max(flush_busy_until_, loop_->now() + delay);
        }
        loop_->ScheduleAfter(delay, [this, job] {
          if (job->generation != crash_generation_) {
            return;
          }
          ScheduleAttempt(job);
        });
        return;
      }
      case StableDevice::WriteOutcome::kNoSpace:
        c_flush_enospc_->Increment();
        CompleteWrite(job, ResourceExhaustedError("stable device: out of space"));
        return;
      case StableDevice::WriteOutcome::kSyncFailed:
        c_flush_sync_failures_->Increment();
        CompleteWrite(job, DataLossError("stable device: sync permanently failed"));
        return;
    }
  });
}

void StableLog::MarkDurable(const WriteJob& job) {
  for (Record& rec : records_) {
    if (std::binary_search(job.ids.begin(), job.ids.end(), rec.id)) {
      rec.durable = true;
      // The write succeeded, but flash can still rot: plant latent damage
      // the CRC scan will surface at read/recovery time. MutableData() is
      // copy-on-write: rot on the device never reaches other holders of
      // the same payload bytes (in-flight messages, caches).
      if (!rec.data.empty() && device_.DrawBitRot()) {
        rec.data.MutableData()[rec.data.size() / 3] ^= 0x24;
      }
    }
  }
  g_device_used_bytes_->Set(static_cast<int64_t>(device_.used_bytes()));
  flush_backoff_.Reset();
}

void StableLog::CompleteWrite(const std::shared_ptr<WriteJob>& job,
                              const Status& status) {
  if (job->group) {
    write_in_progress_ = false;
  } else {
    for (uint64_t id : job->ids) {
      flush_in_flight_ids_.erase(id);
    }
  }
  if (!status.ok()) {
    c_flush_failures_->Increment();
    if (status.code() == StatusCode::kDataLoss && fail_stop_handler_) {
      // Permanent sync failure: hand control to the node's fail-stop policy
      // (crash + device replacement). Deduplication happens there -- the
      // handler checks whether the device is still broken.
      loop_->ScheduleAfter(Duration::Zero(), [handler = fail_stop_handler_] {
        handler();
      });
    }
  }
  for (auto& cb : job->callbacks) {
    if (cb) {
      cb(status);
    }
  }
  if (job->group && !waiting_flushes_.empty()) {
    StartGroupWrite();
  }
}

bool StableLog::FullyDurable() const {
  for (const Record& rec : records_) {
    if (!rec.durable) {
      return false;
    }
  }
  return true;
}

void StableLog::Truncate(uint64_t up_to_id) {
  while (!records_.empty() && records_.front().id <= up_to_id) {
    total_bytes_ -= records_.front().data.size();
    if (records_.front().durable) {
      device_.Release(records_.front().data.size() + kRecordFraming);
    }
    records_.pop_front();
  }
  g_device_used_bytes_->Set(static_cast<int64_t>(device_.used_bytes()));
}

bool StableLog::RemoveRecord(uint64_t id) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->id == id) {
      total_bytes_ -= it->data.size();
      if (it->durable) {
        device_.Release(it->data.size() + kRecordFraming);
      }
      records_.erase(it);
      g_device_used_bytes_->Set(static_cast<int64_t>(device_.used_bytes()));
      return true;
    }
  }
  return false;
}

std::vector<StableLog::Record> StableLog::DurableRecords() const {
  std::vector<Record> out;
  for (const Record& rec : records_) {
    if (rec.durable) {
      out.push_back(rec);
    }
  }
  return out;
}

void StableLog::SimulateCrash(bool tear_last_record) {
  // If a device write was in progress, its newest record may have partially
  // reached the platter: with tear_last_record it survives as a torn record
  // (kept, marked durable, bytes damaged) for Recover()'s CRC scan to
  // reject, instead of vanishing silently with the volatile tail.
  bool tore_in_flight = false;
  if (tear_last_record) {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (it->durable) {
        break;
      }
      const bool being_written =
          flush_in_flight_ids_.count(it->id) > 0 || write_in_progress_;
      if (being_written) {
        it->durable = true;
        if (it->data.empty()) {
          it->data = Buffer(Bytes{0xff});
          ++total_bytes_;
        } else {
          it->data.MutableData()[it->data.size() / 2] ^= 0x5a;
        }
        // The partial write occupies device space even though its Write()
        // never completed.
        device_.Charge(it->data.size() + kRecordFraming);
        tore_in_flight = true;
        break;
      }
    }
  }
  // Volatile tail is lost.
  while (!records_.empty() && !records_.back().durable) {
    total_bytes_ -= records_.back().data.size();
    records_.pop_back();
  }
  if (tear_last_record && !tore_in_flight && !records_.empty()) {
    Record& last = records_.back();
    if (last.data.empty()) {
      last.data = Buffer(Bytes{0xff});  // garbage byte; CRC of empty no longer matches
      ++total_bytes_;
    } else {
      last.data.MutableData()[last.data.size() / 2] ^= 0x5a;
    }
  }
  // Pending write completions and retries stamp the old generation and do
  // nothing when they fire; Recover() re-validates everything.
  ++crash_generation_;
  flush_busy_until_ = loop_->now();
  flush_in_flight_ids_.clear();
  write_in_progress_ = false;
  waiting_flushes_.clear();
  flush_backoff_.Reset();
}

StableLog::RecoveryReport StableLog::RecoverWithReport() {
  RecoveryReport report;
  // Gather durable records (the volatile tail died with the crash) and find
  // the last one whose CRC still checks out: failures after it form the
  // torn tail -- legitimate power-cut damage, truncated silently as a real
  // redo log would -- while failures before it are interior corruption on
  // records whose writes were acknowledged, which must be surfaced.
  std::deque<Record> durable;
  for (Record& rec : records_) {
    if (rec.durable) {
      durable.push_back(std::move(rec));
    }
  }
  std::vector<bool> valid(durable.size(), false);
  size_t last_valid = durable.size();  // i.e. "none"
  for (size_t i = 0; i < durable.size(); ++i) {
    valid[i] = Crc32(durable[i].data.data(), durable[i].data.size()) ==
               durable[i].crc;
    if (valid[i]) {
      last_valid = i;
    }
  }
  std::deque<Record> out;
  for (size_t i = 0; i < durable.size(); ++i) {
    if (valid[i]) {
      out.push_back(std::move(durable[i]));
      continue;
    }
    device_.Release(durable[i].data.size() + kRecordFraming);
    if (last_valid != durable.size() && i < last_valid) {
      report.quarantined.push_back(durable[i].id);
      c_records_quarantined_->Increment();
    } else {
      ++report.torn_tail_dropped;
      c_torn_tail_dropped_->Increment();
    }
  }
  records_ = std::move(out);
  total_bytes_ = 0;
  for (const Record& rec : records_) {
    total_bytes_ += rec.data.size();
  }
  g_device_used_bytes_->Set(static_cast<int64_t>(device_.used_bytes()));
  report.valid = records_.size();
  return report;
}

size_t StableLog::Recover() { return RecoverWithReport().valid; }

StableLog::ScrubReport StableLog::Scrub() {
  ScrubReport report;
  std::deque<Record> out;
  for (Record& rec : records_) {
    if (rec.durable) {
      ++report.scanned;
      if (Crc32(rec.data.data(), rec.data.size()) != rec.crc) {
        report.quarantined.push_back(rec.id);
        c_records_quarantined_->Increment();
        device_.Release(rec.data.size() + kRecordFraming);
        total_bytes_ -= rec.data.size();
        continue;
      }
    }
    out.push_back(std::move(rec));
  }
  records_ = std::move(out);
  g_device_used_bytes_->Set(static_cast<int64_t>(device_.used_bytes()));
  return report;
}

uint64_t StableLog::InjectBitRot(uint64_t selector) {
  std::vector<Record*> candidates;
  for (Record& rec : records_) {
    if (rec.durable && !rec.data.empty()) {
      candidates.push_back(&rec);
    }
  }
  if (candidates.empty()) {
    return 0;
  }
  // Prefer an interior record: the last durable record could be mistaken
  // for a torn tail, which is exactly the distinction under test.
  if (candidates.size() > 1) {
    candidates.pop_back();
  }
  Record* victim = candidates[selector % candidates.size()];
  // CoW mutation: rot lands on the stored record only, never on live
  // aliases of the payload elsewhere in the system.
  victim->data.MutableData()[victim->data.size() / 2] ^= 0x3c;
  return victim->id;
}

}  // namespace rover
