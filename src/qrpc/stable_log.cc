#include "src/qrpc/stable_log.h"

#include <memory>

#include <algorithm>
#include <utility>

#include "src/util/compress.h"
#include "src/util/crc32.h"

namespace rover {

StableLog::StableLog(EventLoop* loop, StableLogCostModel cost_model)
    : loop_(loop), cost_model_(cost_model) {
  WireMetrics(&own_metrics_, "stable_log");
}

void StableLog::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_appends_ = registry->counter(prefix + ".appends");
  c_flushes_ = registry->counter(prefix + ".flushes");
  c_bytes_flushed_ = registry->counter(prefix + ".bytes_flushed");
  c_flush_time_micros_ = registry->counter(prefix + ".flush_time_micros");
  c_raw_bytes_appended_ = registry->counter(prefix + ".raw_bytes_appended");
  c_stored_bytes_appended_ = registry->counter(prefix + ".stored_bytes_appended");
  c_records_compressed_ = registry->counter(prefix + ".records_compressed");
  g_compression_ratio_pct_ = registry->gauge(prefix + ".compression_ratio_pct");
  h_flush_seconds_ = registry->histogram(prefix + ".flush_seconds");
}

void StableLog::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const StableLogStats carried = stats();
  const uint64_t raw_bytes = c_raw_bytes_appended_->value();
  const uint64_t stored_bytes = c_stored_bytes_appended_->value();
  const uint64_t compressed = c_records_compressed_->value();
  const int64_t ratio = g_compression_ratio_pct_->value();
  WireMetrics(registry, prefix);
  c_appends_->Increment(carried.appends);
  c_flushes_->Increment(carried.flushes);
  c_bytes_flushed_->Increment(carried.bytes_flushed);
  c_flush_time_micros_->Increment(static_cast<uint64_t>(carried.flush_time_total.micros()));
  c_raw_bytes_appended_->Increment(raw_bytes);
  c_stored_bytes_appended_->Increment(stored_bytes);
  c_records_compressed_->Increment(compressed);
  g_compression_ratio_pct_->Set(ratio);
}

StableLogStats StableLog::stats() const {
  StableLogStats s;
  s.appends = c_appends_->value();
  s.flushes = c_flushes_->value();
  s.bytes_flushed = c_bytes_flushed_->value();
  s.flush_time_total = Duration::Micros(static_cast<int64_t>(c_flush_time_micros_->value()));
  s.raw_bytes_appended = c_raw_bytes_appended_->value();
  s.stored_bytes_appended = c_stored_bytes_appended_->value();
  s.records_compressed = c_records_compressed_->value();
  return s;
}

void StableLog::ChargeWrite(size_t bytes, Duration cost) {
  c_flushes_->Increment();
  c_bytes_flushed_->Increment(bytes);
  c_flush_time_micros_->Increment(static_cast<uint64_t>(cost.micros()));
  h_flush_seconds_->Observe(cost.seconds());
}

uint64_t StableLog::Append(Bytes data) {
  Record rec;
  rec.id = next_id_++;
  rec.raw_size = data.size();
  if (cost_model_.compress_log) {
    Bytes packed = LzCompress(data);
    if (packed.size() < data.size()) {
      rec.compressed = true;
      rec.data = std::move(packed);
      c_records_compressed_->Increment();
    }
  }
  if (!rec.compressed) {
    rec.data = std::move(data);
  }
  // The CRC covers the stored form: that is what the device holds and what
  // a torn write damages.
  rec.crc = Crc32(rec.data.data(), rec.data.size());
  rec.durable = false;
  total_bytes_ += rec.data.size();
  c_raw_bytes_appended_->Increment(rec.raw_size);
  c_stored_bytes_appended_->Increment(rec.data.size());
  if (const uint64_t raw = c_raw_bytes_appended_->value(); raw > 0) {
    g_compression_ratio_pct_->Set(
        static_cast<int64_t>(100 * c_stored_bytes_appended_->value() / raw));
  }
  records_.push_back(std::move(rec));
  c_appends_->Increment();
  return records_.back().id;
}

const StableLog::Record* StableLog::FindRecord(uint64_t id) const {
  for (const Record& rec : records_) {
    if (rec.id == id) {
      return &rec;
    }
  }
  return nullptr;
}

Result<Bytes> StableLog::RecordPayload(const Record& rec) const {
  if (!rec.compressed) {
    return rec.data;
  }
  ROVER_ASSIGN_OR_RETURN(Bytes raw, LzDecompress(rec.data));
  if (raw.size() != rec.raw_size) {
    return DataLossError("stable log: decompressed record size mismatch");
  }
  return raw;
}

void StableLog::Flush(std::function<void()> done) {
  if (cost_model_.group_commit) {
    if (done) {
      waiting_flushes_.push_back(std::move(done));
    } else {
      waiting_flushes_.push_back([] {});
    }
    if (!write_in_progress_) {
      StartGroupWrite();
    }
    return;
  }
  // Collect only records no write is covering yet: an overlapping flush
  // must not re-write (and re-charge for) bytes already on their way to
  // the device.
  size_t bytes = 0;
  std::vector<uint64_t> ids;
  for (const Record& rec : records_) {
    if (!rec.durable && flush_in_flight_ids_.count(rec.id) == 0) {
      bytes += rec.data.size() + 16;  // record framing: id + length + crc
      ids.push_back(rec.id);
    }
  }
  if (ids.empty()) {
    // Nothing new to write. Completion still waits for any in-flight
    // writes (the durability point this flush was asked to reach), or runs
    // asynchronously right away when the log is already durable.
    if (done) {
      if (flush_in_flight_ids_.empty()) {
        loop_->ScheduleAfter(Duration::Zero(), std::move(done));
      } else {
        loop_->ScheduleAt(flush_busy_until_, std::move(done));
      }
    }
    return;
  }
  const Duration cost = cost_model_.FlushCost(bytes);
  const TimePoint start = std::max(loop_->now(), flush_busy_until_);
  const TimePoint finish = start + cost;
  flush_busy_until_ = finish;
  ChargeWrite(bytes, cost);
  flush_in_flight_ids_.insert(ids.begin(), ids.end());

  loop_->ScheduleAt(finish, [this, ids = std::move(ids), done = std::move(done)] {
    for (Record& rec : records_) {
      if (std::binary_search(ids.begin(), ids.end(), rec.id)) {
        rec.durable = true;
      }
    }
    for (uint64_t id : ids) {
      flush_in_flight_ids_.erase(id);
    }
    if (done) {
      done();
    }
  });
}

void StableLog::StartGroupWrite() {
  // One device write covers every record appended so far; flush requests
  // arriving while it runs join the *next* write.
  size_t bytes = 0;
  std::vector<uint64_t> ids;
  for (const Record& rec : records_) {
    if (!rec.durable) {
      bytes += rec.data.size() + 16;
      ids.push_back(rec.id);
    }
  }
  auto callbacks = std::make_shared<std::vector<std::function<void()>>>(
      std::move(waiting_flushes_));
  waiting_flushes_.clear();
  if (ids.empty()) {
    loop_->ScheduleAfter(Duration::Zero(), [callbacks] {
      for (auto& cb : *callbacks) {
        cb();
      }
    });
    return;
  }
  write_in_progress_ = true;
  const Duration cost = cost_model_.FlushCost(bytes);
  ChargeWrite(bytes, cost);
  loop_->ScheduleAfter(cost, [this, ids = std::move(ids), callbacks] {
    for (Record& rec : records_) {
      if (std::binary_search(ids.begin(), ids.end(), rec.id)) {
        rec.durable = true;
      }
    }
    write_in_progress_ = false;
    for (auto& cb : *callbacks) {
      cb();
    }
    if (!waiting_flushes_.empty()) {
      StartGroupWrite();
    }
  });
}

bool StableLog::FullyDurable() const {
  for (const Record& rec : records_) {
    if (!rec.durable) {
      return false;
    }
  }
  return true;
}

void StableLog::Truncate(uint64_t up_to_id) {
  while (!records_.empty() && records_.front().id <= up_to_id) {
    total_bytes_ -= records_.front().data.size();
    records_.pop_front();
  }
}

bool StableLog::RemoveRecord(uint64_t id) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->id == id) {
      total_bytes_ -= it->data.size();
      records_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<StableLog::Record> StableLog::DurableRecords() const {
  std::vector<Record> out;
  for (const Record& rec : records_) {
    if (rec.durable) {
      out.push_back(rec);
    }
  }
  return out;
}

void StableLog::SimulateCrash(bool tear_last_record) {
  // If a device write was in progress, its newest record may have partially
  // reached the platter: with tear_last_record it survives as a torn record
  // (kept, marked durable, bytes damaged) for Recover()'s CRC scan to
  // reject, instead of vanishing silently with the volatile tail.
  bool tore_in_flight = false;
  if (tear_last_record) {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (it->durable) {
        break;
      }
      const bool being_written =
          flush_in_flight_ids_.count(it->id) > 0 || write_in_progress_;
      if (being_written) {
        it->durable = true;
        if (it->data.empty()) {
          it->data.push_back(0xff);
          ++total_bytes_;
        } else {
          it->data[it->data.size() / 2] ^= 0x5a;
        }
        tore_in_flight = true;
        break;
      }
    }
  }
  // Volatile tail is lost.
  while (!records_.empty() && !records_.back().durable) {
    total_bytes_ -= records_.back().data.size();
    records_.pop_back();
  }
  if (tear_last_record && !tore_in_flight && !records_.empty()) {
    Record& last = records_.back();
    if (last.data.empty()) {
      last.data.push_back(0xff);  // garbage byte; CRC of empty no longer matches
      ++total_bytes_;
    } else {
      last.data[last.data.size() / 2] ^= 0x5a;
    }
  }
  // In-flight flush completions refer to ids that may be gone; Recover()
  // re-validates everything, so stale completions are harmless.
  flush_busy_until_ = loop_->now();
  flush_in_flight_ids_.clear();
  write_in_progress_ = false;
  waiting_flushes_.clear();
}

size_t StableLog::Recover() {
  std::deque<Record> valid;
  for (Record& rec : records_) {
    if (!rec.durable) {
      continue;
    }
    if (Crc32(rec.data.data(), rec.data.size()) != rec.crc) {
      continue;  // torn write; drop
    }
    valid.push_back(std::move(rec));
  }
  records_ = std::move(valid);
  total_bytes_ = 0;
  for (const Record& rec : records_) {
    total_bytes_ += rec.data.size();
  }
  return records_.size();
}

}  // namespace rover
