// Promises (Liskov & Shrira [37], cited by the paper §3.1): import() and
// QRPC return a promise the application can poll, wait on, or attach a
// callback to. In the single-threaded simulation "waiting" means running
// the event loop until the promise resolves.

#ifndef ROVER_SRC_QRPC_PROMISE_H_
#define ROVER_SRC_QRPC_PROMISE_H_

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/sim/event_loop.h"

namespace rover {

// Shared-state promise. Copies observe the same resolution. Set() must be
// called at most once; callbacks added after resolution fire immediately.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<State>()) {}

  bool ready() const { return state_->value.has_value(); }

  const T& value() const {
    assert(ready());
    return *state_->value;
  }

  void Set(T value) {
    assert(!ready());
    state_->value = std::move(value);
    auto callbacks = std::move(state_->callbacks);
    state_->callbacks.clear();
    for (auto& cb : callbacks) {
      cb(*state_->value);
    }
  }

  // Runs `cb` when the promise resolves (immediately if already resolved).
  void OnReady(std::function<void(const T&)> cb) {
    if (ready()) {
      cb(*state_->value);
    } else {
      state_->callbacks.push_back(std::move(cb));
    }
  }

  // Drives `loop` until this promise resolves or the loop runs dry.
  // Returns true if resolved.
  bool Wait(EventLoop* loop) const {
    while (!ready()) {
      if (!loop->Step()) {
        return false;
      }
    }
    return true;
  }

  // Drives `loop` one event at a time until resolution, the deadline, or
  // an empty queue. now() is left at the resolving event's time, not
  // advanced to the deadline. Returns ready().
  bool WaitUntil(EventLoop* loop, TimePoint deadline) const {
    while (!ready()) {
      auto next = loop->NextEventTime();
      if (!next.has_value() || *next > deadline) {
        break;
      }
      loop->Step();
    }
    return ready();
  }

 private:
  struct State {
    std::optional<T> value;
    std::vector<std::function<void(const T&)>> callbacks;
  };
  std::shared_ptr<State> state_;
};

}  // namespace rover

#endif  // ROVER_SRC_QRPC_PROMISE_H_
