#include "src/qrpc/qrpc.h"

#include <utility>

#include "src/util/logging.h"

namespace rover {
namespace {

constexpr uint8_t kLogRecordRequest = 1;

}  // namespace

QrpcClient::QrpcClient(EventLoop* loop, TransportManager* transport, StableLog* log,
                       QrpcClientOptions options)
    : loop_(loop), transport_(transport), log_(log), options_(options),
      pushback_budget_(options.pushback_budget_capacity,
                       options.pushback_budget_refill_per_sec) {
  WireMetrics(&own_metrics_, "qrpc_client");
  transport_->SetHandler(MessageType::kResponse,
                         [this](const Message& msg) { HandleResponse(msg); });
  if (!options_.failover_primary.empty() && !options_.failover_backup.empty()) {
    // Failure detector: the scheduler force-opens the primary's breaker when
    // no link to it will ever come up again (or enough sends failed), which
    // is this client's cue to fail over.
    transport_->scheduler()->SetBreakerObserver(
        [this, alive = std::weak_ptr<char>(alive_)](const std::string& dest,
                                                    BreakerState state) {
          if (alive.expired() || failover_engaged_) {
            return;
          }
          if (dest == options_.failover_primary && state == BreakerState::kOpen) {
            ROVER_LOG(Info) << self() << ": breaker open on primary " << dest
                            << "; failing over to " << options_.failover_backup;
            TriggerFailover();
          }
        });
  }
}

void QrpcClient::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_calls_ = registry->counter(prefix + ".calls");
  c_completed_ = registry->counter(prefix + ".completed");
  c_recovered_ = registry->counter(prefix + ".recovered");
  c_cancelled_ = registry->counter(prefix + ".cancelled");
  c_deadline_exceeded_ = registry->counter(prefix + ".deadline_exceeded");
  c_admission_rejected_ = registry->counter(prefix + ".admission_rejected");
  c_background_shed_ = registry->counter(prefix + ".background_shed");
  c_pushback_honored_ = registry->counter(prefix + ".pushback_honored");
  c_pushback_exhausted_ = registry->counter(prefix + ".pushback_budget_exhausted");
  c_coalesced_ = registry->counter(prefix + ".coalesced");
  c_recovered_retries_ = registry->counter(prefix + ".recovered_retries");
  c_storage_flush_failures_ = registry->counter(prefix + ".storage_flush_failures");
  c_storage_refused_ = registry->counter(prefix + ".storage_refused");
  c_storage_degraded_entered_ = registry->counter(prefix + ".storage_degraded_entered");
  c_storage_quarantined_calls_ = registry->counter(prefix + ".storage_quarantined_calls");
  c_failovers_ = registry->counter(prefix + ".failovers");
  c_failover_redispatches_ = registry->counter(prefix + ".failover_redispatches");
  g_storage_degraded_ = registry->gauge(prefix + ".storage_degraded");
  g_log_bytes_ = registry->gauge(prefix + ".log_bytes");
  h_rpc_seconds_ = registry->histogram(prefix + ".rpc_seconds");
}

void QrpcClient::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const QrpcClientStats carried = stats();
  WireMetrics(registry, prefix);
  c_calls_->Increment(carried.calls);
  c_completed_->Increment(carried.completed);
  c_recovered_->Increment(carried.recovered);
  c_cancelled_->Increment(carried.cancelled);
  c_deadline_exceeded_->Increment(carried.deadline_exceeded);
  c_admission_rejected_->Increment(carried.admission_rejected);
  c_background_shed_->Increment(carried.background_shed);
  c_pushback_honored_->Increment(carried.pushback_honored);
  c_pushback_exhausted_->Increment(carried.pushback_budget_exhausted);
  c_coalesced_->Increment(carried.coalesced);
  c_recovered_retries_->Increment(carried.recovered_retries);
  c_storage_flush_failures_->Increment(carried.storage_flush_failures);
  c_storage_refused_->Increment(carried.storage_refused);
  c_storage_degraded_entered_->Increment(carried.storage_degraded_entered);
  c_storage_quarantined_calls_->Increment(carried.storage_quarantined_calls);
  c_failovers_->Increment(carried.failovers);
  c_failover_redispatches_->Increment(carried.failover_redispatches);
  g_storage_degraded_->Set(storage_degraded_ ? 1 : 0);
  if (log_ != nullptr) {
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
  }
}

QrpcClientStats QrpcClient::stats() const {
  QrpcClientStats s;
  s.calls = c_calls_->value();
  s.completed = c_completed_->value();
  s.recovered = c_recovered_->value();
  s.cancelled = c_cancelled_->value();
  s.deadline_exceeded = c_deadline_exceeded_->value();
  s.admission_rejected = c_admission_rejected_->value();
  s.background_shed = c_background_shed_->value();
  s.pushback_honored = c_pushback_honored_->value();
  s.pushback_budget_exhausted = c_pushback_exhausted_->value();
  s.coalesced = c_coalesced_->value();
  s.recovered_retries = c_recovered_retries_->value();
  s.storage_flush_failures = c_storage_flush_failures_->value();
  s.storage_refused = c_storage_refused_->value();
  s.storage_degraded_entered = c_storage_degraded_entered_->value();
  s.storage_quarantined_calls = c_storage_quarantined_calls_->value();
  s.failovers = c_failovers_->value();
  s.failover_redispatches = c_failover_redispatches_->value();
  return s;
}

const std::string& QrpcClient::ResolveDest(const std::string& dest) const {
  if (failover_engaged_ && dest == options_.failover_primary) {
    return options_.failover_backup;
  }
  return dest;
}

size_t QrpcClient::TriggerFailover() {
  if (options_.failover_primary.empty() || options_.failover_backup.empty()) {
    return 0;
  }
  const bool first = !failover_engaged_;
  failover_engaged_ = true;
  if (first) {
    c_failovers_->Increment();
  }
  // Queued (never-transmitted) messages move wholesale, preserving order.
  const std::vector<uint64_t> rebound = transport_->scheduler()->RebindDestination(
      options_.failover_primary, options_.failover_backup);
  std::set<uint64_t> rebound_set(rebound.begin(), rebound.end());
  for (uint64_t id : rebound) {
    Trace(id, obs::RpcEvent::kFailover);
  }
  // Calls already on the wire get a fresh dispatch from their retained
  // bodies: whatever the primary never answered is re-sent to the backup,
  // whose replicated duplicate cache dedupes anything already executed.
  std::vector<uint64_t> redispatch;
  for (const auto& [id, out] : outstanding_) {
    if (out.dest == options_.failover_primary && out.dispatched &&
        rebound_set.count(id) == 0 && !out.body.empty()) {
      redispatch.push_back(id);
    }
  }
  for (uint64_t id : redispatch) {
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) {
      continue;  // resolved by an earlier re-dispatch's synchronous refusal
    }
    QrpcCallOptions call_options;
    call_options.priority = it->second.priority;
    c_failover_redispatches_->Increment();
    Trace(id, obs::RpcEvent::kFailover);
    DispatchToScheduler(id, it->second.dest, it->second.body, call_options);
  }
  if (first && epoch_observer_) {
    // The logical server "restarted": volatile state (subscriptions) on the
    // dead primary is gone, and the backup answers with a fenced epoch. Fire
    // the same signal a natural epoch bump would, so the access layer
    // stale-marks and re-subscribes without waiting for the next response.
    epoch_observer_(options_.failover_primary,
                    LastSeenEpoch(options_.failover_primary) + 1);
  }
  return rebound.size() + redispatch.size();
}

uint64_t QrpcClient::LastSeenEpoch(const std::string& server) const {
  auto it = seen_server_epochs_.find(server);
  return it == seen_server_epochs_.end() ? 0 : it->second;
}

void QrpcClient::ObserveServerEpoch(const std::string& server, uint64_t epoch) {
  uint64_t& seen = seen_server_epochs_[server];
  if (seen == 0) {
    seen = epoch;  // first contact: nothing to compare against
    return;
  }
  if (epoch > seen) {
    seen = epoch;
    if (epoch_observer_) {
      epoch_observer_(server, epoch);
    }
  }
}

void QrpcClient::Trace(uint64_t rpc_id, obs::RpcEvent event) {
  if (tracer_ != nullptr) {
    tracer_->Record(rpc_id, event, loop_->now());
  }
}

Bytes QrpcClient::EncodeLogRecord(uint64_t rpc_id, const std::string& dest,
                                  const QrpcCallOptions& call_options, const Buffer& body) {
  WireWriter writer;
  writer.Reserve(32 + dest.size() + call_options.relay_host.size() + body.size());
  writer.WriteVarint(kLogRecordRequest);
  writer.WriteVarint(rpc_id);
  writer.WriteString(dest);
  writer.WriteVarint(static_cast<uint64_t>(call_options.priority));
  writer.WriteBool(call_options.via_relay);
  writer.WriteString(call_options.relay_host);
  writer.WriteVarint(body.size());
  // The one charged copy on the durable path: body bytes land in the record.
  ChargePayloadCopy(body.size());
  writer.WriteRaw(body.data(), body.size());
  return writer.TakeData();
}

Result<QrpcClient::ParsedLogRecord> QrpcClient::DecodeLogRecord(const Buffer& data) {
  WireReader reader(data.data(), data.size());
  ROVER_ASSIGN_OR_RETURN(uint64_t kind, reader.ReadVarint());
  if (kind != kLogRecordRequest) {
    return InvalidArgumentError("not a qrpc request log record");
  }
  ParsedLogRecord out;
  ROVER_ASSIGN_OR_RETURN(out.rpc_id, reader.ReadVarint());
  ROVER_ASSIGN_OR_RETURN(out.dest, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(uint64_t priority, reader.ReadVarint());
  ROVER_ASSIGN_OR_RETURN(out.call_options.via_relay, reader.ReadBool());
  ROVER_ASSIGN_OR_RETURN(out.call_options.relay_host, reader.ReadString());
  ROVER_ASSIGN_OR_RETURN(uint64_t body_len, reader.ReadVarint());
  if (body_len > reader.remaining()) {
    return DataLossError("truncated body in log record");
  }
  ROVER_ASSIGN_OR_RETURN(const uint8_t* body_ptr, reader.ReadRaw(body_len));
  // The body is a slice of the record's storage: recovery re-dispatch pays
  // no copy.
  out.body = data.Slice(static_cast<size_t>(body_ptr - data.data()), body_len);
  if (priority >= kNumPriorities) {
    return InvalidArgumentError("bad priority in log record");
  }
  out.call_options.priority = static_cast<Priority>(priority);
  return out;
}

bool QrpcClient::OverBudget(size_t record_size, bool logged) const {
  if (options_.max_outstanding_calls > 0 &&
      outstanding_.size() + 1 > options_.max_outstanding_calls) {
    return true;
  }
  if (logged && options_.max_log_bytes > 0 && log_ != nullptr &&
      log_->TotalBytes() + record_size > options_.max_log_bytes) {
    return true;
  }
  return false;
}

QrpcCall QrpcClient::Call(const std::string& dest, const std::string& method, RpcArgs args,
                          QrpcCallOptions call_options) {
  c_calls_->Increment();
  QrpcCall call;
  call.rpc_id = next_rpc_id_++;
  Trace(call.rpc_id, obs::RpcEvent::kEnqueued);
  if (check_ != nullptr) {
    check_->OnCallIssued(self(), call.rpc_id,
                         call_options.log_request && log_ != nullptr);
  }

  RpcRequestBody request;
  request.method = method;
  request.args = std::move(args);
  // One allocation for the body's whole lifetime: retained copy, queued
  // message payload, and failover re-dispatch all share it by refcount.
  Buffer body(request.Encode());

  const bool logged = call_options.log_request && log_ != nullptr;
  Bytes record;
  if (logged) {
    record = EncodeLogRecord(call.rpc_id, dest, call_options, body);
  }

  // Admission: over budget, background is refused outright; anything higher
  // sheds outstanding background calls first and is refused only if that
  // frees no room. Refusal precedes the log append, so nothing durable is
  // ever discarded -- the caller gets an explicit kResourceExhausted.
  if (OverBudget(record.size(), logged)) {
    if (call_options.priority != Priority::kBackground) {
      while (OverBudget(record.size(), logged) && ShedBackgroundCalls(1) > 0) {
      }
    }
    if (OverBudget(record.size(), logged)) {
      c_admission_rejected_->Increment();
      Trace(call.rpc_id, obs::RpcEvent::kShed);
      call.committed.Set(loop_->now());
      QrpcResult result;
      result.status = ResourceExhaustedError("qrpc admission: over call/log budget");
      result.completed_at = loop_->now();
      if (check_ != nullptr) {
        check_->OnCallResolved(self(), call.rpc_id, "admission", false);
      }
      call.result.Set(std::move(result));
      return call;
    }
  }

  // Storage admission: a durable enqueue the device cannot hold is refused
  // up front with kResourceExhausted (degraded storage mode), never accepted
  // and then failed at flush time. Recovery is automatic -- the next call
  // after truncation frees room clears the mode.
  if (logged && !log_->HasSpaceFor(record.size())) {
    EnterStorageDegraded();
    c_storage_refused_->Increment();
    Trace(call.rpc_id, obs::RpcEvent::kShed);
    call.committed.Set(loop_->now());
    QrpcResult result;
    result.status =
        ResourceExhaustedError("qrpc admission: stable device full (storage degraded)");
    result.completed_at = loop_->now();
    if (check_ != nullptr) {
      check_->OnCallResolved(self(), call.rpc_id, "admission", false);
    }
    call.result.Set(std::move(result));
    return call;
  }
  MaybeClearStorageDegraded();

  Outstanding out;
  out.call = call;
  out.dest = dest;
  out.priority = call_options.priority;
  out.issued_at = loop_->now();
  out.supersede_key = call_options.supersede_key;
  out.body = body;  // retained for failover re-dispatch

  // Coalescing happens only after this call is admitted: withdrawing the
  // predecessor first and then refusing the successor would drop a queued
  // operation, which coalescing must never do.
  if (options_.coalesce_superseded && !call_options.supersede_key.empty()) {
    TryCoalescePredecessor(dest, call_options.supersede_key, out);
  }

  const Duration marshal_cost =
      options_.marshal_fixed +
      Duration::Seconds(static_cast<double>(body.size()) / options_.marshal_bytes_per_sec);

  if (logged) {
    out.log_record_id = log_->Append(std::move(record));
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
    Trace(call.rpc_id, obs::RpcEvent::kLogged);
  }
  outstanding_.emplace(call.rpc_id, std::move(out));
  if (!call_options.supersede_key.empty()) {
    supersede_index_[{dest, call_options.supersede_key}] = call.rpc_id;
  }

  const uint64_t rpc_id = call.rpc_id;
  if (!call_options.deadline.is_zero()) {
    outstanding_[rpc_id].deadline_event = loop_->ScheduleAfter(
        call_options.deadline, [this, rpc_id, alive = std::weak_ptr<char>(alive_)] {
          if (!alive.expired()) {
            HandleDeadline(rpc_id);
          }
        });
  }
  loop_->ScheduleAfter(marshal_cost, [this, rpc_id, dest, body, call_options,
                                      alive = std::weak_ptr<char>(alive_)] {
    if (alive.expired()) {
      return;  // client torn down (simulated crash) before marshalling ran
    }
    auto it = outstanding_.find(rpc_id);
    if (it == outstanding_.end()) {
      return;  // cancelled or already handled
    }
    if (it->second.log_record_id != 0) {
      // Durability point: flush before the scheduler may transmit.
      log_->Flush([this, rpc_id, dest, body, call_options,
                   alive = std::weak_ptr<char>(alive_)](const Status& flush_status) {
        if (alive.expired()) {
          return;  // the log survives a crash; this client did not
        }
        auto it2 = outstanding_.find(rpc_id);
        if (it2 == outstanding_.end()) {
          return;
        }
        if (!flush_status.ok()) {
          if (check_ != nullptr) {
            check_->OnCallFlushFailed(self(), rpc_id);
          }
          if (!options_.unsafe_ack_despite_flush_failure_for_test) {
            HandleFlushFailure(rpc_id, flush_status);
            return;
          }
          // TEST-ONLY bug: fall through and acknowledge a record that never
          // became durable.
        }
        Trace(rpc_id, obs::RpcEvent::kFlushedDurable);
        it2->second.call.committed.Set(loop_->now());
        if (check_ != nullptr) {
          check_->OnCallDurable(self(), rpc_id, it2->second.log_record_id);
        }
        // This record is durable, so any predecessors it superseded can
        // now safely leave the log.
        ResolveCoalescedPreds(it2->second);
        DispatchToScheduler(rpc_id, dest, body, call_options);
      });
    } else {
      it->second.call.committed.Set(loop_->now());
      DispatchToScheduler(rpc_id, dest, body, call_options);
    }
  });
  return call;
}

void QrpcClient::ForgetSupersedeKey(const Outstanding& out, uint64_t rpc_id) {
  if (out.supersede_key.empty()) {
    return;
  }
  auto it = supersede_index_.find({out.dest, out.supersede_key});
  if (it != supersede_index_.end() && it->second == rpc_id) {
    supersede_index_.erase(it);
  }
}

bool QrpcClient::TryCoalescePredecessor(const std::string& dest, const std::string& key,
                                        Outstanding& successor) {
  auto idx = supersede_index_.find({dest, key});
  if (idx == supersede_index_.end()) {
    return false;
  }
  const uint64_t pred_id = idx->second;
  auto it = outstanding_.find(pred_id);
  if (it == outstanding_.end()) {
    supersede_index_.erase(idx);  // stale entry; should not happen
    return false;
  }
  // Safe to withdraw only before the request reaches the wire: either it
  // was never handed to the scheduler (pending marshal/flush callbacks
  // re-check outstanding_ and bail), or the scheduler still holds it queued
  // and agrees to cancel. A message in flight or already transmitted may
  // execute at the server, so its own response must resolve it.
  if (it->second.dispatched &&
      !transport_->scheduler()->CancelMessage(ResolveDest(dest), pred_id)) {
    return false;
  }
  Outstanding pred = std::move(it->second);
  outstanding_.erase(it);
  supersede_index_.erase(idx);
  if (pred.deadline_event != kInvalidEventId) {
    loop_->Cancel(pred.deadline_event);
  }
  // "Old log entries can be deleted when new operations supersede them"
  // (§5.2) -- but not before the successor's own record is durable: the
  // predecessor's record may already be flushed with its durability
  // acknowledged, and removing it while the successor's record is not yet
  // on disk opens a crash window where neither survives and an
  // acknowledged operation is silently lost. Stash it on the successor
  // (together with any records the predecessor itself inherited) and defer
  // to ResolveCoalescedPreds(); until then a crash conservatively resends
  // the predecessor.
  successor.coalesced_preds.reserve(successor.coalesced_preds.size() +
                                    pred.coalesced_preds.size() + 1);
  for (CoalescedPred& inherited : pred.coalesced_preds) {
    successor.coalesced_preds.push_back(std::move(inherited));
  }
  if (pred.log_record_id != 0 && log_ != nullptr) {
    if (options_.unsafe_eager_coalesce_withdraw_for_test) {
      // Deliberately wrong (see QrpcClientOptions): drop the predecessor's
      // record now, before the successor's record is durable.
      log_->RemoveRecord(pred.log_record_id);
      answered_log_records_.erase(pred.log_record_id);
      g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
      if (!pred.call.committed.ready()) {
        pred.call.committed.Set(loop_->now());
      }
    } else {
      successor.coalesced_preds.push_back({pred.log_record_id, pred.call.committed});
    }
  } else if (!pred.call.committed.ready()) {
    // Nothing durable at stake for an unlogged predecessor.
    pred.call.committed.Set(loop_->now());
  }
  c_coalesced_->Increment();
  Trace(pred_id, obs::RpcEvent::kCoalesced);
  if (check_ != nullptr) {
    check_->OnCallCoalesced(self(), pred_id, successor.call.rpc_id);
  }
  // The predecessor's promise resolves with whatever the successor
  // produces -- exactly once, and transitively if the successor is itself
  // later superseded. This chain callback is attached before the caller
  // can attach its own successor callbacks, so predecessor waiters observe
  // the result first (in issue order).
  successor.call.result.OnReady(
      [pred_result = pred.call.result](const QrpcResult& r) mutable {
        if (!pred_result.ready()) {
          pred_result.Set(r);
        }
      });
  return true;
}

void QrpcClient::ResolveCoalescedPreds(Outstanding& out) {
  if (out.coalesced_preds.empty()) {
    return;
  }
  for (CoalescedPred& pred : out.coalesced_preds) {
    if (log_ != nullptr) {
      log_->RemoveRecord(pred.log_record_id);
      answered_log_records_.erase(pred.log_record_id);
    }
    if (!pred.committed.ready()) {
      pred.committed.Set(loop_->now());
    }
  }
  out.coalesced_preds.clear();
  if (log_ != nullptr) {
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
  }
}

void QrpcClient::HandleDeadline(uint64_t rpc_id) {
  auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return;  // answered or cancelled in the same tick
  }
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  ForgetSupersedeKey(out, rpc_id);
  // Withdraw the durable record and the queued message through the same
  // machinery as Cancel(): an expired request must not be resent after a
  // crash, and must not occupy queue space waiting for connectivity.
  if (out.log_record_id != 0 && log_ != nullptr) {
    log_->RemoveRecord(out.log_record_id);
    answered_log_records_.erase(out.log_record_id);
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
    if (check_ != nullptr) {
      check_->OnCallWithdrawn(self(), rpc_id);
    }
  }
  transport_->scheduler()->CancelMessage(ResolveDest(out.dest), rpc_id);
  // Coalesced predecessors resolve with this call's deadline error and
  // must likewise not be resent after a crash.
  ResolveCoalescedPreds(out);
  c_deadline_exceeded_->Increment();
  Trace(rpc_id, obs::RpcEvent::kDeadlineExceeded);
  // Resolve both promises: a waiter on `committed` must not hang on a call
  // that exited the engine before its flush completed.
  if (!out.call.committed.ready()) {
    out.call.committed.Set(loop_->now());
  }
  QrpcResult result;
  result.status = DeadlineExceededError("rpc deadline exceeded");
  result.completed_at = loop_->now();
  if (check_ != nullptr) {
    check_->OnCallResolved(self(), rpc_id, "deadline", false);
  }
  out.call.result.Set(std::move(result));
}

size_t QrpcClient::ShedBackgroundCalls(size_t needed) {
  // Newest first: an older background call has been waiting longer and is
  // more likely to already be on the wire.
  std::vector<uint64_t> victims;
  for (auto it = outstanding_.rbegin(); it != outstanding_.rend() && victims.size() < needed;
       ++it) {
    // Crash-recovered calls carry a durable obligation with no live caller
    // to observe a refusal; they are never shed.
    if (it->second.priority == Priority::kBackground && !it->second.recovered) {
      victims.push_back(it->first);
    }
  }
  for (uint64_t rpc_id : victims) {
    HandleSchedulerDrop(rpc_id, ResourceExhaustedError("background call shed under pressure"));
  }
  return victims.size();
}

void QrpcClient::HandleSchedulerDrop(uint64_t rpc_id, const Status& status) {
  auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return;  // already answered, cancelled, or deadline-expired
  }
  if (it->second.recovered && it->second.log_record_id != 0 && log_ != nullptr) {
    // A crash-recovered request is the stable-log record of an operation
    // whose caller died with the old incarnation. Nobody observes a shed
    // status, and withdrawing the record would silently lose an
    // acknowledged-durable update -- keep it and re-dispatch once the
    // scheduler has drained.
    RetryRecoveredDispatch(rpc_id);
    return;
  }
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  ForgetSupersedeKey(out, rpc_id);
  if (out.deadline_event != kInvalidEventId) {
    loop_->Cancel(out.deadline_event);
  }
  // Withdraw the durable record: a shed request must not resurrect on crash
  // recovery, and its bytes must stop counting against the log budget.
  if (out.log_record_id != 0 && log_ != nullptr) {
    log_->RemoveRecord(out.log_record_id);
    answered_log_records_.erase(out.log_record_id);
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
    if (check_ != nullptr) {
      check_->OnCallWithdrawn(self(), rpc_id);
    }
  }
  transport_->scheduler()->CancelMessage(ResolveDest(out.dest), rpc_id);
  ResolveCoalescedPreds(out);
  c_background_shed_->Increment();
  Trace(rpc_id, obs::RpcEvent::kShed);
  if (!out.call.committed.ready()) {
    out.call.committed.Set(loop_->now());
  }
  if (!out.call.result.ready()) {
    QrpcResult result;
    result.status = status;
    result.completed_at = loop_->now();
    if (check_ != nullptr) {
      check_->OnCallResolved(self(), rpc_id, "shed", false);
    }
    out.call.result.Set(std::move(result));
  }
}

void QrpcClient::RetryRecoveredDispatch(uint64_t rpc_id) {
  c_recovered_retries_->Increment();
  loop_->ScheduleAfter(
      options_.recovered_retry_backoff,
      [this, rpc_id, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;  // crashed again: the record is still logged, the next
                   // incarnation's RecoverFromLog resends it
        }
        auto it = outstanding_.find(rpc_id);
        if (it == outstanding_.end()) {
          return;  // answered or cancelled meanwhile
        }
        const StableLog::Record* rec =
            log_ == nullptr ? nullptr : log_->FindRecord(it->second.log_record_id);
        if (rec == nullptr) {
          return;
        }
        auto payload = log_->RecordPayload(*rec);
        if (!payload.ok()) {
          // Latent corruption surfaced at read time: the record can never be
          // re-sent. Quarantine it instead of leaving the call parked on a
          // record that will fail every future read.
          FailQuarantinedRecords({it->second.log_record_id});
          return;
        }
        auto parsed = DecodeLogRecord(*payload);
        if (!parsed.ok()) {
          FailQuarantinedRecords({it->second.log_record_id});
          return;
        }
        DispatchToScheduler(rpc_id, parsed->dest, std::move(parsed->body),
                            parsed->call_options);
      });
}

void QrpcClient::EnterStorageDegraded() {
  if (storage_degraded_) {
    return;
  }
  storage_degraded_ = true;
  c_storage_degraded_entered_->Increment();
  g_storage_degraded_->Set(1);
}

void QrpcClient::MaybeClearStorageDegraded() {
  if (!storage_degraded_ || log_ == nullptr || !log_->HasSpaceFor(0)) {
    return;
  }
  storage_degraded_ = false;
  g_storage_degraded_->Set(0);
}

void QrpcClient::FailCallOnStorage(uint64_t rpc_id, const Status& status) {
  auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return;
  }
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  ForgetSupersedeKey(out, rpc_id);
  if (out.deadline_event != kInvalidEventId) {
    loop_->Cancel(out.deadline_event);
  }
  if (out.log_record_id != 0 && log_ != nullptr) {
    // The record is either non-durable (failed flush) or already quarantined
    // out of the log; RemoveRecord is a no-op in the latter case.
    log_->RemoveRecord(out.log_record_id);
    answered_log_records_.erase(out.log_record_id);
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
  }
  transport_->scheduler()->CancelMessage(ResolveDest(out.dest), rpc_id);
  // Predecessors this call coalesced resolve with its storage error, the
  // same shape as the deadline and shed exits.
  ResolveCoalescedPreds(out);
  Trace(rpc_id, obs::RpcEvent::kShed);
  if (!out.call.committed.ready()) {
    // Unblocks waiters; this is NOT a durability acknowledgement -- the
    // result carries the storage error and OnCallDurable never fired.
    out.call.committed.Set(loop_->now());
  }
  if (!out.call.result.ready()) {
    QrpcResult result;
    result.status = status;
    result.completed_at = loop_->now();
    if (check_ != nullptr) {
      check_->OnCallResolved(self(), rpc_id, "storage", false);
    }
    out.call.result.Set(std::move(result));
  }
}

void QrpcClient::HandleFlushFailure(uint64_t rpc_id, const Status& status) {
  c_storage_flush_failures_->Increment();
  if (status.code() == StatusCode::kResourceExhausted) {
    EnterStorageDegraded();
  }
  FailCallOnStorage(rpc_id, status);
}

size_t QrpcClient::FailQuarantinedRecords(const std::vector<uint64_t>& log_record_ids) {
  size_t failed = 0;
  for (uint64_t record_id : log_record_ids) {
    uint64_t rpc_id = 0;
    bool found = false;
    for (const auto& [id, out] : outstanding_) {
      if (out.log_record_id == record_id) {
        rpc_id = id;
        found = true;
        break;
      }
    }
    if (!found) {
      continue;  // no live call backed by this record (e.g. crash recovery)
    }
    c_storage_quarantined_calls_->Increment();
    FailCallOnStorage(rpc_id,
                      DataLossError("stable log record quarantined (bit rot)"));
    ++failed;
  }
  return failed;
}

void QrpcClient::DispatchToScheduler(uint64_t rpc_id, const std::string& dest, Buffer body,
                                     const QrpcCallOptions& call_options) {
  if (auto it = outstanding_.find(rpc_id); it != outstanding_.end()) {
    it->second.dispatched = true;
  }
  Message msg;
  msg.header.message_id = rpc_id;
  msg.header.type = MessageType::kRequest;
  msg.header.priority = call_options.priority;
  msg.header.dst = ResolveDest(dest);
  msg.payload = std::move(body);
  if (call_options.via_relay) {
    // Ask the server to route the response back through the same relay.
    msg.header.reply_via = call_options.relay_host;
    transport_->SendViaRelay(call_options.relay_host, std::move(msg));
  } else {
    // The scheduler may refuse or shed this message under queue pressure
    // (background priority only); the call must then resolve instead of
    // waiting forever on a request that will never be transmitted.
    transport_->Send(std::move(msg),
                     [this, rpc_id, alive = std::weak_ptr<char>(alive_)](const Status& s) {
                       if (!alive.expired() &&
                           s.code() == StatusCode::kResourceExhausted) {
                         HandleSchedulerDrop(rpc_id, s);
                       }
                     });
  }
}

bool QrpcClient::MaybeHonorPushback(const Message& msg, const RpcResponseBody& body) {
  if (body.code != StatusCode::kUnavailable || body.retry_after_micros == 0) {
    return false;
  }
  const uint64_t rpc_id = msg.header.in_reply_to;
  auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return false;
  }
  const Outstanding& out = it->second;
  if (out.log_record_id == 0 || log_ == nullptr) {
    return false;  // unlogged call: no durable copy to re-send; surface the error
  }
  if (!pushback_budget_.enabled() || !pushback_budget_.TryConsume(loop_->now())) {
    if (pushback_budget_.enabled()) {
      c_pushback_exhausted_->Increment();
    }
    return false;  // server keeps refusing; let the caller see kUnavailable
  }
  const StableLog::Record* rec = log_->FindRecord(out.log_record_id);
  if (rec == nullptr) {
    return false;
  }
  auto payload = log_->RecordPayload(*rec);
  if (!payload.ok()) {
    return false;
  }
  auto parsed = DecodeLogRecord(*payload);
  if (!parsed.ok()) {
    return false;
  }
  // The server told us when it expects to have capacity again; the hint is
  // clamped so a corrupt or hostile value cannot park the call forever.
  const Duration retry_after =
      std::min(Duration::Micros(static_cast<int64_t>(body.retry_after_micros)),
               Duration::Seconds(600));
  if (body.server_epoch > 0) {
    ObserveServerEpoch(msg.header.src, body.server_epoch);
  }
  c_pushback_honored_->Increment();
  Trace(rpc_id, obs::RpcEvent::kPushback);
  auto parsed_ptr = std::make_shared<ParsedLogRecord>(std::move(*parsed));
  loop_->ScheduleAfter(retry_after,
                       [this, parsed_ptr, alive = std::weak_ptr<char>(alive_)] {
                         if (alive.expired()) {
                           return;  // a crash-recovered client resends from its log
                         }
                         if (outstanding_.count(parsed_ptr->rpc_id) == 0) {
                           return;  // answered or cancelled meanwhile
                         }
                         DispatchToScheduler(parsed_ptr->rpc_id, parsed_ptr->dest,
                                             std::move(parsed_ptr->body),
                                             parsed_ptr->call_options);
                       });
  return true;
}

void QrpcClient::HandleResponse(const Message& msg) {
  const uint64_t rpc_id = msg.header.in_reply_to;
  auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return;  // duplicate response; at-most-once already satisfied
  }
  QrpcResult result;
  result.completed_at = loop_->now();
  auto body = RpcResponseBody::Decode(msg.payload);
  if (body.ok()) {
    if (MaybeHonorPushback(msg, *body)) {
      return;  // call stays outstanding; re-dispatch is scheduled
    }
    result.status = body->ToStatus();
    result.value = body->result;
    result.server_epoch = body->server_epoch;
  } else {
    result.status = body.status();
  }
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  ForgetSupersedeKey(out, rpc_id);
  if (out.deadline_event != kInvalidEventId) {
    loop_->Cancel(out.deadline_event);
  }
  // Observe the epoch before resolving the promise: if the server
  // restarted, cache invalidation must precede the application's reaction
  // to this response.
  if (body.ok() && body->server_epoch > 0) {
    ObserveServerEpoch(msg.header.src, body->server_epoch);
  }
  c_completed_->Increment();
  h_rpc_seconds_->Observe((result.completed_at - out.issued_at).seconds());
  Trace(rpc_id, obs::RpcEvent::kResponded);
  if (out.log_record_id != 0) {
    answered_log_records_.insert(out.log_record_id);
    MaybeTruncateLog();
  }
  // Unlogged successors have no flush point; their coalesced predecessors
  // leave the log here, once the operation has actually executed.
  ResolveCoalescedPreds(out);
  if (check_ != nullptr) {
    check_->OnCallResolved(self(), rpc_id, "response", result.status.ok());
  }
  out.call.result.Set(std::move(result));
}

void QrpcClient::MaybeTruncateLog() {
  if (log_ == nullptr) {
    return;
  }
  uint64_t front = log_->FrontRecordId();
  while (front != 0 && answered_log_records_.count(front) > 0) {
    answered_log_records_.erase(front);
    log_->Truncate(front);
    front = log_->FrontRecordId();
  }
  g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
  // Truncation returns device space: a full disk heals as responses drain.
  MaybeClearStorageDegraded();
}

bool QrpcClient::Cancel(uint64_t rpc_id) {
  auto it = outstanding_.find(rpc_id);
  if (it == outstanding_.end()) {
    return false;
  }
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  ForgetSupersedeKey(out, rpc_id);
  if (out.deadline_event != kInvalidEventId) {
    loop_->Cancel(out.deadline_event);
  }
  if (out.log_record_id != 0 && log_ != nullptr) {
    log_->RemoveRecord(out.log_record_id);
    answered_log_records_.erase(out.log_record_id);
    g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
    if (check_ != nullptr) {
      check_->OnCallWithdrawn(self(), rpc_id);
    }
  }
  transport_->scheduler()->CancelMessage(ResolveDest(out.dest), rpc_id);
  ResolveCoalescedPreds(out);
  c_cancelled_->Increment();
  Trace(rpc_id, obs::RpcEvent::kCancelled);
  if (!out.call.committed.ready()) {
    out.call.committed.Set(loop_->now());  // left the engine pre-commit
  }
  if (!out.call.result.ready()) {
    QrpcResult result;
    result.status = CancelledError("call cancelled by application");
    result.completed_at = loop_->now();
    if (check_ != nullptr) {
      check_->OnCallResolved(self(), rpc_id, "cancel", false);
    }
    out.call.result.Set(std::move(result));
  }
  return true;
}

std::vector<uint64_t> QrpcClient::OutstandingIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(outstanding_.size());
  for (const auto& [id, out] : outstanding_) {
    ids.push_back(id);
  }
  return ids;
}

size_t QrpcClient::RecoverFromLog() {
  if (log_ == nullptr) {
    return 0;
  }
  std::vector<ParsedLogRecord> resends;
  std::vector<uint64_t> resent_ids;
  for (const StableLog::Record& rec : log_->DurableRecords()) {
    auto payload = log_->RecordPayload(rec);
    if (!payload.ok()) {
      ROVER_LOG(Warning) << "qrpc recovery: skipping undecompressable log record " << rec.id;
      continue;
    }
    auto parsed = DecodeLogRecord(*payload);
    if (!parsed.ok()) {
      ROVER_LOG(Warning) << "qrpc recovery: skipping malformed log record " << rec.id;
      continue;
    }
    next_rpc_id_ = std::max(next_rpc_id_, parsed->rpc_id + 1);

    if (outstanding_.count(parsed->rpc_id) == 0) {
      QrpcCall call;
      call.rpc_id = parsed->rpc_id;
      call.committed.Set(loop_->now());  // it is already durable
      Outstanding out;
      out.call = call;
      out.dest = parsed->dest;
      out.log_record_id = rec.id;
      out.priority = parsed->call_options.priority;
      out.issued_at = loop_->now();
      out.recovered = true;
      out.body = parsed->body;  // retained for failover re-dispatch
      outstanding_.emplace(parsed->rpc_id, std::move(out));
    }
    // If the call is still tracked (same engine survived, e.g. only the
    // device "rebooted"), re-transmission is safe: the server's duplicate
    // cache guarantees at-most-once execution and the existing promise
    // resolves when any response arrives.

    resent_ids.push_back(parsed->rpc_id);
    resends.push_back(std::move(*parsed));
  }
  g_log_bytes_->Set(static_cast<int64_t>(log_->TotalBytes()));
  // Announce the full recovery set before the first re-dispatch: a dispatch
  // can fail synchronously under queue pressure, and any observer must
  // already know those ids belong to the new incarnation.
  if (check_ != nullptr) {
    check_->OnClientRecovered(self(), resent_ids);
  }
  for (ParsedLogRecord& parsed : resends) {
    Trace(parsed.rpc_id, obs::RpcEvent::kRecovered);
    DispatchToScheduler(parsed.rpc_id, parsed.dest, std::move(parsed.body),
                        parsed.call_options);
    c_recovered_->Increment();
  }
  return resends.size();
}

QrpcServer::QrpcServer(EventLoop* loop, TransportManager* transport,
                       QrpcServerOptions options)
    : loop_(loop), transport_(transport), options_(options) {
  WireMetrics(&own_metrics_, "qrpc_server");
  transport_->SetHandler(MessageType::kRequest,
                         [this](const Message& msg) { HandleRequest(msg); });
}

void QrpcServer::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_requests_ = registry->counter(prefix + ".requests");
  c_duplicates_ = registry->counter(prefix + ".duplicates");
  c_unknown_methods_ = registry->counter(prefix + ".unknown_methods");
  c_auth_failures_ = registry->counter(prefix + ".auth_failures");
  c_duplicate_cache_decode_failures_ =
      registry->counter(prefix + ".duplicate_cache_decode_failures");
  c_requests_rejected_ = registry->counter(prefix + ".requests_rejected");
  c_requests_rejected_storage_ =
      registry->counter(prefix + ".requests_rejected_storage");
  g_inflight_requests_ = registry->gauge(prefix + ".inflight_requests");
}

void QrpcServer::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const QrpcServerStats carried = stats();
  WireMetrics(registry, prefix);
  c_requests_->Increment(carried.requests);
  c_duplicates_->Increment(carried.duplicates);
  c_unknown_methods_->Increment(carried.unknown_methods);
  c_auth_failures_->Increment(carried.auth_failures);
  c_duplicate_cache_decode_failures_->Increment(carried.duplicate_cache_decode_failures);
  c_requests_rejected_->Increment(carried.requests_rejected);
  c_requests_rejected_storage_->Increment(carried.requests_rejected_storage);
  g_inflight_requests_->Set(static_cast<int64_t>(in_progress_.size()));
}

QrpcServerStats QrpcServer::stats() const {
  QrpcServerStats s;
  s.requests = c_requests_->value();
  s.duplicates = c_duplicates_->value();
  s.unknown_methods = c_unknown_methods_->value();
  s.auth_failures = c_auth_failures_->value();
  s.duplicate_cache_decode_failures = c_duplicate_cache_decode_failures_->value();
  s.requests_rejected = c_requests_rejected_->value();
  s.requests_rejected_storage = c_requests_rejected_storage_->value();
  return s;
}

bool QrpcServer::CorruptCachedResponseForTest(const std::string& client, uint64_t rpc_id) {
  auto it = done_.find(ClientRpcKeyView{client, rpc_id});
  if (it == done_.end()) {
    return false;
  }
  // In-place damage through the copy-on-write door: snapshots or journal
  // entries sharing these bytes keep the intact original.
  uint8_t* p = it->second.MutableData();
  for (size_t i = 0; i < it->second.size(); ++i) {
    p[i] = 0xff;  // undecodable garbage (0xff is not a valid status varint)
  }
  if (it->second.empty()) {
    it->second = Buffer(Bytes{0xff, 0xff, 0xff});
  }
  return true;
}

std::vector<QrpcServer::CachedResponse> QrpcServer::CachedResponses() const {
  std::vector<CachedResponse> out;
  out.reserve(done_order_.size());
  // Walk in eviction order so a restore preserves the cache's age ranking.
  for (const auto& key : done_order_) {
    auto it = done_.find(key);
    if (it != done_.end()) {
      out.push_back(CachedResponse{key.first, key.second, it->second});
    }
  }
  return out;
}

void QrpcServer::EvictDupCacheOverflow() {
  while (done_order_.size() > options_.duplicate_cache_max) {
    const auto victim = done_order_.front();
    done_.erase(victim);
    done_order_.pop_front();
    if (check_ != nullptr) {
      check_->OnServerDupCacheEvict(self(), victim.first, victim.second);
    }
  }
}

void QrpcServer::RestoreCachedResponse(std::string client, uint64_t rpc_id, Buffer response) {
  const auto key = std::make_pair(std::move(client), rpc_id);
  if (done_.emplace(key, std::move(response)).second) {
    done_order_.push_back(key);
    EvictDupCacheOverflow();
  }
}

void QrpcServer::RegisterHandler(const std::string& method, Handler handler) {
  handlers_[method] = std::move(handler);
}

void QrpcServer::SendResponse(const std::string& dst, uint64_t rpc_id, Priority priority,
                              const std::string& reply_via, RpcResponseBody body) {
  // Stamp the *current* incarnation at send time: a duplicate-cache replay
  // after a restart carries the new epoch, which is exactly the signal the
  // client needs to notice the restart.
  body.server_epoch = epoch_;
  Message msg;
  msg.header.type = MessageType::kResponse;
  msg.header.priority = priority;
  msg.header.dst = dst;
  msg.header.in_reply_to = rpc_id;
  msg.payload = body.Encode();
  if (!reply_via.empty()) {
    transport_->SendViaRelay(reply_via, std::move(msg));
  } else {
    transport_->Send(std::move(msg));
  }
}

void QrpcServer::HandleRequest(const Message& msg) {
  c_requests_->Increment();
  if (!options_.accepted_tokens.empty() &&
      options_.accepted_tokens.count(msg.header.auth) == 0) {
    c_auth_failures_->Increment();
    RpcResponseBody body;
    body.code = StatusCode::kPermissionDenied;
    body.error_message = "request not authenticated";
    SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                 msg.header.reply_via, body);
    return;
  }
  // Probe the dup-cache with a view over the header -- no std::string is
  // materialized unless this request actually starts executing.
  const ClientRpcKeyView lookup{std::string_view(msg.header.src),
                                msg.header.message_id};

  // At-most-once: a completed request is answered from the cache; an
  // in-progress one is dropped (its response is already on the way).
  auto done_it = done_.find(lookup);
  if (done_it != done_.end()) {
    c_duplicates_->Increment();
    if (undurable_responses_.count(lookup) > 0) {
      // The entry's response journal has not reported durable yet: a crash
      // could still lose the transaction this response acknowledges, so a
      // replay now would hand the client an answer the server might forget.
      // Drop the duplicate; the journal-gated original send (pending on the
      // same release) will answer, or the client resends after it.
      return;
    }
    if (check_ != nullptr) {
      // Reports the journal state as-is rather than asserting it: the gate
      // above makes this always durable, and a regression of that gate then
      // shows up as an undurable-replay violation in SimCheck.
      check_->OnServerReplay(self(), msg.header.src, msg.header.message_id,
                             /*durable=*/undurable_responses_.count(lookup) == 0);
    }
    auto decoded = RpcResponseBody::Decode(done_it->second);
    if (!decoded.ok()) {
      // The cached bytes are corrupt. Replying with a default-constructed
      // body would tell the client "OK, empty result" for a request whose
      // real outcome is unknown -- report the loss honestly instead.
      c_duplicate_cache_decode_failures_->Increment();
      RpcResponseBody body;
      body.code = StatusCode::kDataLoss;
      body.error_message = "duplicate-response cache entry corrupt";
      SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                   msg.header.reply_via, body);
      return;
    }
    SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                 msg.header.reply_via, *decoded);
    return;
  }
  if (in_progress_.count(lookup) > 0) {
    c_duplicates_->Increment();
    return;
  }

  // Admission: past the concurrency limit, refuse with kUnavailable and a
  // retry-after hint sized to the backlog. The refusal deliberately skips
  // the duplicate cache -- the client's resend must re-execute, not replay
  // "server overloaded" forever. Duplicates (above) are still answered from
  // the cache even under overload: a replay costs no handler execution.
  if (options_.max_concurrent_requests > 0 &&
      in_progress_.size() >= options_.max_concurrent_requests) {
    c_requests_rejected_->Increment();
    const Duration hint =
        options_.pushback_retry_after +
        options_.dispatch_cost * static_cast<double>(in_progress_.size());
    RpcResponseBody body;
    body.code = StatusCode::kUnavailable;
    body.error_message = "server over concurrency limit";
    body.retry_after_micros = static_cast<uint64_t>(hint.micros());
    SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                 msg.header.reply_via, body);
    return;
  }

  // Storage-degraded: the WAL device is full and compaction is reclaiming
  // space. Refuse new work the same way the concurrency limit does --
  // kUnavailable + retry-after, not cached -- rather than executing a
  // mutation whose transaction could not be made durable. Duplicates were
  // already answered above; replays cost no WAL write.
  if (storage_degraded_) {
    c_requests_rejected_->Increment();
    c_requests_rejected_storage_->Increment();
    RpcResponseBody body;
    body.code = StatusCode::kUnavailable;
    body.error_message = "server storage degraded (WAL device full)";
    body.retry_after_micros =
        static_cast<uint64_t>(options_.pushback_retry_after.micros());
    SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                 msg.header.reply_via, body);
    return;
  }

  auto request = RpcRequestBody::Decode(msg.payload);
  if (!request.ok()) {
    RpcResponseBody body;
    body.code = StatusCode::kDataLoss;
    body.error_message = "malformed request";
    SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                 msg.header.reply_via, body);
    return;
  }

  Handler* handler = nullptr;
  auto hit = handlers_.find(request->method);
  if (hit != handlers_.end()) {
    handler = &hit->second;
  } else if (default_handler_) {
    handler = &default_handler_;
  }
  if (handler == nullptr) {
    c_unknown_methods_->Increment();
    RpcResponseBody body;
    body.code = StatusCode::kUnimplemented;
    body.error_message = "no handler for method " + request->method;
    SendResponse(msg.header.src, msg.header.message_id, msg.header.priority,
                 msg.header.reply_via, body);
    return;
  }

  // The request executes: now build the owning key that outlives the header.
  const ClientRpcKey key = std::make_pair(msg.header.src, msg.header.message_id);
  in_progress_.insert(key);
  g_inflight_requests_->Set(static_cast<int64_t>(in_progress_.size()));
  const std::string src = msg.header.src;
  const uint64_t rpc_id = msg.header.message_id;
  const Priority priority = msg.header.priority;
  const std::string reply_via = msg.header.reply_via;
  Responder respond = [this, key, src, rpc_id, priority, reply_via,
                       alive = std::weak_ptr<char>(alive_)](RpcResponseBody body) {
    if (alive.expired()) {
      return;  // handler outlived the server (simulated crash)
    }
    in_progress_.erase(key);
    g_inflight_requests_->Set(static_cast<int64_t>(in_progress_.size()));
    // Cached/journaled without an epoch stamp. One allocation: the cache
    // entry and the journal's copy share it by refcount.
    Buffer encoded(body.Encode());
    done_[key] = encoded;
    done_order_.push_back(key);
    EvictDupCacheOverflow();
    if (response_journal_) {
      // Write-ahead: the response leaves only after the journal reports the
      // entry durable. A crash in between means the client never saw an
      // answer and safely resends. Until then the cached entry must not be
      // replayed to duplicates either -- see undurable_responses_.
      undurable_responses_.insert(key);
      auto body_ptr = std::make_shared<RpcResponseBody>(std::move(body));
      response_journal_(
          src, rpc_id, encoded,
          [this, key, src, rpc_id, priority, reply_via, body_ptr,
           alive2 = std::weak_ptr<char>(alive_)] {
            if (!alive2.expired()) {
              undurable_responses_.erase(key);
              if (check_ != nullptr) {
                check_->OnServerResponseDurable(self(), src, rpc_id);
              }
              SendResponse(src, rpc_id, priority, reply_via, std::move(*body_ptr));
            }
          });
    } else {
      SendResponse(src, rpc_id, priority, reply_via, std::move(body));
    }
  };

  // Model dispatch CPU cost, then run the handler. While the handler body
  // executes, current_request() names the request so synchronous store
  // mutations can be attributed to it (transactional journaling).
  auto request_ptr = std::make_shared<RpcRequestBody>(std::move(*request));
  auto envelope_ptr = std::make_shared<Message>(msg);
  loop_->ScheduleAfter(
      options_.dispatch_cost,
      [this, key, handler = *handler, request_ptr, envelope_ptr, respond,
       alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;  // server torn down before dispatch
        }
        if (check_ != nullptr) {
          check_->OnServerExecute(self(), key.first, key.second);
        }
        current_request_ = key;
        has_current_request_ = true;
        handler(*request_ptr, *envelope_ptr, respond);
        has_current_request_ = false;
      });
}

}  // namespace rover
