// RPC argument marshalling. QRPC calls name a method on a destination and
// carry a list of typed values; RDO method invocations marshal their
// arguments the same way, so shipped code and shipped calls share one wire
// format.

#ifndef ROVER_SRC_QRPC_MARSHAL_H_
#define ROVER_SRC_QRPC_MARSHAL_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace rover {

using RpcValue = std::variant<int64_t, double, std::string, Bytes>;
using RpcArgs = std::vector<RpcValue>;

void EncodeRpcValue(const RpcValue& value, WireWriter* writer);
Result<RpcValue> DecodeRpcValue(WireReader* reader);

void EncodeRpcArgs(const RpcArgs& args, WireWriter* writer);
Result<RpcArgs> DecodeRpcArgs(WireReader* reader);

// Request payload: method name + args.
struct RpcRequestBody {
  std::string method;
  RpcArgs args;

  Bytes Encode() const;
  static Result<RpcRequestBody> Decode(const Bytes& payload);
  // Decodes straight out of a payload view (no copy of the input bytes).
  static Result<RpcRequestBody> Decode(const Buffer& payload);
};

// Response payload: a status and a result value, stamped with the
// responding server's incarnation. A client that sees the epoch grow knows
// the server restarted since its last exchange and that volatile
// server-side state (subscriptions) is gone.
struct RpcResponseBody {
  StatusCode code = StatusCode::kOk;
  std::string error_message;
  RpcValue result = int64_t{0};
  uint64_t server_epoch = 0;  // 0 = unstamped (responder predates epochs)
  // Overload pushback hint: with code kUnavailable, the earliest the client
  // should resend, in microseconds from the response's arrival. 0 = none.
  uint64_t retry_after_micros = 0;

  Status ToStatus() const;

  Bytes Encode() const;
  static Result<RpcResponseBody> Decode(const Bytes& payload);
  static Result<RpcResponseBody> Decode(const Buffer& payload);
};

// Convenience accessors with type checking.
Result<int64_t> RpcValueAsInt(const RpcValue& value);
Result<double> RpcValueAsDouble(const RpcValue& value);
Result<std::string> RpcValueAsString(const RpcValue& value);
Result<Bytes> RpcValueAsBytes(const RpcValue& value);

}  // namespace rover

#endif  // ROVER_SRC_QRPC_MARSHAL_H_
