#include "src/qrpc/stable_device.h"

#include <algorithm>

namespace rover {

StableDevice::StableDevice(DiskFaultOptions options)
    : options_(options),
      rng_(options.seed ^ 0x5d3ab1ed0d0e51ceULL),
      capacity_bytes_(options.capacity_bytes) {}

bool StableDevice::HasSpaceFor(size_t bytes) const {
  if (capacity_bytes_ == 0) {
    return true;
  }
  return used_bytes_ + bytes <= capacity_bytes_;
}

StableDevice::WriteOutcome StableDevice::Write(size_t bytes) {
  if (sync_failed_) {
    ++stats_.sync_failures;
    return WriteOutcome::kSyncFailed;
  }
  ++writes_attempted_;
  if (options_.fail_sync_after_writes > 0 &&
      writes_attempted_ >= options_.fail_sync_after_writes) {
    sync_failed_ = true;
    ++stats_.sync_failures;
    return WriteOutcome::kSyncFailed;
  }
  if (forced_transient_errors_ > 0) {
    --forced_transient_errors_;
    ++stats_.transient_errors;
    return WriteOutcome::kTransientError;
  }
  if (options_.transient_write_error_prob > 0 &&
      rng_.NextBool(options_.transient_write_error_prob)) {
    ++stats_.transient_errors;
    return WriteOutcome::kTransientError;
  }
  if (!HasSpaceFor(bytes)) {
    ++stats_.no_space_errors;
    return WriteOutcome::kNoSpace;
  }
  used_bytes_ += bytes;
  ++stats_.writes_ok;
  return WriteOutcome::kOk;
}

void StableDevice::Release(size_t bytes) {
  used_bytes_ -= std::min(used_bytes_, bytes);
}

void StableDevice::Charge(size_t bytes) { used_bytes_ += bytes; }

bool StableDevice::DrawBitRot() {
  if (options_.bitrot_prob <= 0) {
    return false;
  }
  if (rng_.NextBool(options_.bitrot_prob)) {
    ++stats_.bitrot_injected;
    return true;
  }
  return false;
}

void StableDevice::InjectTransientWriteErrors(size_t n) {
  forced_transient_errors_ += n;
}

void StableDevice::SetCapacityBytes(size_t bytes) { capacity_bytes_ = bytes; }

void StableDevice::ClampCapacityToUsed(size_t slack) {
  capacity_bytes_ = used_bytes_ + slack;
}

void StableDevice::FailSyncPermanently() { sync_failed_ = true; }

void StableDevice::Repair() {
  sync_failed_ = false;
  forced_transient_errors_ = 0;
  writes_attempted_ = 0;
  options_.transient_write_error_prob = 0;
  options_.bitrot_prob = 0;
  options_.fail_sync_after_writes = 0;
  ++stats_.repairs;
}

}  // namespace rover
