// Queued RPC (paper §3.2, §5.2). The client engine makes *non-blocking*
// calls: the request is marshalled, appended to the stable log, flushed
// (the durability point -- "committed"), and handed to the network
// scheduler, which delivers it whenever connectivity permits. The caller
// receives two promises: one for the local commit, one for the eventual
// result. The server engine dispatches requests to registered handlers and
// guarantees at-most-once execution with a duplicate-response cache keyed
// by (client, rpc id), so client crash-recovery resends are safe.

#ifndef ROVER_SRC_QRPC_QRPC_H_
#define ROVER_SRC_QRPC_QRPC_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/check_hooks.h"
#include "src/obs/metrics.h"
#include "src/obs/rpc_trace.h"
#include "src/qrpc/marshal.h"
#include "src/qrpc/promise.h"
#include "src/qrpc/stable_log.h"
#include "src/transport/transport.h"

namespace rover {

struct QrpcResult {
  Status status;
  RpcValue value = int64_t{0};
  TimePoint completed_at;
  // Incarnation of the server that produced the response (0 when the
  // response carried no epoch, e.g. a transport-level failure).
  uint64_t server_epoch = 0;
};

struct QrpcCallOptions {
  Priority priority = Priority::kDefault;
  bool via_relay = false;        // connectionless (SMTP) path
  std::string relay_host;
  bool log_request = true;       // false = unlogged call (E2 baseline)
  // Non-zero: if no response arrived within this duration of Call(), the
  // result promise resolves with kDeadlineExceeded, the durable log record
  // is withdrawn, and the queued message is cancelled (best-effort: a
  // request already on the wire may still execute at the server; its late
  // response is ignored). Zero = wait forever, the queued-RPC default.
  Duration deadline = Duration::Zero();
  // Non-empty: this call supersedes any earlier pending call to the same
  // dest with the same key that has not reached the wire ("old log entries
  // can be deleted when new operations supersede them", paper §5.2). The
  // predecessor is withdrawn from the scheduler queue and the stable log,
  // and its result promise resolves with this call's result. Callers mark
  // an operation supersedable only when the newer operation subsumes the
  // older one (e.g. a fresh import of the same object, a full-state write).
  std::string supersede_key;
};

struct QrpcClientOptions {
  // CPU cost of marshalling: fixed + per-byte.
  Duration marshal_fixed = Duration::Micros(30);
  double marshal_bytes_per_sec = 80e6;
  // Admission control (0 = unbounded). When either bound would be exceeded,
  // outstanding kBackground calls are shed first (their result promise
  // resolves kResourceExhausted, their log record is withdrawn); if the
  // call still does not fit it is rejected at Call() with
  // kResourceExhausted -- an explicit refusal, never a silent drop, and
  // nothing durable is discarded because rejection precedes logging.
  size_t max_outstanding_calls = 0;
  size_t max_log_bytes = 0;
  // Budget for honoring server kUnavailable+retry-after pushback by keeping
  // the call queued and re-sending after the hint. Once the bucket empties,
  // further pushback responses surface to the caller as errors instead of
  // retrying forever against a server that keeps refusing (capacity 0
  // disables honoring entirely).
  double pushback_budget_capacity = 32;
  double pushback_budget_refill_per_sec = 4;
  // Honor QrpcCallOptions::supersede_key by withdrawing not-yet-transmitted
  // predecessors (off = every queued call is transmitted; the delta bench
  // uses that as its baseline).
  bool coalesce_superseded = true;
  // How long to wait before re-dispatching a crash-recovered request the
  // network scheduler refused under queue pressure. Recovered requests are
  // exempt from shedding -- their caller died with the old incarnation, so
  // nobody would observe the refusal, and withdrawing the record would
  // silently lose an acknowledged-durable operation.
  Duration recovered_retry_backoff = Duration::Millis(250);
  // TEST-ONLY. Re-introduces the pre-fix coalescing behavior: a superseded
  // predecessor's stable-log record is removed the moment it is coalesced,
  // instead of waiting for the successor's own record to be durable. A
  // crash between the two then loses an acknowledged operation. Exists so
  // the SimCheck fuzzer can demonstrate it catches this bug class
  // (tests/simcheck_test.cc meta-test); never enable outside tests.
  bool unsafe_eager_coalesce_withdraw_for_test = false;
  // TEST-ONLY. Delivers the durability acknowledgement (committed promise +
  // OnCallDurable + dispatch) even when the stable-log flush terminally
  // failed -- the ack-after-failed-flush bug class the SimCheck
  // no-ack-without-durable invariant exists to catch. Never enable outside
  // tests (tests/storage_fault_test.cc meta-test).
  bool unsafe_ack_despite_flush_failure_for_test = false;
  // Primary/backup failover route. When both are set, `failover_primary` is
  // a *logical* destination: after TriggerFailover() engages (explicitly, or
  // via the scheduler's breaker opening on the primary), every message bound
  // for the primary -- queued, in-flight resends, and all future calls -- is
  // physically routed to `failover_backup` instead. Callers keep addressing
  // the primary by name; the backup's duplicate cache (fed by replication)
  // keeps re-routed resends at-most-once.
  std::string failover_primary;
  std::string failover_backup;
};

// Snapshot assembled from the metrics registry (see stats()).
struct QrpcClientStats {
  uint64_t calls = 0;
  uint64_t completed = 0;
  uint64_t recovered = 0;  // re-sent after crash recovery
  uint64_t cancelled = 0;  // cancelled by the application
  uint64_t deadline_exceeded = 0;  // per-call deadline fired first
  uint64_t admission_rejected = 0;  // refused at Call() by the budgets
  uint64_t background_shed = 0;     // outstanding background calls shed
  uint64_t pushback_honored = 0;    // re-dispatched after server retry-after
  uint64_t pushback_budget_exhausted = 0;  // pushback surfaced as an error
  uint64_t coalesced = 0;  // withdrawn pre-wire, answered by a successor
  uint64_t recovered_retries = 0;  // recovered calls re-queued after refusal
  uint64_t storage_flush_failures = 0;  // calls failed by a failed flush
  uint64_t storage_refused = 0;  // logged calls refused: device full
  uint64_t storage_degraded_entered = 0;  // times storage-degraded mode began
  uint64_t storage_quarantined_calls = 0;  // calls failed by record quarantine
  uint64_t failovers = 0;  // times the primary->backup route engaged
  uint64_t failover_redispatches = 0;  // in-flight calls re-sent to the backup
};

// Handle returned by Call(). Both promises resolve on the event loop.
struct QrpcCall {
  uint64_t rpc_id = 0;
  // Resolves when the request is durable in the stable log and queued with
  // the network scheduler; its value is the commit time. For unlogged
  // calls, resolves after marshalling.
  Promise<TimePoint> committed;
  // Resolves when the response arrives (possibly much later).
  Promise<QrpcResult> result;
};

class QrpcClient {
 public:
  QrpcClient(EventLoop* loop, TransportManager* transport, StableLog* log,
             QrpcClientOptions options = {});

  // Issues a non-blocking call of `method` at host `dest`.
  QrpcCall Call(const std::string& dest, const std::string& method, RpcArgs args,
                QrpcCallOptions call_options = {});

  // Calls awaiting a response.
  size_t PendingCount() const { return outstanding_.size(); }

  // Number of request records still in the stable log.
  size_t LogDepth() const { return log_->RecordCount(); }

  // Cancels a pending call: removes it from the log and (if still queued)
  // from the network scheduler, and resolves its result promise with
  // CANCELLED. Best-effort: a request already transmitted may still
  // execute at the server; its response is then ignored.
  bool Cancel(uint64_t rpc_id);

  // Re-issues every durable logged request that has no response yet.
  // Used after StableLog::SimulateCrash + Recover to model client restart.
  // Returns the number of requests re-sent.
  size_t RecoverFromLog();

  // True while new durable enqueues are being refused because the stable
  // device ran out of space. Cleared automatically once truncation frees
  // room (see MaybeClearStorageDegraded). The access manager surfaces this
  // next to its own degraded-queue signal.
  bool StorageDegraded() const { return storage_degraded_; }

  // A scrub quarantined these stable-log records while the client was live:
  // resolve any outstanding call backed by one of them with kDataLoss
  // ("storage" path) instead of leaving it waiting on a record that no
  // longer exists. Returns how many calls were failed.
  size_t FailQuarantinedRecords(const std::vector<uint64_t>& log_record_ids);

  // Re-homes the client's instruments into `registry` under "<prefix>."
  // names, carrying current values over.
  void BindMetrics(obs::Registry* registry, const std::string& prefix = "qrpc_client");

  // Records the per-RPC lifecycle span (enqueued/logged/flushed/responded;
  // the network scheduler contributes transmitted events).
  void SetTracer(obs::RpcTracer* tracer) { tracer_ = tracer; }

  // Reports call lifecycle events (issue/durable/coalesce/resolve/recover)
  // to an external invariant checker. Null disables (the default).
  void SetCheckListener(obs::CheckListener* listener) { check_ = listener; }

  // Rpc ids of every call awaiting a response.
  std::vector<uint64_t> OutstandingIds() const;

  // Snapshot adapter over the registry counters (kept for existing callers).
  QrpcClientStats stats() const;

  // The rpc-id counter is part of the client's durable identity: a host
  // that restarts under the same name MUST resume past its previously
  // issued ids, or the server's at-most-once duplicate cache will answer
  // new calls with stale cached responses. Persist next_rpc_id alongside
  // the stable log / cache snapshot and restore it on boot.
  uint64_t next_rpc_id() const { return next_rpc_id_; }
  void set_next_rpc_id(uint64_t id) { next_rpc_id_ = std::max(next_rpc_id_, id); }

  // Engages the primary->backup failover route (no-op unless both
  // QrpcClientOptions::failover_primary and failover_backup are set):
  //  1. queued messages addressed to the primary move wholesale onto the
  //     backup's scheduler queue, preserving priority and order;
  //  2. calls already handed to the wire are re-dispatched to the backup
  //     from their retained request bodies (the backup's replicated
  //     duplicate cache dedupes any that the primary already executed);
  //  3. on first engagement the epoch observer fires for the primary, so
  //     the access layer treats the failover as a restart of the logical
  //     server (stale-marks imports, re-subscribes -- now via the backup).
  // All later traffic addressed to the primary is transparently re-routed.
  // Idempotent; safe to call with nothing outstanding (e.g. to re-engage
  // the route on a rebuilt client before RecoverFromLog re-sends). Invoked
  // automatically when the scheduler's circuit breaker on the primary
  // opens. Returns how many messages were rebound or re-dispatched.
  size_t TriggerFailover();
  bool failover_engaged() const { return failover_engaged_; }

  // Fired when a response reveals a server incarnation newer than the last
  // one this client observed -- the server restarted, so its volatile state
  // (subscriptions) is gone. The access manager re-subscribes and marks
  // that server's cached imports stale. The first epoch seen from a server
  // is recorded silently.
  using EpochObserver = std::function<void(const std::string& server, uint64_t epoch)>;
  void SetEpochObserver(EpochObserver observer) { epoch_observer_ = std::move(observer); }
  // Last epoch observed from `server` (0 if none yet).
  uint64_t LastSeenEpoch(const std::string& server) const;

 private:
  // A predecessor withdrawn by coalescing whose stable-log record -- and
  // committed ack, if still pending -- must survive until the successor is
  // itself durable (see ResolveCoalescedPreds()).
  struct CoalescedPred {
    uint64_t log_record_id = 0;
    Promise<TimePoint> committed;
  };
  struct Outstanding {
    QrpcCall call;
    uint64_t log_record_id = 0;  // 0 when unlogged
    std::string dest;
    Priority priority = Priority::kDefault;
    TimePoint issued_at;
    EventId deadline_event = kInvalidEventId;
    // Handed to the network scheduler: from here on withdrawal requires a
    // successful CancelMessage (queued, not yet on the wire).
    bool dispatched = false;
    // Re-issued from the stable log by RecoverFromLog after a crash. The
    // original caller is gone; this entry exists only to discharge the
    // durable obligation, so it must never be shed (see HandleSchedulerDrop).
    bool recovered = false;
    std::string supersede_key;  // empty = not supersedable
    // Marshalled request body, retained so failover can re-dispatch an
    // in-flight call to the backup without a log read (unlogged calls have
    // no other copy). Shares storage with the queued message's payload --
    // retention costs a refcount, not a copy.
    Buffer body;
    // Logged predecessors this call coalesced away. Their records stay in
    // the log -- a crash before this call's own record is durable
    // conservatively resends them -- and are withdrawn only once this
    // call's record is flushed (or, for unlogged calls, once this call
    // resolves).
    std::vector<CoalescedPred> coalesced_preds;
  };
  struct ParsedLogRecord {
    uint64_t rpc_id = 0;
    std::string dest;
    QrpcCallOptions call_options;
    Buffer body;  // slice of the log record's storage (no copy on recovery)
  };

  void DispatchToScheduler(uint64_t rpc_id, const std::string& dest, Buffer body,
                           const QrpcCallOptions& call_options);
  void HandleResponse(const Message& msg);
  void HandleDeadline(uint64_t rpc_id);
  // Handles a kUnavailable response carrying a retry-after hint: keeps the
  // call outstanding and re-dispatches it after the hint, within the
  // pushback budget. Returns true when the response was absorbed.
  bool MaybeHonorPushback(const Message& msg, const RpcResponseBody& body);
  // The scheduler shed/refused this call's request message: resolve the
  // call with `status` and withdraw its log record.
  void HandleSchedulerDrop(uint64_t rpc_id, const Status& status);
  // Sheds outstanding kBackground calls (newest first) until `needed` have
  // been shed or none remain. Returns how many were shed.
  size_t ShedBackgroundCalls(size_t needed);
  // Withdraws a pending same-(dest, key) predecessor that has not reached
  // the wire, chains its result promise to `successor`'s, and stashes its
  // stable-log record on `successor` for deferred withdrawal. Returns true
  // when a predecessor was coalesced away.
  bool TryCoalescePredecessor(const std::string& dest, const std::string& key,
                              Outstanding& successor);
  // Withdraws the log records of predecessors coalesced into `out` and
  // resolves their committed promises. Called once `out`'s own record is
  // durably flushed, or on any path that finishes `out` (response,
  // deadline, shed, cancel): removing an acknowledged predecessor's record
  // any earlier would let a crash lose the operation entirely.
  void ResolveCoalescedPreds(Outstanding& out);
  // Schedules a fresh dispatch of a crash-recovered request after the
  // scheduler refused it; the stable-log record stays in place meanwhile.
  void RetryRecoveredDispatch(uint64_t rpc_id);
  // Drops the supersede-index entry if it still points at `rpc_id`.
  void ForgetSupersedeKey(const Outstanding& out, uint64_t rpc_id);
  // The call's stable-log flush terminally failed with `status`: never
  // acknowledge, withdraw the (non-durable) record, fail the call through
  // the "storage" path, and enter storage-degraded mode on ENOSPC.
  void HandleFlushFailure(uint64_t rpc_id, const Status& status);
  // Shared teardown: resolves `rpc_id` with `status` via the "storage" path
  // and withdraws its record/queue entry.
  void FailCallOnStorage(uint64_t rpc_id, const Status& status);
  void EnterStorageDegraded();
  void MaybeClearStorageDegraded();
  bool OverBudget(size_t body_size, bool logged) const;
  void ObserveServerEpoch(const std::string& server, uint64_t epoch);
  // Physical destination for `dest`: the backup when the failover route has
  // engaged and `dest` is the (logical) primary, otherwise `dest` itself.
  const std::string& ResolveDest(const std::string& dest) const;
  void MaybeTruncateLog();
  void WireMetrics(obs::Registry* registry, const std::string& prefix);
  void Trace(uint64_t rpc_id, obs::RpcEvent event);
  const std::string& self() const { return transport_->local_host(); }

  static Bytes EncodeLogRecord(uint64_t rpc_id, const std::string& dest,
                               const QrpcCallOptions& call_options, const Buffer& body);
  static Result<ParsedLogRecord> DecodeLogRecord(const Buffer& data);

  EventLoop* loop_;
  TransportManager* transport_;
  StableLog* log_;
  QrpcClientOptions options_;
  RetryBudget pushback_budget_;
  uint64_t next_rpc_id_ = 1;
  std::map<uint64_t, Outstanding> outstanding_;
  // Log record ids whose rpc has completed; truncated once contiguous with
  // the log head.
  std::set<uint64_t> answered_log_records_;
  // (dest, supersede key) -> newest pending rpc with that key. Volatile:
  // calls recovered from the log after a crash are not coalesced.
  std::map<std::pair<std::string, std::string>, uint64_t> supersede_index_;
  // Newest epoch observed per server host; drives the epoch observer.
  std::map<std::string, uint64_t> seen_server_epochs_;
  EpochObserver epoch_observer_;
  // True once TriggerFailover() has engaged the primary->backup route; the
  // flag never clears (fail-back is a deliberate non-goal -- the fenced
  // primary must not silently resume serving).
  bool failover_engaged_ = false;
  // Deferred loop callbacks (marshal, flush completion, deadlines) capture
  // a weak_ptr to this token and bail out once it is gone, so a client
  // destroyed by a simulated crash never has freed state touched by events
  // already in the loop.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::RpcTracer* tracer_ = nullptr;
  obs::CheckListener* check_ = nullptr;
  obs::Counter* c_calls_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_recovered_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_deadline_exceeded_ = nullptr;
  obs::Counter* c_admission_rejected_ = nullptr;
  obs::Counter* c_background_shed_ = nullptr;
  obs::Counter* c_pushback_honored_ = nullptr;
  obs::Counter* c_pushback_exhausted_ = nullptr;
  obs::Counter* c_coalesced_ = nullptr;
  obs::Counter* c_recovered_retries_ = nullptr;
  obs::Counter* c_storage_flush_failures_ = nullptr;
  obs::Counter* c_storage_refused_ = nullptr;
  obs::Counter* c_storage_degraded_entered_ = nullptr;
  obs::Counter* c_storage_quarantined_calls_ = nullptr;
  obs::Counter* c_failovers_ = nullptr;
  obs::Counter* c_failover_redispatches_ = nullptr;
  obs::Gauge* g_storage_degraded_ = nullptr;
  bool storage_degraded_ = false;
  obs::Gauge* g_log_bytes_ = nullptr;  // stable-log byte budget occupancy
  obs::Histogram* h_rpc_seconds_ = nullptr;  // Call() -> response matched
};

struct QrpcServerOptions {
  size_t duplicate_cache_max = 4096;
  // When non-empty, requests must carry one of these tokens in their
  // message header; others are refused with PERMISSION_DENIED.
  std::set<std::string> accepted_tokens;
  // Simulated CPU cost to dispatch + execute a handler (base; handlers may
  // add their own costs by delaying the responder).
  Duration dispatch_cost = Duration::Micros(50);
  // Admission limit on concurrently executing requests (0 = unbounded).
  // Requests over the limit are refused with kUnavailable plus a
  // retry-after hint that grows with the backlog; refusals are NOT entered
  // into the duplicate cache, so the client's later resend re-executes.
  size_t max_concurrent_requests = 0;
  // Base of the retry-after hint; the backlog adds dispatch_cost per
  // in-progress request on top.
  Duration pushback_retry_after = Duration::Millis(500);
};

// Snapshot assembled from the metrics registry (see stats()).
struct QrpcServerStats {
  uint64_t requests = 0;
  uint64_t duplicates = 0;
  uint64_t unknown_methods = 0;
  uint64_t auth_failures = 0;
  // Cached duplicate responses that failed to decode; answered kDataLoss
  // instead of silently replying OK with an empty body.
  uint64_t duplicate_cache_decode_failures = 0;
  uint64_t requests_rejected = 0;  // refused with kUnavailable + retry-after
  uint64_t requests_rejected_storage = 0;  // refused while WAL space recovers
};

class QrpcServer {
 public:
  // Handlers respond through the Responder, immediately or later.
  using Responder = std::function<void(RpcResponseBody)>;
  using Handler =
      std::function<void(const RpcRequestBody& request, const Message& envelope,
                         Responder respond)>;

  QrpcServer(EventLoop* loop, TransportManager* transport, QrpcServerOptions options = {});

  void RegisterHandler(const std::string& method, Handler handler);
  // Invoked for methods with no registered handler (else kUnimplemented).
  void SetDefaultHandler(Handler handler) { default_handler_ = std::move(handler); }

  // Server incarnation stamped on every response (including duplicate-cache
  // replays). Recovery bumps it; clients use the jump to detect a restart.
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }

  // Write-ahead hook for the duplicate-response cache. When set, every
  // handler response is journaled *before* its wire send: the journal
  // receives the cached bytes plus a `release` closure and must invoke it
  // once the entry (and any state the request mutated) is durable. If the
  // server dies first, the response is never sent, the client resends, and
  // recovery replays neither the mutation nor the response -- the two stay
  // atomic. Error replies produced outside handlers (auth, unknown method,
  // malformed request) are not journaled, matching the cache itself.
  using ResponseJournal =
      std::function<void(const std::string& client, uint64_t rpc_id,
                         const Buffer& encoded_response, std::function<void()> release)>;
  void SetResponseJournal(ResponseJournal journal) { response_journal_ = std::move(journal); }

  // Duplicate-cache persistence: snapshot for compaction, restore on
  // recovery (restored entries re-enter the bounded eviction order).
  struct CachedResponse {
    std::string client;
    uint64_t rpc_id = 0;
    Buffer response;  // shares storage with the cache entry
  };
  std::vector<CachedResponse> CachedResponses() const;
  void RestoreCachedResponse(std::string client, uint64_t rpc_id, Buffer response);

  // Identity of the request whose handler is executing right now, or
  // nullptr outside handler dispatch. Lets store-level journaling attribute
  // synchronous mutations to the request that caused them.
  const std::pair<std::string, uint64_t>* current_request() const {
    return has_current_request_ ? &current_request_ : nullptr;
  }

  // Reports execute/replay/durability/eviction events to an external
  // invariant checker. Null disables (the default).
  void SetCheckListener(obs::CheckListener* listener) { check_ = listener; }

  // Re-homes the server's instruments into `registry` under "<prefix>."
  // names, carrying current values over.
  void BindMetrics(obs::Registry* registry, const std::string& prefix = "qrpc_server");

  // Snapshot adapter over the registry counters (kept for existing callers).
  QrpcServerStats stats() const;

  // Damages the cached response for (client, rpc_id) in place, as stable-
  // storage corruption would. Returns false when no entry exists. Test-only.
  bool CorruptCachedResponseForTest(const std::string& client, uint64_t rpc_id);

  // Storage-degraded mode: the WAL device is full and compaction is trying
  // to reclaim space. While set, new (non-duplicate) requests are refused
  // with kUnavailable + retry-after -- the same pushback shape as the
  // concurrency limit, so clients keep the call queued and resend -- rather
  // than executing a mutation the server could not make durable. The store
  // layer toggles this around WAL space recovery.
  void SetStorageDegraded(bool degraded) { storage_degraded_ = degraded; }
  bool storage_degraded() const { return storage_degraded_; }

 private:
  // Dup-cache key: (client host, rpc id). The transparent comparator lets
  // the per-request lookups probe with a string_view over the message
  // header instead of materializing a std::string first (the owning key is
  // built only when an entry is actually inserted).
  using ClientRpcKey = std::pair<std::string, uint64_t>;
  using ClientRpcKeyView = std::pair<std::string_view, uint64_t>;
  struct ClientRpcKeyLess {
    using is_transparent = void;
    static ClientRpcKeyView View(const ClientRpcKey& k) {
      return {std::string_view(k.first), k.second};
    }
    static ClientRpcKeyView View(const ClientRpcKeyView& k) { return k; }
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return View(a) < View(b);
    }
  };

  void HandleRequest(const Message& msg);
  void SendResponse(const std::string& dst, uint64_t rpc_id, Priority priority,
                    const std::string& reply_via, RpcResponseBody body);
  void WireMetrics(obs::Registry* registry, const std::string& prefix);
  void EvictDupCacheOverflow();
  const std::string& self() const { return transport_->local_host(); }

  EventLoop* loop_;
  TransportManager* transport_;
  QrpcServerOptions options_;
  uint64_t epoch_ = 1;
  ResponseJournal response_journal_;
  std::pair<std::string, uint64_t> current_request_;
  bool has_current_request_ = false;
  // Deferred dispatch events and handler-held responders capture a
  // weak_ptr to this token so a server destroyed by a simulated crash
  // cannot be touched by callbacks that outlive it.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::CheckListener* check_ = nullptr;
  obs::Counter* c_requests_ = nullptr;
  obs::Counter* c_duplicates_ = nullptr;
  obs::Counter* c_unknown_methods_ = nullptr;
  obs::Counter* c_auth_failures_ = nullptr;
  obs::Counter* c_duplicate_cache_decode_failures_ = nullptr;
  obs::Counter* c_requests_rejected_ = nullptr;
  obs::Counter* c_requests_rejected_storage_ = nullptr;
  obs::Gauge* g_inflight_requests_ = nullptr;
  bool storage_degraded_ = false;
  std::map<std::string, Handler> handlers_;
  Handler default_handler_;
  // (client host, rpc id) -> cached response for at-most-once execution.
  // Buffer values: caching, journaling, replication shipping, and the
  // replay send all share one allocation of the encoded response.
  std::map<ClientRpcKey, Buffer, ClientRpcKeyLess> done_;
  std::deque<ClientRpcKey> done_order_;
  std::set<ClientRpcKey, ClientRpcKeyLess> in_progress_;
  // Keys in done_ whose response-journal write has not yet been reported
  // durable. A duplicate request for such a key is dropped, not replayed:
  // the cached response acknowledges a transaction a crash could still
  // lose, and the journal-gated original send answers the client anyway
  // once the entry is durable. Entries leave via the journal release; a
  // crash discards the whole set with the rest of process state.
  std::set<ClientRpcKey, ClientRpcKeyLess> undurable_responses_;
};

}  // namespace rover

#endif  // ROVER_SRC_QRPC_QRPC_H_
