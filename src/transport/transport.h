// TransportManager: one per host. Owns the host's network scheduler for
// outbound traffic and decodes inbound frames (including decompression)
// into Messages dispatched to a registered handler. Also provides the
// connectionless path: SendViaRelay wraps a message in an SMTP-style
// envelope addressed to a relay host, which stores and forwards it (see
// smtp.h). The paper's prototype used real SMTP for exactly this purpose:
// queued communication that survives simultaneous disconnection of both
// endpoints.

#ifndef ROVER_SRC_TRANSPORT_TRANSPORT_H_
#define ROVER_SRC_TRANSPORT_TRANSPORT_H_

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "src/obs/metrics.h"
#include "src/sim/network.h"
#include "src/transport/message.h"
#include "src/transport/scheduler.h"

namespace rover {

class TransportManager {
 public:
  using MessageHandler = std::function<void(const Message&)>;

  TransportManager(EventLoop* loop, Host* host, SchedulerOptions options = {});
  // Unhooks this transport from the host so a frame or link attachment in
  // the window before a replacement transport registers (crash restart)
  // cannot reach freed state.
  ~TransportManager();

  const std::string& local_host() const { return host_->name(); }
  Host* host() const { return host_; }
  NetworkScheduler* scheduler() { return &scheduler_; }

  // Sends `msg` directly (connection-based path). Fills in header.src.
  // A non-zero `ttl` bounds the queue wait (see NetworkScheduler::Enqueue).
  void Send(Message msg, NetworkScheduler::DeliveredCallback delivered = nullptr,
            Duration ttl = Duration::Zero());

  // Sends `msg` through `relay_host` (connectionless, SMTP-like path).
  // `delivered` fires when the envelope reaches the relay -- the SMTP
  // "accepted for delivery" semantics, not end-to-end receipt.
  void SendViaRelay(const std::string& relay_host, Message msg,
                    NetworkScheduler::DeliveredCallback delivered = nullptr);

  // Registers the upcall for one inbound message type. A QrpcServer claims
  // kRequest, a QrpcClient claims kResponse/kAck, an SmtpRelay claims
  // kControl; all can share one host.
  void SetHandler(MessageType type, MessageHandler handler);

  uint64_t AllocateMessageId() { return next_message_id_++; }

  // Credential stamped on every outbound message (paper §5.1: the Rover
  // server "authenticates requests from client applications").
  void set_auth_token(std::string token) { auth_token_ = std::move(token); }
  const std::string& auth_token() const { return auth_token_; }

  // Builds the SMTP envelope payload (exposed for tests). Decode slices the
  // inner payload out of `payload`'s storage without copying.
  static Bytes EncodeEnvelope(const Message& inner);
  static Result<Message> DecodeEnvelope(const Buffer& payload);

  // Re-homes the transport's instruments into `registry` under "<prefix>."
  // names, carrying current values over.
  void BindMetrics(obs::Registry* registry, const std::string& prefix = "transport");

  // Inbound frames dropped at the decode boundary (bit-corrupted on the
  // wire). Corruption never propagates past this point: no partial message
  // reaches a handler.
  uint64_t frames_corrupt_dropped() const { return c_frames_corrupt_dropped_->value(); }
  // Individual messages dropped because their compressed payload failed to
  // decompress (the rest of the frame's batch still dispatches).
  uint64_t messages_undecodable() const { return c_messages_undecodable_->value(); }

 private:
  void HandleFrame(Bytes frame, const std::string& from);
  void WireMetrics(obs::Registry* registry, const std::string& prefix);

  EventLoop* loop_;
  Host* host_;
  NetworkScheduler scheduler_;
  std::array<MessageHandler, 4> handlers_;
  uint64_t next_message_id_ = 1;
  std::string auth_token_;
  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::Counter* c_frames_corrupt_dropped_ = nullptr;
  obs::Counter* c_messages_undecodable_ = nullptr;
};

}  // namespace rover

#endif  // ROVER_SRC_TRANSPORT_TRANSPORT_H_
