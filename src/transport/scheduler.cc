#include "src/transport/scheduler.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/obs/cpu_scope.h"
#include "src/util/compress.h"
#include "src/util/logging.h"

namespace rover {

NetworkScheduler::NetworkScheduler(EventLoop* loop, Host* host, SchedulerOptions options)
    : loop_(loop), host_(host), options_(options),
      retry_budget_(options.retry_budget_capacity, options.retry_budget_refill_per_sec) {
  WireMetrics(&own_metrics_, "scheduler");
}

NetworkScheduler::~NetworkScheduler() {
  // The alive_ token already neutralizes queued observer fires, but
  // deregistering keeps a long-lived host's observer lists from
  // accumulating dead entries across transport rebuilds.
  host_->RemovePeerObservers(this);
}

NetworkScheduler::DestId NetworkScheduler::InternDest(const std::string& dest) {
  auto [it, inserted] = dest_ids_.try_emplace(dest, static_cast<DestId>(dests_.size()));
  if (inserted) {
    dests_.emplace_back();
    DestQueue& q = dests_.back();
    q.name = dest;
    // Per-destination seed: decorrelates this queue's jitter from other
    // destinations (and, via the options seed, from other hosts).
    uint64_t seed = options_.backoff_seed;
    for (char c : dest) {
      seed = seed * 1099511628211ull + static_cast<unsigned char>(c);
    }
    q.backoff = std::make_unique<DecorrelatedJitterBackoff>(
        options_.loss_retry_backoff, options_.loss_retry_backoff_max, seed);
    q.breaker = CircuitBreaker(options_.breaker);
  }
  return it->second;
}

const NetworkScheduler::DestQueue* NetworkScheduler::FindDest(
    const std::string& dest) const {
  auto it = dest_ids_.find(dest);
  return it == dest_ids_.end() ? nullptr : &dests_[it->second];
}

NetworkScheduler::DestQueue* NetworkScheduler::FindDest(const std::string& dest) {
  auto it = dest_ids_.find(dest);
  return it == dest_ids_.end() ? nullptr : &dests_[it->second];
}

BreakerState NetworkScheduler::BreakerStateFor(const std::string& dest) const {
  const DestQueue* q = FindDest(dest);
  return q == nullptr ? BreakerState::kClosed : q->breaker.state();
}

void NetworkScheduler::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_messages_enqueued_ = registry->counter(prefix + ".messages_enqueued");
  c_messages_delivered_ = registry->counter(prefix + ".messages_delivered");
  c_messages_expired_ = registry->counter(prefix + ".messages_expired");
  c_frames_sent_ = registry->counter(prefix + ".frames_sent");
  c_retries_ = registry->counter(prefix + ".retries");
  c_bytes_sent_ = registry->counter(prefix + ".bytes_sent");
  c_payload_bytes_original_ = registry->counter(prefix + ".payload_bytes_original");
  c_payload_bytes_sent_ = registry->counter(prefix + ".payload_bytes_sent");
  c_payload_bytes_cancelled_ = registry->counter(prefix + ".payload_bytes_cancelled");
  c_messages_shed_ = registry->counter(prefix + ".messages_shed");
  c_enqueue_rejected_ = registry->counter(prefix + ".enqueue_rejected");
  c_retry_budget_waits_ = registry->counter(prefix + ".retry_budget_waits");
  c_breaker_opened_ = registry->counter(prefix + ".breaker_open_transitions");
  g_queue_depth_ = registry->gauge(prefix + ".queue_depth");
  g_queued_bytes_ = registry->gauge(prefix + ".queued_payload_bytes");
  g_breakers_open_ = registry->gauge(prefix + ".breakers_open");
}

void NetworkScheduler::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const SchedulerStats carried = stats();
  WireMetrics(registry, prefix);
  c_messages_enqueued_->Increment(carried.messages_enqueued);
  c_messages_delivered_->Increment(carried.messages_delivered);
  c_messages_expired_->Increment(carried.messages_expired);
  c_frames_sent_->Increment(carried.frames_sent);
  c_retries_->Increment(carried.retries);
  c_bytes_sent_->Increment(carried.bytes_sent);
  c_payload_bytes_original_->Increment(carried.payload_bytes_original);
  c_payload_bytes_sent_->Increment(carried.payload_bytes_sent);
  c_payload_bytes_cancelled_->Increment(carried.payload_bytes_cancelled);
  c_messages_shed_->Increment(carried.messages_shed);
  c_enqueue_rejected_->Increment(carried.enqueue_rejected);
  c_retry_budget_waits_->Increment(carried.retry_budget_waits);
  c_breaker_opened_->Increment(carried.breaker_open_transitions);
  g_queue_depth_->Set(static_cast<int64_t>(total_queued_));
  g_queued_bytes_->Set(static_cast<int64_t>(queued_payload_bytes_));
  g_breakers_open_->Set(open_breakers_);
}

SchedulerStats NetworkScheduler::stats() const {
  SchedulerStats s;
  s.messages_enqueued = c_messages_enqueued_->value();
  s.messages_delivered = c_messages_delivered_->value();
  s.messages_expired = c_messages_expired_->value();
  s.frames_sent = c_frames_sent_->value();
  s.retries = c_retries_->value();
  s.bytes_sent = c_bytes_sent_->value();
  s.payload_bytes_original = c_payload_bytes_original_->value();
  s.payload_bytes_sent = c_payload_bytes_sent_->value();
  s.payload_bytes_cancelled = c_payload_bytes_cancelled_->value();
  s.messages_shed = c_messages_shed_->value();
  s.enqueue_rejected = c_enqueue_rejected_->value();
  s.retry_budget_waits = c_retry_budget_waits_->value();
  s.breaker_open_transitions = c_breaker_opened_->value();
  return s;
}

void NetworkScheduler::NoteLiveAdded(DestId id, int prio, size_t payload_bytes) {
  DestQueue& q = dests_[id];
  if (q.queued_count++ == 0) {
    nonempty_dests_.insert(id);
  }
  q.queued_bytes += payload_bytes;
  if (prio == static_cast<int>(Priority::kBackground) && q.background_count++ == 0) {
    background_dests_.insert(id);
  }
  ++total_queued_;
  queued_payload_bytes_ += payload_bytes;
}

void NetworkScheduler::NoteLiveRemoved(DestId id, int prio, size_t payload_bytes) {
  DestQueue& q = dests_[id];
  if (--q.queued_count == 0) {
    nonempty_dests_.erase(id);
  }
  q.queued_bytes -= payload_bytes;
  if (prio == static_cast<int>(Priority::kBackground) && --q.background_count == 0) {
    background_dests_.erase(id);
  }
  --total_queued_;
  queued_payload_bytes_ -= payload_bytes;
}

void NetworkScheduler::Tombstone(DestId id, int prio, Pending* p, const Status& why) {
  DestQueue& q = dests_[id];
  NoteLiveRemoved(id, prio, p->msg.payload.size());
  auto it = q.index.find(p->msg.header.message_id);
  if (it != q.index.end() && it->second == p) {
    q.index.erase(it);
  }
  p->cancelled = true;
  p->msg.payload = Buffer();  // release the payload storage now, not at trim
  DeliveredCallback cb = std::move(p->delivered);
  p->delivered = nullptr;
  if (cb) {
    cb(why);
  }
}

void NetworkScheduler::TrimTombstones(DestQueue& q) {
  for (auto& pq : q.by_priority) {
    while (!pq.empty() && pq.front().cancelled) {
      pq.pop_front();
    }
    while (!pq.empty() && pq.back().cancelled) {
      pq.pop_back();
    }
  }
}

void NetworkScheduler::Enqueue(Message msg, DeliveredCallback delivered, Duration ttl) {
  obs::CpuScope cpu(obs::CpuZone::kSchedulerDispatch);
  c_payload_bytes_original_->Increment(msg.payload.size());

  // Compress once, at enqueue time, so retries do not repeat the work.
  // Delivered-byte accounting happens in HandleBatchOutcome: counting here
  // would credit cancelled and still-queued messages as "sent".
  if (options_.compress && !msg.header.compressed &&
      msg.payload.size() >= options_.compress_min_bytes) {
    Bytes packed = LzCompress(msg.payload.data(), msg.payload.size());
    if (packed.size() < msg.payload.size()) {
      msg.payload = std::move(packed);
      msg.header.compressed = true;
    }
  }

  const int prio = static_cast<int>(msg.header.priority);
  const size_t payload_size = msg.payload.size();

  // Admission: when either bound is hit, background traffic is rejected
  // outright and queued background is shed to admit higher priorities --
  // which are then always accepted (the QRPC layer bounds them upstream,
  // and refusing them here would strand durable application ops).
  const bool over_depth = options_.max_queued_messages > 0 &&
                          total_queued_ + 1 > options_.max_queued_messages;
  const bool over_bytes = options_.max_queued_bytes > 0 &&
                          queued_payload_bytes_ + payload_size > options_.max_queued_bytes;
  if (over_depth || over_bytes) {
    if (msg.header.priority == Priority::kBackground) {
      c_enqueue_rejected_->Increment();
      c_payload_bytes_cancelled_->Increment(payload_size);
      if (delivered) {
        delivered(ResourceExhaustedError("scheduler queue budget exceeded"));
      }
      return;
    }
    ShedBackground(payload_size);
  }

  c_messages_enqueued_->Increment();
  const DestId id = InternDest(msg.header.dst);
  const uint64_t message_id = msg.header.message_id;
  Pending pending{std::move(msg), std::move(delivered)};
  if (!ttl.is_zero()) {
    pending.expires_at = loop_->now() + ttl;
    // A purge event at the deadline covers the queue-asleep case (a dest
    // that never connects drains nothing, so SendBatch never looks at it).
    // O(1) at fire time: the index finds exactly this message.
    loop_->ScheduleAt(pending.expires_at,
                      [this, id, message_id, alive = std::weak_ptr<char>(alive_)] {
                        if (!alive.expired()) {
                          ExpireMessage(id, message_id);
                        }
                      });
  }
  DestQueue& q = dests_[id];
  q.by_priority[prio].push_back(std::move(pending));
  q.index.try_emplace(message_id, &q.by_priority[prio].back());
  NoteLiveAdded(id, prio, payload_size);
  NotifyObserver();
  TryDrain(id);
}

size_t NetworkScheduler::ShedBackground(size_t incoming_bytes) {
  auto fits = [&] {
    const bool depth_ok = options_.max_queued_messages == 0 ||
                          total_queued_ + 1 <= options_.max_queued_messages;
    const bool bytes_ok =
        options_.max_queued_bytes == 0 ||
        queued_payload_bytes_ + incoming_bytes <= options_.max_queued_bytes;
    return depth_ok && bytes_ok;
  };
  // Collect victims first, fire their callbacks after: a delivered callback
  // may re-enter the scheduler (e.g. resolve a promise whose continuation
  // issues a new call), which must not happen mid-iteration. Only
  // destinations with live background traffic are visited.
  std::vector<Pending> victims;
  const std::vector<DestId> candidates(background_dests_.begin(), background_dests_.end());
  for (DestId id : candidates) {
    DestQueue& q = dests_[id];
    auto& bq = q.by_priority[static_cast<int>(Priority::kBackground)];
    // Newest first: the oldest queued background message has waited longest
    // and is closest to going out. Shedding from the back also reclaims any
    // tombstones in passing instead of creating mid-queue ones.
    while (!bq.empty() && !fits()) {
      Pending& victim = bq.back();
      if (victim.cancelled) {
        bq.pop_back();
        continue;
      }
      NoteLiveRemoved(id, static_cast<int>(Priority::kBackground),
                      victim.msg.payload.size());
      auto it = q.index.find(victim.msg.header.message_id);
      if (it != q.index.end() && it->second == &victim) {
        q.index.erase(it);
      }
      victims.push_back(std::move(victim));
      bq.pop_back();
    }
    if (fits()) {
      break;
    }
  }
  for (Pending& v : victims) {
    c_messages_shed_->Increment();
    c_payload_bytes_cancelled_->Increment(v.msg.payload.size());
    if (v.delivered) {
      v.delivered(ResourceExhaustedError("shed under queue pressure"));
    }
  }
  if (!victims.empty()) {
    NotifyObserver();
  }
  return victims.size();
}

void NetworkScheduler::ExpireMessage(DestId id, uint64_t message_id) {
  DestQueue& q = dests_[id];
  auto it = q.index.find(message_id);
  if (it == q.index.end()) {
    return;  // delivered, cancelled, in flight, or rebound meanwhile
  }
  Pending* p = it->second;
  if (p->expires_at > loop_->now()) {
    return;  // a different message reusing the id (fresh TTL)
  }
  const int prio = static_cast<int>(p->msg.header.priority);
  c_messages_expired_->Increment();
  c_payload_bytes_cancelled_->Increment(p->msg.payload.size());
  Tombstone(id, prio, p, DeadlineExceededError("message ttl expired in queue"));
  TrimTombstones(q);
  NotifyObserver();
}

bool NetworkScheduler::CancelMessage(const std::string& dest, uint64_t message_id) {
  auto dit = dest_ids_.find(dest);
  if (dit == dest_ids_.end()) {
    return false;
  }
  const DestId id = dit->second;
  DestQueue& q = dests_[id];
  auto it = q.index.find(message_id);
  if (it == q.index.end()) {
    return false;  // unknown or already in flight
  }
  Pending* p = it->second;
  const int prio = static_cast<int>(p->msg.header.priority);
  c_payload_bytes_cancelled_->Increment(p->msg.payload.size());
  Tombstone(id, prio, p, CancelledError("cancelled before transmission"));
  TrimTombstones(q);
  NotifyObserver();
  return true;
}

std::vector<uint64_t> NetworkScheduler::RebindDestination(const std::string& from,
                                                          const std::string& to) {
  std::vector<uint64_t> moved;
  auto it = dest_ids_.find(from);
  if (it == dest_ids_.end() || from == to) {
    return moved;
  }
  const DestId src_id = it->second;
  const DestId dst_id = InternDest(to);  // may grow dests_; deque keeps refs valid
  DestQueue& src = dests_[src_id];
  DestQueue& dst = dests_[dst_id];
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    auto& spq = src.by_priority[prio];
    auto& dpq = dst.by_priority[prio];
    while (!spq.empty()) {
      Pending p = std::move(spq.front());
      spq.pop_front();
      if (p.cancelled) {
        continue;  // tombstone: already counted out, nothing to move
      }
      const uint64_t message_id = p.msg.header.message_id;
      const size_t bytes = p.msg.payload.size();
      auto sit = src.index.find(message_id);
      if (sit != src.index.end()) {
        src.index.erase(sit);
      }
      p.msg.header.dst = to;
      moved.push_back(message_id);
      NoteLiveRemoved(src_id, prio, bytes);
      dpq.push_back(std::move(p));
      dst.index.try_emplace(message_id, &dpq.back());
      NoteLiveAdded(dst_id, prio, bytes);
    }
  }
  if (!moved.empty()) {
    NotifyObserver();
    TryDrain(dst_id);
  }
  return moved;
}

size_t NetworkScheduler::QueueDepthFor(const std::string& dest) const {
  const DestQueue* q = FindDest(dest);
  return q == nullptr ? 0 : q->queued_count;
}

SchedulerQueueAudit NetworkScheduler::AuditQueues() const {
  SchedulerQueueAudit audit;
  for (const DestQueue& q : dests_) {
    size_t live = 0;
    size_t bytes = 0;
    size_t background = 0;
    std::unordered_set<const Pending*> live_entries;
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      for (const Pending& p : q.by_priority[prio]) {
        if (p.cancelled) {
          continue;
        }
        ++live;
        bytes += p.msg.payload.size();
        if (prio == static_cast<int>(Priority::kBackground)) {
          ++background;
        }
        live_entries.insert(&p);
      }
    }
    if (live != q.queued_count || bytes != q.queued_bytes ||
        background != q.background_count) {
      audit.per_dest_consistent = false;
    }
    // Every index entry must point at a live entry of this destination with
    // the matching id (a dangling or mis-keyed pointer is a structural bug).
    for (const auto& [message_id, p] : q.index) {
      if (live_entries.count(p) == 0 || p->msg.header.message_id != message_id) {
        audit.per_dest_consistent = false;
      }
    }
    audit.messages += live;
    audit.payload_bytes += bytes;
  }
  if (audit.messages != total_queued_ || audit.payload_bytes != queued_payload_bytes_) {
    audit.per_dest_consistent = false;
  }
  return audit;
}

Link* NetworkScheduler::PickLink(const std::string& dest) const {
  obs::CpuScope cpu(obs::CpuZone::kConnectivity);
  Link* best = nullptr;
  for (Link* link : host_->LinksTo(dest)) {
    if (!link->IsUp()) {
      continue;
    }
    if (best == nullptr || link->profile().bandwidth_bps > best->profile().bandwidth_bps) {
      best = link;
    }
  }
  return best;
}

void NetworkScheduler::TryDrain(DestId id) {
  obs::CpuScope cpu(obs::CpuZone::kSchedulerDispatch);
  DestQueue& q = dests_[id];
  if (q.in_flight || q.empty()) {
    return;
  }
  Link* link = PickLink(q.name);
  if (link == nullptr) {
    if (!ArmUpWakeup(id)) {
      NoteDestUnreachable(id);
    }
    return;
  }
  const TimePoint now = loop_->now();
  const BreakerState before_attempt = q.breaker.state();
  const bool attempt_allowed = q.breaker.AllowAttempt(now);
  NoteBreakerChange(q.name, before_attempt, q.breaker.state());
  if (!attempt_allowed) {
    // Open circuit: park until the cooldown passes, then probe.
    if (!q.breaker_wait_armed) {
      q.breaker_wait_armed = true;
      const TimePoint at =
          std::max(q.breaker.open_until(), now + options_.loss_retry_backoff);
      loop_->ScheduleAt(at, [this, id, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;
        }
        dests_[id].breaker_wait_armed = false;
        TryDrain(id);
      });
    }
    return;
  }
  SendBatch(id, link);
}

void NetworkScheduler::SendBatch(DestId id, Link* link) {
  DestQueue& q = dests_[id];
  const size_t max_msgs = options_.batching ? options_.max_batch_messages : 1;
  const size_t max_bytes = options_.batching ? options_.max_batch_bytes : SIZE_MAX;
  const TimePoint now = loop_->now();

  std::vector<Pending> batch;
  size_t bytes = 0;
  bool dropped_expired = false;
  // Frames carry a single priority class: mixing background traffic into a
  // frame with (or ahead of) foreground traffic would extend the frame's
  // airtime and delay the interactive response behind it. Background
  // frames additionally carry one message each, bounding the priority
  // inversion a just-started background transfer can inflict to a single
  // message's serialization time.
  for (int prio = 0; prio < kNumPriorities && batch.empty(); ++prio) {
    auto& pq = q.by_priority[prio];
    const size_t prio_max =
        prio == static_cast<int>(Priority::kBackground) ? 1 : max_msgs;
    while (!pq.empty() && batch.size() < prio_max) {
      Pending& front = pq.front();
      if (front.cancelled) {
        pq.pop_front();  // reclaim a tombstone that reached the head
        continue;
      }
      if (front.expires_at <= now) {
        // TTL lapsed while queued; drop here rather than transmit. Pop the
        // entry out BEFORE firing its callback -- the callback may re-enter
        // the scheduler and must not find a half-dead slot at the head.
        c_messages_expired_->Increment();
        c_payload_bytes_cancelled_->Increment(front.msg.payload.size());
        NoteLiveRemoved(id, prio, front.msg.payload.size());
        auto eit = q.index.find(front.msg.header.message_id);
        if (eit != q.index.end() && eit->second == &front) {
          q.index.erase(eit);
        }
        Pending dead = std::move(front);
        pq.pop_front();
        dropped_expired = true;
        if (dead.delivered) {
          dead.delivered(DeadlineExceededError("message ttl expired in queue"));
        }
        continue;
      }
      const size_t sz = front.msg.EncodedSize();
      if (!batch.empty() && bytes + sz > max_bytes) {
        break;
      }
      bytes += sz;
      NoteLiveRemoved(id, prio, front.msg.payload.size());
      // In-flight messages are not cancellable: drop the index entry.
      auto iit = q.index.find(front.msg.header.message_id);
      if (iit != q.index.end() && iit->second == &front) {
        q.index.erase(iit);
      }
      batch.push_back(std::move(front));
      pq.pop_front();
    }
  }
  if (dropped_expired) {
    NotifyObserver();
  }
  if (batch.empty()) {
    return;
  }
  std::vector<const Message*> wire;
  wire.reserve(batch.size());
  for (const Pending& p : batch) {
    wire.push_back(&p.msg);
    if (tracer_ != nullptr && p.msg.header.type == MessageType::kRequest) {
      tracer_->Record(p.msg.header.message_id, obs::RpcEvent::kTransmitted, loop_->now());
    }
  }
  Bytes frame = EncodeFrame(wire);
  q.in_flight = true;
  c_frames_sent_->Increment();
  c_bytes_sent_->Increment(frame.size());

  // `batch` is moved into the completion lambda; shared_ptr keeps the
  // lambda copyable for std::function.
  auto batch_ptr = std::make_shared<std::vector<Pending>>(std::move(batch));
  link->SendFrame(host_->name(), std::move(frame),
                  [this, id, batch_ptr, alive = std::weak_ptr<char>(alive_)](
                      const Status& status) {
                    if (alive.expired()) {
                      return;  // scheduler torn down while the frame flew
                    }
                    HandleBatchOutcome(id, std::move(*batch_ptr), status);
                  });
}

void NetworkScheduler::HandleBatchOutcome(DestId id, std::vector<Pending> batch,
                                          const Status& status) {
  obs::CpuScope cpu(obs::CpuZone::kSchedulerDispatch);
  DestQueue& q = dests_[id];
  q.in_flight = false;

  if (status.ok()) {
    q.consecutive_losses = 0;
    q.backoff->Reset();
    const BreakerState before = q.breaker.state();
    q.breaker.RecordSuccess();
    NoteBreakerChange(q.name, before, q.breaker.state());
    c_messages_delivered_->Increment(batch.size());
    for (Pending& p : batch) {
      // Payload accounting at the delivery point: only bytes a link carried
      // end-to-end count as sent.
      c_payload_bytes_sent_->Increment(p.msg.payload.size());
      if (p.delivered) {
        p.delivered(Status::Ok());
      }
    }
    NotifyObserver();
    TryDrain(id);
    return;
  }

  // Failure: requeue at the front of each message's priority queue,
  // preserving the original order, and restore their index entries.
  c_retries_->Increment();
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    const int prio = static_cast<int>(it->msg.header.priority);
    const size_t bytes = it->msg.payload.size();
    const uint64_t message_id = it->msg.header.message_id;
    auto& pq = q.by_priority[prio];
    pq.push_front(std::move(*it));
    q.index.try_emplace(message_id, &pq.front());
    NoteLiveAdded(id, prio, bytes);
  }
  NotifyObserver();

  if (status.code() == StatusCode::kUnavailable) {
    // Link down: says nothing about the peer, so it neither counts against
    // the circuit breaker nor spends retry-budget tokens. If the failed
    // frame was a half-open probe, allow a fresh probe after reconnection.
    const BreakerState before = q.breaker.state();
    q.breaker.AbortProbe();
    NoteBreakerChange(q.name, before, q.breaker.state());
    if (!ArmUpWakeup(id)) {
      NoteDestUnreachable(id);
    }
  } else {
    // Random loss: decorrelated-jitter backoff (drawn from [base,
    // 3 * previous], capped), gated by the shared retry budget and counted
    // against the destination's circuit breaker.
    const TimePoint now = loop_->now();
    ++q.consecutive_losses;
    const BreakerState before = q.breaker.state();
    q.breaker.RecordFailure(now);
    NoteBreakerChange(q.name, before, q.breaker.state());
    if (q.breaker.state() == BreakerState::kOpen && before != BreakerState::kOpen) {
      c_breaker_opened_->Increment();
      NotifyObserver();
    }
    TimePoint fire_at = now + q.backoff->Next();
    if (retry_budget_.enabled()) {
      const TimePoint token_at = retry_budget_.Reserve(now);
      if (token_at == TimePoint::FromMicros(INT64_MAX)) {
        // Budget can never refill; delivery is still reliable, so fall back
        // to pacing at the maximum backoff instead of never retrying.
        c_retry_budget_waits_->Increment();
        fire_at = std::max(fire_at, now + options_.loss_retry_backoff_max);
      } else if (token_at > fire_at) {
        c_retry_budget_waits_->Increment();
        fire_at = token_at;
      }
    }
    loop_->ScheduleAt(fire_at, [this, id, alive = std::weak_ptr<char>(alive_)] {
      if (!alive.expired()) {
        TryDrain(id);
      }
    });
  }
}

bool NetworkScheduler::ArmUpWakeup(DestId id) {
  DestQueue& q = dests_[id];
  // Any queue parking here cares about future link events for its peer:
  // make sure the host tells us about them (attach, force-down) directly.
  ArmPeerObserver(id);
  if (q.waiting_for_up) {
    return true;
  }
  // Find the link to `dest` that comes up soonest and schedule a wakeup.
  // The computation is only valid for the link set as it stands right now;
  // the peer observer re-runs it when that set changes.
  Link* soonest = nullptr;
  bool has_link = false;
  TimePoint best = TimePoint::FromMicros(INT64_MAX);
  obs::CpuScope cpu(obs::CpuZone::kConnectivity);
  for (Link* link : host_->LinksTo(q.name)) {
    has_link = true;
    const TimePoint up = link->NextUpTime();
    if (up < best) {
      best = up;
      soonest = link;
    }
  }
  if (soonest == nullptr) {
    // No wakeup to arm. With no link at all a route may still be attached
    // later (ReevaluateWakeups retries); with links that will never come up
    // again the destination is dead -- report that to the caller.
    return !has_link;
  }
  q.waiting_for_up = true;
  q.up_wakeup_event =
      loop_->ScheduleAt(best, [this, id, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;  // scheduler torn down while waiting for the link
        }
        DestQueue& dq = dests_[id];
        dq.waiting_for_up = false;
        dq.up_wakeup_event = kInvalidEventId;
        // A fresh connection starts with a fresh loss history: the backoff
        // and breaker state accumulated before the outage say nothing about
        // the new link conditions, and inheriting them would stall the first
        // retry after a long disconnection by up to the maximum backoff.
        dq.consecutive_losses = 0;
        dq.backoff->Reset();
        const BreakerState before = dq.breaker.state();
        dq.breaker.Reset();
        NoteBreakerChange(dq.name, before, dq.breaker.state());
        TryDrain(id);
      });
  return true;
}

void NetworkScheduler::ArmPeerObserver(DestId id) {
  DestQueue& q = dests_[id];
  if (q.peer_observer_armed) {
    return;
  }
  q.peer_observer_armed = true;
  host_->AddPeerObserver(
      q.name,
      [this, id, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;  // scheduler torn down; host outlived it
        }
        DestQueue& dq = dests_[id];
        if (dq.in_flight || dq.empty()) {
          return;
        }
        // The link set toward this peer changed: any armed wakeup was
        // computed against the old set, so recompute from scratch.
        if (dq.waiting_for_up) {
          loop_->Cancel(dq.up_wakeup_event);
          dq.waiting_for_up = false;
          dq.up_wakeup_event = kInvalidEventId;
        }
        TryDrain(id);
      },
      this);
}

void NetworkScheduler::ReevaluateWakeups() {
  // Only destinations with queued traffic can hold a stale wakeup worth
  // recomputing; TryDrain may mutate the set, so iterate a snapshot.
  const std::vector<DestId> queued(nonempty_dests_.begin(), nonempty_dests_.end());
  for (DestId id : queued) {
    DestQueue& q = dests_[id];
    if (q.in_flight || q.empty()) {
      continue;
    }
    // Disarm any stale wakeup (computed against the old link set) and let
    // TryDrain either send now or re-arm against the current one.
    if (q.waiting_for_up) {
      loop_->Cancel(q.up_wakeup_event);
      q.waiting_for_up = false;
      q.up_wakeup_event = kInvalidEventId;
    }
    TryDrain(id);
  }
}

void NetworkScheduler::NoteDestUnreachable(DestId id) {
  DestQueue& q = dests_[id];
  if (q.empty() || q.breaker.state() == BreakerState::kOpen) {
    return;
  }
  const BreakerState before = q.breaker.state();
  q.breaker.ForceOpen(loop_->now());
  if (q.breaker.state() != BreakerState::kOpen) {
    return;  // breaker disabled; nothing to report
  }
  c_breaker_opened_->Increment();
  NoteBreakerChange(q.name, before, q.breaker.state());
  NotifyObserver();
}

void NetworkScheduler::NoteBreakerChange(const std::string& dest, BreakerState before,
                                         BreakerState after) {
  open_breakers_ += (after != BreakerState::kClosed ? 1 : 0) -
                    (before != BreakerState::kClosed ? 1 : 0);
  if (before != after && breaker_observer_) {
    breaker_observer_(dest, after);
  }
}

void NetworkScheduler::NotifyObserver() {
  g_queue_depth_->Set(static_cast<int64_t>(total_queued_));
  g_queued_bytes_->Set(static_cast<int64_t>(queued_payload_bytes_));
  g_breakers_open_->Set(open_breakers_);
  if (observer_) {
    observer_(total_queued_);
  }
}

}  // namespace rover
