#include "src/transport/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/util/compress.h"
#include "src/util/logging.h"

namespace rover {

bool NetworkScheduler::DestQueue::empty() const {
  for (const auto& q : by_priority) {
    if (!q.empty()) {
      return false;
    }
  }
  return true;
}

size_t NetworkScheduler::DestQueue::size() const {
  size_t n = 0;
  for (const auto& q : by_priority) {
    n += q.size();
  }
  return n;
}

NetworkScheduler::NetworkScheduler(EventLoop* loop, Host* host, SchedulerOptions options)
    : loop_(loop), host_(host), options_(options),
      retry_budget_(options.retry_budget_capacity, options.retry_budget_refill_per_sec) {
  WireMetrics(&own_metrics_, "scheduler");
}

NetworkScheduler::DestQueue& NetworkScheduler::GetQueue(const std::string& dest) {
  auto [it, inserted] = queues_.try_emplace(dest);
  if (inserted) {
    // Per-destination seed: decorrelates this queue's jitter from other
    // destinations (and, via the options seed, from other hosts).
    uint64_t seed = options_.backoff_seed;
    for (char c : dest) {
      seed = seed * 1099511628211ull + static_cast<unsigned char>(c);
    }
    it->second.backoff = std::make_unique<DecorrelatedJitterBackoff>(
        options_.loss_retry_backoff, options_.loss_retry_backoff_max, seed);
    it->second.breaker = CircuitBreaker(options_.breaker);
  }
  return it->second;
}

BreakerState NetworkScheduler::BreakerStateFor(const std::string& dest) const {
  auto it = queues_.find(dest);
  return it == queues_.end() ? BreakerState::kClosed : it->second.breaker.state();
}

void NetworkScheduler::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_messages_enqueued_ = registry->counter(prefix + ".messages_enqueued");
  c_messages_delivered_ = registry->counter(prefix + ".messages_delivered");
  c_messages_expired_ = registry->counter(prefix + ".messages_expired");
  c_frames_sent_ = registry->counter(prefix + ".frames_sent");
  c_retries_ = registry->counter(prefix + ".retries");
  c_bytes_sent_ = registry->counter(prefix + ".bytes_sent");
  c_payload_bytes_original_ = registry->counter(prefix + ".payload_bytes_original");
  c_payload_bytes_sent_ = registry->counter(prefix + ".payload_bytes_sent");
  c_payload_bytes_cancelled_ = registry->counter(prefix + ".payload_bytes_cancelled");
  c_messages_shed_ = registry->counter(prefix + ".messages_shed");
  c_enqueue_rejected_ = registry->counter(prefix + ".enqueue_rejected");
  c_retry_budget_waits_ = registry->counter(prefix + ".retry_budget_waits");
  c_breaker_opened_ = registry->counter(prefix + ".breaker_open_transitions");
  g_queue_depth_ = registry->gauge(prefix + ".queue_depth");
  g_queued_bytes_ = registry->gauge(prefix + ".queued_payload_bytes");
  g_breakers_open_ = registry->gauge(prefix + ".breakers_open");
}

void NetworkScheduler::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const SchedulerStats carried = stats();
  WireMetrics(registry, prefix);
  c_messages_enqueued_->Increment(carried.messages_enqueued);
  c_messages_delivered_->Increment(carried.messages_delivered);
  c_messages_expired_->Increment(carried.messages_expired);
  c_frames_sent_->Increment(carried.frames_sent);
  c_retries_->Increment(carried.retries);
  c_bytes_sent_->Increment(carried.bytes_sent);
  c_payload_bytes_original_->Increment(carried.payload_bytes_original);
  c_payload_bytes_sent_->Increment(carried.payload_bytes_sent);
  c_payload_bytes_cancelled_->Increment(carried.payload_bytes_cancelled);
  c_messages_shed_->Increment(carried.messages_shed);
  c_enqueue_rejected_->Increment(carried.enqueue_rejected);
  c_retry_budget_waits_->Increment(carried.retry_budget_waits);
  c_breaker_opened_->Increment(carried.breaker_open_transitions);
  g_queue_depth_->Set(static_cast<int64_t>(TotalQueueDepth()));
  g_queued_bytes_->Set(static_cast<int64_t>(queued_payload_bytes_));
}

SchedulerStats NetworkScheduler::stats() const {
  SchedulerStats s;
  s.messages_enqueued = c_messages_enqueued_->value();
  s.messages_delivered = c_messages_delivered_->value();
  s.messages_expired = c_messages_expired_->value();
  s.frames_sent = c_frames_sent_->value();
  s.retries = c_retries_->value();
  s.bytes_sent = c_bytes_sent_->value();
  s.payload_bytes_original = c_payload_bytes_original_->value();
  s.payload_bytes_sent = c_payload_bytes_sent_->value();
  s.payload_bytes_cancelled = c_payload_bytes_cancelled_->value();
  s.messages_shed = c_messages_shed_->value();
  s.enqueue_rejected = c_enqueue_rejected_->value();
  s.retry_budget_waits = c_retry_budget_waits_->value();
  s.breaker_open_transitions = c_breaker_opened_->value();
  return s;
}

void NetworkScheduler::Enqueue(Message msg, DeliveredCallback delivered, Duration ttl) {
  c_payload_bytes_original_->Increment(msg.payload.size());

  // Compress once, at enqueue time, so retries do not repeat the work.
  // Delivered-byte accounting happens in HandleBatchOutcome: counting here
  // would credit cancelled and still-queued messages as "sent".
  if (options_.compress && !msg.header.compressed &&
      msg.payload.size() >= options_.compress_min_bytes) {
    Bytes packed = LzCompress(msg.payload);
    if (packed.size() < msg.payload.size()) {
      msg.payload = std::move(packed);
      msg.header.compressed = true;
    }
  }

  const std::string dest = msg.header.dst;
  const int prio = static_cast<int>(msg.header.priority);
  const size_t payload_size = msg.payload.size();

  // Admission: when either bound is hit, background traffic is rejected
  // outright and queued background is shed to admit higher priorities --
  // which are then always accepted (the QRPC layer bounds them upstream,
  // and refusing them here would strand durable application ops).
  const bool over_depth = options_.max_queued_messages > 0 &&
                          TotalQueueDepth() + 1 > options_.max_queued_messages;
  const bool over_bytes = options_.max_queued_bytes > 0 &&
                          queued_payload_bytes_ + payload_size > options_.max_queued_bytes;
  if (over_depth || over_bytes) {
    if (msg.header.priority == Priority::kBackground) {
      c_enqueue_rejected_->Increment();
      c_payload_bytes_cancelled_->Increment(payload_size);
      if (delivered) {
        delivered(ResourceExhaustedError("scheduler queue budget exceeded"));
      }
      return;
    }
    ShedBackground(payload_size);
  }

  c_messages_enqueued_->Increment();
  Pending pending{std::move(msg), std::move(delivered)};
  if (!ttl.is_zero()) {
    pending.expires_at = loop_->now() + ttl;
    // A purge event at the deadline covers the queue-asleep case (a dest
    // that never connects drains nothing, so SendBatch never looks at it).
    loop_->ScheduleAt(pending.expires_at,
                      [this, dest, alive = std::weak_ptr<char>(alive_)] {
                        if (!alive.expired()) {
                          PurgeExpired(dest);
                        }
                      });
  }
  GetQueue(dest).by_priority[prio].push_back(std::move(pending));
  queued_payload_bytes_ += payload_size;
  NotifyObserver();
  TryDrain(dest);
}

size_t NetworkScheduler::ShedBackground(size_t incoming_bytes) {
  auto fits = [&] {
    const bool depth_ok = options_.max_queued_messages == 0 ||
                          TotalQueueDepth() + 1 <= options_.max_queued_messages;
    const bool bytes_ok =
        options_.max_queued_bytes == 0 ||
        queued_payload_bytes_ + incoming_bytes <= options_.max_queued_bytes;
    return depth_ok && bytes_ok;
  };
  // Collect victims first, fire their callbacks after: a delivered callback
  // may re-enter the scheduler (e.g. resolve a promise whose continuation
  // issues a new call), which must not happen mid-iteration.
  std::vector<Pending> victims;
  for (auto& [dest, q] : queues_) {
    auto& bq = q.by_priority[static_cast<int>(Priority::kBackground)];
    // Newest first: the oldest queued background message has waited longest
    // and is closest to going out.
    while (!bq.empty() && !fits()) {
      queued_payload_bytes_ -= bq.back().msg.payload.size();
      victims.push_back(std::move(bq.back()));
      bq.pop_back();
    }
    if (fits()) {
      break;
    }
  }
  for (Pending& v : victims) {
    c_messages_shed_->Increment();
    c_payload_bytes_cancelled_->Increment(v.msg.payload.size());
    if (v.delivered) {
      v.delivered(ResourceExhaustedError("shed under queue pressure"));
    }
  }
  if (!victims.empty()) {
    NotifyObserver();
  }
  return victims.size();
}

void NetworkScheduler::PurgeExpired(const std::string& dest) {
  auto it = queues_.find(dest);
  if (it == queues_.end()) {
    return;
  }
  const TimePoint now = loop_->now();
  bool dropped = false;
  for (auto& pq : it->second.by_priority) {
    for (auto p = pq.begin(); p != pq.end();) {
      if (p->expires_at <= now) {
        c_messages_expired_->Increment();
        c_payload_bytes_cancelled_->Increment(p->msg.payload.size());
        queued_payload_bytes_ -= p->msg.payload.size();
        if (p->delivered) {
          p->delivered(DeadlineExceededError("message ttl expired in queue"));
        }
        p = pq.erase(p);
        dropped = true;
      } else {
        ++p;
      }
    }
  }
  if (dropped) {
    NotifyObserver();
  }
}

bool NetworkScheduler::CancelMessage(const std::string& dest, uint64_t message_id) {
  auto it = queues_.find(dest);
  if (it == queues_.end()) {
    return false;
  }
  for (auto& pq : it->second.by_priority) {
    for (auto p = pq.begin(); p != pq.end(); ++p) {
      if (p->msg.header.message_id == message_id) {
        c_payload_bytes_cancelled_->Increment(p->msg.payload.size());
        queued_payload_bytes_ -= p->msg.payload.size();
        if (p->delivered) {
          p->delivered(CancelledError("cancelled before transmission"));
        }
        pq.erase(p);
        NotifyObserver();
        return true;
      }
    }
  }
  return false;
}

std::vector<uint64_t> NetworkScheduler::RebindDestination(const std::string& from,
                                                          const std::string& to) {
  std::vector<uint64_t> moved;
  auto it = queues_.find(from);
  if (it == queues_.end() || from == to) {
    return moved;
  }
  // GetQueue may insert into queues_, but map insertion never invalidates
  // existing element references.
  DestQueue& src = it->second;
  DestQueue& dst = GetQueue(to);
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    auto& spq = src.by_priority[prio];
    auto& dpq = dst.by_priority[prio];
    while (!spq.empty()) {
      Pending p = std::move(spq.front());
      spq.pop_front();
      p.msg.header.dst = to;
      moved.push_back(p.msg.header.message_id);
      dpq.push_back(std::move(p));
    }
  }
  if (!moved.empty()) {
    NotifyObserver();
    TryDrain(to);
  }
  return moved;
}

size_t NetworkScheduler::TotalQueueDepth() const {
  size_t n = 0;
  for (const auto& [dest, q] : queues_) {
    n += q.size();
  }
  return n;
}

size_t NetworkScheduler::QueueDepthFor(const std::string& dest) const {
  auto it = queues_.find(dest);
  return it == queues_.end() ? 0 : it->second.size();
}

Link* NetworkScheduler::PickLink(const std::string& dest) const {
  Link* best = nullptr;
  for (Link* link : host_->LinksTo(dest)) {
    if (!link->IsUp()) {
      continue;
    }
    if (best == nullptr || link->profile().bandwidth_bps > best->profile().bandwidth_bps) {
      best = link;
    }
  }
  return best;
}

void NetworkScheduler::TryDrain(const std::string& dest) {
  PurgeExpired(dest);
  auto it = queues_.find(dest);
  if (it == queues_.end()) {
    return;
  }
  DestQueue& q = it->second;
  if (q.in_flight || q.empty()) {
    return;
  }
  Link* link = PickLink(dest);
  if (link == nullptr) {
    if (!ArmUpWakeup(dest)) {
      NoteDestUnreachable(dest);
    }
    return;
  }
  const TimePoint now = loop_->now();
  const BreakerState before_attempt = q.breaker.state();
  const bool attempt_allowed = q.breaker.AllowAttempt(now);
  NoteBreakerChange(dest, before_attempt, q.breaker.state());
  if (!attempt_allowed) {
    // Open circuit: park until the cooldown passes, then probe.
    if (!q.breaker_wait_armed) {
      q.breaker_wait_armed = true;
      const TimePoint at =
          std::max(q.breaker.open_until(), now + options_.loss_retry_backoff);
      loop_->ScheduleAt(at, [this, dest, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;
        }
        GetQueue(dest).breaker_wait_armed = false;
        TryDrain(dest);
      });
    }
    return;
  }
  SendBatch(dest, link);
}

void NetworkScheduler::SendBatch(const std::string& dest, Link* link) {
  DestQueue& q = GetQueue(dest);
  const size_t max_msgs = options_.batching ? options_.max_batch_messages : 1;
  const size_t max_bytes = options_.batching ? options_.max_batch_bytes : SIZE_MAX;

  std::vector<Pending> batch;
  std::vector<Message> wire;
  size_t bytes = 0;
  // Frames carry a single priority class: mixing background traffic into a
  // frame with (or ahead of) foreground traffic would extend the frame's
  // airtime and delay the interactive response behind it. Background
  // frames additionally carry one message each, bounding the priority
  // inversion a just-started background transfer can inflict to a single
  // message's serialization time.
  for (int prio = 0; prio < kNumPriorities && batch.empty(); ++prio) {
    auto& pq = q.by_priority[prio];
    const size_t prio_max =
        prio == static_cast<int>(Priority::kBackground) ? 1 : max_msgs;
    while (!pq.empty() && batch.size() < prio_max) {
      const size_t sz = pq.front().msg.EncodedSize();
      if (!batch.empty() && bytes + sz > max_bytes) {
        break;
      }
      bytes += sz;
      queued_payload_bytes_ -= pq.front().msg.payload.size();
      batch.push_back(std::move(pq.front()));
      pq.pop_front();
    }
  }
  if (batch.empty()) {
    return;
  }
  wire.reserve(batch.size());
  for (const Pending& p : batch) {
    wire.push_back(p.msg);
    if (tracer_ != nullptr && p.msg.header.type == MessageType::kRequest) {
      tracer_->Record(p.msg.header.message_id, obs::RpcEvent::kTransmitted, loop_->now());
    }
  }
  Bytes frame = EncodeFrame(wire);
  q.in_flight = true;
  c_frames_sent_->Increment();
  c_bytes_sent_->Increment(frame.size());

  // `batch` is moved into the completion lambda; shared_ptr keeps the
  // lambda copyable for std::function.
  auto batch_ptr = std::make_shared<std::vector<Pending>>(std::move(batch));
  link->SendFrame(host_->name(), std::move(frame),
                  [this, dest, batch_ptr, alive = std::weak_ptr<char>(alive_)](
                      const Status& status) {
                    if (alive.expired()) {
                      return;  // scheduler torn down while the frame flew
                    }
                    HandleBatchOutcome(dest, std::move(*batch_ptr), status);
                  });
}

void NetworkScheduler::HandleBatchOutcome(const std::string& dest,
                                          std::vector<Pending> batch, const Status& status) {
  DestQueue& q = GetQueue(dest);
  q.in_flight = false;

  if (status.ok()) {
    q.consecutive_losses = 0;
    q.backoff->Reset();
    const BreakerState before = q.breaker.state();
    q.breaker.RecordSuccess();
    NoteBreakerChange(dest, before, q.breaker.state());
    c_messages_delivered_->Increment(batch.size());
    for (Pending& p : batch) {
      // Payload accounting at the delivery point: only bytes a link carried
      // end-to-end count as sent.
      c_payload_bytes_sent_->Increment(p.msg.payload.size());
      if (p.delivered) {
        p.delivered(Status::Ok());
      }
    }
    NotifyObserver();
    TryDrain(dest);
    return;
  }

  // Failure: requeue at the front of each message's priority queue,
  // preserving the original order.
  c_retries_->Increment();
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    const int prio = static_cast<int>(it->msg.header.priority);
    queued_payload_bytes_ += it->msg.payload.size();
    q.by_priority[prio].push_front(std::move(*it));
  }
  NotifyObserver();

  if (status.code() == StatusCode::kUnavailable) {
    // Link down: says nothing about the peer, so it neither counts against
    // the circuit breaker nor spends retry-budget tokens. If the failed
    // frame was a half-open probe, allow a fresh probe after reconnection.
    const BreakerState before = q.breaker.state();
    q.breaker.AbortProbe();
    NoteBreakerChange(dest, before, q.breaker.state());
    if (!ArmUpWakeup(dest)) {
      NoteDestUnreachable(dest);
    }
  } else {
    // Random loss: decorrelated-jitter backoff (drawn from [base,
    // 3 * previous], capped), gated by the shared retry budget and counted
    // against the destination's circuit breaker.
    const TimePoint now = loop_->now();
    ++q.consecutive_losses;
    const BreakerState before = q.breaker.state();
    q.breaker.RecordFailure(now);
    NoteBreakerChange(dest, before, q.breaker.state());
    if (q.breaker.state() == BreakerState::kOpen && before != BreakerState::kOpen) {
      c_breaker_opened_->Increment();
      NotifyObserver();
    }
    TimePoint fire_at = now + q.backoff->Next();
    if (retry_budget_.enabled()) {
      const TimePoint token_at = retry_budget_.Reserve(now);
      if (token_at == TimePoint::FromMicros(INT64_MAX)) {
        // Budget can never refill; delivery is still reliable, so fall back
        // to pacing at the maximum backoff instead of never retrying.
        c_retry_budget_waits_->Increment();
        fire_at = std::max(fire_at, now + options_.loss_retry_backoff_max);
      } else if (token_at > fire_at) {
        c_retry_budget_waits_->Increment();
        fire_at = token_at;
      }
    }
    loop_->ScheduleAt(fire_at, [this, dest, alive = std::weak_ptr<char>(alive_)] {
      if (!alive.expired()) {
        TryDrain(dest);
      }
    });
  }
}

bool NetworkScheduler::ArmUpWakeup(const std::string& dest) {
  DestQueue& q = GetQueue(dest);
  if (q.waiting_for_up) {
    return true;
  }
  // Find the link to `dest` that comes up soonest and schedule a wakeup.
  // The computation is only valid for the link set as it stands right now;
  // ReevaluateWakeups() re-runs it when a link is attached later.
  Link* soonest = nullptr;
  bool has_link = false;
  TimePoint best = TimePoint::FromMicros(INT64_MAX);
  for (Link* link : host_->LinksTo(dest)) {
    has_link = true;
    const TimePoint up = link->NextUpTime();
    if (up < best) {
      best = up;
      soonest = link;
    }
  }
  if (soonest == nullptr) {
    // No wakeup to arm. With no link at all a route may still be attached
    // later (ReevaluateWakeups retries); with links that will never come up
    // again the destination is dead -- report that to the caller.
    return !has_link;
  }
  q.waiting_for_up = true;
  q.up_wakeup_event =
      loop_->ScheduleAt(best, [this, dest, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;  // scheduler torn down while waiting for the link
        }
        DestQueue& dq = GetQueue(dest);
        dq.waiting_for_up = false;
        dq.up_wakeup_event = kInvalidEventId;
        // A fresh connection starts with a fresh loss history: the backoff
        // and breaker state accumulated before the outage say nothing about
        // the new link conditions, and inheriting them would stall the first
        // retry after a long disconnection by up to the maximum backoff.
        dq.consecutive_losses = 0;
        dq.backoff->Reset();
        const BreakerState before = dq.breaker.state();
        dq.breaker.Reset();
        NoteBreakerChange(dest, before, dq.breaker.state());
        TryDrain(dest);
      });
  return true;
}

void NetworkScheduler::ReevaluateWakeups() {
  for (auto& [dest, q] : queues_) {
    if (q.in_flight || q.empty()) {
      continue;
    }
    // Disarm any stale wakeup (computed against the old link set) and let
    // TryDrain either send now or re-arm against the current one.
    if (q.waiting_for_up) {
      loop_->Cancel(q.up_wakeup_event);
      q.waiting_for_up = false;
      q.up_wakeup_event = kInvalidEventId;
    }
    TryDrain(dest);
  }
}

void NetworkScheduler::NoteDestUnreachable(const std::string& dest) {
  DestQueue& q = GetQueue(dest);
  if (q.empty() || q.breaker.state() == BreakerState::kOpen) {
    return;
  }
  const BreakerState before = q.breaker.state();
  q.breaker.ForceOpen(loop_->now());
  if (q.breaker.state() != BreakerState::kOpen) {
    return;  // breaker disabled; nothing to report
  }
  c_breaker_opened_->Increment();
  NoteBreakerChange(dest, before, q.breaker.state());
  NotifyObserver();
}

void NetworkScheduler::NoteBreakerChange(const std::string& dest, BreakerState before,
                                         BreakerState after) {
  open_breakers_ += (after != BreakerState::kClosed ? 1 : 0) -
                    (before != BreakerState::kClosed ? 1 : 0);
  if (before != after && breaker_observer_) {
    breaker_observer_(dest, after);
  }
}

void NetworkScheduler::NotifyObserver() {
  g_queue_depth_->Set(static_cast<int64_t>(TotalQueueDepth()));
  g_queued_bytes_->Set(static_cast<int64_t>(queued_payload_bytes_));
  g_breakers_open_->Set(open_breakers_);
  if (observer_) {
    observer_(TotalQueueDepth());
  }
}

}  // namespace rover
