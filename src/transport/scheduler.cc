#include "src/transport/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/util/compress.h"
#include "src/util/logging.h"

namespace rover {

bool NetworkScheduler::DestQueue::empty() const {
  for (const auto& q : by_priority) {
    if (!q.empty()) {
      return false;
    }
  }
  return true;
}

size_t NetworkScheduler::DestQueue::size() const {
  size_t n = 0;
  for (const auto& q : by_priority) {
    n += q.size();
  }
  return n;
}

NetworkScheduler::NetworkScheduler(EventLoop* loop, Host* host, SchedulerOptions options)
    : loop_(loop), host_(host), options_(options) {
  WireMetrics(&own_metrics_, "scheduler");
}

void NetworkScheduler::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_messages_enqueued_ = registry->counter(prefix + ".messages_enqueued");
  c_messages_delivered_ = registry->counter(prefix + ".messages_delivered");
  c_messages_expired_ = registry->counter(prefix + ".messages_expired");
  c_frames_sent_ = registry->counter(prefix + ".frames_sent");
  c_retries_ = registry->counter(prefix + ".retries");
  c_bytes_sent_ = registry->counter(prefix + ".bytes_sent");
  c_payload_bytes_original_ = registry->counter(prefix + ".payload_bytes_original");
  c_payload_bytes_sent_ = registry->counter(prefix + ".payload_bytes_sent");
  c_payload_bytes_cancelled_ = registry->counter(prefix + ".payload_bytes_cancelled");
  g_queue_depth_ = registry->gauge(prefix + ".queue_depth");
}

void NetworkScheduler::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const SchedulerStats carried = stats();
  WireMetrics(registry, prefix);
  c_messages_enqueued_->Increment(carried.messages_enqueued);
  c_messages_delivered_->Increment(carried.messages_delivered);
  c_messages_expired_->Increment(carried.messages_expired);
  c_frames_sent_->Increment(carried.frames_sent);
  c_retries_->Increment(carried.retries);
  c_bytes_sent_->Increment(carried.bytes_sent);
  c_payload_bytes_original_->Increment(carried.payload_bytes_original);
  c_payload_bytes_sent_->Increment(carried.payload_bytes_sent);
  c_payload_bytes_cancelled_->Increment(carried.payload_bytes_cancelled);
  g_queue_depth_->Set(static_cast<int64_t>(TotalQueueDepth()));
}

SchedulerStats NetworkScheduler::stats() const {
  SchedulerStats s;
  s.messages_enqueued = c_messages_enqueued_->value();
  s.messages_delivered = c_messages_delivered_->value();
  s.messages_expired = c_messages_expired_->value();
  s.frames_sent = c_frames_sent_->value();
  s.retries = c_retries_->value();
  s.bytes_sent = c_bytes_sent_->value();
  s.payload_bytes_original = c_payload_bytes_original_->value();
  s.payload_bytes_sent = c_payload_bytes_sent_->value();
  s.payload_bytes_cancelled = c_payload_bytes_cancelled_->value();
  return s;
}

void NetworkScheduler::Enqueue(Message msg, DeliveredCallback delivered, Duration ttl) {
  c_messages_enqueued_->Increment();
  c_payload_bytes_original_->Increment(msg.payload.size());

  // Compress once, at enqueue time, so retries do not repeat the work.
  // Delivered-byte accounting happens in HandleBatchOutcome: counting here
  // would credit cancelled and still-queued messages as "sent".
  if (options_.compress && !msg.header.compressed &&
      msg.payload.size() >= options_.compress_min_bytes) {
    Bytes packed = LzCompress(msg.payload);
    if (packed.size() < msg.payload.size()) {
      msg.payload = std::move(packed);
      msg.header.compressed = true;
    }
  }

  const std::string dest = msg.header.dst;
  const int prio = static_cast<int>(msg.header.priority);
  Pending pending{std::move(msg), std::move(delivered)};
  if (!ttl.is_zero()) {
    pending.expires_at = loop_->now() + ttl;
    // A purge event at the deadline covers the queue-asleep case (a dest
    // that never connects drains nothing, so SendBatch never looks at it).
    loop_->ScheduleAt(pending.expires_at,
                      [this, dest, alive = std::weak_ptr<char>(alive_)] {
                        if (!alive.expired()) {
                          PurgeExpired(dest);
                        }
                      });
  }
  queues_[dest].by_priority[prio].push_back(std::move(pending));
  NotifyObserver();
  TryDrain(dest);
}

void NetworkScheduler::PurgeExpired(const std::string& dest) {
  auto it = queues_.find(dest);
  if (it == queues_.end()) {
    return;
  }
  const TimePoint now = loop_->now();
  bool dropped = false;
  for (auto& pq : it->second.by_priority) {
    for (auto p = pq.begin(); p != pq.end();) {
      if (p->expires_at <= now) {
        c_messages_expired_->Increment();
        c_payload_bytes_cancelled_->Increment(p->msg.payload.size());
        if (p->delivered) {
          p->delivered(DeadlineExceededError("message ttl expired in queue"));
        }
        p = pq.erase(p);
        dropped = true;
      } else {
        ++p;
      }
    }
  }
  if (dropped) {
    NotifyObserver();
  }
}

bool NetworkScheduler::CancelMessage(const std::string& dest, uint64_t message_id) {
  auto it = queues_.find(dest);
  if (it == queues_.end()) {
    return false;
  }
  for (auto& pq : it->second.by_priority) {
    for (auto p = pq.begin(); p != pq.end(); ++p) {
      if (p->msg.header.message_id == message_id) {
        c_payload_bytes_cancelled_->Increment(p->msg.payload.size());
        if (p->delivered) {
          p->delivered(CancelledError("cancelled before transmission"));
        }
        pq.erase(p);
        NotifyObserver();
        return true;
      }
    }
  }
  return false;
}

size_t NetworkScheduler::TotalQueueDepth() const {
  size_t n = 0;
  for (const auto& [dest, q] : queues_) {
    n += q.size();
  }
  return n;
}

size_t NetworkScheduler::QueueDepthFor(const std::string& dest) const {
  auto it = queues_.find(dest);
  return it == queues_.end() ? 0 : it->second.size();
}

Link* NetworkScheduler::PickLink(const std::string& dest) const {
  Link* best = nullptr;
  for (Link* link : host_->LinksTo(dest)) {
    if (!link->IsUp()) {
      continue;
    }
    if (best == nullptr || link->profile().bandwidth_bps > best->profile().bandwidth_bps) {
      best = link;
    }
  }
  return best;
}

void NetworkScheduler::TryDrain(const std::string& dest) {
  PurgeExpired(dest);
  auto it = queues_.find(dest);
  if (it == queues_.end()) {
    return;
  }
  DestQueue& q = it->second;
  if (q.in_flight || q.empty()) {
    return;
  }
  Link* link = PickLink(dest);
  if (link == nullptr) {
    ArmUpWakeup(dest);
    return;
  }
  SendBatch(dest, link);
}

void NetworkScheduler::SendBatch(const std::string& dest, Link* link) {
  DestQueue& q = queues_[dest];
  const size_t max_msgs = options_.batching ? options_.max_batch_messages : 1;
  const size_t max_bytes = options_.batching ? options_.max_batch_bytes : SIZE_MAX;

  std::vector<Pending> batch;
  std::vector<Message> wire;
  size_t bytes = 0;
  // Frames carry a single priority class: mixing background traffic into a
  // frame with (or ahead of) foreground traffic would extend the frame's
  // airtime and delay the interactive response behind it. Background
  // frames additionally carry one message each, bounding the priority
  // inversion a just-started background transfer can inflict to a single
  // message's serialization time.
  for (int prio = 0; prio < kNumPriorities && batch.empty(); ++prio) {
    auto& pq = q.by_priority[prio];
    const size_t prio_max =
        prio == static_cast<int>(Priority::kBackground) ? 1 : max_msgs;
    while (!pq.empty() && batch.size() < prio_max) {
      const size_t sz = pq.front().msg.EncodedSize();
      if (!batch.empty() && bytes + sz > max_bytes) {
        break;
      }
      bytes += sz;
      batch.push_back(std::move(pq.front()));
      pq.pop_front();
    }
  }
  if (batch.empty()) {
    return;
  }
  wire.reserve(batch.size());
  for (const Pending& p : batch) {
    wire.push_back(p.msg);
    if (tracer_ != nullptr && p.msg.header.type == MessageType::kRequest) {
      tracer_->Record(p.msg.header.message_id, obs::RpcEvent::kTransmitted, loop_->now());
    }
  }
  Bytes frame = EncodeFrame(wire);
  q.in_flight = true;
  c_frames_sent_->Increment();
  c_bytes_sent_->Increment(frame.size());

  // `batch` is moved into the completion lambda; shared_ptr keeps the
  // lambda copyable for std::function.
  auto batch_ptr = std::make_shared<std::vector<Pending>>(std::move(batch));
  link->SendFrame(host_->name(), std::move(frame),
                  [this, dest, batch_ptr, alive = std::weak_ptr<char>(alive_)](
                      const Status& status) {
                    if (alive.expired()) {
                      return;  // scheduler torn down while the frame flew
                    }
                    HandleBatchOutcome(dest, std::move(*batch_ptr), status);
                  });
}

void NetworkScheduler::HandleBatchOutcome(const std::string& dest,
                                          std::vector<Pending> batch, const Status& status) {
  DestQueue& q = queues_[dest];
  q.in_flight = false;

  if (status.ok()) {
    q.consecutive_losses = 0;
    c_messages_delivered_->Increment(batch.size());
    for (Pending& p : batch) {
      // Payload accounting at the delivery point: only bytes a link carried
      // end-to-end count as sent.
      c_payload_bytes_sent_->Increment(p.msg.payload.size());
      if (p.delivered) {
        p.delivered(Status::Ok());
      }
    }
    NotifyObserver();
    TryDrain(dest);
    return;
  }

  // Failure: requeue at the front of each message's priority queue,
  // preserving the original order.
  c_retries_->Increment();
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    const int prio = static_cast<int>(it->msg.header.priority);
    q.by_priority[prio].push_front(std::move(*it));
  }
  NotifyObserver();

  if (status.code() == StatusCode::kUnavailable) {
    // Link down: wake up when any link to this destination returns.
    ArmUpWakeup(dest);
  } else {
    // Random loss: back off briefly, then retransmit.
    ++q.consecutive_losses;
    const int shift = std::min(q.consecutive_losses - 1, 6);
    const Duration backoff = options_.loss_retry_backoff * static_cast<double>(1 << shift);
    loop_->ScheduleAfter(backoff, [this, dest, alive = std::weak_ptr<char>(alive_)] {
      if (!alive.expired()) {
        TryDrain(dest);
      }
    });
  }
}

void NetworkScheduler::ArmUpWakeup(const std::string& dest) {
  DestQueue& q = queues_[dest];
  if (q.waiting_for_up) {
    return;
  }
  // Find the link to `dest` that comes up soonest and schedule a wakeup.
  // The computation is only valid for the link set as it stands right now;
  // ReevaluateWakeups() re-runs it when a link is attached later.
  Link* soonest = nullptr;
  TimePoint best = TimePoint::FromMicros(INT64_MAX);
  for (Link* link : host_->LinksTo(dest)) {
    const TimePoint up = link->NextUpTime();
    if (up < best) {
      best = up;
      soonest = link;
    }
  }
  if (soonest == nullptr || best == TimePoint::FromMicros(INT64_MAX)) {
    return;  // no route exists today; ReevaluateWakeups() retries on attach
  }
  q.waiting_for_up = true;
  q.up_wakeup_event =
      loop_->ScheduleAt(best, [this, dest, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) {
          return;  // scheduler torn down while waiting for the link
        }
        DestQueue& dq = queues_[dest];
        dq.waiting_for_up = false;
        dq.up_wakeup_event = kInvalidEventId;
        // A fresh connection starts with a fresh loss history: the exponential
        // backoff accumulated before the outage says nothing about the new
        // link conditions, and inheriting it would stall the first retry after
        // a long disconnection by up to the maximum backoff.
        dq.consecutive_losses = 0;
        TryDrain(dest);
      });
}

void NetworkScheduler::ReevaluateWakeups() {
  for (auto& [dest, q] : queues_) {
    if (q.in_flight || q.empty()) {
      continue;
    }
    // Disarm any stale wakeup (computed against the old link set) and let
    // TryDrain either send now or re-arm against the current one.
    if (q.waiting_for_up) {
      loop_->Cancel(q.up_wakeup_event);
      q.waiting_for_up = false;
      q.up_wakeup_event = kInvalidEventId;
    }
    TryDrain(dest);
  }
}

void NetworkScheduler::NotifyObserver() {
  g_queue_depth_->Set(static_cast<int64_t>(TotalQueueDepth()));
  if (observer_) {
    observer_(TotalQueueDepth());
  }
}

}  // namespace rover
