#include "src/transport/transport.h"

#include <utility>

#include "src/util/compress.h"
#include "src/util/logging.h"

namespace rover {

TransportManager::TransportManager(EventLoop* loop, Host* host, SchedulerOptions options)
    : loop_(loop), host_(host), scheduler_(loop, host, options) {
  WireMetrics(&own_metrics_, "transport");
  host_->SetReceiver([this](Bytes frame, const std::string& from) {
    HandleFrame(std::move(frame), from);
  }, this);
  // Queues parked on "no usable link" register per-peer observers with the
  // host (see NetworkScheduler::ArmPeerObserver); no global link-change
  // listener is needed, so N parked destinations no longer all re-scan on
  // every unrelated link event.
}

TransportManager::~TransportManager() {
  // Owner-scoped: a replacement transport registered since (crash-restart
  // builds the new node before the old one is torn down) keeps its hooks.
  host_->ClearReceiver(this);
}

void TransportManager::Send(Message msg, NetworkScheduler::DeliveredCallback delivered,
                            Duration ttl) {
  msg.header.src = host_->name();
  if (msg.header.message_id == 0) {
    msg.header.message_id = AllocateMessageId();
  }
  if (msg.header.auth.empty()) {
    msg.header.auth = auth_token_;
  }
  scheduler_.Enqueue(std::move(msg), std::move(delivered), ttl);
}

void TransportManager::SendViaRelay(const std::string& relay_host, Message msg,
                                    NetworkScheduler::DeliveredCallback delivered) {
  msg.header.src = host_->name();
  if (msg.header.message_id == 0) {
    msg.header.message_id = AllocateMessageId();
  }
  if (msg.header.auth.empty()) {
    msg.header.auth = auth_token_;
  }
  Message envelope;
  envelope.header.message_id = AllocateMessageId();
  envelope.header.type = MessageType::kControl;
  envelope.header.priority = msg.header.priority;
  envelope.header.src = host_->name();
  envelope.header.dst = relay_host;
  envelope.payload = EncodeEnvelope(msg);
  scheduler_.Enqueue(std::move(envelope), std::move(delivered));
}

Bytes TransportManager::EncodeEnvelope(const Message& inner) {
  WireWriter writer;
  writer.WriteString("RFC822");  // envelope tag, in the spirit of the original
  inner.EncodeTo(&writer);
  return writer.TakeData();
}

Result<Message> TransportManager::DecodeEnvelope(const Buffer& payload) {
  WireReader reader(payload.data(), payload.size());
  ROVER_ASSIGN_OR_RETURN(std::string tag, reader.ReadString());
  if (tag != "RFC822") {
    return DataLossError("bad envelope tag");
  }
  // The inner payload becomes a slice of the envelope's storage.
  return Message::DecodeFrom(&reader, payload);
}

void TransportManager::SetHandler(MessageType type, MessageHandler handler) {
  handlers_[static_cast<size_t>(type)] = std::move(handler);
}

void TransportManager::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_frames_corrupt_dropped_ = registry->counter(prefix + ".frames_corrupt_dropped");
  c_messages_undecodable_ = registry->counter(prefix + ".messages_undecodable");
}

void TransportManager::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const uint64_t frames = c_frames_corrupt_dropped_->value();
  const uint64_t messages = c_messages_undecodable_->value();
  WireMetrics(registry, prefix);
  c_frames_corrupt_dropped_->Increment(frames);
  c_messages_undecodable_->Increment(messages);
}

void TransportManager::HandleFrame(Bytes frame, const std::string& from) {
  auto decoded = DecodeFrame(std::move(frame));
  if (!decoded.ok()) {
    c_frames_corrupt_dropped_->Increment();
    ROVER_LOG(Warning) << host_->name() << ": dropping corrupt frame from " << from << ": "
                       << decoded.status();
    return;
  }
  for (Message& msg : *decoded) {
    if (msg.header.compressed) {
      auto raw = LzDecompress(msg.payload.data(), msg.payload.size());
      if (!raw.ok()) {
        c_messages_undecodable_->Increment();
        ROVER_LOG(Warning) << host_->name() << ": dropping message "
                           << msg.header.message_id << ": " << raw.status();
        continue;
      }
      msg.payload = std::move(*raw);
      msg.header.compressed = false;
    }
    const MessageHandler& handler = handlers_[static_cast<size_t>(msg.header.type)];
    if (handler) {
      handler(msg);
    }
  }
}

}  // namespace rover
