#include "src/transport/message.h"

#include "src/util/crc32.h"

namespace rover {

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kRequest:
      return "request";
    case MessageType::kResponse:
      return "response";
    case MessageType::kAck:
      return "ack";
    case MessageType::kControl:
      return "control";
  }
  return "unknown";
}

void Message::EncodeTo(WireWriter* writer) const {
  writer->WriteVarint(header.message_id);
  writer->WriteVarint(static_cast<uint64_t>(header.type));
  writer->WriteVarint(static_cast<uint64_t>(header.priority));
  writer->WriteString(header.src);
  writer->WriteString(header.dst);
  writer->WriteVarint(header.in_reply_to);
  writer->WriteBool(header.compressed);
  writer->WriteString(header.auth);
  writer->WriteString(header.reply_via);
  writer->WriteBytes(payload);
}

Result<Message> Message::DecodeFrom(WireReader* reader) {
  Message msg;
  ROVER_ASSIGN_OR_RETURN(msg.header.message_id, reader->ReadVarint());
  ROVER_ASSIGN_OR_RETURN(uint64_t type, reader->ReadVarint());
  if (type > static_cast<uint64_t>(MessageType::kControl)) {
    return DataLossError("bad message type");
  }
  msg.header.type = static_cast<MessageType>(type);
  ROVER_ASSIGN_OR_RETURN(uint64_t prio, reader->ReadVarint());
  if (prio >= kNumPriorities) {
    return DataLossError("bad message priority");
  }
  msg.header.priority = static_cast<Priority>(prio);
  ROVER_ASSIGN_OR_RETURN(msg.header.src, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.header.dst, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.header.in_reply_to, reader->ReadVarint());
  ROVER_ASSIGN_OR_RETURN(msg.header.compressed, reader->ReadBool());
  ROVER_ASSIGN_OR_RETURN(msg.header.auth, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.header.reply_via, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.payload, reader->ReadBytes());
  return msg;
}

Bytes Message::Encode() const {
  WireWriter writer;
  EncodeTo(&writer);
  return writer.TakeData();
}

size_t Message::EncodedSize() const {
  // Cheap but exact: encode the header alone, add the payload length.
  // Headers are ~20-40 bytes; this runs on enqueue, not per packet.
  WireWriter writer;
  EncodeTo(&writer);
  return writer.size();
}

Result<Message> Message::Decode(const Bytes& data) {
  WireReader reader(data);
  ROVER_ASSIGN_OR_RETURN(Message msg, DecodeFrom(&reader));
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after message");
  }
  return msg;
}

Bytes EncodeFrame(const std::vector<Message>& messages) {
  WireWriter body_writer;
  body_writer.WriteVarint(messages.size());
  for (const Message& msg : messages) {
    msg.EncodeTo(&body_writer);
  }
  const Bytes body = body_writer.TakeData();
  // The frame body is covered by a CRC so a bit flip anywhere -- header or
  // payload -- fails decode at the receiving transport instead of delivering
  // damaged payload bytes to the layers above.
  WireWriter writer;
  writer.Reserve(body.size() + 12);
  writer.WriteVarint(Crc32(body.data(), body.size()));
  writer.WriteBytes(body);
  return writer.TakeData();
}

Result<std::vector<Message>> DecodeFrame(const Bytes& frame) {
  WireReader outer(frame);
  ROVER_ASSIGN_OR_RETURN(uint64_t crc, outer.ReadVarint());
  ROVER_ASSIGN_OR_RETURN(Bytes body, outer.ReadBytes());
  if (!outer.AtEnd()) {
    return DataLossError("trailing bytes after frame");
  }
  if (Crc32(body.data(), body.size()) != static_cast<uint32_t>(crc)) {
    return DataLossError("frame checksum mismatch");
  }
  WireReader reader(body);
  ROVER_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > body.size()) {  // each message is at least 1 byte
    return DataLossError("frame message count implausible");
  }
  std::vector<Message> messages;
  messages.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ROVER_ASSIGN_OR_RETURN(Message msg, Message::DecodeFrom(&reader));
    messages.push_back(std::move(msg));
  }
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after frame");
  }
  return messages;
}

}  // namespace rover
