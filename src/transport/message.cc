#include "src/transport/message.h"

#include "src/obs/cpu_scope.h"
#include "src/util/crc32.h"

namespace rover {
namespace {

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void EncodeHeaderTo(const MessageHeader& header, WireWriter* writer) {
  writer->WriteVarint(header.message_id);
  writer->WriteVarint(static_cast<uint64_t>(header.type));
  writer->WriteVarint(static_cast<uint64_t>(header.priority));
  writer->WriteString(header.src);
  writer->WriteString(header.dst);
  writer->WriteVarint(header.in_reply_to);
  writer->WriteBool(header.compressed);
  writer->WriteString(header.auth);
  writer->WriteString(header.reply_via);
}

size_t EncodedHeaderSize(const MessageHeader& h) {
  auto str = [](const std::string& s) { return VarintSize(s.size()) + s.size(); };
  return VarintSize(h.message_id) + VarintSize(static_cast<uint64_t>(h.type)) +
         VarintSize(static_cast<uint64_t>(h.priority)) + str(h.src) + str(h.dst) +
         VarintSize(h.in_reply_to) + 1 /* compressed bool */ + str(h.auth) +
         str(h.reply_via);
}

Result<Message> DecodeMessageFrom(WireReader* reader, const Buffer* backing) {
  Message msg;
  ROVER_ASSIGN_OR_RETURN(msg.header.message_id, reader->ReadVarint());
  ROVER_ASSIGN_OR_RETURN(uint64_t type, reader->ReadVarint());
  if (type > static_cast<uint64_t>(MessageType::kControl)) {
    return DataLossError("bad message type");
  }
  msg.header.type = static_cast<MessageType>(type);
  ROVER_ASSIGN_OR_RETURN(uint64_t prio, reader->ReadVarint());
  if (prio >= kNumPriorities) {
    return DataLossError("bad message priority");
  }
  msg.header.priority = static_cast<Priority>(prio);
  ROVER_ASSIGN_OR_RETURN(msg.header.src, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.header.dst, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.header.in_reply_to, reader->ReadVarint());
  ROVER_ASSIGN_OR_RETURN(msg.header.compressed, reader->ReadBool());
  ROVER_ASSIGN_OR_RETURN(msg.header.auth, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(msg.header.reply_via, reader->ReadString());
  ROVER_ASSIGN_OR_RETURN(uint64_t len, reader->ReadVarint());
  if (len > reader->remaining()) {
    return DataLossError("truncated message payload");
  }
  ROVER_ASSIGN_OR_RETURN(const uint8_t* p, reader->ReadRaw(len));
  if (backing != nullptr) {
    msg.payload = backing->Slice(static_cast<size_t>(p - backing->data()), len);
  } else if (len > 0) {
    msg.payload = Buffer::CopyRaw(p, len);
  }
  return msg;
}

}  // namespace

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kRequest:
      return "request";
    case MessageType::kResponse:
      return "response";
    case MessageType::kAck:
      return "ack";
    case MessageType::kControl:
      return "control";
  }
  return "unknown";
}

void Message::EncodeTo(WireWriter* writer) const {
  EncodeHeaderTo(header, writer);
  writer->WriteVarint(payload.size());
  // The one charged copy on the send path: payload bytes land in the frame.
  ChargePayloadCopy(payload.size());
  writer->WriteRaw(payload.data(), payload.size());
}

Result<Message> Message::DecodeFrom(WireReader* reader) {
  return DecodeMessageFrom(reader, nullptr);
}

Result<Message> Message::DecodeFrom(WireReader* reader, const Buffer& backing) {
  return DecodeMessageFrom(reader, &backing);
}

Bytes Message::Encode() const {
  WireWriter writer;
  writer.Reserve(EncodedSize());
  EncodeTo(&writer);
  return writer.TakeData();
}

size_t Message::EncodedSize() const {
  return EncodedHeaderSize(header) + VarintSize(payload.size()) + payload.size();
}

Result<Message> Message::Decode(const Bytes& data) {
  WireReader reader(data);
  ROVER_ASSIGN_OR_RETURN(Message msg, DecodeFrom(&reader));
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after message");
  }
  return msg;
}

namespace {

template <typename Deref, typename T>
Bytes EncodeFrameImpl(const std::vector<T>& messages, Deref deref) {
  obs::CpuScope cpu(obs::CpuZone::kMarshal);
  WireWriter writer;
  size_t total = VarintSize(messages.size()) + 4;
  for (const T& msg : messages) {
    total += deref(msg).EncodedSize();
  }
  writer.Reserve(total);
  writer.WriteVarint(messages.size());
  for (const T& msg : messages) {
    deref(msg).EncodeTo(&writer);
  }
  // Trailing CRC covers count + every message -- header and payload alike --
  // so a bit flip anywhere fails decode at the receiving transport instead
  // of delivering damaged bytes to the layers above. Trailing (not leading)
  // so encoding is single-pass into the final buffer.
  const uint32_t crc = Crc32(writer.data().data(), writer.size());
  writer.WriteFixed32(crc);
  return writer.TakeData();
}

}  // namespace

Bytes EncodeFrame(const std::vector<Message>& messages) {
  return EncodeFrameImpl(messages, [](const Message& m) -> const Message& { return m; });
}

Bytes EncodeFrame(const std::vector<const Message*>& messages) {
  return EncodeFrameImpl(messages,
                         [](const Message* m) -> const Message& { return *m; });
}

Result<std::vector<Message>> DecodeFrame(Bytes frame) {
  obs::CpuScope cpu(obs::CpuZone::kMarshal);
  if (frame.size() < 4) {
    return DataLossError("frame too short for checksum");
  }
  const size_t body_size = frame.size() - 4;
  WireReader trailer(frame.data() + body_size, 4);
  ROVER_ASSIGN_OR_RETURN(uint32_t stored, trailer.ReadFixed32());
  if (Crc32(frame.data(), body_size) != stored) {
    return DataLossError("frame checksum mismatch");
  }
  // Adopt the frame storage; every payload below is a slice of it.
  Buffer backing(std::move(frame));
  WireReader reader(backing.data(), body_size);
  ROVER_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > body_size) {  // each message is at least 1 byte
    return DataLossError("frame message count implausible");
  }
  std::vector<Message> messages;
  messages.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ROVER_ASSIGN_OR_RETURN(Message msg, Message::DecodeFrom(&reader, backing));
    messages.push_back(std::move(msg));
  }
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after frame");
  }
  return messages;
}

}  // namespace rover
