// Network scheduler (paper §5.3). The lower transport level keeps one set
// of priority queues per destination and decides, whenever any traffic is
// pending, which network interface to use "based on availability and
// quality". It also implements the two channel optimizations the paper's
// evaluation studies:
//
//   * batching: coalescing queued messages into a single frame so that slow
//     links pay per-packet header overhead once per batch, and
//   * compression: LZ-compressing marshalled payloads before transmission.
//
// Delivery is reliable: frames rejected or dropped by a link are requeued
// (in order) and retried when a link to the destination next comes up.

#ifndef ROVER_SRC_TRANSPORT_SCHEDULER_H_
#define ROVER_SRC_TRANSPORT_SCHEDULER_H_

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/sim/network.h"
#include "src/transport/message.h"
#include "src/util/time.h"

namespace rover {

struct SchedulerOptions {
  bool batching = true;
  size_t max_batch_messages = 16;
  size_t max_batch_bytes = 32 * 1024;
  bool compress = false;
  size_t compress_min_bytes = 64;  // don't bother compressing tiny payloads
  Duration loss_retry_backoff = Duration::Millis(200);
};

struct SchedulerStats {
  uint64_t messages_enqueued = 0;
  uint64_t messages_delivered = 0;
  uint64_t frames_sent = 0;
  uint64_t retries = 0;
  uint64_t bytes_sent = 0;             // frame bytes handed to links
  uint64_t payload_bytes_original = 0; // pre-compression payload total
  uint64_t payload_bytes_sent = 0;     // post-compression payload total
};

class NetworkScheduler {
 public:
  using DeliveredCallback = std::function<void(const Status&)>;
  // Observes total queued-message count after every change; drives the
  // toolkit's user notification ("N requests waiting for connectivity").
  using QueueObserver = std::function<void(size_t depth)>;

  NetworkScheduler(EventLoop* loop, Host* host, SchedulerOptions options = {});

  // Queues `msg` for delivery to msg.header.dst. Returns immediately;
  // `delivered` (may be null) fires when a link accepts the frame carrying
  // this message end-to-end.
  void Enqueue(Message msg, DeliveredCallback delivered = nullptr);

  // Removes a not-yet-transmitted message from the queues. Returns false
  // if it is unknown or already in flight.
  bool CancelMessage(const std::string& dest, uint64_t message_id);

  size_t TotalQueueDepth() const;
  size_t QueueDepthFor(const std::string& dest) const;

  void SetQueueObserver(QueueObserver observer) { observer_ = std::move(observer); }

  const SchedulerStats& stats() const { return stats_; }
  const SchedulerOptions& options() const { return options_; }

  // Highest-quality (bandwidth) currently-up link to `dest`, or nullptr.
  Link* PickLink(const std::string& dest) const;

 private:
  struct Pending {
    Message msg;
    DeliveredCallback delivered;
  };
  struct DestQueue {
    std::array<std::deque<Pending>, kNumPriorities> by_priority;
    bool in_flight = false;
    bool waiting_for_up = false;
    int consecutive_losses = 0;

    bool empty() const;
    size_t size() const;
  };

  void TryDrain(const std::string& dest);
  void SendBatch(const std::string& dest, Link* link);
  void HandleBatchOutcome(const std::string& dest, std::vector<Pending> batch,
                          const Status& status);
  void ArmUpWakeup(const std::string& dest);
  void NotifyObserver();

  EventLoop* loop_;
  Host* host_;
  SchedulerOptions options_;
  SchedulerStats stats_;
  std::map<std::string, DestQueue> queues_;
  QueueObserver observer_;
};

}  // namespace rover

#endif  // ROVER_SRC_TRANSPORT_SCHEDULER_H_
