// Network scheduler (paper §5.3). The lower transport level keeps one set
// of priority queues per destination and decides, whenever any traffic is
// pending, which network interface to use "based on availability and
// quality". It also implements the two channel optimizations the paper's
// evaluation studies:
//
//   * batching: coalescing queued messages into a single frame so that slow
//     links pay per-packet header overhead once per batch, and
//   * compression: LZ-compressing marshalled payloads before transmission.
//
// Delivery is reliable: frames rejected or dropped by a link are requeued
// (in order) and retried when a link to the destination next comes up.
//
// Hot-path design (see docs/architecture.md "Hot-path memory and
// scheduling"): destination names are interned to dense uint32 ids at the
// public boundary -- one hash lookup per call, integer indexing inside.
// Each destination keeps a message_id -> entry index so CancelMessage /
// supersede-withdraw are O(1) instead of a queue scan; cancellation
// tombstones the entry in place (std::deque middle-erase would invalidate
// the index's pointers) and the stone is reclaimed when it reaches either
// end of its deque. Depth and byte gauges are maintained incrementally;
// TotalQueueDepth() is O(1), and AuditQueues() provides the independent
// structural recount the SimCheck conservation invariants compare against.

#ifndef ROVER_SRC_TRANSPORT_SCHEDULER_H_
#define ROVER_SRC_TRANSPORT_SCHEDULER_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/rpc_trace.h"
#include "src/sim/network.h"
#include "src/transport/message.h"
#include "src/transport/overload.h"
#include "src/util/time.h"

namespace rover {

struct SchedulerOptions {
  bool batching = true;
  size_t max_batch_messages = 16;
  size_t max_batch_bytes = 32 * 1024;
  bool compress = false;
  size_t compress_min_bytes = 64;  // don't bother compressing tiny payloads
  // Loss retries use decorrelated jitter: each interval is drawn from
  // [base, 3 * previous], clamped to the max. The seed decorrelates this
  // host from other hosts retrying into the same congested link.
  Duration loss_retry_backoff = Duration::Millis(200);
  Duration loss_retry_backoff_max = Duration::Seconds(30);
  uint64_t backoff_seed = 0x9e3779b97f4a7c15ull;
  // Admission bounds across all destination queues (0 = unbounded). When a
  // bound is hit, queued background messages are shed first (their delivered
  // callback fires kResourceExhausted); an incoming background message is
  // rejected outright; higher-priority traffic is always admitted after
  // shedding -- the QRPC layer bounds it upstream.
  size_t max_queued_messages = 0;
  size_t max_queued_bytes = 0;
  // Token-bucket budget shared by all loss retries (capacity 0 = unlimited).
  // When the bucket empties, retries wait for refill instead of firing, so a
  // fault storm cannot amplify offered load.
  double retry_budget_capacity = 0;
  double retry_budget_refill_per_sec = 10;
  // Per-destination circuit breaker (failure_threshold 0 disables).
  CircuitBreakerOptions breaker;
};

// Snapshot assembled from the metrics registry (see stats()).
struct SchedulerStats {
  uint64_t messages_enqueued = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_expired = 0;       // dropped when their TTL lapsed while queued
  uint64_t frames_sent = 0;
  uint64_t retries = 0;
  uint64_t bytes_sent = 0;             // frame bytes handed to links
  uint64_t payload_bytes_original = 0; // pre-compression payload of enqueued msgs
  uint64_t payload_bytes_sent = 0;     // post-compression payload actually delivered
  uint64_t payload_bytes_cancelled = 0;  // cancelled before any delivery
  uint64_t messages_shed = 0;          // queued background dropped to admit others
  uint64_t enqueue_rejected = 0;       // refused admission at Enqueue
  uint64_t retry_budget_waits = 0;     // retries delayed by an empty budget
  uint64_t breaker_open_transitions = 0;  // closed/half-open -> open edges
};

// Independent structural recount of the queues, for invariant checking
// (SimCheck compares these against the incrementally-maintained gauges).
struct SchedulerQueueAudit {
  size_t messages = 0;       // live (non-tombstone) queued messages
  size_t payload_bytes = 0;  // their payload bytes
  // False if any per-destination incremental counter disagrees with the
  // structural walk -- an index/queue consistency violation.
  bool per_dest_consistent = true;
};

class NetworkScheduler {
 public:
  using DeliveredCallback = std::function<void(const Status&)>;
  // Observes total queued-message count after every change; drives the
  // toolkit's user notification ("N requests waiting for connectivity").
  using QueueObserver = std::function<void(size_t depth)>;
  // Observes per-destination circuit-breaker transitions (fires on every
  // state change, with the new state). The QRPC client uses the kOpen edge
  // on its primary as the failure-detector input for failover.
  using BreakerObserver = std::function<void(const std::string& dest, BreakerState state)>;

  NetworkScheduler(EventLoop* loop, Host* host, SchedulerOptions options = {});
  ~NetworkScheduler();

  // Queues `msg` for delivery to msg.header.dst. Returns immediately;
  // `delivered` (may be null) fires when a link accepts the frame carrying
  // this message end-to-end. A non-zero `ttl` bounds how long the message
  // may wait in the queues: if no link carried it by then it is dropped and
  // `delivered` fires with kDeadlineExceeded -- for best-effort traffic
  // (invalidations) that must not pile up behind a peer that never
  // reconnects. A message already in flight when its TTL lapses is allowed
  // to complete.
  void Enqueue(Message msg, DeliveredCallback delivered = nullptr,
               Duration ttl = Duration::Zero());

  // Removes a not-yet-transmitted message from the queues. Returns false
  // if it is unknown or already in flight. O(1): indexed by message id.
  bool CancelMessage(const std::string& dest, uint64_t message_id);

  // O(1): incremental counters, never a queue walk.
  size_t TotalQueueDepth() const { return total_queued_; }
  size_t QueueDepthFor(const std::string& dest) const;
  // Payload bytes sitting in queues (excludes the in-flight batch).
  size_t QueuedPayloadBytes() const { return queued_payload_bytes_; }
  // Circuit-breaker state for `dest` (kClosed if the dest is unknown).
  BreakerState BreakerStateFor(const std::string& dest) const;

  // Full structural walk (O(queued)); used by invariant checks and tests to
  // verify the incremental counters and the per-dest indexes never drift.
  SchedulerQueueAudit AuditQueues() const;

  void SetQueueObserver(QueueObserver observer) { observer_ = std::move(observer); }
  void SetBreakerObserver(BreakerObserver observer) {
    breaker_observer_ = std::move(observer);
  }

  // Destination rebind (failover): moves every queued -- not in-flight --
  // message addressed to `from` onto `to`'s queues, preserving priority and
  // order, and rewrites their headers. Returns the message ids moved.
  // Messages already in flight are untouched; the caller owns re-sending
  // whatever `from` never answered. O(moved), not O(queue scan).
  std::vector<uint64_t> RebindDestination(const std::string& from, const std::string& to);

  // Re-homes the scheduler's instruments into `registry` under
  // "<prefix>." names, carrying current values over. Call before or after
  // traffic; handles into the previous registry become stale.
  void BindMetrics(obs::Registry* registry, const std::string& prefix = "scheduler");

  // Records kTransmitted span events for request messages it sends.
  void SetTracer(obs::RpcTracer* tracer) { tracer_ = tracer; }

  // Snapshot adapter over the registry counters (kept for existing callers).
  SchedulerStats stats() const;
  const SchedulerOptions& options() const { return options_; }

  // Highest-quality (bandwidth) currently-up link to `dest`, or nullptr.
  Link* PickLink(const std::string& dest) const;

  // Re-examines every parked destination queue: wakeups armed against the
  // link set as it stood earlier are torn down and recomputed. Called when
  // the host's link set changes (a link attached after a queue went to
  // sleep, or after concluding "no route will ever exist"). O(destinations
  // with queued traffic), not O(all destinations ever seen).
  void ReevaluateWakeups();

 private:
  // Dense interned destination id; index into dests_.
  using DestId = uint32_t;

  struct Pending {
    Message msg;
    DeliveredCallback delivered;
    TimePoint expires_at = TimePoint::FromMicros(INT64_MAX);  // TTL deadline
    // Tombstone: the entry was cancelled/expired/shed in place (callback
    // already fired, payload released, counters adjusted). It is skipped by
    // every consumer and physically reclaimed when it reaches a deque end.
    bool cancelled = false;
  };

  struct DestQueue {
    std::string name;  // interned destination name
    std::array<std::deque<Pending>, kNumPriorities> by_priority;
    // message_id -> live queue entry. Entries leave the index when they are
    // tombstoned, pulled into a batch (in-flight messages are not
    // cancellable), or rebound to another destination. On the rare id
    // collision (distinct id spaces can reuse a value against one dest) the
    // later message is simply not indexed: it stays deliverable but is not
    // individually cancellable, matching the old scan's first-match pick.
    std::unordered_map<uint64_t, Pending*> index;
    // Incremental per-destination accounting (live entries only).
    size_t queued_count = 0;
    size_t queued_bytes = 0;
    size_t background_count = 0;
    bool in_flight = false;
    bool waiting_for_up = false;
    // A per-peer link-state observer is registered with the host the first
    // time this queue parks with no usable link; it stays registered for
    // the scheduler's lifetime (observer fires are rare: attach/force-down
    // of a link to this one peer, never unrelated link events).
    bool peer_observer_armed = false;
    EventId up_wakeup_event = kInvalidEventId;
    int consecutive_losses = 0;
    // Retry pacing and overload state (configured lazily in InternDest).
    std::unique_ptr<DecorrelatedJitterBackoff> backoff;
    CircuitBreaker breaker;
    bool breaker_wait_armed = false;

    bool empty() const { return queued_count == 0; }
  };

  // Interns `dest`, creating its queue (with overload state initialised
  // from options) on first use. Ids are dense and never invalidated;
  // dests_ is a deque so element references survive growth.
  DestId InternDest(const std::string& dest);
  const DestQueue* FindDest(const std::string& dest) const;
  DestQueue* FindDest(const std::string& dest);

  // Incremental accounting for a live entry entering/leaving the queues
  // (also maintains the nonempty/background active-destination sets).
  void NoteLiveAdded(DestId id, int prio, size_t payload_bytes);
  void NoteLiveRemoved(DestId id, int prio, size_t payload_bytes);

  // Tombstones a live entry in place: fires `why` through its delivered
  // callback, releases the payload, erases it from the index, and adjusts
  // counters. The caller picks the drop counter to bump.
  void Tombstone(DestId id, int prio, Pending* p, const Status& why);
  // Reclaims tombstones sitting at either end of each priority deque.
  static void TrimTombstones(DestQueue& q);

  // Sheds queued background messages (newest first) until the bounds fit
  // `incoming_bytes` more or no background remains. Returns freed count.
  size_t ShedBackground(size_t incoming_bytes);
  void TryDrain(DestId id);
  // TTL purge for one message (scheduled at its deadline; O(1) via index).
  void ExpireMessage(DestId id, uint64_t message_id);
  void SendBatch(DestId id, Link* link);
  void HandleBatchOutcome(DestId id, std::vector<Pending> batch, const Status& status);
  // Returns false when no wakeup could be armed because no link to `dest`
  // will ever come up again (dead destination).
  bool ArmUpWakeup(DestId id);
  // Registers (once) a host peer-observer for this destination: fires when
  // a link to the peer is attached or forced down, re-evaluating just this
  // queue instead of every parked destination.
  void ArmPeerObserver(DestId id);
  // Verdict for a destination with queued traffic, no up link, and no
  // scheduled reconnection: force the breaker open so observers (failover)
  // learn the destination is gone.
  void NoteDestUnreachable(DestId id);
  void NotifyObserver();
  // Folds a breaker state transition into open_breakers_ and fires the
  // breaker observer; called at every mutation site so NotifyObserver never
  // rescans the queues.
  void NoteBreakerChange(const std::string& dest, BreakerState before, BreakerState after);
  void WireMetrics(obs::Registry* registry, const std::string& prefix);

  EventLoop* loop_;
  Host* host_;
  SchedulerOptions options_;
  // Boundary interning: string keys only here; everything below indexes by
  // DestId. dests_ is a deque: growth never moves existing DestQueues, so
  // references (and the per-dest index's Pending pointers) stay valid.
  std::unordered_map<std::string, DestId> dest_ids_;
  std::deque<DestQueue> dests_;
  // Active-destination sets, maintained on 0 <-> nonzero transitions of the
  // per-dest counters. Ordered so iteration order is deterministic (the
  // simulator replays byte-identically from a seed).
  std::set<DestId> nonempty_dests_;
  std::set<DestId> background_dests_;
  RetryBudget retry_budget_;
  size_t total_queued_ = 0;
  size_t queued_payload_bytes_ = 0;
  // Destinations whose breaker is not kClosed, maintained incrementally
  // (dests_ entries are never removed, so this cannot drift).
  int64_t open_breakers_ = 0;
  QueueObserver observer_;
  BreakerObserver breaker_observer_;
  // Deferred callbacks (up-wakeups, loss-backoff retries, frame
  // completions) capture a weak_ptr to this token and bail out when it is
  // gone, so events queued past the scheduler's destruction -- e.g. a
  // transport rebuilt after a simulated crash -- never touch freed state.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::RpcTracer* tracer_ = nullptr;
  obs::Counter* c_messages_enqueued_ = nullptr;
  obs::Counter* c_messages_delivered_ = nullptr;
  obs::Counter* c_messages_expired_ = nullptr;
  obs::Counter* c_frames_sent_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_bytes_sent_ = nullptr;
  obs::Counter* c_payload_bytes_original_ = nullptr;
  obs::Counter* c_payload_bytes_sent_ = nullptr;
  obs::Counter* c_payload_bytes_cancelled_ = nullptr;
  obs::Counter* c_messages_shed_ = nullptr;
  obs::Counter* c_enqueue_rejected_ = nullptr;
  obs::Counter* c_retry_budget_waits_ = nullptr;
  obs::Counter* c_breaker_opened_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_queued_bytes_ = nullptr;
  obs::Gauge* g_breakers_open_ = nullptr;
};

}  // namespace rover

#endif  // ROVER_SRC_TRANSPORT_SCHEDULER_H_
