// Overload-protection primitives shared by the transport and QRPC layers:
//
//   * decorrelated-jitter backoff [cf. the "exponential backoff and jitter"
//     analysis popularized by AWS]: each retry interval is drawn uniformly
//     from [base, 3 * previous], clamped to a cap, so synchronized clients
//     recovering from the same outage spread their retries instead of
//     hammering the link in lockstep the way a bare exponential does;
//   * a token-bucket retry budget: retries spend tokens that refill at a
//     configured rate, so a fault storm (seeded loss, a flapping peer)
//     cannot amplify one request into an unbounded retry storm -- when the
//     bucket is empty the retry waits for the next token instead of firing;
//   * a per-destination circuit breaker (closed -> open -> half-open): after
//     enough consecutive delivery failures the destination is "open" and
//     nothing is sent until a cooldown passes, then a single half-open probe
//     decides between closing the circuit and re-opening it with a longer
//     cooldown.
//
// All three are pure state machines driven by explicit TimePoints (no
// wall-clock, no sleeps), so unit tests and the discrete-event simulator
// exercise them deterministically.

#ifndef ROVER_SRC_TRANSPORT_OVERLOAD_H_
#define ROVER_SRC_TRANSPORT_OVERLOAD_H_

#include <cstdint>
#include <string_view>

#include "src/util/rng.h"
#include "src/util/time.h"

namespace rover {

// Decorrelated jitter: Next() draws uniformly from [base, 3 * previous],
// clamped to [base, cap]. Reset() returns to the base interval (call it when
// conditions change, e.g. a link reconnects).
class DecorrelatedJitterBackoff {
 public:
  DecorrelatedJitterBackoff(Duration base, Duration cap, uint64_t seed)
      : base_(base), cap_(cap), prev_(base), rng_(seed) {}

  Duration Next();
  void Reset() { prev_ = base_; }
  Duration previous() const { return prev_; }

 private:
  Duration base_;
  Duration cap_;
  Duration prev_;
  Rng rng_;
};

// Token bucket. Starts full; refills continuously at `refill_per_sec` up to
// `capacity`. A capacity of 0 disables the budget (TryConsume always grants).
class RetryBudget {
 public:
  RetryBudget(double capacity, double refill_per_sec)
      : capacity_(capacity), refill_per_sec_(refill_per_sec), tokens_(capacity) {}

  // Consumes one token if available. Refills lazily from `now`.
  bool TryConsume(TimePoint now);

  // Unconditionally reserves one token and returns the time at which the
  // reservation is covered by refill (== `now` when a token is already
  // available). Lets callers that must eventually proceed (reliable-delivery
  // retries) wait out the budget instead of dropping; the long-term grant
  // rate is still exactly `refill_per_sec`.
  TimePoint Reserve(TimePoint now);

  // Tokens available at `now` (after lazy refill).
  double available(TimePoint now);

  // Earliest time at which one token will be available (== `now` when one
  // already is). With a zero refill rate and an empty bucket the budget can
  // never recover; callers should treat that as "drop", not "wait forever".
  TimePoint NextTokenAt(TimePoint now);

  bool enabled() const { return capacity_ > 0; }

 private:
  void Refill(TimePoint now);

  double capacity_;
  double refill_per_sec_;
  double tokens_;
  TimePoint last_refill_ = TimePoint::Epoch();
};

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  // Consecutive failures that trip the breaker. 0 disables it entirely
  // (AllowAttempt always true).
  int failure_threshold = 6;
  // First cooldown; doubles per consecutive re-open, capped below.
  Duration open_duration = Duration::Seconds(2);
  Duration open_duration_max = Duration::Seconds(60);
};

class CircuitBreaker {
 public:
  CircuitBreaker() : CircuitBreaker(CircuitBreakerOptions{}) {}
  explicit CircuitBreaker(CircuitBreakerOptions options)
      : options_(options), cooldown_(options.open_duration) {}

  // True if a send may be attempted now. An open breaker whose cooldown has
  // passed transitions to half-open and grants exactly one probe; further
  // calls return false until that probe's outcome is recorded.
  bool AllowAttempt(TimePoint now);

  // Outcome of an attempted send. A success closes the circuit and resets
  // the failure count and cooldown; a failure increments the count and, at
  // the threshold (or on a failed half-open probe), opens the circuit.
  void RecordSuccess();
  void RecordFailure(TimePoint now);

  // The in-flight half-open probe was abandoned without an outcome (link
  // went down); permits another probe rather than wedging half-open.
  void AbortProbe();

  // Opens the circuit immediately regardless of failure count -- for
  // out-of-band death verdicts (destination unreachable with no scheduled
  // reconnection). No-op when the breaker is disabled (threshold 0).
  void ForceOpen(TimePoint now);

  // Forget all failure history (e.g. the link to the destination was
  // replaced or reconnected: old conditions say nothing about new ones).
  void Reset();

  BreakerState state() const { return state_; }
  TimePoint open_until() const { return open_until_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  void Open(TimePoint now);

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  Duration cooldown_;
  TimePoint open_until_ = TimePoint::Epoch();
  bool probe_outstanding_ = false;
};

}  // namespace rover

#endif  // ROVER_SRC_TRANSPORT_OVERLOAD_H_
