// SMTP-style store-and-forward relay. The paper (§2, §5.3) sends QRPCs
// over SMTP so that requests survive periods when client and server are
// never simultaneously connected: the mail system stores the message and
// forwards it when the next hop is reachable.
//
// SmtpRelay runs on an always-on relay host. It accepts kControl envelope
// messages, spools the inner message per final destination, and forwards
// each after `forward_delay` (modelling MTA queue-scan latency). Its own
// scheduler then holds the message until a link to the destination is up.

#ifndef ROVER_SRC_TRANSPORT_SMTP_H_
#define ROVER_SRC_TRANSPORT_SMTP_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/transport/transport.h"

namespace rover {

struct SmtpRelayOptions {
  // Time between an envelope arriving and the relay attempting delivery.
  Duration forward_delay = Duration::Seconds(1);
};

struct SmtpRelayStats {
  uint64_t envelopes_accepted = 0;
  uint64_t envelopes_forwarded = 0;
  uint64_t envelopes_malformed = 0;
};

class SmtpRelay {
 public:
  SmtpRelay(EventLoop* loop, TransportManager* transport, SmtpRelayOptions options = {});

  const SmtpRelayStats& stats() const { return stats_; }

  // Messages spooled and not yet handed to the scheduler.
  size_t SpoolDepth() const { return spooled_; }

 private:
  void HandleEnvelope(const Message& envelope);

  EventLoop* loop_;
  TransportManager* transport_;
  SmtpRelayOptions options_;
  SmtpRelayStats stats_;
  size_t spooled_ = 0;
};

}  // namespace rover

#endif  // ROVER_SRC_TRANSPORT_SMTP_H_
