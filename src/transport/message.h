// Transport-layer messages. Every unit the network scheduler moves -- QRPC
// requests, responses, acknowledgements, control traffic -- is a Message:
// a small self-describing header plus an opaque payload. Messages travel in
// frames; a frame carries a batch of one or more messages (batching
// amortizes per-packet header overhead on slow links).

#ifndef ROVER_SRC_TRANSPORT_MESSAGE_H_
#define ROVER_SRC_TRANSPORT_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace rover {

enum class MessageType : uint8_t {
  kRequest = 0,   // QRPC request
  kResponse = 1,  // QRPC response
  kAck = 2,       // log-truncation acknowledgement
  kControl = 3,   // transport-internal (e.g. SMTP envelope)
};

// Lower value = more urgent. The paper's network scheduler "has several
// queues for different priorities" (§5.3); foreground traffic is what the
// user is waiting on, background is prefetch.
enum class Priority : uint8_t {
  kForeground = 0,
  kDefault = 1,
  kBackground = 2,
};

constexpr int kNumPriorities = 3;

struct MessageHeader {
  uint64_t message_id = 0;
  MessageType type = MessageType::kRequest;
  Priority priority = Priority::kDefault;
  std::string src;
  std::string dst;
  uint64_t in_reply_to = 0;  // message_id of the request, for responses/acks
  bool compressed = false;   // payload is LzCompress'ed
  std::string auth;          // client credential, checked by the server
  // When non-empty, responses to this request should be sent through this
  // relay host instead of directly (the SMTP path works both ways: a
  // client reachable only by mail receives its results by mail).
  std::string reply_via;
};

struct Message {
  MessageHeader header;
  // Ref-counted slice view: copying a Message bumps a refcount instead of
  // memcpy'ing the payload. On the receive path the payload aliases the
  // frame it arrived in.
  Buffer payload;

  // Serialized size, for scheduler accounting (header + payload). Computed
  // without touching the payload bytes.
  size_t EncodedSize() const;

  void EncodeTo(WireWriter* writer) const;
  // Copying decode: payload is copied out of the reader's window. Use the
  // backing overload on hot paths.
  static Result<Message> DecodeFrom(WireReader* reader);
  // Zero-copy decode: `backing` must be the storage the reader walks over;
  // the payload becomes a slice of it (no copy).
  static Result<Message> DecodeFrom(WireReader* reader, const Buffer& backing);

  Bytes Encode() const;
  static Result<Message> Decode(const Bytes& data);
};

// Frame = batch of messages shipped as one link-layer unit. Wire layout:
//   [varint count] [messages...] [fixed32 CRC over everything before it]
// The trailing CRC lets the sender encode straight into the final buffer
// (no body-then-wrap recopy) while still failing decode on any bit flip.
Bytes EncodeFrame(const std::vector<Message>& messages);
// Pointer form: lets the scheduler frame queued messages without copying
// their headers into a temporary vector first.
Bytes EncodeFrame(const std::vector<const Message*>& messages);
// Takes the frame by value: the storage is adopted and delivered messages'
// payloads alias it. Receive costs zero payload copies.
Result<std::vector<Message>> DecodeFrame(Bytes frame);

std::string_view MessageTypeName(MessageType type);

}  // namespace rover

#endif  // ROVER_SRC_TRANSPORT_MESSAGE_H_
