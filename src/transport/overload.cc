#include "src/transport/overload.h"

#include <algorithm>

namespace rover {

Duration DecorrelatedJitterBackoff::Next() {
  // Returns the current interval, then draws the next one from
  // [base, 3 * current] clamped to the cap. Returning before drawing makes
  // the first retry after Reset() exactly `base` -- deterministic fast
  // first retry on a fresh link -- while later retries decorrelate.
  const Duration current = prev_;
  const int64_t lo = base_.micros();
  // prev * 3 with overflow guard (cap may be large).
  const int64_t hi = prev_.micros() > cap_.micros() / 3
                         ? cap_.micros()
                         : std::max(lo, std::min(prev_.micros() * 3, cap_.micros()));
  prev_ = Duration::Micros(hi > lo ? rng_.NextInRange(lo, hi) : lo);
  return current;
}

bool RetryBudget::TryConsume(TimePoint now) {
  if (!enabled()) {
    return true;
  }
  Refill(now);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

double RetryBudget::available(TimePoint now) {
  if (!enabled()) {
    return 0;
  }
  Refill(now);
  return tokens_;
}

TimePoint RetryBudget::NextTokenAt(TimePoint now) {
  if (!enabled()) {
    return now;
  }
  Refill(now);
  if (tokens_ >= 1.0) {
    return now;
  }
  if (refill_per_sec_ <= 0) {
    return TimePoint::FromMicros(INT64_MAX);
  }
  const double deficit = 1.0 - tokens_;
  return now + Duration::Seconds(deficit / refill_per_sec_);
}

TimePoint RetryBudget::Reserve(TimePoint now) {
  if (!enabled()) {
    return now;
  }
  Refill(now);
  tokens_ -= 1.0;
  if (tokens_ >= 0) {
    return now;
  }
  if (refill_per_sec_ <= 0) {
    tokens_ = 0;  // unrecoverable; don't let the debt grow without bound
    return TimePoint::FromMicros(INT64_MAX);
  }
  // The bucket is in debt: this reservation is covered once refill repays
  // the deficit. Long-term grant rate is exactly refill_per_sec.
  return now + Duration::Seconds(-tokens_ / refill_per_sec_);
}

void RetryBudget::Refill(TimePoint now) {
  if (now <= last_refill_) {
    return;
  }
  const double elapsed_sec = (now - last_refill_).seconds();
  tokens_ = std::min(capacity_, tokens_ + elapsed_sec * refill_per_sec_);
  last_refill_ = now;
}

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::AllowAttempt(TimePoint now) {
  if (options_.failure_threshold <= 0) {
    return true;
  }
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < open_until_) {
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      probe_outstanding_ = true;
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time; its outcome decides the next state.
      return !probe_outstanding_;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  cooldown_ = options_.open_duration;
  state_ = BreakerState::kClosed;
  probe_outstanding_ = false;
}

void CircuitBreaker::RecordFailure(TimePoint now) {
  if (options_.failure_threshold <= 0) {
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: back to open with a longer cooldown.
    cooldown_ = std::min(cooldown_ * 2.0, options_.open_duration_max);
    Open(now);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    Open(now);
  }
}

void CircuitBreaker::AbortProbe() {
  // The half-open probe never reached the destination (e.g. the link went
  // down mid-flight): its outcome says nothing about the peer, so allow a
  // fresh probe instead of wedging in half-open forever.
  if (state_ == BreakerState::kHalfOpen) {
    probe_outstanding_ = false;
  }
}

void CircuitBreaker::Reset() {
  consecutive_failures_ = 0;
  cooldown_ = options_.open_duration;
  state_ = BreakerState::kClosed;
  probe_outstanding_ = false;
  open_until_ = TimePoint::Epoch();
}

void CircuitBreaker::ForceOpen(TimePoint now) {
  if (options_.failure_threshold == 0 || state_ == BreakerState::kOpen) {
    return;
  }
  Open(now);
}

void CircuitBreaker::Open(TimePoint now) {
  state_ = BreakerState::kOpen;
  probe_outstanding_ = false;
  open_until_ = now + cooldown_;
}

}  // namespace rover
