#include "src/transport/smtp.h"

#include <utility>

#include "src/util/logging.h"

namespace rover {

SmtpRelay::SmtpRelay(EventLoop* loop, TransportManager* transport, SmtpRelayOptions options)
    : loop_(loop), transport_(transport), options_(options) {
  transport_->SetHandler(MessageType::kControl,
                         [this](const Message& envelope) { HandleEnvelope(envelope); });
}

void SmtpRelay::HandleEnvelope(const Message& envelope) {
  auto inner = TransportManager::DecodeEnvelope(envelope.payload);
  if (!inner.ok()) {
    ++stats_.envelopes_malformed;
    ROVER_LOG(Warning) << "smtp relay: malformed envelope from " << envelope.header.src;
    return;
  }
  ++stats_.envelopes_accepted;
  ++spooled_;
  auto msg = std::make_shared<Message>(std::move(*inner));
  loop_->ScheduleAfter(options_.forward_delay, [this, msg] {
    --spooled_;
    ++stats_.envelopes_forwarded;
    // Keep the original sender in header.src; the relay is transparent.
    // The scheduler queues until a link to the destination is up.
    transport_->scheduler()->Enqueue(*msg, nullptr);
  });
}

}  // namespace rover
