// Rover Web browser proxy (paper §6.3): a non-blocking front end for
// existing browsers. A page request returns immediately from the cache
// when possible; on a miss the proxy queues a QRPC and lets the user keep
// clicking ahead of the arrived data. When a page arrives, pages it links
// to can be prefetched in the background. Documents are lww-typed RDOs
// whose state is a dict {title, content, links}.
//
// SyntheticWeb builds the workload: a deterministic random site graph with
// configurable page-size and out-degree distributions, standing in for the
// real WWW the paper browsed.

#ifndef ROVER_SRC_APPS_WEB_H_
#define ROVER_SRC_APPS_WEB_H_

#include <deque>
#include <string>
#include <vector>

#include "src/core/toolkit.h"
#include "src/util/rng.h"

namespace rover {

extern const char kWebDocumentCode[];

std::string WebObject(const std::string& url);

struct WebPage {
  std::string url;
  std::string title;
  std::string content;
  std::vector<std::string> links;  // urls
};

std::string EncodeWebState(const WebPage& page);
Result<WebPage> DecodeWebState(const std::string& url, const std::string& state);

// Generates a deterministic site: `page_count` pages named page/0..n-1,
// each with `mean_out_degree` links and exponentially distributed content
// around `mean_content_bytes`, installed into the server's store.
struct SyntheticWebOptions {
  size_t page_count = 100;
  double mean_out_degree = 6.0;
  size_t mean_content_bytes = 6 * 1024;
  uint64_t seed = 1995;
};
Status BuildSyntheticWeb(RoverServerNode* server, const SyntheticWebOptions& options);

// Deterministic random walk over the stored site graph (using the server's
// authoritative link structure), independent of any client's fetch timing.
// Produces `clicks` URLs starting from `start`.
Result<std::vector<std::string>> GenerateBrowsePath(RoverServerNode* server,
                                                    const std::string& start,
                                                    size_t clicks, uint64_t seed);

struct BrowserProxyOptions {
  // Click-ahead: allow new requests while earlier ones are outstanding.
  // When false the proxy behaves like a conventional blocking browser
  // front end (one request at a time) -- the E6 baseline.
  bool click_ahead = true;
  // Prefetch pages linked from each arrived page.
  bool prefetch_links = false;
  size_t prefetch_fanout = 4;  // links per page to prefetch
  // Skip prefetching when the best current link is slower than this: on a
  // link where one page's airtime exceeds a think gap, prefetch traffic
  // delays foreground clicks more than the hits it earns (the paper gates
  // prefetching on a user-specified delay threshold for the same reason).
  double min_prefetch_bandwidth_bps = 0;
};

struct BrowserProxyStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t fetches = 0;
  uint64_t prefetches = 0;
};

class BrowserProxy {
 public:
  struct PageResult {
    Status status;
    WebPage page;
    bool from_cache = false;
    Duration latency;  // request -> page available
  };

  BrowserProxy(EventLoop* loop, RoverClientNode* node, BrowserProxyOptions options = {});

  // Requests a page. With click_ahead, returns a promise immediately even
  // while other requests are outstanding; without it, issuing a request
  // while one is outstanding queues it behind the first (FIFO), modelling
  // a blocking browser.
  Promise<PageResult> Request(const std::string& url);

  bool IsCached(const std::string& url) const;

  const BrowserProxyStats& stats() const { return stats_; }

 private:
  void Fetch(const std::string& url, TimePoint requested_at, Promise<PageResult> promise);
  void MaybePrefetch(const WebPage& page);
  void PumpBlockingQueue();

  EventLoop* loop_;
  RoverClientNode* node_;
  BrowserProxyOptions options_;
  BrowserProxyStats stats_;
  struct QueuedRequest {
    std::string url;
    TimePoint requested_at;  // user-perceived latency starts here
    Promise<PageResult> promise;
  };
  bool blocking_busy_ = false;
  std::deque<QueuedRequest> blocking_queue_;
};

// A scripted user: random-walks the link graph with think time between
// clicks, recording per-click user-perceived latency. The user "perceives"
// a page as soon as its promise resolves; with click-ahead the user clicks
// links from the most recent *visible* page without waiting for earlier
// misses.
struct BrowseSessionOptions {
  size_t clicks = 30;
  Duration think_time_mean = Duration::Seconds(3);
  uint64_t seed = 7;
};

struct BrowseSessionResult {
  size_t pages_visited = 0;
  size_t cache_hits = 0;
  Duration total_latency;      // sum of user-perceived waits
  Duration session_duration;   // first click -> last page arrival
  std::vector<double> latencies_seconds;
};

class BrowseSession {
 public:
  BrowseSession(EventLoop* loop, BrowserProxy* proxy, BrowseSessionOptions options);

  // Starts at `start_url`; resolves when the scripted session finishes.
  // The user clicks a random link of the most recently *arrived* page.
  Promise<BrowseSessionResult> Run(const std::string& start_url);

  // Replays a fixed URL sequence (one request per think gap) instead of a
  // live random walk. Use this to compare proxy configurations on an
  // identical workload -- a random walk diverges as soon as arrival
  // timing differs.
  Promise<BrowseSessionResult> RunPath(std::vector<std::string> path);

 private:
  void Step();
  void Finish();

  EventLoop* loop_;
  BrowserProxy* proxy_;
  BrowseSessionOptions options_;
  Rng rng_;
  Promise<BrowseSessionResult> done_;
  BrowseSessionResult result_;
  std::vector<std::string> current_links_;
  std::vector<std::string> fixed_path_;  // non-empty in RunPath mode
  size_t path_index_ = 0;
  size_t clicks_left_ = 0;
  size_t outstanding_ = 0;
  bool stepping_done_ = false;
  TimePoint session_start_;
  TimePoint last_arrival_;
};

}  // namespace rover

#endif  // ROVER_SRC_APPS_WEB_H_
