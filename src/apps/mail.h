// Rover Exmh analogue (paper §6.1): a mail reader built on the toolkit.
// Folders are set-typed index objects listing message ids; each message is
// an RDO whose state is a dict (from/subject/date/body/read) with methods
// for summaries, bodies, and read-marking. Reading works from the cache
// while disconnected; sending is a queued QRPC that the scheduler delivers
// on reconnection ("sent" messages leave the user's hands immediately).

#ifndef ROVER_SRC_APPS_MAIL_H_
#define ROVER_SRC_APPS_MAIL_H_

#include <string>
#include <vector>

#include "src/core/toolkit.h"

namespace rover {

struct MailMessage {
  std::string id;
  std::string from;
  std::string to;
  std::string subject;
  std::string date;
  std::string body;
  bool read = false;
};

// Message state <-> TcLite dict.
std::string EncodeMailState(const MailMessage& message);
Result<MailMessage> DecodeMailState(const std::string& state);

// The message RDO's TcLite code (summary / body / mark-read / is-read).
extern const char kMailMessageCode[];

// Object naming scheme.
std::string MailFolderObject(const std::string& folder);
std::string MailMessageObject(const std::string& folder, const std::string& id);

// Server side: installs the "mail.deliver" QRPC method (creates the
// message object and adds it to the destination folder index) and seeds
// folders with messages.
class MailService {
 public:
  explicit MailService(RoverServerNode* server);

  // Creates an empty folder index.
  Status CreateFolder(const std::string& folder);

  // Stores a message and links it into the folder (server-local, instant).
  Status DeliverLocal(const std::string& folder, const MailMessage& message);

  uint64_t delivered_count() const { return delivered_; }

 private:
  void HandleDeliver(const RpcRequestBody& req, QrpcServer::Responder respond);

  RoverServerNode* server_;
  uint64_t delivered_ = 0;
};

// Client side: the reader.
class MailReader {
 public:
  struct Stats {
    uint64_t folders_opened = 0;
    uint64_t messages_read = 0;
    uint64_t messages_sent = 0;
    uint64_t prefetched = 0;
  };

  MailReader(EventLoop* loop, RoverClientNode* node);

  // Imports the folder index. Resolves with the list of message ids.
  Promise<Result<std::vector<std::string>>> OpenFolder(const std::string& folder,
                                                       Priority priority = Priority::kForeground);

  // Message ids of an already-opened (cached) folder.
  Result<std::vector<std::string>> ListMessages(const std::string& folder) const;

  // Imports the message (if needed) and returns its body; marks it read
  // locally (a tentative update, exported by SyncReadMarks).
  Promise<Result<std::string>> ReadMessage(const std::string& folder,
                                           const std::string& id,
                                           Priority priority = Priority::kForeground);

  // One-line summary from the cached message (local invoke only).
  Result<std::string> Summary(const std::string& folder, const std::string& id);

  // Queues a background import of every message in the folder -- the
  // "fill the cache before undocking" pattern.
  Status PrefetchFolder(const std::string& folder);

  // Sends a message: a queued QRPC to mail.deliver. `committed` resolves
  // once the message is safely in the stable log (what the user waits
  // for); `result` resolves when the server accepts it, possibly after a
  // long disconnection.
  QrpcCall Send(const std::string& to_folder, const MailMessage& message);

  // Deletes a message from the folder's index (a tentative, local change;
  // SyncFolder commits it). Concurrent deliveries merge: the folder index
  // is set-typed, so a disconnected delete and a server-side delivery of a
  // different message reconcile automatically.
  Status DeleteMessage(const std::string& folder, const std::string& id);

  // Exports a tentative folder-index change (deletes) to the server.
  Promise<ExportResult> SyncFolder(const std::string& folder,
                                   Priority priority = Priority::kDefault);

  // Exports tentative read-marks for all cached messages in the folder.
  void SyncReadMarks(const std::string& folder);

  const Stats& stats() const { return stats_; }

 private:
  EventLoop* loop_;
  RoverClientNode* node_;
  Stats stats_;
};

}  // namespace rover

#endif  // ROVER_SRC_APPS_MAIL_H_
