#include "src/apps/calendar.h"

#include <map>
#include <set>
#include <utility>

#include "src/tclite/value.h"

namespace rover {

const char kCalendarCode[] = R"(
proc book {slot what} {
  global state
  if {[dict exists $state $slot]} { error "slot $slot already booked" }
  set state [dict set $state $slot $what]
  return booked
}
proc cancel {slot} {
  global state
  if {![dict exists $state $slot]} { return 0 }
  set new {}
  foreach {k v} $state {
    if {$k ne $slot} { set new [dict set $new $k $v] }
  }
  set state $new
  return 1
}
proc lookup {slot} {
  global state
  if {[dict exists $state $slot]} { return [dict get $state $slot] }
  return ""
}
proc slots {} { global state; return [dict keys $state] }
proc agenda {prefix} {
  global state
  set out {}
  foreach {k v} $state {
    if {[string match "$prefix*" $k]} { lappend out "$k $v" }
  }
  return [join $out "\n"]
}
proc free {slot} {
  global state
  if {[dict exists $state $slot]} { return 0 }
  return 1
}
)";

std::string CalendarObject(const std::string& name) { return "cal/" + name; }

Status CreateCalendar(RoverServerNode* server, const std::string& name) {
  return server->store()->Create(
      MakeRdo(CalendarObject(name), "calendar", kCalendarCode, ""));
}

CalendarApp::CalendarApp(EventLoop* loop, RoverClientNode* node, std::string calendar_name)
    : loop_(loop), node_(node), object_(CalendarObject(calendar_name)) {}

Promise<ImportResult> CalendarApp::Open() { return node_->access()->Import(object_); }

Promise<InvokeResult> CalendarApp::Book(const std::string& slot, const std::string& what) {
  ++stats_.bookings;
  return node_->access()->Invoke(object_, "book", {slot, what});
}

Promise<InvokeResult> CalendarApp::Cancel(const std::string& slot) {
  ++stats_.cancellations;
  return node_->access()->Invoke(object_, "cancel", {slot});
}

Promise<InvokeResult> CalendarApp::Lookup(const std::string& slot) {
  ++stats_.lookups;
  return node_->access()->Invoke(object_, "lookup", {slot});
}

Result<std::vector<std::string>> CalendarApp::Slots() const {
  ROVER_ASSIGN_OR_RETURN(std::string data, node_->access()->ReadData(object_));
  ROVER_ASSIGN_OR_RETURN(auto kv, TclListSplit(data));
  std::vector<std::string> slots;
  for (size_t i = 0; i + 1 < kv.size(); i += 2) {
    slots.push_back(kv[i]);
  }
  return slots;
}

Promise<ExportResult> CalendarApp::Sync(Priority priority) {
  Promise<ExportResult> promise = node_->access()->Export(object_, priority);
  promise.OnReady([this](const ExportResult& r) {
    if (r.status.code() == StatusCode::kConflict) {
      ++stats_.sync_conflicts;
    }
  });
  return promise;
}

Result<std::vector<std::string>> CalendarApp::ConflictingSlots() const {
  // A failed Sync refreshes the committed view, so "same slot, different
  // value" between tentative and committed identifies the double-bookings
  // the resolver could not merge.
  ROVER_ASSIGN_OR_RETURN(std::string tentative, node_->access()->ReadData(object_));
  ROVER_ASSIGN_OR_RETURN(std::string committed, node_->access()->ReadCommittedData(object_));
  ROVER_ASSIGN_OR_RETURN(auto tentative_kv, TclListSplit(tentative));
  ROVER_ASSIGN_OR_RETURN(auto committed_kv, TclListSplit(committed));
  std::map<std::string, std::string> committed_map;
  for (size_t i = 0; i + 1 < committed_kv.size(); i += 2) {
    committed_map[committed_kv[i]] = committed_kv[i + 1];
  }
  std::vector<std::string> slots;
  for (size_t i = 0; i + 1 < tentative_kv.size(); i += 2) {
    auto it = committed_map.find(tentative_kv[i]);
    if (it != committed_map.end() && it->second != tentative_kv[i + 1]) {
      slots.push_back(tentative_kv[i]);
    }
  }
  return slots;
}

bool CalendarApp::HasPendingChanges() const {
  return node_->access()->IsTentative(object_);
}

}  // namespace rover
