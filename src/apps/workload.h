// Reusable workload generators for experiments and tests (paper §6-7 drive
// every result with mail sessions, calendar interaction, and Web browsing;
// these helpers make such workloads reproducible one-liners).
//
// All generators are deterministic for a given seed.

#ifndef ROVER_SRC_APPS_WORKLOAD_H_
#define ROVER_SRC_APPS_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/apps/mail.h"
#include "src/util/rng.h"

namespace rover {

// Zipf-distributed sampler over {0, ..., n-1}: rank r is drawn with
// probability proportional to 1/(r+1)^s. Web page popularity and mailbox
// access patterns are classically Zipfian; the browse/read workloads use
// this to produce realistic skew (a few hot objects, a long tail).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, uint64_t seed);

  size_t Next();

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities
  Rng rng_;
};

// Generates a deterministic corpus of mail messages: sender pool, subject
// threads, exponentially distributed body sizes.
struct MailCorpusOptions {
  int message_count = 30;
  size_t mean_body_bytes = 2048;
  int sender_pool = 8;
  uint64_t seed = 1995;
};
std::vector<MailMessage> GenerateMailCorpus(const MailCorpusOptions& options);

// An interactive calendar session: a mix of lookups and bookings over a
// week of slots, as E4's workload uses.
struct CalendarOp {
  bool is_booking = false;
  std::string slot;
  std::string description;
};
std::vector<CalendarOp> GenerateCalendarSession(int operations, double booking_fraction,
                                                uint64_t seed);

}  // namespace rover

#endif  // ROVER_SRC_APPS_WORKLOAD_H_
