#include "src/apps/web.h"

#include <algorithm>
#include <utility>

#include "src/tclite/value.h"

namespace rover {

const char kWebDocumentCode[] = R"(
proc title {} { global state; return [dict get $state title] }
proc content {} { global state; return [dict get $state content] }
proc links {} { global state; return [dict get $state links] }
)";

std::string WebObject(const std::string& url) { return "web/" + url; }

std::string EncodeWebState(const WebPage& page) {
  return TclListJoin(
      {"title", page.title, "content", page.content, "links", TclListJoin(page.links)});
}

Result<WebPage> DecodeWebState(const std::string& url, const std::string& state) {
  ROVER_ASSIGN_OR_RETURN(auto kv, TclListSplit(state));
  if (kv.size() % 2 != 0) {
    return InvalidArgumentError("web state is not a dict");
  }
  WebPage page;
  page.url = url;
  for (size_t i = 0; i + 1 < kv.size(); i += 2) {
    if (kv[i] == "title") {
      page.title = kv[i + 1];
    } else if (kv[i] == "content") {
      page.content = kv[i + 1];
    } else if (kv[i] == "links") {
      ROVER_ASSIGN_OR_RETURN(page.links, TclListSplit(kv[i + 1]));
    }
  }
  return page;
}

Status BuildSyntheticWeb(RoverServerNode* server, const SyntheticWebOptions& options) {
  Rng rng(options.seed);
  for (size_t i = 0; i < options.page_count; ++i) {
    WebPage page;
    page.url = "page/" + std::to_string(i);
    page.title = "Synthetic page " + std::to_string(i);
    const size_t bytes = static_cast<size_t>(std::max(
        64.0, rng.NextExponential(static_cast<double>(options.mean_content_bytes))));
    page.content.reserve(bytes);
    // Text-like filler: compressible, as HTML is.
    static const char* kWords[] = {"mobile ", "information ", "access ", "rover ",
                                   "queued ", "object ", "<p>",     "<a href>"};
    while (page.content.size() < bytes) {
      page.content += kWords[rng.NextBelow(8)];
    }
    page.content.resize(bytes);
    const size_t degree = static_cast<size_t>(
        std::max(1.0, rng.NextExponential(options.mean_out_degree)));
    for (size_t k = 0; k < degree; ++k) {
      page.links.push_back("page/" + std::to_string(rng.NextBelow(options.page_count)));
    }
    ROVER_RETURN_IF_ERROR(server->store()->Create(
        MakeRdo(WebObject(page.url), "lww", kWebDocumentCode, EncodeWebState(page))));
  }
  return Status::Ok();
}

Result<std::vector<std::string>> GenerateBrowsePath(RoverServerNode* server,
                                                    const std::string& start,
                                                    size_t clicks, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> path;
  std::string current = start;
  for (size_t i = 0; i < clicks; ++i) {
    path.push_back(current);
    ROVER_ASSIGN_OR_RETURN(RdoDescriptor doc, server->store()->Get(WebObject(current)));
    ROVER_ASSIGN_OR_RETURN(WebPage page, DecodeWebState(current, doc.data));
    if (page.links.empty()) {
      break;
    }
    current = page.links[rng.NextBelow(page.links.size())];
  }
  return path;
}

BrowserProxy::BrowserProxy(EventLoop* loop, RoverClientNode* node,
                           BrowserProxyOptions options)
    : loop_(loop), node_(node), options_(options) {}

bool BrowserProxy::IsCached(const std::string& url) const {
  return node_->access()->HasCached(WebObject(url));
}

Promise<BrowserProxy::PageResult> BrowserProxy::Request(const std::string& url) {
  ++stats_.requests;
  Promise<PageResult> promise;
  if (!options_.click_ahead && blocking_busy_) {
    blocking_queue_.push_back(QueuedRequest{url, loop_->now(), promise});
    return promise;
  }
  if (!options_.click_ahead) {
    blocking_busy_ = true;
  }
  Fetch(url, loop_->now(), promise);
  return promise;
}

void BrowserProxy::Fetch(const std::string& url, TimePoint requested_at,
                         Promise<PageResult> promise) {
  const std::string object = WebObject(url);
  const bool was_cached = node_->access()->HasCached(object);
  if (was_cached) {
    ++stats_.cache_hits;
  } else {
    ++stats_.fetches;
  }
  ImportOptions options;
  options.priority = Priority::kForeground;
  auto import = node_->access()->Import(object, options);
  import.OnReady([this, url, object, requested_at, was_cached,
                  promise](const ImportResult& r) mutable {
    PageResult result;
    result.from_cache = was_cached;
    result.latency = loop_->now() - requested_at;
    if (!r.status.ok()) {
      result.status = r.status;
    } else {
      auto data = node_->access()->ReadData(object);
      if (!data.ok()) {
        result.status = data.status();
      } else {
        auto page = DecodeWebState(url, *data);
        if (!page.ok()) {
          result.status = page.status();
        } else {
          result.page = std::move(*page);
          MaybePrefetch(result.page);
        }
      }
    }
    if (!options_.click_ahead) {
      blocking_busy_ = false;
      // Defer so the current promise's waiters run first.
      loop_->ScheduleAfter(Duration::Zero(), [this] { PumpBlockingQueue(); });
    }
    promise.Set(std::move(result));
  });
}

void BrowserProxy::PumpBlockingQueue() {
  if (blocking_busy_ || blocking_queue_.empty()) {
    return;
  }
  QueuedRequest next = blocking_queue_.front();
  blocking_queue_.pop_front();
  blocking_busy_ = true;
  Fetch(next.url, next.requested_at, next.promise);
}

void BrowserProxy::MaybePrefetch(const WebPage& page) {
  if (!options_.prefetch_links) {
    return;
  }
  if (node_->access()->BestBandwidthBps() < options_.min_prefetch_bandwidth_bps) {
    return;
  }
  std::vector<std::string> objects;
  for (const std::string& link : page.links) {
    if (objects.size() >= options_.prefetch_fanout) {
      break;
    }
    if (!IsCached(link)) {
      objects.push_back(WebObject(link));
    }
  }
  stats_.prefetches += objects.size();
  node_->access()->Prefetch(objects);
}

BrowseSession::BrowseSession(EventLoop* loop, BrowserProxy* proxy,
                             BrowseSessionOptions options)
    : loop_(loop), proxy_(proxy), options_(options), rng_(options.seed) {}

Promise<BrowseSessionResult> BrowseSession::Run(const std::string& start_url) {
  clicks_left_ = options_.clicks;
  session_start_ = loop_->now();
  last_arrival_ = session_start_;
  current_links_ = {start_url};
  Step();
  return done_;
}

Promise<BrowseSessionResult> BrowseSession::RunPath(std::vector<std::string> path) {
  fixed_path_ = std::move(path);
  clicks_left_ = fixed_path_.size();
  session_start_ = loop_->now();
  last_arrival_ = session_start_;
  Step();
  return done_;
}

void BrowseSession::Step() {
  if (clicks_left_ == 0 || (fixed_path_.empty() && current_links_.empty())) {
    stepping_done_ = true;
    if (outstanding_ == 0) {
      Finish();
    }
    return;
  }
  --clicks_left_;
  const std::string url =
      fixed_path_.empty() ? current_links_[rng_.NextBelow(current_links_.size())]
                          : fixed_path_[path_index_++];
  ++outstanding_;
  auto page = proxy_->Request(url);
  page.OnReady([this](const BrowserProxy::PageResult& r) {
    --outstanding_;
    last_arrival_ = loop_->now();
    if (r.status.ok()) {
      ++result_.pages_visited;
      if (r.from_cache) {
        ++result_.cache_hits;
      }
      result_.total_latency += r.latency;
      result_.latencies_seconds.push_back(r.latency.seconds());
      if (!r.page.links.empty()) {
        current_links_ = r.page.links;  // user now sees this page's links
      }
    }
    if (stepping_done_ && outstanding_ == 0) {
      Finish();
    }
  });
  // Think, then click again. With click-ahead the next click happens even
  // if this page has not arrived; without it the proxy serializes fetches.
  const Duration think =
      Duration::Seconds(rng_.NextExponential(options_.think_time_mean.seconds()));
  loop_->ScheduleAfter(think, [this] { Step(); });
}

void BrowseSession::Finish() {
  if (done_.ready()) {
    return;
  }
  result_.session_duration = last_arrival_ - session_start_;
  done_.Set(result_);
}

}  // namespace rover
