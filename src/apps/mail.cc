#include "src/apps/mail.h"

#include <utility>

#include "src/tclite/value.h"

namespace rover {

const char kMailMessageCode[] = R"(
proc summary {} {
  global state
  set flag " "
  if {[dict get $state read]} { set flag R }
  return "$flag [dict get $state from]: [dict get $state subject]"
}
proc body {} { global state; return [dict get $state body] }
proc headers {} {
  global state
  return "From: [dict get $state from]\nTo: [dict get $state to]\nDate: [dict get $state date]\nSubject: [dict get $state subject]"
}
proc mark-read {} { global state; set state [dict set $state read 1]; return 1 }
proc is-read {} { global state; return [dict get $state read] }
)";

std::string EncodeMailState(const MailMessage& message) {
  return TclListJoin({"id", message.id, "from", message.from, "to", message.to,
                      "subject", message.subject, "date", message.date, "body",
                      message.body, "read", message.read ? "1" : "0"});
}

Result<MailMessage> DecodeMailState(const std::string& state) {
  ROVER_ASSIGN_OR_RETURN(auto kv, TclListSplit(state));
  if (kv.size() % 2 != 0) {
    return InvalidArgumentError("mail state is not a dict");
  }
  MailMessage message;
  for (size_t i = 0; i + 1 < kv.size(); i += 2) {
    const std::string& key = kv[i];
    const std::string& value = kv[i + 1];
    if (key == "id") {
      message.id = value;
    } else if (key == "from") {
      message.from = value;
    } else if (key == "to") {
      message.to = value;
    } else if (key == "subject") {
      message.subject = value;
    } else if (key == "date") {
      message.date = value;
    } else if (key == "body") {
      message.body = value;
    } else if (key == "read") {
      message.read = value == "1";
    }
  }
  return message;
}

std::string MailFolderObject(const std::string& folder) { return "mail/" + folder; }

std::string MailMessageObject(const std::string& folder, const std::string& id) {
  return "mail/" + folder + "/msg/" + id;
}

namespace {

constexpr char kFolderCode[] = R"(
proc ids {} { global state; return $state }
proc count {} { global state; return [llength $state] }
proc remove {id} {
  global state
  set i [lsearch $state $id]
  if {$i < 0} { return 0 }
  set state [lreplace $state $i $i]
  return 1
}
proc add {id} {
  global state
  if {[lsearch $state $id] >= 0} { return 0 }
  lappend state $id
  return 1
}
)";

}  // namespace

MailService::MailService(RoverServerNode* server) : server_(server) {
  server_->qrpc()->RegisterHandler(
      "mail.deliver",
      [this](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        HandleDeliver(req, std::move(respond));
      });
}

Status MailService::CreateFolder(const std::string& folder) {
  return server_->store()->Create(MakeRdo(MailFolderObject(folder), "set", kFolderCode, ""));
}

Status MailService::DeliverLocal(const std::string& folder, const MailMessage& message) {
  ObjectStore* store = server_->store();
  const std::string folder_object = MailFolderObject(folder);
  if (!store->Exists(folder_object)) {
    ROVER_RETURN_IF_ERROR(CreateFolder(folder));
  }
  const std::string msg_object = MailMessageObject(folder, message.id);
  if (store->Exists(msg_object)) {
    return AlreadyExistsError("message " + msg_object + " already delivered");
  }
  ROVER_RETURN_IF_ERROR(
      store->Create(MakeRdo(msg_object, "lww", kMailMessageCode, EncodeMailState(message))));
  ROVER_ASSIGN_OR_RETURN(RdoDescriptor index, store->Get(folder_object));
  ROVER_ASSIGN_OR_RETURN(auto ids, TclListSplit(index.data));
  ids.push_back(message.id);
  index.data = TclListJoin(ids);
  ROVER_RETURN_IF_ERROR(store->Put(index).status());
  ++delivered_;
  return Status::Ok();
}

void MailService::HandleDeliver(const RpcRequestBody& req, QrpcServer::Responder respond) {
  RpcResponseBody body;
  if (req.args.size() != 2) {
    body.code = StatusCode::kInvalidArgument;
    body.error_message = "mail.deliver expects [folder, state]";
    respond(body);
    return;
  }
  auto folder = RpcValueAsString(req.args[0]);
  auto state = RpcValueAsString(req.args[1]);
  if (!folder.ok() || !state.ok()) {
    body.code = StatusCode::kInvalidArgument;
    body.error_message = "mail.deliver: bad argument types";
    respond(body);
    return;
  }
  auto message = DecodeMailState(*state);
  if (!message.ok()) {
    body.code = message.status().code();
    body.error_message = message.status().message();
    respond(body);
    return;
  }
  Status status = DeliverLocal(*folder, *message);
  if (!status.ok()) {
    body.code = status.code();
    body.error_message = status.message();
    respond(body);
    return;
  }
  body.result = std::string(message->id);
  respond(body);
}

MailReader::MailReader(EventLoop* loop, RoverClientNode* node) : loop_(loop), node_(node) {}

Promise<Result<std::vector<std::string>>> MailReader::OpenFolder(const std::string& folder,
                                                                 Priority priority) {
  Promise<Result<std::vector<std::string>>> promise;
  ImportOptions options;
  options.priority = priority;
  auto import = node_->access()->Import(MailFolderObject(folder), options);
  import.OnReady([this, folder, promise](const ImportResult& r) mutable {
    if (!r.status.ok()) {
      promise.Set(r.status);
      return;
    }
    ++stats_.folders_opened;
    promise.Set(ListMessages(folder));
  });
  return promise;
}

Result<std::vector<std::string>> MailReader::ListMessages(const std::string& folder) const {
  ROVER_ASSIGN_OR_RETURN(std::string data,
                         node_->access()->ReadData(MailFolderObject(folder)));
  return TclListSplit(data);
}

Promise<Result<std::string>> MailReader::ReadMessage(const std::string& folder,
                                                     const std::string& id,
                                                     Priority priority) {
  Promise<Result<std::string>> promise;
  const std::string object = MailMessageObject(folder, id);
  ImportOptions options;
  options.priority = priority;
  auto import = node_->access()->Import(object, options);
  import.OnReady([this, object, promise](const ImportResult& r) mutable {
    if (!r.status.ok()) {
      promise.Set(r.status);
      return;
    }
    InvokeOptions invoke_options;
    invoke_options.force_site = ExecutionSite::kClient;  // it is cached now
    auto body = node_->access()->Invoke(object, "body", {}, invoke_options);
    body.OnReady([this, object, promise](const InvokeResult& b) mutable {
      if (!b.status.ok()) {
        promise.Set(b.status);
        return;
      }
      ++stats_.messages_read;
      // Mark read locally; tentative until SyncReadMarks exports it.
      InvokeOptions mark_options;
      mark_options.force_site = ExecutionSite::kClient;
      node_->access()->Invoke(object, "mark-read", {}, mark_options);
      promise.Set(Result<std::string>(b.value));
    });
  });
  return promise;
}

Result<std::string> MailReader::Summary(const std::string& folder, const std::string& id) {
  const std::string object = MailMessageObject(folder, id);
  if (!node_->access()->HasCached(object)) {
    return NotFoundError("message not cached: " + object);
  }
  InvokeOptions options;
  options.force_site = ExecutionSite::kClient;
  auto p = node_->access()->Invoke(object, "summary", {}, options);
  if (!p.Wait(loop_)) {
    return InternalError("summary invocation did not complete");
  }
  if (!p.value().status.ok()) {
    return p.value().status;
  }
  return p.value().value;
}

Status MailReader::PrefetchFolder(const std::string& folder) {
  ROVER_ASSIGN_OR_RETURN(std::vector<std::string> ids, ListMessages(folder));
  std::vector<std::string> objects;
  objects.reserve(ids.size());
  for (const std::string& id : ids) {
    objects.push_back(MailMessageObject(folder, id));
  }
  stats_.prefetched += objects.size();
  node_->access()->Prefetch(objects);
  return Status::Ok();
}

QrpcCall MailReader::Send(const std::string& to_folder, const MailMessage& message) {
  ++stats_.messages_sent;
  QrpcCallOptions options;
  options.priority = Priority::kDefault;
  return node_->qrpc()->Call(node_->access()->options().server_host, "mail.deliver",
                             {std::string(to_folder), EncodeMailState(message)}, options);
}

Status MailReader::DeleteMessage(const std::string& folder, const std::string& id) {
  const std::string folder_object = MailFolderObject(folder);
  if (!node_->access()->HasCached(folder_object)) {
    return FailedPreconditionError("folder not cached: " + folder);
  }
  InvokeOptions options;
  options.force_site = ExecutionSite::kClient;
  auto p = node_->access()->Invoke(folder_object, "remove", {id}, options);
  if (!p.Wait(loop_)) {
    return InternalError("delete invocation did not complete");
  }
  if (!p.value().status.ok()) {
    return p.value().status;
  }
  if (p.value().value == "0") {
    return NotFoundError("message " + id + " not in folder " + folder);
  }
  // Drop the cached message body too; the server-side object is garbage
  // collected out of band (as in the prototype).
  node_->access()->Evict(MailMessageObject(folder, id));
  return Status::Ok();
}

Promise<ExportResult> MailReader::SyncFolder(const std::string& folder, Priority priority) {
  return node_->access()->Export(MailFolderObject(folder), priority);
}

void MailReader::SyncReadMarks(const std::string& folder) {
  auto ids = ListMessages(folder);
  if (!ids.ok()) {
    return;
  }
  for (const std::string& id : *ids) {
    const std::string object = MailMessageObject(folder, id);
    if (node_->access()->IsTentative(object)) {
      node_->access()->Export(object, Priority::kBackground);
    }
  }
}

}  // namespace rover
