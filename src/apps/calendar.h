// Rover Ical analogue (paper §6.2): a distributed calendar whose GUI-side
// logic is an RDO that migrates to the client. Appointments live in a
// calendar-typed object (dict slot -> entry) whose resolver merges
// non-overlapping bookings and reports genuine double-bookings back to the
// application as tentative data the user must fix.

#ifndef ROVER_SRC_APPS_CALENDAR_H_
#define ROVER_SRC_APPS_CALENDAR_H_

#include <string>
#include <vector>

#include "src/core/toolkit.h"

namespace rover {

// The calendar RDO's TcLite code (book/cancel/lookup/slots/agenda/free).
extern const char kCalendarCode[];

std::string CalendarObject(const std::string& name);

// Creates a calendar object on the server.
Status CreateCalendar(RoverServerNode* server, const std::string& name);

class CalendarApp {
 public:
  struct Stats {
    uint64_t bookings = 0;
    uint64_t cancellations = 0;
    uint64_t lookups = 0;
    uint64_t sync_conflicts = 0;  // exports rejected as unresolvable
  };

  CalendarApp(EventLoop* loop, RoverClientNode* node, std::string calendar_name);

  // Loads the calendar into the cache.
  Promise<ImportResult> Open();

  // Books `slot` (tentative until Sync). The invocation runs wherever the
  // migration policy says -- this is experiment E4's knob.
  Promise<InvokeResult> Book(const std::string& slot, const std::string& what);

  Promise<InvokeResult> Cancel(const std::string& slot);

  // Reads a slot (local when cached; round trip otherwise).
  Promise<InvokeResult> Lookup(const std::string& slot);

  // All booked slots, from the local replica.
  Result<std::vector<std::string>> Slots() const;

  // Exports tentative bookings to the home server. On an unresolvable
  // conflict the local data stays tentative and sync_conflicts increments;
  // the conflicting slots can be inspected via ConflictingSlots.
  Promise<ExportResult> Sync(Priority priority = Priority::kDefault);

  // Slots whose local tentative value differs from the server's committed
  // value (available after a failed Sync refreshed the committed view).
  Result<std::vector<std::string>> ConflictingSlots() const;

  bool HasPendingChanges() const;

  const Stats& stats() const { return stats_; }
  const std::string& object_name() const { return object_; }

 private:
  EventLoop* loop_;
  RoverClientNode* node_;
  std::string object_;
  Stats stats_;
};

}  // namespace rover

#endif  // ROVER_SRC_APPS_CALENDAR_H_
