#include "src/apps/workload.h"

#include <algorithm>
#include <cmath>

namespace rover {

ZipfSampler::ZipfSampler(size_t n, double s, uint64_t seed) : rng_(seed) {
  cdf_.resize(std::max<size_t>(n, 1));
  double total = 0;
  for (size_t r = 0; r < cdf_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

size_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::min<ptrdiff_t>(it - cdf_.begin(),
                                                 static_cast<ptrdiff_t>(cdf_.size()) - 1));
}

std::vector<MailMessage> GenerateMailCorpus(const MailCorpusOptions& options) {
  Rng rng(options.seed);
  static const char* kSubjects[] = {
      "status report", "SOSP camera ready", "quals scheduling", "toolkit design",
      "budget question", "seminar announcement", "code review", "travel plans",
  };
  std::vector<MailMessage> corpus;
  corpus.reserve(static_cast<size_t>(options.message_count));
  for (int i = 0; i < options.message_count; ++i) {
    MailMessage m;
    m.id = std::to_string(i);
    m.from = "user" + std::to_string(rng.NextBelow(
                          static_cast<uint64_t>(options.sender_pool))) +
             "@lcs.mit.edu";
    m.to = "adj@lcs.mit.edu";
    m.subject = std::string(kSubjects[rng.NextBelow(8)]) + " (" + m.id + ")";
    m.date = "1995-12-0" + std::to_string(1 + rng.NextBelow(9));
    const size_t body_bytes = static_cast<size_t>(std::max(
        64.0, rng.NextExponential(static_cast<double>(options.mean_body_bytes))));
    m.body.reserve(body_bytes);
    static const char* kWords[] = {"the ", "toolkit ", "queued ", "object ",
                                   "meeting ", "deadline ", "draft ", "results "};
    while (m.body.size() < body_bytes) {
      m.body += kWords[rng.NextBelow(8)];
    }
    m.body.resize(body_bytes);
    corpus.push_back(std::move(m));
  }
  return corpus;
}

std::vector<CalendarOp> GenerateCalendarSession(int operations, double booking_fraction,
                                                uint64_t seed) {
  Rng rng(seed);
  static const char* kDays[] = {"mon", "tue", "wed", "thu", "fri"};
  std::vector<CalendarOp> ops;
  ops.reserve(static_cast<size_t>(operations));
  for (int i = 0; i < operations; ++i) {
    CalendarOp op;
    op.is_booking = rng.NextBool(booking_fraction);
    op.slot = std::string(kDays[rng.NextBelow(5)]) + "-" +
              std::to_string(8 + rng.NextBelow(10)) + "00";
    if (op.is_booking) {
      op.description = "meeting-" + std::to_string(i);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace rover
