// Network fabric: a set of named hosts joined by point-to-point links.
// A mobile host typically owns several links to its home server (Ethernet
// dock, WaveLAN, dial-up modem), each with its own connectivity schedule;
// the transport layer's network scheduler picks among them.
//
// Hosts keep a per-peer index over their links so the hot-path questions
// ("which links reach this peer?", "can I reach it right now?") cost
// O(links-to-that-peer) -- typically 1 -- instead of O(all attached
// links). A server fanning in 10k clients has 10k links; without the
// index every response send re-scanned all of them.

#ifndef ROVER_SRC_SIM_NETWORK_H_
#define ROVER_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/link.h"
#include "src/util/status.h"

namespace rover {

// Process-wide count of link entries examined by Host peer lookups
// (LinksTo, CanReach). Tests assert this stays flat as unrelated links
// are attached -- the scan-work-per-send regression guard.
uint64_t HostLinkScanSteps();
void ResetHostLinkScanSteps();

class Network;

class Host {
 public:
  // By-value frame: the host forwards the link's storage to the transport
  // without copying.
  using Receiver = std::function<void(Bytes frame, const std::string& from_host)>;

  const std::string& name() const { return name_; }

  // All links attached to this host, in attachment order.
  const std::vector<Link*>& links() const { return links_; }

  // Links whose far end is `peer`, in attachment order. The reference is
  // into the host's peer index: valid until the next Attach, never a copy.
  const std::vector<Link*>& LinksTo(const std::string& peer) const;

  // True if any link to `peer` is currently up. O(1) when the peer has an
  // always-up link; otherwise scans just that peer's links.
  bool CanReach(const std::string& peer) const;

  // Registers the upcall for frames arriving on any attached link. `owner`
  // identifies the registrant so ClearReceiver can be a no-op when someone
  // else has re-registered since (a replacement transport may be built
  // before its predecessor is destroyed).
  void SetReceiver(Receiver receiver, const void* owner = nullptr);
  void ClearReceiver(const void* owner);

  // Fires whenever a link is attached to this host or administratively
  // forced down. Kept for callers that genuinely care about every change;
  // the transport's scheduler uses per-peer observers instead.
  void SetLinkChangeListener(std::function<void()> listener, const void* owner = nullptr);
  void ClearLinkChangeListener(const void* owner);

  // Per-peer link-state observers: fire when a link to `peer` is attached
  // or forced down. This is how N parked queues avoid N wakeup scans on
  // every unrelated link event. `owner` scopes removal.
  void AddPeerObserver(const std::string& peer, std::function<void()> observer,
                       const void* owner);
  void RemovePeerObservers(const void* owner);

 private:
  friend class Network;
  explicit Host(std::string name) : name_(std::move(name)) {}

  struct PeerEntry {
    std::vector<Link*> links;
    // Count of links that are up at every t (always-up schedule, not
    // forced down): the CanReach fast path.
    int always_up = 0;
    std::vector<std::pair<const void*, std::function<void()>>> observers;
  };

  void Attach(Link* link);
  void HandleFrame(Bytes frame, const std::string& from);
  void OnLinkForcedDown(const std::string& peer);
  void NotifyPeerChange(PeerEntry& entry);

  std::string name_;
  std::vector<Link*> links_;
  std::unordered_map<std::string, PeerEntry> peers_;
  Receiver receiver_;
  const void* receiver_owner_ = nullptr;
  std::function<void()> link_change_listener_;
  const void* listener_owner_ = nullptr;
};

class Network {
 public:
  explicit Network(EventLoop* loop) : loop_(loop) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop* loop() const { return loop_; }

  // Creates (or returns the existing) host with this name.
  Host* AddHost(const std::string& name);

  Host* FindHost(const std::string& name) const;

  // Connects two hosts with a new link. Both hosts are created on demand.
  // A null schedule means always-up.
  Link* Connect(const std::string& host_a, const std::string& host_b, LinkProfile profile,
                std::unique_ptr<ConnectivitySchedule> schedule = nullptr);

  const std::vector<std::unique_ptr<Link>>& all_links() const { return links_; }

 private:
  EventLoop* loop_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Link>> links_;
  uint64_t next_link_seed_ = 0x9e3779b9;
};

}  // namespace rover

#endif  // ROVER_SRC_SIM_NETWORK_H_
