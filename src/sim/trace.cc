#include "src/sim/trace.h"

namespace rover {

void Trace::Record(const std::string& category, const std::string& detail) {
  entries_.push_back(Entry{loop_->now(), category, detail});
}

void Trace::Bump(const std::string& counter, double delta) { counters_[counter] += delta; }

double Trace::Counter(const std::string& counter) const {
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0.0 : it->second;
}

std::vector<Trace::Entry> Trace::EntriesFor(const std::string& category) const {
  std::vector<Entry> out;
  for (const Entry& e : entries_) {
    if (e.category == category) {
      out.push_back(e);
    }
  }
  return out;
}

size_t Trace::CountFor(const std::string& category) const {
  size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.category == category) {
      ++n;
    }
  }
  return n;
}

void Trace::Clear() {
  entries_.clear();
  counters_.clear();
}

}  // namespace rover
