// Discrete-event simulation core. A single EventLoop owns virtual time for
// one simulated world; every component (links, transports, QRPC engines,
// applications) schedules callbacks on it. Events at equal timestamps run
// in scheduling order, which keeps runs fully deterministic.
//
// Storage is hybrid (see docs/architecture.md "Scaling the fan-in path"):
// near-term events live in a binary min-heap ordered by (time, seq); far
// timers -- deadlines, TTLs, breaker cooldowns, scrub intervals, the
// population that is mostly *cancelled* before it fires -- live in a
// hierarchical timer wheel with O(1) insert and O(1) cancel that reclaims
// the entry immediately (no tombstone lingering until its timestamp pops).
// Wheel slots are flushed into the heap before any event they could
// precede executes, so the observable execution order is bit-for-bit the
// (time, seq) order of a plain heap. Heap cancellations still tombstone
// (a binary heap has no O(1) erase), but the loop compacts the heap when
// tombstones outnumber live entries, bounding both memory and pop cost
// under arm/cancel churn.

#ifndef ROVER_SRC_SIM_EVENT_LOOP_H_
#define ROVER_SRC_SIM_EVENT_LOOP_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace rover {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (clamped to now()).
  EventId ScheduleAt(TimePoint t, std::function<void()> fn);

  // Schedules `fn` to run `d` after now().
  EventId ScheduleAfter(Duration d, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already ran or is unknown.
  // Wheel-resident events (far timers) are reclaimed immediately.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number executed.
  size_t Run();

  // Runs events with timestamp <= t, then advances now() to t.
  size_t RunUntil(TimePoint t);

  // RunUntil(now() + d).
  size_t RunFor(Duration d);

  // Runs at most one pending event. Returns false if the queue was empty.
  bool Step();

  // Timestamp of the next live (non-cancelled) event, if any. Does not
  // advance time.
  std::optional<TimePoint> NextEventTime();

  // Live (non-cancelled) events across heap, wheel, and overflow.
  size_t pending_events() const {
    return heap_ids_.size() + wheel_count_ + overflow_.size();
  }

  // Guard against runaway simulations: Run() aborts (returns) after this
  // many events. Default is 200M, far above any experiment in this repo.
  void set_event_limit(size_t limit) { event_limit_ = limit; }

  // Test hook: with the wheel off, every event goes straight to the heap
  // (the pre-wheel implementation). Determinism tests run the same
  // schedule in both modes and require identical execution order.
  void set_timer_wheel_enabled(bool on) { wheel_enabled_ = on; }

  // Introspection for tests: events currently parked in wheel slots (plus
  // the overflow ring), i.e. cancellable in O(1) without a tombstone.
  size_t wheel_resident_events() const { return wheel_count_ + overflow_.size(); }
  // Physical heap entries, including not-yet-reclaimed tombstones.
  size_t heap_physical_size() const { return heap_.size(); }

 private:
  struct Event {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO among ties
    }
  };

  // Wheel geometry: 4 levels x 64 slots. Level L buckets timestamps by
  // 2^(14 + 6L) us, so slot widths are ~16ms / ~1s / ~67s / ~71min and the
  // levels span ~1s / ~67s / ~71min / ~76h of delta from now(). Events
  // farther out than the top span (rare: "never"-style sentinels) sit in
  // an id-keyed overflow map, also O(1) to cancel.
  static constexpr int kWheelLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr int kShift0 = 14;
  static constexpr int LevelShift(int level) { return kShift0 + kSlotBits * level; }
  static constexpr int64_t LevelSpanMicros(int level) {
    return static_cast<int64_t>(kSlots) << LevelShift(level);
  }
  // Events closer than this go straight to the heap.
  static constexpr int64_t kNearHorizonMicros = int64_t{1} << kShift0;

  struct Slot {
    std::vector<Event> events;
    // Lower bound on the earliest `when` present; exact on insert, left
    // conservatively stale by cancellation, reset when the slot empties.
    int64_t min_when = INT64_MAX;
  };
  struct Locator {
    uint8_t level;
    uint8_t slot;
    uint32_t pos;
  };

  void InsertEvent(Event ev);
  void PushHeap(Event ev);
  void CompactHeapIfNeeded();
  // Flushes every wheel slot (and overflow entry) that could hold an event
  // with when <= bound into the heap, then refreshes wheel_next_.
  void CascadeDue(int64_t bound);
  // Ensures the heap front is the globally next live event (cascading and
  // dropping tombstones as needed). False when nothing is pending.
  bool PrepareNext();
  // Pops and runs the prepared heap front.
  void RunPrepared();
  bool PopAndRun();

  TimePoint now_ = TimePoint::Epoch();
  uint64_t next_seq_ = 1;
  size_t event_limit_ = 200'000'000;
  bool wheel_enabled_ = true;

  // Near-term storage: binary heap + live-id set + tombstone set.
  std::vector<Event> heap_;
  std::unordered_set<uint64_t> heap_ids_;   // live heap events
  std::unordered_set<uint64_t> cancelled_;  // tombstoned heap events

  // Far-timer storage.
  std::array<std::array<Slot, kSlots>, kWheelLevels> wheel_;
  std::unordered_map<uint64_t, Locator> wheel_index_;
  size_t wheel_count_ = 0;
  std::unordered_map<uint64_t, Event> overflow_;
  int64_t overflow_min_ = INT64_MAX;
  // Lower bound over every slot's min_when and overflow_min_; the pop path
  // compares the heap front against this single number and touches the
  // wheel only when it could matter.
  int64_t wheel_next_ = INT64_MAX;
};

}  // namespace rover

#endif  // ROVER_SRC_SIM_EVENT_LOOP_H_
