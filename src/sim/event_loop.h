// Discrete-event simulation core. A single EventLoop owns virtual time for
// one simulated world; every component (links, transports, QRPC engines,
// applications) schedules callbacks on it. Events at equal timestamps run
// in scheduling order, which keeps runs fully deterministic.

#ifndef ROVER_SRC_SIM_EVENT_LOOP_H_
#define ROVER_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace rover {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (clamped to now()).
  EventId ScheduleAt(TimePoint t, std::function<void()> fn);

  // Schedules `fn` to run `d` after now().
  EventId ScheduleAfter(Duration d, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already ran or is unknown.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number executed.
  size_t Run();

  // Runs events with timestamp <= t, then advances now() to t.
  size_t RunUntil(TimePoint t);

  // RunUntil(now() + d).
  size_t RunFor(Duration d);

  // Runs at most one pending event. Returns false if the queue was empty.
  bool Step();

  // Timestamp of the next live (non-cancelled) event, if any. Does not
  // advance time.
  std::optional<TimePoint> NextEventTime();

  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  // Guard against runaway simulations: Run() aborts (returns) after this
  // many events. Default is 200M, far above any experiment in this repo.
  void set_event_limit(size_t limit) { event_limit_ = limit; }

 private:
  struct Event {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // min-heap on time
      }
      return a.seq > b.seq;  // FIFO among ties
    }
  };

  bool PopAndRun();

  TimePoint now_ = TimePoint::Epoch();
  uint64_t next_seq_ = 1;
  size_t event_limit_ = 200'000'000;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace rover

#endif  // ROVER_SRC_SIM_EVENT_LOOP_H_
