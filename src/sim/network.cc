#include "src/sim/network.h"

#include <algorithm>
#include <utility>

namespace rover {

namespace {
uint64_t g_link_scan_steps = 0;
const std::vector<Link*> kNoLinks;
}  // namespace

uint64_t HostLinkScanSteps() { return g_link_scan_steps; }
void ResetHostLinkScanSteps() { g_link_scan_steps = 0; }

const std::vector<Link*>& Host::LinksTo(const std::string& peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    ++g_link_scan_steps;
    return kNoLinks;
  }
  g_link_scan_steps += it->second.links.size();
  return it->second.links;
}

bool Host::CanReach(const std::string& peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    ++g_link_scan_steps;
    return false;
  }
  if (it->second.always_up > 0) {
    ++g_link_scan_steps;
    return true;
  }
  // No always-up link: consult this peer's (few) scheduled links.
  for (Link* link : it->second.links) {
    ++g_link_scan_steps;
    if (link->IsUp()) {
      return true;
    }
  }
  return false;
}

void Host::SetReceiver(Receiver receiver, const void* owner) {
  receiver_ = std::move(receiver);
  receiver_owner_ = owner;
}

void Host::ClearReceiver(const void* owner) {
  if (receiver_owner_ == owner) {
    receiver_ = nullptr;
    receiver_owner_ = nullptr;
  }
}

void Host::SetLinkChangeListener(std::function<void()> listener, const void* owner) {
  link_change_listener_ = std::move(listener);
  listener_owner_ = owner;
}

void Host::ClearLinkChangeListener(const void* owner) {
  if (listener_owner_ == owner) {
    link_change_listener_ = nullptr;
    listener_owner_ = nullptr;
  }
}

void Host::AddPeerObserver(const std::string& peer, std::function<void()> observer,
                           const void* owner) {
  peers_[peer].observers.emplace_back(owner, std::move(observer));
}

void Host::RemovePeerObservers(const void* owner) {
  for (auto& [peer, entry] : peers_) {
    auto& obs = entry.observers;
    obs.erase(std::remove_if(obs.begin(), obs.end(),
                             [owner](const auto& o) { return o.first == owner; }),
              obs.end());
  }
}

void Host::NotifyPeerChange(PeerEntry& entry) {
  // Copy: an observer may re-arm (append) while we iterate.
  const auto observers = entry.observers;
  for (const auto& [owner, fn] : observers) {
    fn();
  }
  if (link_change_listener_) {
    link_change_listener_();
  }
}

void Host::OnLinkForcedDown(const std::string& peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    return;
  }
  PeerEntry& entry = it->second;
  // Recompute rather than decrement: ForceDown is rare and idempotence
  // (plus future state kinds) is simpler to keep correct this way.
  entry.always_up = 0;
  for (Link* link : entry.links) {
    if (link->IsAlwaysUp()) {
      ++entry.always_up;
    }
  }
  NotifyPeerChange(entry);
}

void Host::Attach(Link* link) {
  links_.push_back(link);
  const std::string peer = link->PeerOf(name_);
  PeerEntry& entry = peers_[peer];
  entry.links.push_back(link);
  if (link->IsAlwaysUp()) {
    ++entry.always_up;
  }
  link->AddStateObserver([this, peer] { OnLinkForcedDown(peer); });
  link->SetFrameHandler(name_, [this](Bytes frame, const std::string& from) {
    HandleFrame(std::move(frame), from);
  });
  NotifyPeerChange(entry);
}

void Host::HandleFrame(Bytes frame, const std::string& from) {
  if (receiver_) {
    receiver_(std::move(frame), from);
  }
}

Host* Network::AddHost(const std::string& name) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) {
    return it->second.get();
  }
  auto host = std::unique_ptr<Host>(new Host(name));
  Host* raw = host.get();
  hosts_.emplace(name, std::move(host));
  return raw;
}

Host* Network::FindHost(const std::string& name) const {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Link* Network::Connect(const std::string& host_a, const std::string& host_b,
                       LinkProfile profile, std::unique_ptr<ConnectivitySchedule> schedule) {
  Host* a = AddHost(host_a);
  Host* b = AddHost(host_b);
  links_.push_back(std::make_unique<Link>(loop_, host_a, host_b, std::move(profile),
                                          std::move(schedule), next_link_seed_++));
  Link* link = links_.back().get();
  a->Attach(link);
  b->Attach(link);
  return link;
}

}  // namespace rover
