#include "src/sim/network.h"

#include <utility>

namespace rover {

std::vector<Link*> Host::LinksTo(const std::string& peer) const {
  std::vector<Link*> out;
  for (Link* link : links_) {
    if (link->PeerOf(name_) == peer) {
      out.push_back(link);
    }
  }
  return out;
}

bool Host::CanReach(const std::string& peer) const {
  for (Link* link : links_) {
    if (link->PeerOf(name_) == peer && link->IsUp()) {
      return true;
    }
  }
  return false;
}

void Host::SetReceiver(Receiver receiver, const void* owner) {
  receiver_ = std::move(receiver);
  receiver_owner_ = owner;
}

void Host::ClearReceiver(const void* owner) {
  if (receiver_owner_ == owner) {
    receiver_ = nullptr;
    receiver_owner_ = nullptr;
  }
}

void Host::SetLinkChangeListener(std::function<void()> listener, const void* owner) {
  link_change_listener_ = std::move(listener);
  listener_owner_ = owner;
}

void Host::ClearLinkChangeListener(const void* owner) {
  if (listener_owner_ == owner) {
    link_change_listener_ = nullptr;
    listener_owner_ = nullptr;
  }
}

void Host::Attach(Link* link) {
  links_.push_back(link);
  link->SetFrameHandler(name_, [this](Bytes frame, const std::string& from) {
    HandleFrame(std::move(frame), from);
  });
  if (link_change_listener_) {
    link_change_listener_();
  }
}

void Host::HandleFrame(Bytes frame, const std::string& from) {
  if (receiver_) {
    receiver_(std::move(frame), from);
  }
}

Host* Network::AddHost(const std::string& name) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) {
    return it->second.get();
  }
  auto host = std::unique_ptr<Host>(new Host(name));
  Host* raw = host.get();
  hosts_.emplace(name, std::move(host));
  return raw;
}

Host* Network::FindHost(const std::string& name) const {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Link* Network::Connect(const std::string& host_a, const std::string& host_b,
                       LinkProfile profile, std::unique_ptr<ConnectivitySchedule> schedule) {
  Host* a = AddHost(host_a);
  Host* b = AddHost(host_b);
  links_.push_back(std::make_unique<Link>(loop_, host_a, host_b, std::move(profile),
                                          std::move(schedule), next_link_seed_++));
  Link* link = links_.back().get();
  a->Attach(link);
  b->Attach(link);
  return link;
}

}  // namespace rover
