#include "src/sim/event_loop.h"

#include <algorithm>
#include <utility>

#include "src/obs/cpu_scope.h"

namespace rover {

EventId EventLoop::ScheduleAt(TimePoint t, std::function<void()> fn) {
  if (t < now_) {
    t = now_;
  }
  const uint64_t seq = next_seq_++;
  InsertEvent(Event{t, seq, std::move(fn)});
  return seq;
}

EventId EventLoop::ScheduleAfter(Duration d, std::function<void()> fn) {
  return ScheduleAt(now_ + d, std::move(fn));
}

void EventLoop::PushHeap(Event ev) {
  heap_ids_.insert(ev.seq);
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

void EventLoop::InsertEvent(Event ev) {
  const int64_t when = ev.when.micros();
  const int64_t delta = when - now_.micros();
  if (!wheel_enabled_ || delta < kNearHorizonMicros) {
    PushHeap(std::move(ev));
    return;
  }
  for (int level = 0; level < kWheelLevels; ++level) {
    if (delta >= LevelSpanMicros(level)) {
      continue;
    }
    const int slot = static_cast<int>((when >> LevelShift(level)) & (kSlots - 1));
    Slot& s = wheel_[level][slot];
    s.min_when = std::min(s.min_when, when);
    wheel_next_ = std::min(wheel_next_, s.min_when);
    wheel_index_.emplace(
        ev.seq, Locator{static_cast<uint8_t>(level), static_cast<uint8_t>(slot),
                        static_cast<uint32_t>(s.events.size())});
    s.events.push_back(std::move(ev));
    ++wheel_count_;
    return;
  }
  // Beyond the top span (~76h out): park in the overflow map.
  overflow_min_ = std::min(overflow_min_, when);
  wheel_next_ = std::min(wheel_next_, overflow_min_);
  overflow_.emplace(ev.seq, std::move(ev));
}

bool EventLoop::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) {
    return false;
  }
  // Wheel-resident: reclaim in place (swap-remove keeps the slot dense).
  auto wit = wheel_index_.find(id);
  if (wit != wheel_index_.end()) {
    const Locator loc = wit->second;
    auto& events = wheel_[loc.level][loc.slot].events;
    if (loc.pos + 1 != events.size()) {
      events[loc.pos] = std::move(events.back());
      wheel_index_[events[loc.pos].seq].pos = loc.pos;
    }
    events.pop_back();
    if (events.empty()) {
      wheel_[loc.level][loc.slot].min_when = INT64_MAX;
    }
    wheel_index_.erase(wit);
    --wheel_count_;
    return true;
  }
  if (overflow_.erase(id) > 0) {
    // overflow_min_ may now be stale; it stays a valid lower bound.
    return true;
  }
  // Heap-resident: tombstone, reclaimed at pop or by compaction.
  if (heap_ids_.erase(id) > 0) {
    cancelled_.insert(id);
    CompactHeapIfNeeded();
    return true;
  }
  return false;  // already ran, already cancelled, or unknown
}

void EventLoop::CompactHeapIfNeeded() {
  // Rebuild once tombstones outnumber live entries (and are worth the
  // walk): memory and per-pop skip cost stay proportional to live events.
  if (cancelled_.size() < 64 || cancelled_.size() * 2 <= heap_.size()) {
    return;
  }
  auto live_end = std::remove_if(heap_.begin(), heap_.end(), [this](const Event& ev) {
    return cancelled_.count(ev.seq) > 0;
  });
  heap_.erase(live_end, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EventOrder{});
  cancelled_.clear();
}

void EventLoop::CascadeDue(int64_t bound) {
  // Dump every slot whose lower bound reaches `bound` into the heap. The
  // heap re-establishes exact (time, seq) order, so flushing a whole slot
  // early is always correct -- the wheel only needs to guarantee nothing
  // that should run at or before `bound` is still parked afterwards.
  for (int level = 0; level < kWheelLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      Slot& s = wheel_[level][slot];
      if (s.events.empty() || s.min_when > bound) {
        continue;
      }
      for (Event& ev : s.events) {
        wheel_index_.erase(ev.seq);
        PushHeap(std::move(ev));
      }
      wheel_count_ -= s.events.size();
      s.events.clear();
      s.min_when = INT64_MAX;
    }
  }
  if (overflow_min_ <= bound && !overflow_.empty()) {
    // Re-sort overflow entries: anything now inside the wheel span moves
    // down; anything at or before `bound` must reach the heap regardless.
    std::vector<Event> moved;
    int64_t remaining_min = INT64_MAX;
    for (auto it = overflow_.begin(); it != overflow_.end();) {
      const int64_t when = it->second.when.micros();
      if (when <= bound || when - now_.micros() < LevelSpanMicros(kWheelLevels - 1)) {
        moved.push_back(std::move(it->second));
        it = overflow_.erase(it);
      } else {
        remaining_min = std::min(remaining_min, when);
        ++it;
      }
    }
    overflow_min_ = remaining_min;
    for (Event& ev : moved) {
      if (ev.when.micros() <= bound) {
        PushHeap(std::move(ev));
      } else {
        InsertEvent(std::move(ev));
      }
    }
  }
  // Refresh the global lower bound from the (possibly stale) slot bounds.
  int64_t next = overflow_min_;
  for (const auto& level : wheel_) {
    for (const Slot& s : level) {
      next = std::min(next, s.min_when);
    }
  }
  wheel_next_ = next;
}

bool EventLoop::PrepareNext() {
  for (;;) {
    // Reclaim tombstones that reached the heap front.
    while (!heap_.empty() && cancelled_.erase(heap_.front().seq) > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
      heap_.pop_back();
    }
    const int64_t front_when = heap_.empty() ? INT64_MAX : heap_.front().when.micros();
    if ((wheel_count_ == 0 && overflow_.empty()) || wheel_next_ > front_when) {
      return !heap_.empty();
    }
    // A wheel slot could hold an event ordered at or before the heap
    // front; flush and re-check. CascadeDue refreshes wheel_next_, so a
    // stale lower bound makes progress instead of looping.
    CascadeDue(front_when);
  }
}

void EventLoop::RunPrepared() {
  std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  heap_ids_.erase(ev.seq);
  now_ = ev.when;
  ev.fn();
}

bool EventLoop::PopAndRun() {
  {
    obs::CpuScope cpu(obs::CpuZone::kEventLoopPop);
    if (!PrepareNext()) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  }
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  heap_ids_.erase(ev.seq);
  now_ = ev.when;
  ev.fn();
  return true;
}

size_t EventLoop::Run() {
  size_t executed = 0;
  while (executed < event_limit_ && PopAndRun()) {
    ++executed;
  }
  return executed;
}

size_t EventLoop::RunUntil(TimePoint t) {
  size_t executed = 0;
  while (executed < event_limit_) {
    bool ready;
    {
      obs::CpuScope cpu(obs::CpuZone::kEventLoopPop);
      ready = PrepareNext() && heap_.front().when <= t;
    }
    if (!ready) {
      break;
    }
    RunPrepared();
    ++executed;
  }
  if (now_ < t) {
    now_ = t;
  }
  return executed;
}

size_t EventLoop::RunFor(Duration d) { return RunUntil(now_ + d); }

bool EventLoop::Step() { return PopAndRun(); }

std::optional<TimePoint> EventLoop::NextEventTime() {
  if (!PrepareNext()) {
    return std::nullopt;
  }
  return heap_.front().when;
}

}  // namespace rover
