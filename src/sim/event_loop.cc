#include "src/sim/event_loop.h"

#include <utility>

namespace rover {

EventId EventLoop::ScheduleAt(TimePoint t, std::function<void()> fn) {
  if (t < now_) {
    t = now_;
  }
  const uint64_t seq = next_seq_++;
  queue_.push(Event{t, seq, std::move(fn)});
  return seq;
}

EventId EventLoop::ScheduleAfter(Duration d, std::function<void()> fn) {
  return ScheduleAt(now_ + d, std::move(fn));
}

bool EventLoop::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) {
    return false;
  }
  // Tombstone; the event is skipped when popped.
  return cancelled_.insert(id).second;
}

bool EventLoop::PopAndRun() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq) > 0) {
      continue;
    }
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

size_t EventLoop::Run() {
  size_t executed = 0;
  while (executed < event_limit_ && PopAndRun()) {
    ++executed;
  }
  return executed;
}

size_t EventLoop::RunUntil(TimePoint t) {
  size_t executed = 0;
  while (executed < event_limit_ && !queue_.empty()) {
    // Skip tombstones at the head so their timestamps don't gate progress.
    while (!queue_.empty() && cancelled_.count(queue_.top().seq) > 0) {
      cancelled_.erase(queue_.top().seq);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > t) {
      break;
    }
    if (PopAndRun()) {
      ++executed;
    }
  }
  if (now_ < t) {
    now_ = t;
  }
  return executed;
}

size_t EventLoop::RunFor(Duration d) { return RunUntil(now_ + d); }

bool EventLoop::Step() { return PopAndRun(); }

std::optional<TimePoint> EventLoop::NextEventTime() {
  while (!queue_.empty() && cancelled_.count(queue_.top().seq) > 0) {
    cancelled_.erase(queue_.top().seq);
    queue_.pop();
  }
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.top().when;
}

}  // namespace rover
