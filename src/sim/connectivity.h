// Connectivity schedules model a mobile host's intermittent network
// attachment: always-connected office Ethernet, periodic "docking", or a
// randomized walk between coverage and dead zones. A schedule answers two
// questions the transport layer needs: is the interface up at time t, and
// when is the next state transition?

#ifndef ROVER_SRC_SIM_CONNECTIVITY_H_
#define ROVER_SRC_SIM_CONNECTIVITY_H_

#include <memory>
#include <vector>

#include "src/util/rng.h"
#include "src/util/time.h"

namespace rover {

class ConnectivitySchedule {
 public:
  virtual ~ConnectivitySchedule() = default;

  virtual bool IsUp(TimePoint t) const = 0;

  // The next time strictly after `t` at which IsUp changes value, or
  // TimePoint::FromMicros(INT64_MAX) if the state never changes again.
  virtual TimePoint NextTransition(TimePoint t) const = 0;

  // Earliest time >= t at which the link is up (t itself if up at t).
  TimePoint NextUpTime(TimePoint t) const;

  // True when IsUp is true for every t. Lets connectivity indexes answer
  // reachability in O(1) without consulting the schedule per query.
  virtual bool IsAlwaysUp() const { return false; }
};

// Permanently up (or permanently down).
class ConstantConnectivity : public ConnectivitySchedule {
 public:
  explicit ConstantConnectivity(bool up) : up_(up) {}
  bool IsUp(TimePoint t) const override { return up_; }
  TimePoint NextTransition(TimePoint t) const override;
  bool IsAlwaysUp() const override { return up_; }

 private:
  bool up_;
};

// Repeats: up for `up_duration`, then down for `down_duration`, starting
// (up) at `phase`. Before `phase` the link is down.
class PeriodicConnectivity : public ConnectivitySchedule {
 public:
  PeriodicConnectivity(Duration up_duration, Duration down_duration,
                       TimePoint phase = TimePoint::Epoch());
  bool IsUp(TimePoint t) const override;
  TimePoint NextTransition(TimePoint t) const override;

 private:
  Duration up_;
  Duration down_;
  TimePoint phase_;
};

// An explicit, sorted list of [start, end) up-intervals; down elsewhere.
class IntervalConnectivity : public ConnectivitySchedule {
 public:
  struct Interval {
    TimePoint start;
    TimePoint end;
  };
  explicit IntervalConnectivity(std::vector<Interval> up_intervals);
  bool IsUp(TimePoint t) const override;
  TimePoint NextTransition(TimePoint t) const override;

 private:
  std::vector<Interval> intervals_;
};

// Draws alternating up/down period lengths from exponential distributions
// (pre-generated over `horizon` so lookups are deterministic and O(log n)).
std::unique_ptr<IntervalConnectivity> MakeRandomConnectivity(Rng* rng, Duration mean_up,
                                                             Duration mean_down,
                                                             Duration horizon,
                                                             bool start_up = true);

}  // namespace rover

#endif  // ROVER_SRC_SIM_CONNECTIVITY_H_
