#include "src/sim/link.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace rover {

LinkProfile LinkProfile::Ethernet10() {
  LinkProfile p;
  p.name = "ethernet-10Mb";
  p.bandwidth_bps = 10e6;
  p.latency = Duration::Micros(250);
  p.mtu = 1460;
  p.per_packet_overhead = 40;
  return p;
}

LinkProfile LinkProfile::WaveLan2() {
  LinkProfile p;
  p.name = "wavelan-2Mb";
  p.bandwidth_bps = 2e6;
  p.latency = Duration::Millis(2);
  p.mtu = 1400;
  p.per_packet_overhead = 50;  // 802-style framing + IP/TCP
  return p;
}

LinkProfile LinkProfile::Cslip144() {
  LinkProfile p;
  p.name = "cslip-14.4Kb";
  p.bandwidth_bps = 14.4e3;
  p.latency = Duration::Millis(50);  // modem + serial path
  p.mtu = 296;                       // classic SLIP MTU for interactive latency
  p.per_packet_overhead = 5;         // Van Jacobson compressed TCP/IP header
  return p;
}

LinkProfile LinkProfile::Cslip24() {
  LinkProfile p;
  p.name = "cslip-2.4Kb";
  p.bandwidth_bps = 2.4e3;
  p.latency = Duration::Millis(150);
  p.mtu = 296;
  p.per_packet_overhead = 5;
  return p;
}

std::vector<LinkProfile> LinkProfile::PaperNetworks() {
  return {Ethernet10(), WaveLan2(), Cslip144(), Cslip24()};
}

Link::Link(EventLoop* loop, std::string host_a, std::string host_b, LinkProfile profile,
           std::unique_ptr<ConnectivitySchedule> schedule, uint64_t loss_seed)
    : loop_(loop),
      host_a_(std::move(host_a)),
      host_b_(std::move(host_b)),
      profile_(std::move(profile)),
      schedule_(std::move(schedule)),
      loss_rng_(loss_seed) {
  if (schedule_ == nullptr) {
    schedule_ = std::make_unique<ConstantConnectivity>(true);
  }
  WireMetrics(&own_metrics_, "link." + profile_.name);
}

void Link::WireMetrics(obs::Registry* registry, const std::string& prefix) {
  c_frames_sent_ = registry->counter(prefix + ".frames_sent");
  c_frames_delivered_ = registry->counter(prefix + ".frames_delivered");
  c_frames_lost_ = registry->counter(prefix + ".frames_lost");
  c_frames_corrupted_ = registry->counter(prefix + ".frames_corrupted");
  c_frames_rejected_ = registry->counter(prefix + ".frames_rejected");
  c_frames_duplicated_ = registry->counter(prefix + ".frames_duplicated");
  c_frames_reordered_ = registry->counter(prefix + ".frames_reordered");
  c_payload_bytes_ = registry->counter(prefix + ".payload_bytes");
  c_wire_bytes_ = registry->counter(prefix + ".wire_bytes");
}

void Link::BindMetrics(obs::Registry* registry, const std::string& prefix) {
  const LinkStats carried = stats();
  WireMetrics(registry, prefix);
  c_frames_sent_->Increment(carried.frames_sent);
  c_frames_delivered_->Increment(carried.frames_delivered);
  c_frames_lost_->Increment(carried.frames_lost);
  c_frames_corrupted_->Increment(carried.frames_corrupted);
  c_frames_rejected_->Increment(carried.frames_rejected);
  c_frames_duplicated_->Increment(carried.frames_duplicated);
  c_frames_reordered_->Increment(carried.frames_reordered);
  c_payload_bytes_->Increment(carried.payload_bytes);
  c_wire_bytes_->Increment(carried.wire_bytes);
}

LinkStats Link::stats() const {
  LinkStats s;
  s.frames_sent = c_frames_sent_->value();
  s.frames_delivered = c_frames_delivered_->value();
  s.frames_lost = c_frames_lost_->value();
  s.frames_corrupted = c_frames_corrupted_->value();
  s.frames_rejected = c_frames_rejected_->value();
  s.frames_duplicated = c_frames_duplicated_->value();
  s.frames_reordered = c_frames_reordered_->value();
  s.payload_bytes = c_payload_bytes_->value();
  s.wire_bytes = c_wire_bytes_->value();
  return s;
}

void Link::ResetStats() {
  c_frames_sent_->Reset();
  c_frames_delivered_->Reset();
  c_frames_lost_->Reset();
  c_frames_corrupted_->Reset();
  c_frames_rejected_->Reset();
  c_frames_duplicated_->Reset();
  c_frames_reordered_->Reset();
  c_payload_bytes_->Reset();
  c_wire_bytes_->Reset();
}

std::string Link::PeerOf(const std::string& host) const {
  if (host == host_a_) {
    return host_b_;
  }
  if (host == host_b_) {
    return host_a_;
  }
  return "";
}

bool Link::IsUp() const { return !forced_down_ && schedule_->IsUp(loop_->now()); }

void Link::ForceDown() {
  if (forced_down_) {
    return;
  }
  forced_down_ = true;
  for (const auto& observer : state_observers_) {
    observer();
  }
}

void Link::AddStateObserver(std::function<void()> observer) {
  state_observers_.push_back(std::move(observer));
}

TimePoint Link::NextUpTime() const {
  if (forced_down_) {
    return TimePoint::FromMicros(INT64_MAX);
  }
  return schedule_->NextUpTime(loop_->now());
}

void Link::SetFrameHandler(const std::string& receiving_host, FrameHandler handler) {
  // Direction 0 carries a->b traffic, so host_b_ receives it.
  if (receiving_host == host_b_) {
    handlers_[0] = std::move(handler);
  } else if (receiving_host == host_a_) {
    handlers_[1] = std::move(handler);
  }
}

int Link::DirectionFrom(const std::string& host) const {
  if (host == host_a_) {
    return 0;
  }
  if (host == host_b_) {
    return 1;
  }
  return -1;
}

size_t Link::PacketCount(size_t payload_bytes) const {
  if (payload_bytes == 0) {
    return 1;  // a bare header still crosses the wire (e.g. an ACK)
  }
  return (payload_bytes + profile_.mtu - 1) / profile_.mtu;
}

size_t Link::WireBytes(size_t payload_bytes) const {
  return payload_bytes + PacketCount(payload_bytes) * profile_.per_packet_overhead;
}

Duration Link::TransferTime(size_t payload_bytes) const {
  const double bits = static_cast<double>(WireBytes(payload_bytes)) * 8.0;
  return Duration::Seconds(bits / profile_.bandwidth_bps);
}

void Link::SendFrame(const std::string& from_host, Bytes frame, DeliveryCallback done) {
  const int dir = DirectionFrom(from_host);
  if (dir < 0) {
    if (done) {
      done(InvalidArgumentError("host " + from_host + " is not an endpoint of this link"));
    }
    return;
  }
  const TimePoint now = loop_->now();
  if (forced_down_ || !schedule_->IsUp(now)) {
    c_frames_rejected_->Increment();
    if (done) {
      // Fail asynchronously so callers never observe re-entrant completion.
      loop_->ScheduleAfter(Duration::Zero(),
                           [done] { done(UnavailableError("link down")); });
    }
    return;
  }

  TimePoint start = std::max(now, busy_until_[dir]);
  // Dial-up connect cost after a long idle gap.
  if (!profile_.connect_cost.is_zero() &&
      start - last_activity_ > profile_.idle_threshold) {
    start += profile_.connect_cost;
  }

  c_frames_sent_->Increment();
  c_wire_bytes_->Increment(WireBytes(frame.size()));

  // Walk the connectivity schedule, transmitting only while the link is up.
  // Bytes sent before a drop are preserved (the reliable transport under us
  // resumes rather than restarting), so a frame larger than any single up
  // window still makes progress. If the schedule never comes up again while
  // bytes remain, the frame is lost.
  double remaining_bits = static_cast<double>(WireBytes(frame.size())) * 8.0;
  TimePoint t = start;
  constexpr TimePoint kNever = TimePoint::FromMicros(INT64_MAX);
  while (remaining_bits > 0.0) {
    if (!schedule_->IsUp(t)) {
      const TimePoint up = schedule_->NextUpTime(t);
      if (up == kNever) {
        c_frames_lost_->Increment();
        busy_until_[dir] = t;
        loop_->ScheduleAt(t, [done] {
          if (done) {
            done(UnavailableError("link down with no future connectivity"));
          }
        });
        return;
      }
      t = up;
      continue;
    }
    const TimePoint window_end = schedule_->NextTransition(t);
    const Duration needed = Duration::Seconds(remaining_bits / profile_.bandwidth_bps);
    if (window_end == kNever || t + needed <= window_end) {
      t += needed;
      remaining_bits = 0.0;
    } else {
      remaining_bits -= (window_end - t).seconds() * profile_.bandwidth_bps;
      t = window_end;
    }
  }
  const TimePoint tx_done = t;
  const TimePoint arrival = tx_done + profile_.latency;
  busy_until_[dir] = tx_done;
  last_activity_ = tx_done;

  // Random loss: any lost packet loses the frame (the reliable channel above
  // retransmits whole messages).
  if (profile_.loss_prob > 0.0) {
    const double p_ok = std::pow(1.0 - profile_.loss_prob,
                                 static_cast<double>(PacketCount(frame.size())));
    if (!loss_rng_.NextBool(p_ok)) {
      c_frames_lost_->Increment();
      // The sender learns about the loss one RTT-ish later (retransmit timer).
      loop_->ScheduleAt(arrival + profile_.latency, [done] {
        if (done) {
          done(DataLossError("frame lost"));
        }
      });
      return;
    }
  }

  // Bit corruption: the receiver sees a damaged frame (its decoder drops
  // it); the sender's reliability layer finds out a round trip later.
  if (profile_.corrupt_prob > 0.0 && loss_rng_.NextBool(profile_.corrupt_prob) &&
      !frame.empty()) {
    c_frames_corrupted_->Increment();
    Bytes damaged = frame;
    damaged[damaged.size() / 2] ^= 0xa5;
    auto damaged_ptr = std::make_shared<Bytes>(std::move(damaged));
    loop_->ScheduleAt(arrival, [this, dir, damaged_ptr, from_host] {
      if (handlers_[dir]) {
        handlers_[dir](std::move(*damaged_ptr), from_host);
      }
    });
    loop_->ScheduleAt(arrival + profile_.latency, [done] {
      if (done) {
        done(DataLossError("frame corrupted"));
      }
    });
    return;
  }

  // Reordering: hold the frame back so frames transmitted after it arrive
  // first. The sender's completion is delayed with the frame -- from its
  // point of view the link was just slow.
  TimePoint deliver_at = arrival;
  if (profile_.reorder_prob > 0.0 && loss_rng_.NextBool(profile_.reorder_prob)) {
    c_frames_reordered_->Increment();
    deliver_at += profile_.reorder_delay;
  }

  // Duplication: the receiver sees the frame twice (a stale retransmission
  // still in the network); delivery/payload counters count it once and the
  // sender sees a single OK.
  const bool duplicate =
      profile_.duplicate_prob > 0.0 && loss_rng_.NextBool(profile_.duplicate_prob);

  const size_t payload = frame.size();
  auto frame_ptr = std::make_shared<Bytes>(std::move(frame));
  loop_->ScheduleAt(deliver_at, [this, dir, frame_ptr, done, payload, from_host,
                                 duplicate] {
    c_frames_delivered_->Increment();
    c_payload_bytes_->Increment(payload);
    if (handlers_[dir]) {
      // A pending duplicate delivery still needs the bytes; otherwise hand
      // the storage to the receiver outright.
      handlers_[dir](duplicate ? *frame_ptr : std::move(*frame_ptr), from_host);
    }
    if (done) {
      done(Status::Ok());
    }
  });
  if (duplicate) {
    c_frames_duplicated_->Increment();
    loop_->ScheduleAt(deliver_at + profile_.latency, [this, dir, frame_ptr, from_host] {
      if (handlers_[dir]) {
        handlers_[dir](std::move(*frame_ptr), from_host);
      }
    });
  }
}

void Link::NotifyWhenUp(std::function<void()> cb) {
  const TimePoint up = NextUpTime();
  if (up == TimePoint::FromMicros(INT64_MAX)) {
    return;  // never up again; callback dropped
  }
  loop_->ScheduleAt(up, std::move(cb));
}

}  // namespace rover
