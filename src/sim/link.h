// Point-to-point link model. A Link joins two named hosts and charges
// frames for packetization (MTU + per-packet header overhead), store-and-
// forward serialization at the profile's bandwidth, one-way propagation
// latency, optional dial-up connection establishment, and per-packet loss.
// Links honour a ConnectivitySchedule: frames sent while down fail
// immediately, and frames in flight when the link drops are lost.
//
// Profiles below are calibrated to the paper's testbed (§7): switched
// 10 Mbit/s Ethernet, 2 Mbit/s AT&T WaveLAN, and CSLIP with Van Jacobson
// TCP/IP header compression over 14.4 and 2.4 Kbit/s dial-up lines.

#ifndef ROVER_SRC_SIM_LINK_H_
#define ROVER_SRC_SIM_LINK_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/connectivity.h"
#include "src/sim/event_loop.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace rover {

struct LinkProfile {
  std::string name;
  double bandwidth_bps = 10e6;
  Duration latency = Duration::Micros(250);  // one-way propagation + switching
  size_t mtu = 1460;                         // payload bytes per packet
  size_t per_packet_overhead = 40;           // TCP/IP header bytes (5 with VJ compression)
  double loss_prob = 0.0;                    // per-packet loss probability
  // Probability a delivered frame arrives bit-damaged: the receiver gets a
  // corrupted copy (and drops it after failing to decode), while the sender
  // learns of the failure one RTT later, as with loss.
  double corrupt_prob = 0.0;
  // Probability a delivered frame arrives twice at the receiver (a stale
  // retransmission surviving in the network). The sender sees a single OK.
  double duplicate_prob = 0.0;
  // Probability a delivered frame is held back by `reorder_delay`, letting
  // frames sent after it arrive first. Sender-side completion is delayed
  // with it (the outcome is still "delivered").
  double reorder_prob = 0.0;
  Duration reorder_delay = Duration::Millis(20);
  Duration connect_cost = Duration::Zero();  // paid after `idle_threshold` of silence
  Duration idle_threshold = Duration::Seconds(30);

  // The paper's four networks.
  static LinkProfile Ethernet10();  // switched 10 Mbit/s Ethernet
  static LinkProfile WaveLan2();    // 2 Mbit/s AT&T WaveLAN (wireless)
  static LinkProfile Cslip144();    // 14.4 Kbit/s dial-up, VJ header compression
  static LinkProfile Cslip24();     // 2.4 Kbit/s dial-up, VJ header compression

  // All four, in descending bandwidth order (the order the paper's tables use).
  static std::vector<LinkProfile> PaperNetworks();
};

// Snapshot assembled from the metrics registry (see stats()).
struct LinkStats {
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_lost = 0;      // loss model or mid-transfer disconnect
  uint64_t frames_corrupted = 0;
  uint64_t frames_rejected = 0;  // link was down at send time
  uint64_t frames_duplicated = 0;  // delivered a second time to the receiver
  uint64_t frames_reordered = 0;   // held back so later frames overtake
  uint64_t payload_bytes = 0;    // delivered payload
  uint64_t wire_bytes = 0;       // payload + packet header overhead, delivered or not
};

class Link {
 public:
  // Invoked at the *sender* when the frame outcome is known: OK on delivery,
  // kUnavailable if the link was/went down, kDataLoss for random packet loss
  // (models the sender's retransmission timer expiring).
  using DeliveryCallback = std::function<void(const Status&)>;
  // Invoked at the *receiver* when a frame arrives. The frame is passed by
  // value so the link can move its storage straight into the receiving
  // transport (which adopts it and slices message payloads out of it).
  using FrameHandler = std::function<void(Bytes frame, const std::string& from)>;

  Link(EventLoop* loop, std::string host_a, std::string host_b, LinkProfile profile,
       std::unique_ptr<ConnectivitySchedule> schedule, uint64_t loss_seed = 1);

  const std::string& host_a() const { return host_a_; }
  const std::string& host_b() const { return host_b_; }
  const LinkProfile& profile() const { return profile_; }
  // Snapshot adapter over the registry counters (kept for existing callers).
  LinkStats stats() const;
  void ResetStats();

  // Re-homes the link's instruments into `registry` under "<prefix>." names
  // (e.g. "link.wavelan-2Mb"), carrying current values over.
  void BindMetrics(obs::Registry* registry, const std::string& prefix);

  // Returns the peer of `host`, or "" if `host` is not an endpoint.
  std::string PeerOf(const std::string& host) const;

  bool IsUp() const;
  TimePoint NextUpTime() const;

  // Administratively downs the link for good, overriding the connectivity
  // schedule -- models the interfaces of a host that died (failover kills).
  // Irreversible; frames already in transit complete or are lost per the
  // schedule as it stood when they were sent. Notifies state observers.
  void ForceDown();
  bool forced_down() const { return forced_down_; }

  // True when the schedule keeps the link up at every t (and it has not
  // been forced down). Basis for O(1) reachability indexes.
  bool IsAlwaysUp() const { return !forced_down_ && schedule_->IsAlwaysUp(); }

  // Observers fire on administrative state changes (currently: ForceDown).
  // Hosts register one per endpoint to keep their peer indexes current.
  void AddStateObserver(std::function<void()> observer);

  void SetFrameHandler(const std::string& receiving_host, FrameHandler handler);

  // Sends `frame` from `from_host` to its peer. `done` may be null.
  void SendFrame(const std::string& from_host, Bytes frame, DeliveryCallback done);

  // One-shot: runs `cb` the next time the link is up (immediately if up now).
  void NotifyWhenUp(std::function<void()> cb);

  // Pure serialization time for `payload_bytes` at this profile (packetized,
  // with header overhead; no latency, queueing, or connect cost).
  Duration TransferTime(size_t payload_bytes) const;

  size_t PacketCount(size_t payload_bytes) const;
  size_t WireBytes(size_t payload_bytes) const;

 private:
  int DirectionFrom(const std::string& host) const;  // 0: a->b, 1: b->a
  void WireMetrics(obs::Registry* registry, const std::string& prefix);

  EventLoop* loop_;
  std::string host_a_;
  std::string host_b_;
  LinkProfile profile_;
  std::unique_ptr<ConnectivitySchedule> schedule_;
  bool forced_down_ = false;
  std::vector<std::function<void()>> state_observers_;
  Rng loss_rng_;
  obs::Registry own_metrics_;  // used until BindMetrics() points elsewhere
  obs::Counter* c_frames_sent_ = nullptr;
  obs::Counter* c_frames_delivered_ = nullptr;
  obs::Counter* c_frames_lost_ = nullptr;
  obs::Counter* c_frames_corrupted_ = nullptr;
  obs::Counter* c_frames_rejected_ = nullptr;
  obs::Counter* c_frames_duplicated_ = nullptr;
  obs::Counter* c_frames_reordered_ = nullptr;
  obs::Counter* c_payload_bytes_ = nullptr;
  obs::Counter* c_wire_bytes_ = nullptr;
  std::array<FrameHandler, 2> handlers_;  // index = receiving direction (0 means b receives)
  std::array<TimePoint, 2> busy_until_ = {TimePoint::Epoch(), TimePoint::Epoch()};
  TimePoint last_activity_ = TimePoint::FromMicros(INT64_MIN / 2);
};

}  // namespace rover

#endif  // ROVER_SRC_SIM_LINK_H_
