// Trace recorder: a timestamped journal plus named counters. Tests assert
// on event ordering; benchmarks aggregate counters (bytes on wire, QRPCs
// queued, cache hits) into table rows.

#ifndef ROVER_SRC_SIM_TRACE_H_
#define ROVER_SRC_SIM_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/util/time.h"

namespace rover {

class Trace {
 public:
  struct Entry {
    TimePoint when;
    std::string category;
    std::string detail;
  };

  explicit Trace(EventLoop* loop) : loop_(loop) {}

  void Record(const std::string& category, const std::string& detail);

  void Bump(const std::string& counter, double delta = 1.0);

  double Counter(const std::string& counter) const;

  const std::vector<Entry>& entries() const { return entries_; }

  // Entries matching a category, in time order.
  std::vector<Entry> EntriesFor(const std::string& category) const;

  size_t CountFor(const std::string& category) const;

  void Clear();

 private:
  EventLoop* loop_;
  std::vector<Entry> entries_;
  std::map<std::string, double> counters_;
};

}  // namespace rover

#endif  // ROVER_SRC_SIM_TRACE_H_
