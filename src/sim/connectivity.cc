#include "src/sim/connectivity.h"

#include <algorithm>

namespace rover {

namespace {
constexpr TimePoint kNever = TimePoint::FromMicros(INT64_MAX);
}  // namespace

TimePoint ConnectivitySchedule::NextUpTime(TimePoint t) const {
  if (IsUp(t)) {
    return t;
  }
  const TimePoint next = NextTransition(t);
  if (next == kNever) {
    return kNever;
  }
  // A transition from down must be to up.
  return next;
}

TimePoint ConstantConnectivity::NextTransition(TimePoint t) const { return kNever; }

PeriodicConnectivity::PeriodicConnectivity(Duration up_duration, Duration down_duration,
                                           TimePoint phase)
    : up_(up_duration), down_(down_duration), phase_(phase) {}

bool PeriodicConnectivity::IsUp(TimePoint t) const {
  if (t < phase_) {
    return false;
  }
  const int64_t period = up_.micros() + down_.micros();
  if (period == 0) {
    return true;
  }
  const int64_t offset = (t - phase_).micros() % period;
  return offset < up_.micros();
}

TimePoint PeriodicConnectivity::NextTransition(TimePoint t) const {
  if (t < phase_) {
    return phase_;
  }
  const int64_t period = up_.micros() + down_.micros();
  if (period == 0) {
    return kNever;
  }
  const int64_t since = (t - phase_).micros();
  const int64_t offset = since % period;
  const int64_t period_start = since - offset;
  int64_t next;
  if (offset < up_.micros()) {
    next = period_start + up_.micros();  // up -> down
  } else {
    next = period_start + period;  // down -> up
  }
  return phase_ + Duration::Micros(next);
}

IntervalConnectivity::IntervalConnectivity(std::vector<Interval> up_intervals)
    : intervals_(std::move(up_intervals)) {
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
}

bool IntervalConnectivity::IsUp(TimePoint t) const {
  // First interval starting after t; the candidate is the one before it.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& iv) { return v < iv.start; });
  if (it == intervals_.begin()) {
    return false;
  }
  --it;
  return t >= it->start && t < it->end;
}

TimePoint IntervalConnectivity::NextTransition(TimePoint t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& iv) { return v < iv.start; });
  if (it != intervals_.begin()) {
    auto prev = it - 1;
    if (t >= prev->start && t < prev->end) {
      return prev->end;  // currently up; next transition is this interval's end
    }
  }
  if (it == intervals_.end()) {
    return kNever;
  }
  return it->start;
}

std::unique_ptr<IntervalConnectivity> MakeRandomConnectivity(Rng* rng, Duration mean_up,
                                                             Duration mean_down,
                                                             Duration horizon,
                                                             bool start_up) {
  std::vector<IntervalConnectivity::Interval> intervals;
  TimePoint t = TimePoint::Epoch();
  bool up = start_up;
  const TimePoint end = TimePoint::Epoch() + horizon;
  while (t < end) {
    const double mean = up ? mean_up.seconds() : mean_down.seconds();
    const Duration span = Duration::Seconds(std::max(1e-6, rng->NextExponential(mean)));
    if (up) {
      intervals.push_back({t, t + span});
    }
    t += span;
    up = !up;
  }
  return std::make_unique<IntervalConnectivity>(std::move(intervals));
}

}  // namespace rover
