// Crash-recovery and fault-injection tests.
//
// Part 1 exercises ServerStableStore directly: atomic transaction framing,
// torn-write semantics, snapshot compaction, epoch bumps.
// Part 2 runs deterministic crash scenarios on a full Testbed: duplicate-
// cache replay after a server crash, torn WAL writes rolling back atomically,
// torn client log records losing only uncommitted calls.
// Part 3 covers the subscription lifecycle across restarts: re-subscribe on
// epoch bump, unsubscribe on eviction, GC of unreachable subscribers.
// Part 4 is the chaos harness: a seeded FaultPlan crashes both ends at
// random times (sometimes tearing the record under the in-flight device
// write) over a flapping, duplicating, reordering link, and the same
// invariants must hold for every seed.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/check/simcheck.h"
#include "src/core/fault_plan.h"
#include "src/core/toolkit.h"
#include "src/store/server_store.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

// Appends its argument to a list-valued state: every successful execution
// leaves exactly one copy of the token behind, which is what the at-most-once
// invariants count.
constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

// Runs the loop in small increments until `pred` holds (or the deadline
// passes), leaving now() just past the moment the predicate turned true --
// the way a test "catches" a crash window like an in-flight device write.
template <typename Pred>
bool StepUntil(EventLoop* loop, TimePoint deadline, Pred pred) {
  TimePoint t = loop->now();
  while (!pred() && t < deadline) {
    t = t + Duration::Millis(1);
    loop->RunUntil(t);
  }
  return pred();
}

ServerTransaction MakeTxn(const std::string& name, const std::string& data,
                          uint64_t version) {
  ServerTransaction txn;
  ReplayOp op;
  op.committed = MakeRdo(name, "lww", kCounterCode, data);
  op.committed.version = version;
  txn.ops.push_back(std::move(op));
  return txn;
}

// --- Part 1: ServerStableStore -------------------------------------------

TEST(ServerStoreTest, TransactionRoundTrip) {
  ServerTransaction txn = MakeTxn("mail/inbox", "7", 3);
  ReplayOp remove;
  remove.is_remove = true;
  remove.name = "mail/outbox";
  txn.ops.push_back(remove);
  txn.has_response = true;
  txn.client = "mobile";
  txn.rpc_id = 42;
  txn.response = BytesFromString("cached-response");

  auto decoded = ServerTransaction::Decode(txn.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_EQ(decoded->ops.size(), 2u);
  EXPECT_FALSE(decoded->ops[0].is_remove);
  EXPECT_EQ(decoded->ops[0].committed.name, "mail/inbox");
  EXPECT_EQ(decoded->ops[0].committed.data, "7");
  EXPECT_EQ(decoded->ops[0].committed.version, 3u);
  EXPECT_TRUE(decoded->ops[1].is_remove);
  EXPECT_EQ(decoded->ops[1].name, "mail/outbox");
  ASSERT_TRUE(decoded->has_response);
  EXPECT_EQ(decoded->client, "mobile");
  EXPECT_EQ(decoded->rpc_id, 42u);
  EXPECT_EQ(decoded->response, BytesFromString("cached-response"));

  EXPECT_FALSE(ServerTransaction::Decode(BytesFromString("garbage")).ok());
}

TEST(ServerStoreTest, CrashDropsUnflushedTransactions) {
  EventLoop loop;
  ServerStableStore store(&loop);
  store.LogTransaction(MakeTxn("a", "1", 1));  // appended, never flushed

  store.SimulateCrash(false);
  RecoveredServerState rec = store.Recover();
  EXPECT_EQ(rec.wal.size(), 0u);
  EXPECT_EQ(rec.records_dropped, 0u);  // volatile loss, not a torn write
  EXPECT_EQ(rec.epoch, 2u);
}

TEST(ServerStoreTest, TornRecordUnderInFlightWriteDroppedOnRecovery) {
  EventLoop loop;
  ServerStoreOptions opts;
  opts.wal_costs = {Duration::Millis(10), 2e6, /*group_commit=*/false};
  ServerStableStore store(&loop, opts);

  store.LogTransaction(MakeTxn("a", "1", 1));
  store.Flush(nullptr);
  loop.Run();  // first record durable
  store.LogTransaction(MakeTxn("b", "2", 1));
  store.Flush(nullptr);  // device write now in flight
  ASSERT_TRUE(store.wal_for_test()->WriteInFlight());

  store.SimulateCrash(/*tear_last_record=*/true);
  RecoveredServerState rec = store.Recover();
  EXPECT_EQ(rec.records_dropped, 1u);
  ASSERT_EQ(rec.wal.size(), 1u);
  EXPECT_EQ(rec.wal[0].ops[0].committed.name, "a");
  EXPECT_EQ(rec.epoch, 2u);
}

TEST(ServerStoreTest, TearWithoutInFlightWriteCannotCorruptDurableRecords) {
  EventLoop loop;
  ServerStoreOptions opts;
  opts.wal_costs = {Duration::Millis(10), 2e6, /*group_commit=*/false};
  ServerStableStore store(&loop, opts);

  store.LogTransaction(MakeTxn("a", "1", 1));
  store.Flush(nullptr);
  loop.Run();
  ASSERT_FALSE(store.wal_for_test()->WriteInFlight());

  // A power cut can only tear the record under an in-flight device write; a
  // record whose write completed (and was possibly acknowledged) survives.
  store.SimulateCrash(/*tear_last_record=*/true);
  RecoveredServerState rec = store.Recover();
  EXPECT_EQ(rec.records_dropped, 0u);
  ASSERT_EQ(rec.wal.size(), 1u);
  EXPECT_EQ(rec.wal[0].ops[0].committed.name, "a");
}

TEST(ServerStoreTest, SnapshotCompactionTruncatesWalAndSurvivesRecovery) {
  EventLoop loop;
  ServerStableStore store(&loop);
  for (int i = 0; i < 3; ++i) {
    store.LogTransaction(MakeTxn("obj" + std::to_string(i), "x", 1));
  }
  store.Flush(nullptr);
  loop.Run();

  const Bytes image = BytesFromString("object-image");
  CachedResponseEntry entry;
  entry.client = "mobile";
  entry.rpc_id = 7;
  entry.response = BytesFromString("r");
  store.WriteSnapshot(image, {entry});
  loop.Run();
  EXPECT_EQ(store.WalRecordCount(), 0u);
  EXPECT_EQ(store.stats().snapshots_written, 1u);

  store.LogTransaction(MakeTxn("post-snapshot", "y", 1));
  store.Flush(nullptr);
  loop.Run();

  store.SimulateCrash(false);
  RecoveredServerState rec = store.Recover();
  EXPECT_EQ(rec.object_image, image);
  ASSERT_EQ(rec.snapshot_responses.size(), 1u);
  EXPECT_EQ(rec.snapshot_responses[0].rpc_id, 7u);
  ASSERT_EQ(rec.wal.size(), 1u);
  EXPECT_EQ(rec.wal[0].ops[0].committed.name, "post-snapshot");
}

TEST(ServerStoreTest, CrashMidSnapshotKeepsPreviousImageAndWal) {
  EventLoop loop;
  ServerStoreOptions opts;
  opts.wal_costs = {Duration::Millis(20), 2e6, /*group_commit=*/true};
  ServerStableStore store(&loop, opts);
  store.LogTransaction(MakeTxn("a", "1", 1));
  store.LogTransaction(MakeTxn("b", "2", 1));
  store.Flush(nullptr);
  loop.Run();

  store.WriteSnapshot(BytesFromString("half-written"), {});
  loop.RunUntil(loop.now() + Duration::Millis(5));  // write still in flight
  store.SimulateCrash(false);
  loop.Run();  // the stale completion event must abandon its swap
  EXPECT_EQ(store.stats().snapshots_written, 0u);

  RecoveredServerState rec = store.Recover();
  EXPECT_TRUE(rec.object_image.empty());
  EXPECT_EQ(rec.wal.size(), 2u);
}

TEST(ServerStoreTest, EpochBumpsOnEveryRecovery) {
  EventLoop loop;
  ServerStableStore store(&loop);
  EXPECT_EQ(store.epoch(), 1u);
  store.SimulateCrash(false);
  EXPECT_EQ(store.Recover().epoch, 2u);
  store.SimulateCrash(false);
  EXPECT_EQ(store.Recover().epoch, 3u);
  EXPECT_EQ(store.stats().recoveries, 2u);
}

TEST(ServerStoreTest, NeedsCompactionTracksThresholdAndProgress) {
  EventLoop loop;
  ServerStoreOptions opts;
  opts.compact_after_records = 2;
  ServerStableStore store(&loop, opts);
  store.LogTransaction(MakeTxn("a", "1", 1));
  EXPECT_FALSE(store.NeedsCompaction());
  store.LogTransaction(MakeTxn("b", "2", 1));
  store.Flush(nullptr);
  loop.Run();
  EXPECT_TRUE(store.NeedsCompaction());
  store.WriteSnapshot(BytesFromString("img"), {});
  EXPECT_FALSE(store.NeedsCompaction());  // one compaction at a time
  loop.Run();
  EXPECT_FALSE(store.NeedsCompaction());  // WAL truncated
}

// --- Part 2: deterministic crash scenarios --------------------------------

// Server executes a mutation and journals mutation + response atomically,
// but crashes before the (disconnection-queued) response can leave. The
// client's crash-recovery resend must be answered from the recovered
// duplicate cache without re-executing the mutation.
TEST(CrashRecoveryTest, ServerCrashAfterDurableResponseRepliesFromDupCache) {
  Testbed::Options topts;
  // Push handler execution past the link-down edge so the response is
  // queued behind a dead link (instead of delivered) when the server dies.
  topts.server.qrpc.dispatch_cost = Duration::Seconds(5);
  Testbed bed(topts);

  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());

  std::vector<IntervalConnectivity::Interval> up = {
      {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(30)},
      {TimePoint::Epoch() + Duration::Seconds(60),
       TimePoint::Epoch() + Duration::Seconds(100000)}};
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::Cslip144(),
      std::make_unique<IntervalConnectivity>(up));

  // Request arrives ~26.2s (link up); the handler runs at ~31.2s (link
  // down): the mutation commits and the transaction is journaled, but the
  // response parks in the server's scheduler queue.
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(26), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    client->access()->Invoke("counter", "add", {"5"}, io);
  });

  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(40));
  ASSERT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  RecoveredServerState rec = bed.server()->SimulateCrashAndRestart(false);
  EXPECT_EQ(rec.records_dropped, 0u);
  EXPECT_EQ(rec.epoch, 2u);
  // Recovery replayed the journaled transaction: mutation and cached
  // response both survive even though the response never left.
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");

  // The client's request is durable and unanswered; a crash-restart is the
  // (only) resend trigger.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(45));
  EXPECT_EQ(client->SimulateCrashAndRestart(false), 1u);

  bed.Run();
  EXPECT_EQ(bed.server()->qrpc()->stats().duplicates, 1u);
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);  // not 3
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
  EXPECT_EQ(client->qrpc()->LastSeenEpoch("server"), 2u);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// A power cut mid-journal-write tears the transaction: mutation AND cached
// response drop together, so the client's resend re-executes exactly once.
TEST(CrashRecoveryTest, TornWalWriteRollsBackAtomicallyAndResendReexecutes) {
  Testbed::Options topts;
  topts.server.stable_store.wal_costs = {Duration::Millis(20), 2e6,
                                         /*group_commit=*/true};
  Testbed bed(topts);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());

  check::SimCheck simcheck;
  simcheck.Attach(&bed);

  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    client->access()->Invoke("counter", "add", {"5"}, io);
  });

  // Catch the moment the handler has applied the mutation and its journal
  // write is on the device but incomplete -- the response is still gated.
  ASSERT_TRUE(StepUntil(bed.loop(), TimePoint::Epoch() + Duration::Seconds(5), [&] {
    return *bed.server()->store()->VersionOf("counter") == 2 &&
           bed.server()->stable_store()->wal_for_test()->WriteInFlight();
  }));

  RecoveredServerState rec = bed.server()->SimulateCrashAndRestart(
      /*tear_last_wal_record=*/true);
  EXPECT_EQ(rec.records_dropped, 1u);
  EXPECT_EQ(rec.epoch, 2u);
  // The torn transaction dropped atomically: the mutation rolled back.
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 1u);
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "0");

  EXPECT_EQ(client->SimulateCrashAndRestart(false), 1u);
  bed.Run();
  // No duplicate-cache entry survived, so the resend executed the handler.
  EXPECT_EQ(bed.server()->qrpc()->stats().duplicates, 0u);
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// A torn client log record loses only the not-yet-committed call: the
// request never reaches the server and is not resent after recovery.
TEST(CrashRecoveryTest, TornClientLogRecordLosesUncommittedCall) {
  Testbed bed;
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());

  InvokeOptions io;
  io.force_site = ExecutionSite::kServer;
  client->access()->Invoke("counter", "add", {"5"}, io);
  // Marshalling (~30us) appends the log record and starts the 8ms flush;
  // at 2ms the device write is still in flight.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Millis(2));
  ASSERT_TRUE(client->log()->WriteInFlight());

  EXPECT_EQ(client->SimulateCrashAndRestart(/*tear_last_log_record=*/true), 0u);
  bed.Run();
  EXPECT_EQ(bed.server()->qrpc()->stats().requests, 0u);
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 1u);
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// --- Part 3: subscriptions across restarts --------------------------------

TEST(SubscriptionTest, ServerRestartTriggersResubscribeAndStaleMark) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("other", "lww", kCounterCode, "0")).ok());

  ClientNodeOptions copts;
  copts.access.subscribe_on_import = true;
  RoverClientNode* a = bed.AddClient("alice", LinkProfile::WaveLan2(), nullptr, copts);
  auto imp = a->access()->Import("counter");
  ASSERT_TRUE(imp.Wait(bed.loop()));
  bed.Run();
  ASSERT_EQ(bed.server()->rover()->SubscriberCount("counter"), 1u);

  // Subscriptions are volatile server state: the restart forgets them.
  bed.server()->SimulateCrashAndRestart(false);
  EXPECT_EQ(bed.server()->rover()->SubscriberCount("counter"), 0u);

  // Any response reveals the new epoch; the client re-subscribes its cached
  // imports and marks them stale.
  auto imp2 = a->access()->Import("other");
  ASSERT_TRUE(imp2.Wait(bed.loop()));
  bed.Run();
  EXPECT_EQ(a->access()->stats().server_restarts_observed, 1u);
  EXPECT_EQ(bed.server()->rover()->SubscriberCount("counter"), 1u);
  auto imp3 = a->access()->Import("counter");
  ASSERT_TRUE(imp3.Wait(bed.loop()));
  EXPECT_FALSE(imp3.value().from_cache);  // stale entry forced a round trip

  // The renewed subscription is live: another client's commit reaches alice.
  RoverClientNode* b = bed.AddClient("bob", LinkProfile::Ethernet10());
  InvokeOptions io;
  io.force_site = ExecutionSite::kServer;
  auto inv = b->access()->Invoke("counter", "add", {"1"}, io);
  ASSERT_TRUE(inv.Wait(bed.loop()));
  bed.Run();
  EXPECT_GE(a->access()->stats().invalidations_received, 1u);
}

TEST(SubscriptionTest, EvictionWithdrawsSubscription) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  ClientNodeOptions copts;
  copts.access.subscribe_on_import = true;
  RoverClientNode* a = bed.AddClient("alice", LinkProfile::WaveLan2(), nullptr, copts);
  auto imp = a->access()->Import("counter");
  ASSERT_TRUE(imp.Wait(bed.loop()));
  bed.Run();
  ASSERT_EQ(bed.server()->rover()->SubscriberCount("counter"), 1u);

  a->access()->Evict("counter");
  bed.Run();  // rover.unsubscribe round trip
  EXPECT_EQ(bed.server()->rover()->SubscriberCount("counter"), 0u);
  EXPECT_EQ(bed.server()->rover()->stats().unsubscribes, 1u);
}

TEST(SubscriptionTest, UnreachableSubscriberGarbageCollected) {
  Testbed::Options topts;
  topts.server.rover.invalidation_ttl = Duration::Seconds(5);
  topts.server.rover.subscriber_drop_after_failures = 2;
  Testbed bed(topts);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());

  ClientNodeOptions copts;
  copts.access.subscribe_on_import = true;
  std::vector<IntervalConnectivity::Interval> up = {
      {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(10)}};
  RoverClientNode* a = bed.AddClient("alice", LinkProfile::WaveLan2(),
                                     std::make_unique<IntervalConnectivity>(up), copts);
  RoverClientNode* b = bed.AddClient("bob", LinkProfile::Ethernet10());

  auto imp = a->access()->Import("counter");
  ASSERT_TRUE(imp.Wait(bed.loop()));
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(10));
  ASSERT_EQ(bed.server()->rover()->SubscriberCount("counter"), 1u);

  // Two commits while alice is unreachable; each invalidation expires after
  // its 5s TTL, and the second consecutive expiry drops her subscription.
  InvokeOptions io;
  io.force_site = ExecutionSite::kServer;
  auto i1 = b->access()->Invoke("counter", "add", {"1"}, io);
  ASSERT_TRUE(i1.Wait(bed.loop()));
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(20));
  EXPECT_EQ(bed.server()->rover()->stats().invalidations_expired, 1u);
  ASSERT_EQ(bed.server()->rover()->SubscriberCount("counter"), 1u);

  auto i2 = b->access()->Invoke("counter", "add", {"1"}, io);
  ASSERT_TRUE(i2.Wait(bed.loop()));
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(30));
  EXPECT_EQ(bed.server()->rover()->stats().invalidations_expired, 2u);
  EXPECT_EQ(bed.server()->rover()->stats().subscribers_dropped, 1u);
  EXPECT_EQ(bed.server()->rover()->SubscriberCount("counter"), 0u);
}

// --- Part 4: seeded chaos --------------------------------------------------

// One flapping, duplicating, reordering link; a disk-like WAL with real
// crash windows; aggressive compaction; random server/client crash-restarts
// (half of them tearing the in-flight record). Whatever the seed:
//   1. every journal token appears at most once (at-most-once execution
//      across dup frames, crash-resend races, and dup-cache replays);
//   2. only issued tokens appear;
//   3. a call whose result resolved OK has its token durably present
//      (acknowledged work survives every later crash);
//   4. the client's stable log and pending set drain to empty;
//   5. the server epoch advanced once per recovery;
//   6. a fresh uncached import converges the client to the server's state.
class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, InvariantsHoldUnderRandomFaults) {
  Testbed::Options topts;
  topts.server.stable_store.wal_costs = {Duration::Millis(5), 2e6,
                                         /*group_commit=*/true};
  topts.server.stable_store.compact_after_records = 8;
  topts.server.rover.invalidation_ttl = Duration::Seconds(30);
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);

  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());

  FaultPlan plan(bed.loop(), GetParam());
  LinkProfile wave = LinkProfile::WaveLan2();
  wave.duplicate_prob = 0.05;
  wave.reorder_prob = 0.05;
  ClientNodeOptions copts;
  copts.access.subscribe_on_import = true;
  RoverClientNode* client = bed.AddClient(
      "mobile", wave,
      plan.FlappyConnectivity(Duration::Seconds(8), Duration::Seconds(4),
                              Duration::Seconds(60)),
      copts);

  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1), [&] {
    client->access()->Import("journal");
  });
  constexpr int kTokens = 12;
  std::vector<Promise<InvokeResult>> results(kTokens);
  for (int i = 0; i < kTokens; ++i) {
    bed.loop()->ScheduleAt(
        TimePoint::Epoch() + Duration::Seconds(2 + 3 * i), [&results, client, i] {
          InvokeOptions io;
          io.force_site = ExecutionSite::kServer;
          results[i] = client->access()->Invoke("journal", "add",
                                                {"tok" + std::to_string(i)}, io);
        });
  }

  RandomFaultOptions fopts;
  fopts.horizon = Duration::Seconds(45);
  fopts.server_crashes = 2;
  fopts.client_crashes = 1;
  fopts.tear_probability = 0.5;
  plan.ScheduleRandomFaults(bed.server(), {client}, fopts);
  // After every random fault and link flap (the link is permanently up from
  // 60s), one last restart resends every durable unanswered request, so the
  // run always quiesces with an empty log.
  plan.CrashClientAt(client, TimePoint::Epoch() + Duration::Seconds(61));

  bed.Run();

  const std::string server_data = bed.server()->store()->Get("journal")->data;
  auto tokens = TclListSplit(server_data);
  ASSERT_TRUE(tokens.ok());
  std::set<std::string> unique(tokens->begin(), tokens->end());
  EXPECT_EQ(unique.size(), tokens->size())
      << "an add executed twice: [" << server_data << "]";
  std::set<std::string> issued;
  for (int i = 0; i < kTokens; ++i) {
    issued.insert("tok" + std::to_string(i));
  }
  for (const std::string& tok : *tokens) {
    EXPECT_EQ(issued.count(tok), 1u) << "unknown token " << tok;
  }
  for (int i = 0; i < kTokens; ++i) {
    if (results[i].ready() && results[i].value().status.ok()) {
      EXPECT_EQ(unique.count("tok" + std::to_string(i)), 1u)
          << "acknowledged tok" << i << " lost: [" << server_data << "]";
    }
  }
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
  EXPECT_EQ(plan.server_crashes_executed(), 2u);
  EXPECT_EQ(plan.client_crashes_executed(), 2u);  // 1 random + final sweep
  EXPECT_EQ(bed.server()->stable_store()->epoch(),
            1 + plan.server_crashes_executed());

  ImportOptions iopts;
  iopts.allow_cached = false;
  auto converge = client->access()->Import("journal", iopts);
  ASSERT_TRUE(converge.Wait(bed.loop()));
  ASSERT_TRUE(converge.value().status.ok());
  EXPECT_EQ(*client->access()->ReadCommittedData("journal"), server_data);
  EXPECT_EQ(client->qrpc()->LastSeenEpoch("server"),
            bed.server()->stable_store()->epoch());

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range(uint64_t{1}, uint64_t{29}));

}  // namespace
}  // namespace rover
