#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/transport/message.h"
#include "src/transport/scheduler.h"
#include "src/transport/smtp.h"
#include "src/transport/transport.h"

namespace rover {
namespace {

Message MakeMessage(const std::string& dst, size_t payload_size,
                    Priority priority = Priority::kDefault) {
  Message msg;
  msg.header.type = MessageType::kRequest;
  msg.header.priority = priority;
  msg.header.dst = dst;
  msg.payload = Bytes(payload_size, 0x5a);
  return msg;
}

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message msg;
  msg.header.message_id = 77;
  msg.header.type = MessageType::kResponse;
  msg.header.priority = Priority::kForeground;
  msg.header.src = "client";
  msg.header.dst = "server";
  msg.header.in_reply_to = 42;
  msg.payload = Bytes{1, 2, 3};

  auto decoded = Message::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.message_id, 77u);
  EXPECT_EQ(decoded->header.type, MessageType::kResponse);
  EXPECT_EQ(decoded->header.priority, Priority::kForeground);
  EXPECT_EQ(decoded->header.src, "client");
  EXPECT_EQ(decoded->header.dst, "server");
  EXPECT_EQ(decoded->header.in_reply_to, 42u);
  EXPECT_EQ(decoded->payload, (Bytes{1, 2, 3}));
}

TEST(MessageTest, CorruptMessageRejected) {
  Message msg = MakeMessage("server", 10);
  Bytes data = msg.Encode();
  data.resize(data.size() / 2);
  EXPECT_FALSE(Message::Decode(data).ok());
}

TEST(MessageTest, FrameRoundTrip) {
  std::vector<Message> msgs;
  for (int i = 0; i < 5; ++i) {
    Message m = MakeMessage("server", static_cast<size_t>(i * 10));
    m.header.message_id = static_cast<uint64_t>(i + 1);
    msgs.push_back(m);
  }
  auto decoded = DecodeFrame(EncodeFrame(msgs));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*decoded)[static_cast<size_t>(i)].header.message_id,
              static_cast<uint64_t>(i + 1));
    EXPECT_EQ((*decoded)[static_cast<size_t>(i)].payload.size(),
              static_cast<size_t>(i * 10));
  }
}

TEST(MessageTest, EmptyFrameRoundTrip) {
  auto decoded = DecodeFrame(EncodeFrame(std::vector<Message>{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : net_(&loop_) {}

  void SetUpHosts(LinkProfile profile,
                  std::unique_ptr<ConnectivitySchedule> schedule = nullptr) {
    link_ = net_.Connect("mobile", "server", std::move(profile), std::move(schedule));
    mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
    server_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("server"));
    server_->SetHandler(MessageType::kRequest,
                        [this](const Message& msg) { received_.push_back(msg); });
  }

  EventLoop loop_;
  Network net_;
  Link* link_ = nullptr;
  std::unique_ptr<TransportManager> mobile_;
  std::unique_ptr<TransportManager> server_;
  std::vector<Message> received_;
};

TEST_F(SchedulerTest, DeliversMessage) {
  SetUpHosts(LinkProfile::Ethernet10());
  mobile_->Send(MakeMessage("server", 100));
  loop_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].header.src, "mobile");
  EXPECT_EQ(received_[0].payload.size(), 100u);
}

TEST_F(SchedulerTest, QueuesWhileDisconnectedAndDrainsOnReconnect) {
  // Down until t=60s, then up.
  SetUpHosts(LinkProfile::WaveLan2(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(60)));
  for (int i = 0; i < 5; ++i) {
    mobile_->Send(MakeMessage("server", 50));
  }
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(59));
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(mobile_->scheduler()->TotalQueueDepth(), 5u);
  loop_.Run();
  EXPECT_EQ(received_.size(), 5u);
  EXPECT_EQ(mobile_->scheduler()->TotalQueueDepth(), 0u);
  EXPECT_GT(loop_.now().seconds(), 60.0);
}

TEST_F(SchedulerTest, PriorityOrdering) {
  // Queue while down so all three are pending, then drain.
  SetUpHosts(LinkProfile::Cslip144(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(10)));
  SchedulerOptions opts;
  opts.batching = false;  // one frame per message so order is observable
  mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"), opts);

  Message background = MakeMessage("server", 10, Priority::kBackground);
  background.header.message_id = 1;
  Message foreground = MakeMessage("server", 10, Priority::kForeground);
  foreground.header.message_id = 2;
  Message normal = MakeMessage("server", 10, Priority::kDefault);
  normal.header.message_id = 3;
  mobile_->Send(std::move(background));
  mobile_->Send(std::move(foreground));
  mobile_->Send(std::move(normal));
  loop_.Run();
  ASSERT_EQ(received_.size(), 3u);
  EXPECT_EQ(received_[0].header.message_id, 2u);  // foreground first
  EXPECT_EQ(received_[1].header.message_id, 3u);
  EXPECT_EQ(received_[2].header.message_id, 1u);  // background last
}

TEST_F(SchedulerTest, BatchingCoalescesMessages) {
  SetUpHosts(LinkProfile::Cslip144(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(10)));
  for (int i = 0; i < 8; ++i) {
    mobile_->Send(MakeMessage("server", 20));
  }
  loop_.Run();
  EXPECT_EQ(received_.size(), 8u);
  // All 8 were waiting at reconnect; batching should use 1 frame.
  EXPECT_EQ(mobile_->scheduler()->stats().frames_sent, 1u);
  EXPECT_EQ(link_->stats().frames_delivered, 1u);
}

TEST_F(SchedulerTest, NoBatchingSendsIndividually) {
  SetUpHosts(LinkProfile::Cslip144(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(10)));
  SchedulerOptions opts;
  opts.batching = false;
  mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"), opts);
  for (int i = 0; i < 8; ++i) {
    mobile_->Send(MakeMessage("server", 20));
  }
  loop_.Run();
  EXPECT_EQ(received_.size(), 8u);
  EXPECT_EQ(mobile_->scheduler()->stats().frames_sent, 8u);
}

TEST_F(SchedulerTest, PicksFastestUpLink) {
  net_.Connect("mobile", "server", LinkProfile::Cslip144());
  Link* ethernet = net_.Connect("mobile", "server", LinkProfile::Ethernet10());
  mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  server_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("server"));
  server_->SetHandler(MessageType::kRequest,
                      [this](const Message& msg) { received_.push_back(msg); });
  mobile_->Send(MakeMessage("server", 100));
  loop_.Run();
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(ethernet->stats().frames_delivered, 1u);
}

TEST_F(SchedulerTest, FallsBackToSlowLinkWhenFastIsDown) {
  Link* slow = net_.Connect("mobile", "server", LinkProfile::Cslip144());
  net_.Connect("mobile", "server", LinkProfile::Ethernet10(),
               std::make_unique<ConstantConnectivity>(false));
  mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
  server_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("server"));
  server_->SetHandler(MessageType::kRequest,
                      [this](const Message& msg) { received_.push_back(msg); });
  mobile_->Send(MakeMessage("server", 100));
  loop_.Run();
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(slow->stats().frames_delivered, 1u);
}

TEST_F(SchedulerTest, RetriesAfterRandomLoss) {
  LinkProfile lossy = LinkProfile::WaveLan2();
  lossy.loss_prob = 0.5;
  SetUpHosts(lossy);
  for (int i = 0; i < 20; ++i) {
    mobile_->Send(MakeMessage("server", 200));
  }
  loop_.Run();
  EXPECT_EQ(received_.size(), 20u);  // reliability despite loss
  EXPECT_GT(mobile_->scheduler()->stats().retries, 0u);
}

TEST_F(SchedulerTest, SurvivesFlappingLink) {
  // 200ms up / 800ms down; a CSLIP 14.4 frame of ~1KB takes ~0.57s, so
  // transfers often straddle a disconnect and must be retried.
  SetUpHosts(LinkProfile::Cslip144(),
             std::make_unique<PeriodicConnectivity>(Duration::Millis(200),
                                                    Duration::Millis(800)));
  for (int i = 0; i < 5; ++i) {
    mobile_->Send(MakeMessage("server", 1000));
  }
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(300));
  EXPECT_EQ(received_.size(), 5u);
}

TEST_F(SchedulerTest, CompressionShrinksCompressiblePayloads) {
  SchedulerOptions opts;
  opts.compress = true;
  SetUpHosts(LinkProfile::Cslip144());
  mobile_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"), opts);

  Message msg;
  msg.header.type = MessageType::kRequest;
  msg.header.dst = "server";
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "repetitive mail header line\n";
  }
  msg.payload = BytesFromString(text);
  mobile_->Send(std::move(msg));
  loop_.Run();
  ASSERT_EQ(received_.size(), 1u);
  // Receiver sees the decompressed payload.
  EXPECT_EQ(received_[0].payload.ToString(), text);
  const auto& stats = mobile_->scheduler()->stats();
  EXPECT_LT(stats.payload_bytes_sent, stats.payload_bytes_original / 4);
}

TEST_F(SchedulerTest, QueueObserverSeesDepthChanges) {
  SetUpHosts(LinkProfile::Ethernet10(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(5)));
  std::vector<size_t> depths;
  mobile_->scheduler()->SetQueueObserver([&](size_t d) { depths.push_back(d); });
  mobile_->Send(MakeMessage("server", 10));
  mobile_->Send(MakeMessage("server", 10));
  loop_.Run();
  ASSERT_GE(depths.size(), 3u);
  EXPECT_EQ(depths[0], 1u);
  EXPECT_EQ(depths[1], 2u);
  EXPECT_EQ(depths.back(), 0u);
}

TEST_F(SchedulerTest, DeliveredCallbackFires) {
  SetUpHosts(LinkProfile::WaveLan2());
  bool delivered = false;
  Message msg = MakeMessage("server", 10);
  msg.header.src = "mobile";
  mobile_->scheduler()->Enqueue(std::move(msg),
                                [&](const Status& s) { delivered = s.ok(); });
  loop_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(SchedulerTest, TtlExpiresQueuedMessageWhileDisconnected) {
  // Link only comes up at t=60s; a 10s TTL withdraws the message first.
  SetUpHosts(LinkProfile::WaveLan2(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(60)));
  Status expired_status;
  bool expired_fired = false;
  Message with_ttl = MakeMessage("server", 40);
  with_ttl.header.src = "mobile";
  with_ttl.header.message_id = 1;
  mobile_->scheduler()->Enqueue(std::move(with_ttl),
                                [&](const Status& s) {
                                  expired_fired = true;
                                  expired_status = s;
                                },
                                /*ttl=*/Duration::Seconds(10));
  Message forever = MakeMessage("server", 40);
  forever.header.src = "mobile";
  forever.header.message_id = 2;
  mobile_->scheduler()->Enqueue(std::move(forever));

  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(30));
  EXPECT_TRUE(expired_fired);
  EXPECT_EQ(expired_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(mobile_->scheduler()->TotalQueueDepth(), 1u);
  EXPECT_EQ(mobile_->scheduler()->stats().messages_expired, 1u);

  // Only the TTL-free message goes out when the link comes up.
  loop_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].header.message_id, 2u);
}

TEST_F(SchedulerTest, TtlDoesNotDropDeliverableMessage) {
  SetUpHosts(LinkProfile::WaveLan2());
  bool delivered_ok = false;
  Message msg = MakeMessage("server", 40);
  msg.header.src = "mobile";
  mobile_->scheduler()->Enqueue(std::move(msg),
                                [&](const Status& s) { delivered_ok = s.ok(); },
                                /*ttl=*/Duration::Seconds(10));
  loop_.Run();
  EXPECT_TRUE(delivered_ok);
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(mobile_->scheduler()->stats().messages_expired, 0u);
}

TEST_F(SchedulerTest, AttachedLinkReevaluatesStaleUpWakeup) {
  // Regression: the queue parks with a wakeup armed for the only link's
  // next-up time (t=1000s). A second, always-up link attached afterwards
  // must re-trigger scheduling immediately instead of leaving the message
  // waiting on the stale wakeup.
  SetUpHosts(LinkProfile::Cslip144(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(1000)));
  mobile_->Send(MakeMessage("server", 50));
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(5));
  EXPECT_TRUE(received_.empty());  // parked until t=1000s

  net_.Connect("mobile", "server", LinkProfile::Ethernet10());
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(10));
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_LT(loop_.now().seconds(), 1000.0);
}

TEST_F(SchedulerTest, CancelRacingInFlightFrameDeliversOnce) {
  // By the time Cancel arrives the frame is already on the (slow) wire:
  // the cancel must be refused and the delivered callback fire exactly once.
  SetUpHosts(LinkProfile::Cslip144());
  int delivered_calls = 0;
  Status last_status;
  Message msg = MakeMessage("server", 1000);  // ~0.57s of airtime at 14.4k
  msg.header.src = "mobile";
  msg.header.message_id = 77;
  mobile_->scheduler()->Enqueue(std::move(msg), [&](const Status& s) {
    ++delivered_calls;
    last_status = s;
  });
  loop_.RunUntil(TimePoint::Epoch() + Duration::Millis(100));  // mid-transmission
  EXPECT_FALSE(mobile_->scheduler()->CancelMessage("server", 77));
  loop_.Run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(delivered_calls, 1);
  EXPECT_TRUE(last_status.ok());
  EXPECT_EQ(mobile_->scheduler()->stats().messages_delivered, 1u);
  EXPECT_EQ(mobile_->scheduler()->stats().payload_bytes_cancelled, 0u);
}

TEST_F(SchedulerTest, CancelBeforeTransmissionWithdrawsMessage) {
  // Queued while disconnected: cancel succeeds and nothing is ever sent.
  SetUpHosts(LinkProfile::WaveLan2(),
             std::make_unique<PeriodicConnectivity>(
                 Duration::Seconds(1e6), Duration::Zero(),
                 TimePoint::Epoch() + Duration::Seconds(60)));
  Message msg = MakeMessage("server", 100);
  msg.header.src = "mobile";
  msg.header.message_id = 78;
  mobile_->scheduler()->Enqueue(std::move(msg));
  loop_.RunUntil(TimePoint::Epoch() + Duration::Seconds(5));
  EXPECT_TRUE(mobile_->scheduler()->CancelMessage("server", 78));
  EXPECT_EQ(mobile_->scheduler()->TotalQueueDepth(), 0u);
  loop_.Run();
  EXPECT_TRUE(received_.empty());
  EXPECT_GT(mobile_->scheduler()->stats().payload_bytes_cancelled, 0u);
}

// --- Indexed-scheduler semantics: cancel / supersede-withdraw / rebind /
// shed interleavings. CancelMessage is the primitive the QRPC layer's
// supersede-withdraw uses, so mid-queue tombstones, shedding around them,
// and rebinding over them must all compose without drifting the index.
TEST(SchedulerIndexTest, CancelRebindShedInterleavings) {
  EventLoop loop;
  Network net(&loop);
  std::vector<IntervalConnectivity::Interval> up = {
      {TimePoint::Epoch() + Duration::Seconds(60),
       TimePoint::Epoch() + Duration::Seconds(1e6)}};
  net.Connect("mobile", "s1", LinkProfile::Ethernet10(),
              std::make_unique<IntervalConnectivity>(up));
  net.Connect("mobile", "s2", LinkProfile::Ethernet10(),
              std::make_unique<IntervalConnectivity>(up));
  SchedulerOptions opts;
  opts.max_queued_messages = 6;
  TransportManager mobile(&loop, net.FindHost("mobile"), opts);
  TransportManager s1(&loop, net.FindHost("s1"));
  TransportManager s2(&loop, net.FindHost("s2"));
  std::vector<uint64_t> s1_ids, s2_ids;
  s1.SetHandler(MessageType::kRequest,
                [&](const Message& m) { s1_ids.push_back(m.header.message_id); });
  s2.SetHandler(MessageType::kRequest,
                [&](const Message& m) { s2_ids.push_back(m.header.message_id); });
  NetworkScheduler* sched = mobile.scheduler();

  auto enqueue = [&](const std::string& dst, uint64_t id, Priority prio) {
    Message m = MakeMessage(dst, 32, prio);
    m.header.src = "mobile";
    m.header.message_id = id;
    sched->Enqueue(std::move(m));
  };
  enqueue("s1", 1, Priority::kDefault);
  enqueue("s1", 2, Priority::kDefault);
  enqueue("s1", 3, Priority::kDefault);
  enqueue("s1", 4, Priority::kDefault);
  enqueue("s2", 5, Priority::kBackground);
  enqueue("s2", 6, Priority::kBackground);
  ASSERT_EQ(sched->TotalQueueDepth(), 6u);

  // Over-budget default enqueue sheds the NEWEST background (id 6).
  enqueue("s2", 7, Priority::kDefault);
  EXPECT_EQ(sched->stats().messages_shed, 1u);
  EXPECT_EQ(sched->QueueDepthFor("s2"), 2u);

  // Mid-queue withdraw (the supersede path): tombstones entry 2 in place.
  EXPECT_TRUE(sched->CancelMessage("s1", 2));
  EXPECT_FALSE(sched->CancelMessage("s1", 2));  // already gone
  EXPECT_EQ(sched->QueueDepthFor("s1"), 3u);

  // Rebind everything still queued for s1 over to s2, order preserved.
  const std::vector<uint64_t> moved = sched->RebindDestination("s1", "s2");
  EXPECT_EQ(moved, (std::vector<uint64_t>{1, 3, 4}));
  EXPECT_EQ(sched->QueueDepthFor("s1"), 0u);
  EXPECT_EQ(sched->QueueDepthFor("s2"), 5u);

  // The index must have moved with the messages: cancellable at s2, not s1.
  EXPECT_FALSE(sched->CancelMessage("s1", 3));
  EXPECT_TRUE(sched->CancelMessage("s2", 3));

  const SchedulerQueueAudit audit = sched->AuditQueues();
  EXPECT_TRUE(audit.per_dest_consistent);
  EXPECT_EQ(audit.messages, sched->TotalQueueDepth());
  EXPECT_EQ(audit.payload_bytes, sched->QueuedPayloadBytes());

  loop.Run();
  EXPECT_TRUE(s1_ids.empty());
  // Priority order within s2: defaults in arrival order (7 was enqueued
  // before the rebind appended 1 and 4), then background 5.
  EXPECT_EQ(s2_ids, (std::vector<uint64_t>{7, 1, 4, 5}));
  EXPECT_EQ(sched->TotalQueueDepth(), 0u);
  EXPECT_TRUE(sched->AuditQueues().per_dest_consistent);
}

// Property test: after a long random interleaving of enqueue / cancel /
// rebind against disconnected destinations, the per-destination indexes and
// the incremental counters must agree exactly with a model kept on the side
// -- and with 10k messages queued the whole run must stay fast (nothing in
// the cancel/rebind path may scan queues).
TEST(SchedulerIndexTest, SeededRandomOpsKeepIndexAndCountsConsistent) {
  const auto wall_start = std::chrono::steady_clock::now();
  EventLoop loop;
  Network net(&loop);
  const std::vector<std::string> dests = {"d0", "d1", "d2", "d3", "d4"};
  for (const std::string& d : dests) {
    net.Connect("mobile", d, LinkProfile::WaveLan2(),
                std::make_unique<PeriodicConnectivity>(
                    Duration::Seconds(1e6), Duration::Zero(),
                    TimePoint::Epoch() + Duration::Seconds(1e6)));
  }
  TransportManager mobile(&loop, net.FindHost("mobile"));
  NetworkScheduler* sched = mobile.scheduler();

  Rng rng(20260808);
  std::map<std::string, std::set<uint64_t>> model;
  uint64_t next_id = 1;
  const size_t kTarget = 10000;
  size_t cancels = 0, rebinds = 0;
  size_t queued = 0;
  while (queued < kTarget) {
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 80 || queued < 10) {
      const std::string& d = dests[rng.NextBelow(dests.size())];
      Message m = MakeMessage(d, 1 + rng.NextBelow(64),
                              static_cast<Priority>(rng.NextBelow(3)));
      m.header.src = "mobile";
      m.header.message_id = next_id;
      sched->Enqueue(std::move(m));
      model[d].insert(next_id);
      ++next_id;
      ++queued;
    } else if (roll < 95) {
      // Cancel a random live message.
      const std::string& d = dests[rng.NextBelow(dests.size())];
      auto& ids = model[d];
      if (!ids.empty()) {
        auto it = ids.begin();
        std::advance(it, rng.NextBelow(ids.size()));
        ASSERT_TRUE(sched->CancelMessage(d, *it));
        ids.erase(it);
        --queued;
        ++cancels;
      }
    } else {
      const std::string& from = dests[rng.NextBelow(dests.size())];
      const std::string& to = dests[rng.NextBelow(dests.size())];
      if (from == to) {
        continue;
      }
      const std::vector<uint64_t> moved = sched->RebindDestination(from, to);
      EXPECT_EQ(moved.size(), model[from].size());
      model[to].insert(model[from].begin(), model[from].end());
      model[from].clear();
      ++rebinds;
    }
    if ((next_id & 0x3ff) == 0) {
      ASSERT_TRUE(sched->AuditQueues().per_dest_consistent);
    }
  }
  ASSERT_GT(cancels, 100u);
  ASSERT_GT(rebinds, 10u);

  size_t model_total = 0;
  for (const std::string& d : dests) {
    EXPECT_EQ(sched->QueueDepthFor(d), model[d].size()) << d;
    model_total += model[d].size();
  }
  EXPECT_EQ(sched->TotalQueueDepth(), model_total);
  const SchedulerQueueAudit audit = sched->AuditQueues();
  EXPECT_TRUE(audit.per_dest_consistent);
  EXPECT_EQ(audit.messages, model_total);
  EXPECT_EQ(audit.payload_bytes, sched->QueuedPayloadBytes());

  // Every surviving id is still individually cancellable (index intact).
  for (const std::string& d : dests) {
    for (uint64_t id : model[d]) {
      ASSERT_TRUE(sched->CancelMessage(d, id));
    }
  }
  EXPECT_EQ(sched->TotalQueueDepth(), 0u);
  EXPECT_TRUE(sched->AuditQueues().per_dest_consistent);

  const auto elapsed = std::chrono::steady_clock::now() - wall_start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 20)
      << "index ops degraded to queue scans";
}

TEST(SmtpTest, RelayStoresAndForwards) {
  EventLoop loop;
  Network net(&loop);
  // Mobile and server are never directly connected; both reach the relay,
  // but at disjoint times.
  net.Connect("mobile", "relay", LinkProfile::WaveLan2(),
              std::make_unique<IntervalConnectivity>(
                  std::vector<IntervalConnectivity::Interval>{
                      {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(10)}}));
  net.Connect("relay", "server", LinkProfile::Ethernet10(),
              std::make_unique<PeriodicConnectivity>(
                  Duration::Seconds(1e6), Duration::Zero(),
                  TimePoint::Epoch() + Duration::Seconds(30)));

  TransportManager mobile(&loop, net.FindHost("mobile"));
  TransportManager relay_tm(&loop, net.FindHost("relay"));
  TransportManager server(&loop, net.FindHost("server"));
  SmtpRelay relay(&loop, &relay_tm);

  std::vector<Message> received;
  server.SetHandler(MessageType::kRequest,
                    [&](const Message& msg) { received.push_back(msg); });

  bool accepted = false;
  Message msg = MakeMessage("server", 64);
  mobile.SendViaRelay("relay", std::move(msg), [&](const Status& s) { accepted = s.ok(); });

  // Mobile disconnects at t=10s; the server link only opens at t=30s.
  loop.RunUntil(TimePoint::Epoch() + Duration::Seconds(20));
  EXPECT_TRUE(accepted);  // relay took custody while mobile was up
  EXPECT_TRUE(received.empty());
  loop.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].header.src, "mobile");  // relay is transparent
  EXPECT_EQ(relay.stats().envelopes_accepted, 1u);
  EXPECT_EQ(relay.stats().envelopes_forwarded, 1u);
}

TEST(SmtpTest, MalformedEnvelopeCounted) {
  EventLoop loop;
  Network net(&loop);
  net.Connect("a", "relay", LinkProfile::Ethernet10());
  TransportManager a(&loop, net.FindHost("a"));
  TransportManager relay_tm(&loop, net.FindHost("relay"));
  SmtpRelay relay(&loop, &relay_tm);

  Message bogus;
  bogus.header.type = MessageType::kControl;
  bogus.header.dst = "relay";
  bogus.payload = Bytes{9, 9, 9};
  a.Send(std::move(bogus));
  loop.Run();
  EXPECT_EQ(relay.stats().envelopes_malformed, 1u);
  EXPECT_EQ(relay.stats().envelopes_accepted, 0u);
}

TEST(TransportTest, EnvelopeRoundTrip) {
  Message inner = MakeMessage("server", 33);
  inner.header.src = "mobile";
  inner.header.message_id = 5;
  auto decoded = TransportManager::DecodeEnvelope(TransportManager::EncodeEnvelope(inner));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.src, "mobile");
  EXPECT_EQ(decoded->header.dst, "server");
  EXPECT_EQ(decoded->payload.size(), 33u);
}

TEST(SchedulerScaleTest, LinkLookupWorkPerSendIsFlatInAttachedLinks) {
  // The fan-in pathology: a server host with one link per client used to
  // re-scan ALL of them on every send (PickLink). With the peer index the
  // scan work per send must be identical at 16 and 4096 attached peers.
  auto scans_per_send = [](int peers) -> uint64_t {
    EventLoop loop;
    Network net(&loop);
    for (int i = 0; i < peers; ++i) {
      net.Connect("server", "c" + std::to_string(i), LinkProfile::Ethernet10());
    }
    TransportManager server(&loop, net.FindHost("server"));
    constexpr uint64_t kSends = 64;
    ResetHostLinkScanSteps();
    for (uint64_t i = 0; i < kSends; ++i) {
      Message m = MakeMessage("c0", 32);
      m.header.src = "server";
      m.header.message_id = i + 1;
      server.scheduler()->Enqueue(std::move(m));
      loop.Run();
    }
    EXPECT_EQ(server.scheduler()->stats().messages_delivered, kSends);
    return HostLinkScanSteps() / kSends;
  };
  const uint64_t small = scans_per_send(16);
  const uint64_t large = scans_per_send(4096);
  EXPECT_EQ(small, large);
}

TEST(SchedulerScaleTest, ParkedQueueWakesViaPeerObserverOnLateAttach) {
  // No link at all at enqueue time: the queue parks, registers a per-peer
  // observer, and a link attached later -- with no global link-change
  // listener in the picture -- triggers delivery.
  EventLoop loop;
  Network net(&loop);
  Host* mobile = net.AddHost("mobile");
  TransportManager transport(&loop, mobile);
  TransportManager* server = nullptr;

  Status delivered = InternalError("pending");
  Message m = MakeMessage("server", 16);
  m.header.src = "mobile";
  m.header.message_id = 1;
  transport.scheduler()->Enqueue(std::move(m),
                                 [&](const Status& s) { delivered = s; });
  loop.Run();
  EXPECT_FALSE(delivered.ok());  // parked: nothing to send over

  net.Connect("mobile", "server", LinkProfile::Ethernet10());
  TransportManager server_transport(&loop, net.FindHost("server"));
  server = &server_transport;
  (void)server;
  loop.Run();
  EXPECT_TRUE(delivered.ok());
}

}  // namespace
}  // namespace rover
