// End-to-end tests of the Rover applications: mail reader (Exmh), calendar
// (Ical), and Web browser proxy -- including the disconnected-operation
// scenarios the paper demonstrates with each.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/calendar.h"
#include "src/apps/mail.h"
#include "src/apps/web.h"
#include "src/apps/workload.h"
#include "src/core/toolkit.h"

#include <algorithm>

namespace rover {
namespace {

MailMessage MakeMail(const std::string& id, const std::string& subject,
                     const std::string& body) {
  MailMessage m;
  m.id = id;
  m.from = "kaashoek@lcs.mit.edu";
  m.to = "adj@lcs.mit.edu";
  m.subject = subject;
  m.date = "1995-12-03";
  m.body = body;
  return m;
}

TEST(MailStateTest, EncodeDecodeRoundTrip) {
  MailMessage m = MakeMail("7", "SOSP camera ready", "see attached\nline two");
  m.read = true;
  auto decoded = DecodeMailState(EncodeMailState(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, "7");
  EXPECT_EQ(decoded->subject, "SOSP camera ready");
  EXPECT_EQ(decoded->body, "see attached\nline two");
  EXPECT_TRUE(decoded->read);
}

class MailTest : public ::testing::Test {
 protected:
  void Seed(Testbed* bed, MailService* service, int count) {
    ASSERT_TRUE(service->CreateFolder("inbox").ok());
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(service
                      ->DeliverLocal("inbox", MakeMail(std::to_string(i),
                                                       "msg " + std::to_string(i),
                                                       "body " + std::to_string(i)))
                      .ok());
    }
  }
};

TEST_F(MailTest, ScanAndReadConnected) {
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 5);
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  MailReader reader(bed.loop(), node);

  auto folder = reader.OpenFolder("inbox");
  ASSERT_TRUE(folder.Wait(bed.loop()));
  ASSERT_TRUE(folder.value().ok());
  EXPECT_EQ(folder.value().value().size(), 5u);

  auto body = reader.ReadMessage("inbox", "2");
  ASSERT_TRUE(body.Wait(bed.loop()));
  ASSERT_TRUE(body.value().ok());
  EXPECT_EQ(body.value().value(), "body 2");

  // Summary runs locally on the cached message and reflects the read mark.
  auto summary = reader.Summary("inbox", "2");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->substr(0, 1), "R");
}

TEST_F(MailTest, DisconnectedReadingFromPrefetchedCache) {
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 8);
  // Docked for 60s, then gone for good.
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(60)}});
  RoverClientNode* node =
      bed.AddClient("laptop", LinkProfile::Ethernet10(), std::move(schedule));
  MailReader reader(bed.loop(), node);

  auto folder = reader.OpenFolder("inbox");
  ASSERT_TRUE(folder.Wait(bed.loop()));
  ASSERT_TRUE(reader.PrefetchFolder("inbox").ok());
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(100));
  ASSERT_FALSE(node->access()->Connected());

  // Every message is readable offline.
  for (int i = 0; i < 8; ++i) {
    auto body = reader.ReadMessage("inbox", std::to_string(i));
    ASSERT_TRUE(body.Wait(bed.loop()));
    ASSERT_TRUE(body.value().ok()) << body.value().status();
    EXPECT_EQ(body.value().value(), "body " + std::to_string(i));
  }
  EXPECT_EQ(reader.stats().messages_read, 8u);
}

TEST_F(MailTest, QueuedSendDeliversOnReconnect) {
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 1);
  // Offline from t=0, reconnects at t=300s.
  RoverClientNode* node = bed.AddClient(
      "laptop", LinkProfile::Cslip144(),
      std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                             TimePoint::Epoch() + Duration::Seconds(300)));
  MailReader reader(bed.loop(), node);

  QrpcCall send = reader.Send("outbox-frans", MakeMail("reply-1", "Re: draft", "looks good"));
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(100));
  // The send commits to the stable log immediately even though the
  // network is down; the server-side result is still pending.
  EXPECT_TRUE(send.committed.ready());
  EXPECT_FALSE(send.result.ready());

  bed.Run();
  ASSERT_TRUE(send.result.ready());
  EXPECT_TRUE(send.result.value().status.ok());
  EXPECT_GT(send.result.value().completed_at.seconds(), 300.0);
  EXPECT_TRUE(bed.server()->store()->Exists(MailMessageObject("outbox-frans", "reply-1")));
}

TEST_F(MailTest, ReadMarksSyncBack) {
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 3);
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  MailReader reader(bed.loop(), node);
  reader.OpenFolder("inbox").Wait(bed.loop());
  reader.ReadMessage("inbox", "0").Wait(bed.loop());
  reader.ReadMessage("inbox", "1").Wait(bed.loop());
  EXPECT_EQ(node->access()->TentativeCount(), 2u);

  reader.SyncReadMarks("inbox");
  bed.Run();
  EXPECT_EQ(node->access()->TentativeCount(), 0u);
  auto m0 = DecodeMailState(bed.server()->store()->Get(MailMessageObject("inbox", "0"))->data);
  EXPECT_TRUE(m0->read);
  auto m2 = DecodeMailState(bed.server()->store()->Get(MailMessageObject("inbox", "2"))->data);
  EXPECT_FALSE(m2->read);
}

TEST(CalendarTest, BookLookupSlots) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "adj").ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  CalendarApp cal(bed.loop(), node, "adj");
  cal.Open().Wait(bed.loop());

  auto booked = cal.Book("mon-10am", "group meeting");
  ASSERT_TRUE(booked.Wait(bed.loop()));
  EXPECT_TRUE(booked.value().status.ok());
  EXPECT_TRUE(cal.HasPendingChanges());

  auto lookup = cal.Lookup("mon-10am");
  ASSERT_TRUE(lookup.Wait(bed.loop()));
  EXPECT_EQ(lookup.value().value, "group meeting");

  auto slots = cal.Slots();
  ASSERT_TRUE(slots.ok());
  EXPECT_EQ(*slots, std::vector<std::string>{"mon-10am"});
}

TEST(CalendarTest, DoubleBookLocallyRejected) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "adj").ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  CalendarApp cal(bed.loop(), node, "adj");
  cal.Open().Wait(bed.loop());
  cal.Book("mon-10am", "a").Wait(bed.loop());
  auto again = cal.Book("mon-10am", "b");
  ASSERT_TRUE(again.Wait(bed.loop()));
  EXPECT_FALSE(again.value().status.ok());
}

TEST(CalendarTest, TwoUsersMergeNonOverlapping) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "group").ok());
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2());
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());
  CalendarApp cal_a(bed.loop(), a, "group");
  CalendarApp cal_b(bed.loop(), b, "group");
  cal_a.Open().Wait(bed.loop());
  cal_b.Open().Wait(bed.loop());

  cal_a.Book("mon-10am", "standup").Wait(bed.loop());
  cal_b.Book("tue-2pm", "review").Wait(bed.loop());
  ASSERT_TRUE(cal_a.Sync().Wait(bed.loop()));
  auto sync_b = cal_b.Sync();
  ASSERT_TRUE(sync_b.Wait(bed.loop()));
  EXPECT_TRUE(sync_b.value().status.ok());
  EXPECT_TRUE(sync_b.value().server_resolved);

  auto committed = bed.server()->store()->Get(CalendarObject("group"));
  EXPECT_NE(committed->data.find("standup"), std::string::npos);
  EXPECT_NE(committed->data.find("review"), std::string::npos);
}

TEST(CalendarTest, DoubleBookAcrossUsersConflicts) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "room5").ok());
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2());
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());
  CalendarApp cal_a(bed.loop(), a, "room5");
  CalendarApp cal_b(bed.loop(), b, "room5");
  cal_a.Open().Wait(bed.loop());
  cal_b.Open().Wait(bed.loop());

  cal_a.Book("mon-10am", "standup").Wait(bed.loop());
  cal_b.Book("mon-10am", "1:1").Wait(bed.loop());
  ASSERT_TRUE(cal_a.Sync().Wait(bed.loop()));
  auto sync_b = cal_b.Sync();
  ASSERT_TRUE(sync_b.Wait(bed.loop()));
  EXPECT_EQ(sync_b.value().status.code(), StatusCode::kConflict);
  EXPECT_EQ(cal_b.stats().sync_conflicts, 1u);
  EXPECT_TRUE(cal_b.HasPendingChanges());

  auto conflicts = cal_b.ConflictingSlots();
  ASSERT_TRUE(conflicts.ok());
  EXPECT_EQ(*conflicts, std::vector<std::string>{"mon-10am"});

  // User resolution: move the meeting and sync again.
  cal_b.Cancel("mon-10am").Wait(bed.loop());
  cal_b.Book("mon-11am", "1:1").Wait(bed.loop());
  auto retry = cal_b.Sync();
  ASSERT_TRUE(retry.Wait(bed.loop()));
  EXPECT_TRUE(retry.value().status.ok());
  auto committed = bed.server()->store()->Get(CalendarObject("room5"));
  EXPECT_NE(committed->data.find("standup"), std::string::npos);
  EXPECT_NE(committed->data.find("mon-11am"), std::string::npos);
}

TEST(CalendarTest, DisconnectedBookingSyncsLater) {
  Testbed bed;
  ASSERT_TRUE(CreateCalendar(bed.server(), "adj").ok());
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(10)},
          {TimePoint::Epoch() + Duration::Seconds(200),
           TimePoint::Epoch() + Duration::Seconds(1e6)}});
  RoverClientNode* node =
      bed.AddClient("laptop", LinkProfile::Cslip144(), std::move(schedule));
  CalendarApp cal(bed.loop(), node, "adj");
  cal.Open().Wait(bed.loop());
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(50));  // offline now

  cal.Book("fri-3pm", "flight").Wait(bed.loop());
  auto sync = cal.Sync();
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(100));
  EXPECT_FALSE(sync.ready());
  bed.Run();
  ASSERT_TRUE(sync.ready());
  EXPECT_TRUE(sync.value().status.ok());
  EXPECT_NE(bed.server()->store()->Get(CalendarObject("adj"))->data.find("flight"),
            std::string::npos);
}

TEST(WebStateTest, EncodeDecodeRoundTrip) {
  WebPage page;
  page.url = "page/3";
  page.title = "A page";
  page.content = "<html>hello</html>";
  page.links = {"page/4", "page/5"};
  auto decoded = DecodeWebState("page/3", EncodeWebState(page));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->title, "A page");
  EXPECT_EQ(decoded->content, "<html>hello</html>");
  EXPECT_EQ(decoded->links, (std::vector<std::string>{"page/4", "page/5"}));
}

TEST(WebTest, SyntheticWebDeterministic) {
  Testbed bed1;
  Testbed bed2;
  SyntheticWebOptions options;
  options.page_count = 20;
  ASSERT_TRUE(BuildSyntheticWeb(bed1.server(), options).ok());
  ASSERT_TRUE(BuildSyntheticWeb(bed2.server(), options).ok());
  for (int i = 0; i < 20; ++i) {
    const std::string object = WebObject("page/" + std::to_string(i));
    EXPECT_EQ(bed1.server()->store()->Get(object)->data,
              bed2.server()->store()->Get(object)->data);
  }
}

TEST(WebTest, RequestFetchesAndCaches) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 10;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::Cslip144());
  BrowserProxy proxy(bed.loop(), node);

  auto first = proxy.Request("page/0");
  ASSERT_TRUE(first.Wait(bed.loop()));
  EXPECT_TRUE(first.value().status.ok());
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_GT(first.value().latency.seconds(), 0.1);  // CSLIP is slow

  auto second = proxy.Request("page/0");
  ASSERT_TRUE(second.Wait(bed.loop()));
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_LT(second.value().latency.seconds(), 0.01);
}

TEST(WebTest, ClickAheadAllowsConcurrentRequests) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 10;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::Cslip24());
  BrowserProxy proxy(bed.loop(), node);

  const TimePoint start = bed.loop()->now();
  auto p0 = proxy.Request("page/0");
  auto p1 = proxy.Request("page/1");
  auto p2 = proxy.Request("page/2");
  bed.Run();
  ASSERT_TRUE(p0.ready() && p1.ready() && p2.ready());
  // Pipelined over one slow link: total time well under 3x a single fetch.
  const double t0 = (p0.value().latency).seconds();
  const double total = (bed.loop()->now() - start).seconds();
  EXPECT_LT(total, 3 * t0 + 1.0);
}

TEST(WebTest, BlockingModeSerializesRequests) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 10;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::Cslip144());
  BrowserProxyOptions popts;
  popts.click_ahead = false;
  BrowserProxy proxy(bed.loop(), node, popts);

  auto p0 = proxy.Request("page/0");
  auto p1 = proxy.Request("page/1");
  bed.Run();
  ASSERT_TRUE(p0.ready() && p1.ready());
  // The second request waited for the first: its measured latency spans
  // both fetches.
  EXPECT_GT(p1.value().latency.seconds(), p0.value().latency.seconds());
}

TEST(WebTest, PrefetchMakesNextClickAHit) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 10;
  options.mean_out_degree = 3;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  BrowserProxyOptions popts;
  popts.prefetch_links = true;
  popts.prefetch_fanout = 8;
  BrowserProxy proxy(bed.loop(), node, popts);

  auto p0 = proxy.Request("page/0");
  ASSERT_TRUE(p0.Wait(bed.loop()));
  bed.Run();  // let prefetches finish
  ASSERT_FALSE(p0.value().page.links.empty());
  const std::string next = p0.value().page.links[0];
  EXPECT_TRUE(proxy.IsCached(next));
  auto p1 = proxy.Request(next);
  ASSERT_TRUE(p1.Wait(bed.loop()));
  EXPECT_TRUE(p1.value().from_cache);
  EXPECT_GT(proxy.stats().prefetches, 0u);
}

TEST(WebTest, BrowseSessionCompletesAndRecordsLatency) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 30;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::Cslip144());
  BrowserProxy proxy(bed.loop(), node);
  BrowseSessionOptions sopts;
  sopts.clicks = 15;
  BrowseSession session(bed.loop(), &proxy, sopts);
  auto done = session.Run("page/0");
  bed.Run();
  ASSERT_TRUE(done.ready());
  EXPECT_EQ(done.value().pages_visited, 15u);
  EXPECT_EQ(done.value().latencies_seconds.size(), 15u);
  EXPECT_GT(done.value().session_duration.seconds(), 0.0);
}

TEST(WebTest, OfflineBrowsingOfCachedPages) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 5;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(30)}});
  RoverClientNode* node =
      bed.AddClient("laptop", LinkProfile::Ethernet10(), std::move(schedule));
  BrowserProxy proxy(bed.loop(), node);

  for (int i = 0; i < 5; ++i) {
    proxy.Request("page/" + std::to_string(i)).Wait(bed.loop());
  }
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(60));
  ASSERT_FALSE(node->access()->Connected());

  auto hit = proxy.Request("page/3");
  ASSERT_TRUE(hit.Wait(bed.loop()));
  EXPECT_TRUE(hit.value().status.ok());
  EXPECT_TRUE(hit.value().from_cache);
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(WebTest, GenerateBrowsePathDeterministicAndValid) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 25;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  auto p1 = GenerateBrowsePath(bed.server(), "page/0", 12, 9);
  auto p2 = GenerateBrowsePath(bed.server(), "page/0", 12, 9);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ(p1->size(), 12u);
  EXPECT_EQ((*p1)[0], "page/0");
  // Every step follows a real link from the previous page.
  for (size_t i = 1; i < p1->size(); ++i) {
    auto doc = bed.server()->store()->Get(WebObject((*p1)[i - 1]));
    auto page = DecodeWebState((*p1)[i - 1], doc->data);
    EXPECT_NE(std::find(page->links.begin(), page->links.end(), (*p1)[i]),
              page->links.end());
  }
}

TEST(WebTest, RunPathVisitsExactSequence) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 10;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  BrowserProxy proxy(bed.loop(), node);
  BrowseSessionOptions sopts;
  sopts.think_time_mean = Duration::Seconds(1);
  BrowseSession session(bed.loop(), &proxy, sopts);
  auto done = session.RunPath({"page/1", "page/2", "page/1"});
  bed.Run();
  ASSERT_TRUE(done.ready());
  EXPECT_EQ(done.value().pages_visited, 3u);
  EXPECT_EQ(done.value().cache_hits, 1u);  // the page/1 revisit
}

TEST(WebTest, PrefetchGatedByBandwidth) {
  Testbed bed;
  SyntheticWebOptions options;
  options.page_count = 10;
  ASSERT_TRUE(BuildSyntheticWeb(bed.server(), options).ok());
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::Cslip24());
  BrowserProxyOptions popts;
  popts.prefetch_links = true;
  popts.min_prefetch_bandwidth_bps = 8e3;  // 2.4 Kbit/s is below this
  BrowserProxy proxy(bed.loop(), node, popts);
  proxy.Request("page/0").Wait(bed.loop());
  bed.Run();
  EXPECT_EQ(proxy.stats().prefetches, 0u);
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(WorkloadTest, ZipfSamplerIsSkewedAndDeterministic) {
  ZipfSampler a(100, 1.0, 7);
  ZipfSampler b(100, 1.0, 7);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const size_t r = a.Next();
    ASSERT_LT(r, 100u);
    EXPECT_EQ(r, b.Next());  // deterministic
    ++counts[r];
  }
  // Rank 0 should dominate rank 50 by roughly 50x under s=1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // Long tail still sampled.
  int tail = 0;
  for (int r = 50; r < 100; ++r) {
    tail += counts[r];
  }
  EXPECT_GT(tail, 100);
}

TEST(WorkloadTest, MailCorpusDeterministicAndSized) {
  MailCorpusOptions options;
  options.message_count = 25;
  options.mean_body_bytes = 1000;
  auto a = GenerateMailCorpus(options);
  auto b = GenerateMailCorpus(options);
  ASSERT_EQ(a.size(), 25u);
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].body, b[i].body);
    EXPECT_EQ(a[i].id, std::to_string(i));
    EXPECT_GE(a[i].body.size(), 64u);
    total += a[i].body.size();
  }
  // Mean within a loose factor of the target.
  EXPECT_GT(total / a.size(), 300u);
  EXPECT_LT(total / a.size(), 3000u);
}

TEST(WorkloadTest, CalendarSessionMix) {
  auto ops = GenerateCalendarSession(200, 0.3, 3);
  ASSERT_EQ(ops.size(), 200u);
  int bookings = 0;
  for (const auto& op : ops) {
    if (op.is_booking) {
      ++bookings;
      EXPECT_FALSE(op.description.empty());
    }
    EXPECT_FALSE(op.slot.empty());
  }
  EXPECT_GT(bookings, 30);
  EXPECT_LT(bookings, 100);
}

TEST(WorkloadTest, CorpusDeliversAndReadsEndToEnd) {
  Testbed bed;
  MailService service(bed.server());
  ASSERT_TRUE(service.CreateFolder("inbox").ok());
  MailCorpusOptions options;
  options.message_count = 10;
  for (const MailMessage& m : GenerateMailCorpus(options)) {
    ASSERT_TRUE(service.DeliverLocal("inbox", m).ok());
  }
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  MailReader reader(bed.loop(), node);
  auto folder = reader.OpenFolder("inbox");
  ASSERT_TRUE(folder.Wait(bed.loop()));
  ASSERT_TRUE(folder.value().ok());
  EXPECT_EQ(folder.value().value().size(), 10u);
  auto body = reader.ReadMessage("inbox", "3");
  ASSERT_TRUE(body.Wait(bed.loop()));
  EXPECT_TRUE(body.value().ok());
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST_F(MailTest, DeleteMessageLocallyAndSync) {
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 4);
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  MailReader reader(bed.loop(), node);
  reader.OpenFolder("inbox").Wait(bed.loop());

  ASSERT_TRUE(reader.DeleteMessage("inbox", "1").ok());
  auto ids = reader.ListMessages("inbox");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"0", "2", "3"}));
  // Not yet committed.
  EXPECT_NE(bed.server()->store()->Get(MailFolderObject("inbox"))->data.find("1"),
            std::string::npos);

  auto sync = reader.SyncFolder("inbox");
  ASSERT_TRUE(sync.Wait(bed.loop()));
  EXPECT_TRUE(sync.value().status.ok());
  auto committed = TclListSplit(bed.server()->store()->Get(MailFolderObject("inbox"))->data);
  EXPECT_EQ(*committed, (std::vector<std::string>{"0", "2", "3"}));
}

TEST_F(MailTest, DeleteUnknownMessageFails) {
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 2);
  RoverClientNode* node = bed.AddClient("laptop", LinkProfile::WaveLan2());
  MailReader reader(bed.loop(), node);
  reader.OpenFolder("inbox").Wait(bed.loop());
  EXPECT_EQ(reader.DeleteMessage("inbox", "99").code(), StatusCode::kNotFound);
  EXPECT_EQ(reader.DeleteMessage("other", "0").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MailTest, DisconnectedDeleteMergesWithConcurrentDelivery) {
  // The canonical optimistic-replication scenario: the user deletes a
  // message on the train while the server delivers new mail. On
  // reconnection the set resolver merges both: the delete sticks AND the
  // new message appears.
  Testbed bed;
  MailService service(bed.server());
  Seed(&bed, &service, 3);
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(30)},
          {TimePoint::Epoch() + Duration::Seconds(200),
           TimePoint::Epoch() + Duration::Seconds(1e6)}});
  RoverClientNode* node =
      bed.AddClient("laptop", LinkProfile::WaveLan2(), std::move(schedule));
  MailReader reader(bed.loop(), node);
  reader.OpenFolder("inbox").Wait(bed.loop());
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(50));  // offline now

  ASSERT_TRUE(reader.DeleteMessage("inbox", "0").ok());
  auto sync = reader.SyncFolder("inbox");

  // Meanwhile, new mail arrives at the server.
  ASSERT_TRUE(service.DeliverLocal("inbox", MakeMail("9", "new mail", "fresh")).ok());

  bed.Run();
  ASSERT_TRUE(sync.ready());
  EXPECT_TRUE(sync.value().status.ok());
  EXPECT_TRUE(sync.value().server_resolved);  // resolver merged
  auto committed = TclListSplit(bed.server()->store()->Get(MailFolderObject("inbox"))->data);
  std::set<std::string> ids(committed->begin(), committed->end());
  EXPECT_EQ(ids, (std::set<std::string>{"1", "2", "9"}));  // 0 deleted, 9 delivered
  // The client adopted the merged index including the new message id.
  auto local = reader.ListMessages("inbox");
  std::set<std::string> local_ids(local->begin(), local->end());
  EXPECT_EQ(local_ids, ids);
}

}  // namespace
}  // namespace rover
