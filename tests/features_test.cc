// Tests for the toolkit features beyond the core loop: URN naming with
// multiple home servers, request authentication, poll-based consistency,
// client cache persistence across restart, and QRPC cancellation.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cache/urn.h"
#include "src/core/toolkit.h"

namespace rover {
namespace {

constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

// --- URNs ---

TEST(UrnTest, ParseValid) {
  auto urn = ParseRoverUrn("rover://mail-server/inbox/7");
  ASSERT_TRUE(urn.ok());
  EXPECT_EQ(urn->server, "mail-server");
  EXPECT_EQ(urn->path, "inbox/7");
}

TEST(UrnTest, RejectsMalformed) {
  EXPECT_FALSE(ParseRoverUrn("http://x/y").ok());
  EXPECT_FALSE(ParseRoverUrn("rover://serveronly").ok());
  EXPECT_FALSE(ParseRoverUrn("rover:///path").ok());
  EXPECT_FALSE(ParseRoverUrn("rover://server/").ok());
}

TEST(UrnTest, ResolveAgainstDefault) {
  RoverUrn bare = ResolveObjectName("mail/inbox", "home");
  EXPECT_EQ(bare.server, "home");
  EXPECT_EQ(bare.path, "mail/inbox");
  RoverUrn full = ResolveObjectName("rover://other/cal", "home");
  EXPECT_EQ(full.server, "other");
  EXPECT_EQ(full.path, "cal");
}

TEST(UrnTest, MakeRoundTrips) {
  const std::string urn = MakeRoverUrn("s1", "a/b");
  EXPECT_EQ(urn, "rover://s1/a/b");
  EXPECT_TRUE(IsRoverUrn(urn));
  auto parsed = ParseRoverUrn(urn);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->path, "a/b");
}

TEST(MultiServerTest, ObjectsLiveOnTheirHomeServers) {
  Testbed bed;  // default server: "server"
  RoverServerNode* second = bed.AddServer("archive");
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "1")).ok());
  ASSERT_TRUE(second->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "100")).ok());

  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  bed.AddLink("mobile", "archive", LinkProfile::Cslip144());

  // Bare name -> default server; URN -> the archive server. Same path,
  // independent objects.
  auto a = client->access()->Import("counter");
  auto b = client->access()->Import("rover://archive/counter");
  bed.Run();
  ASSERT_TRUE(a.ready() && b.ready());
  ASSERT_TRUE(a.value().status.ok());
  ASSERT_TRUE(b.value().status.ok());
  EXPECT_EQ(*client->access()->ReadData("counter"), "1");
  EXPECT_EQ(*client->access()->ReadData("rover://archive/counter"), "100");

  // Updates commit to the right server.
  client->access()->Invoke("rover://archive/counter", "add", {"5"}).Wait(bed.loop());
  client->access()->Export("rover://archive/counter").Wait(bed.loop());
  EXPECT_EQ(second->store()->Get("counter")->data, "105");
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "1");
}

TEST(MultiServerTest, MigrationPolicyUsesPerServerLink) {
  Testbed bed;  // default server on Ethernet (fast)
  RoverServerNode* far = bed.AddServer("far");
  ASSERT_TRUE(far->rover()->CreateObject(
      MakeRdo("doc", "lww", kCounterCode, "7")).ok());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("doc", "lww", kCounterCode, "7")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Ethernet10());
  bed.AddLink("mobile", "far", LinkProfile::Cslip144());

  client->access()->Import("doc").Wait(bed.loop());
  client->access()->Import("rover://far/doc").Wait(bed.loop());

  // Adaptive policy: fast link -> server execution; slow link -> local.
  auto near_invoke = client->access()->Invoke("doc", "get", {});
  near_invoke.Wait(bed.loop());
  EXPECT_EQ(near_invoke.value().site, ExecutionSite::kServer);
  auto far_invoke = client->access()->Invoke("rover://far/doc", "get", {});
  far_invoke.Wait(bed.loop());
  EXPECT_EQ(far_invoke.value().site, ExecutionSite::kClient);
}

// --- authentication ---

TEST(AuthTest, UnauthenticatedRequestRefused) {
  Testbed::Options options;
  options.server.qrpc.accepted_tokens = {"secret-token"};
  Testbed bed(options);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());

  auto import = client->access()->Import("counter");
  ASSERT_TRUE(import.Wait(bed.loop()));
  EXPECT_EQ(import.value().status.code(), StatusCode::kPermissionDenied);
}

TEST(AuthTest, AuthenticatedRequestAccepted) {
  Testbed::Options options;
  options.server.qrpc.accepted_tokens = {"secret-token"};
  Testbed bed(options);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  ClientNodeOptions copts;
  copts.auth_token = "secret-token";
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2(), nullptr, copts);

  auto import = client->access()->Import("counter");
  ASSERT_TRUE(import.Wait(bed.loop()));
  EXPECT_TRUE(import.value().status.ok());
}

TEST(AuthTest, WrongTokenRefusedAndCounted) {
  Testbed::Options options;
  options.server.qrpc.accepted_tokens = {"right"};
  Testbed bed(options);
  ClientNodeOptions copts;
  copts.auth_token = "wrong";
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2(), nullptr, copts);
  auto call = client->qrpc()->Call("server", "rover.list", {std::string("")});
  ASSERT_TRUE(call.result.Wait(bed.loop()));
  EXPECT_EQ(call.result.value().status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(bed.server()->qrpc()->stats().auth_failures, 1u);
}

// --- polling ---

TEST(PollTest, StaleEntryDetectedAndRefetched) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  ClientNodeOptions popts;
  popts.access.poll_interval = Duration::Seconds(30);
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2(), nullptr, popts);
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());

  a->access()->Import("counter").Wait(bed.loop());
  // b commits version 2 behind a's back.
  b->access()->Import("counter").Wait(bed.loop());
  b->access()->Invoke("counter", "add", {"3"}).Wait(bed.loop());
  b->access()->Export("counter").Wait(bed.loop());

  // After the next poll tick, a's entry is stale and a fresh import fetches v2.
  bed.loop()->RunFor(Duration::Seconds(40));
  EXPECT_GE(a->access()->stats().polls_sent, 1u);
  EXPECT_GE(a->access()->stats().poll_staleness_detected, 1u);
  auto re = a->access()->Import("counter");
  ASSERT_TRUE(re.Wait(bed.loop()));
  EXPECT_FALSE(re.value().from_cache);
  EXPECT_EQ(re.value().version, 2u);
}

TEST(PollTest, NoPollWhileDisconnected) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  ClientNodeOptions popts;
  popts.access.poll_interval = Duration::Seconds(10);
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::WaveLan2(),
      std::make_unique<IntervalConnectivity>(std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(15)}}),
      popts);
  client->access()->Import("counter").Wait(bed.loop());
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(120));
  // One poll may fire inside the first 15 s window; none afterwards.
  EXPECT_LE(client->access()->stats().polls_sent, 2u);
  EXPECT_EQ(client->transport()->scheduler()->TotalQueueDepth(), 0u);
}

// --- cache persistence ---

TEST(PersistenceTest, CacheSurvivesClientRestart) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "10")).ok());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("notes", "lww", kCounterCode, "0")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());

  ImportOptions pin;
  pin.pin = true;
  client->access()->Import("counter", pin).Wait(bed.loop());
  client->access()->Import("notes").Wait(bed.loop());
  // Tentative local work on "notes".
  client->access()->Invoke("notes", "add", {"5"}).Wait(bed.loop());

  const Bytes snapshot = client->access()->SerializeCache();

  // "Reboot": a fresh access manager over the same transport stack. The
  // rpc-id counter is part of the durable state (see QrpcClient docs) --
  // restarting from 1 would collide with the server's duplicate cache.
  const uint64_t next_rpc_id = client->qrpc()->next_rpc_id();
  ClientNodeOptions fresh;
  auto restarted = std::make_unique<RoverClientNode>(
      bed.loop(), bed.network()->FindHost("mobile"), fresh);
  restarted->qrpc()->set_next_rpc_id(next_rpc_id);
  ASSERT_TRUE(restarted->access()->LoadCache(snapshot).ok());

  EXPECT_EQ(restarted->access()->CachedObjectCount(), 2u);
  EXPECT_EQ(*restarted->access()->ReadData("counter"), "10");
  EXPECT_EQ(*restarted->access()->ReadData("notes"), "5");
  EXPECT_TRUE(restarted->access()->IsTentative("notes"));
  EXPECT_FALSE(restarted->access()->IsTentative("counter"));

  // The restored tentative state exports with the correct base version.
  auto exp = restarted->access()->Export("notes");
  ASSERT_TRUE(exp.Wait(bed.loop()));
  EXPECT_TRUE(exp.value().status.ok());
  EXPECT_EQ(bed.server()->store()->Get("notes")->data, "5");

  // And local invocations work immediately (e.g. while disconnected).
  auto inv = restarted->access()->Invoke("counter", "get", {});
  ASSERT_TRUE(inv.Wait(bed.loop()));
  EXPECT_EQ(inv.value().value, "10");
}

TEST(PersistenceTest, CorruptSnapshotRejected) {
  Testbed bed;
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  Bytes bogus{0x09, 0x01, 0x02};
  EXPECT_FALSE(client->access()->LoadCache(bogus).ok());
}

TEST(PersistenceTest, EmptyCacheRoundTrips) {
  Testbed bed;
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  const Bytes snapshot = client->access()->SerializeCache();
  EXPECT_TRUE(client->access()->LoadCache(snapshot).ok());
  EXPECT_EQ(client->access()->CachedObjectCount(), 0u);
}

// --- cancellation ---

TEST(CancelTest, QueuedCallCancelledBeforeTransmission) {
  Testbed bed;
  // Never connected: the call stays queued.
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(),
                    std::make_unique<ConstantConnectivity>(false));
  QrpcCall call = client->qrpc()->Call("server", "rover.list", {std::string("")});
  ASSERT_TRUE(call.committed.Wait(bed.loop()));
  EXPECT_EQ(client->qrpc()->PendingCount(), 1u);
  EXPECT_EQ(client->qrpc()->LogDepth(), 1u);

  EXPECT_TRUE(client->qrpc()->Cancel(call.rpc_id));
  ASSERT_TRUE(call.result.ready());
  EXPECT_EQ(call.result.value().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->transport()->scheduler()->TotalQueueDepth(), 0u);
}

TEST(CancelTest, CancelledCallNeverReachesServer) {
  Testbed bed;
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::WaveLan2(),
      std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                             TimePoint::Epoch() + Duration::Seconds(100)));
  QrpcCall call = client->qrpc()->Call("server", "rover.list", {std::string("")});
  call.committed.Wait(bed.loop());
  client->qrpc()->Cancel(call.rpc_id);
  bed.Run();  // reconnect happens; nothing to send
  EXPECT_EQ(bed.server()->qrpc()->stats().requests, 0u);
}

TEST(CancelTest, UnknownOrCompletedIdReturnsFalse) {
  Testbed bed;
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  EXPECT_FALSE(client->qrpc()->Cancel(999));
  QrpcCall call = client->qrpc()->Call("server", "rover.list", {std::string("")});
  ASSERT_TRUE(call.result.Wait(bed.loop()));
  EXPECT_FALSE(client->qrpc()->Cancel(call.rpc_id));  // already completed
}

TEST(CancelTest, RecoveryDoesNotResurrectCancelledCalls) {
  Testbed bed;
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(),
                    std::make_unique<ConstantConnectivity>(false));
  QrpcCall keep = client->qrpc()->Call("server", "rover.list", {std::string("a")});
  QrpcCall drop = client->qrpc()->Call("server", "rover.list", {std::string("b")});
  keep.committed.Wait(bed.loop());
  drop.committed.Wait(bed.loop());
  client->qrpc()->Cancel(drop.rpc_id);

  client->log()->SimulateCrash();
  client->log()->Recover();
  // Only the surviving request is re-driven.
  EXPECT_EQ(client->qrpc()->RecoverFromLog(), 1u);
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(RelayAccessTest, FullToolkitLoopOverSmtpOnly) {
  // A field unit whose only connectivity is a 2.4 Kbit/s mail link to a
  // relay: import, local invoke, and export all work, end to end.
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  ClientNodeOptions options;
  options.access.relay_host = "relay";
  RoverClientNode* client = bed.AddDetachedClient("fieldunit", options);
  bed.AddRelay("relay", "fieldunit", LinkProfile::Cslip24(), LinkProfile::Ethernet10());

  auto import = client->access()->Import("counter");
  ASSERT_TRUE(import.Wait(bed.loop()));
  ASSERT_TRUE(import.value().status.ok()) << import.value().status;

  auto invoke = client->access()->Invoke("counter", "add", {"7"});
  ASSERT_TRUE(invoke.Wait(bed.loop()));
  EXPECT_EQ(invoke.value().site, ExecutionSite::kClient);  // no direct link

  auto exported = client->access()->Export("counter");
  ASSERT_TRUE(exported.Wait(bed.loop()));
  EXPECT_TRUE(exported.value().status.ok()) << exported.value().status;
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "7");
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(StalenessTest, StaleEntryServedWhileDisconnected) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "1")).ok());
  ClientNodeOptions opts;
  opts.access.subscribe_on_import = true;
  // Connected for the first 60 s only.
  RoverClientNode* a = bed.AddClient(
      "a", LinkProfile::WaveLan2(),
      std::make_unique<IntervalConnectivity>(std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(60)}}),
      opts);
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());

  a->access()->Import("counter").Wait(bed.loop());
  bed.loop()->RunFor(Duration::Seconds(5));  // subscription lands

  // b commits v2 while a is still connected: a's entry goes stale.
  b->access()->Import("counter").Wait(bed.loop());
  b->access()->Invoke("counter", "add", {"1"}).Wait(bed.loop());
  b->access()->Export("counter").Wait(bed.loop());
  bed.loop()->RunFor(Duration::Seconds(5));
  ASSERT_EQ(a->access()->stats().invalidations_received, 1u);

  // Disconnect a, then import: the stale copy is served immediately
  // rather than queueing a refetch that cannot complete.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(100));
  ASSERT_FALSE(a->access()->Connected());
  auto import = a->access()->Import("counter");
  ASSERT_TRUE(import.Wait(bed.loop()));
  EXPECT_TRUE(import.value().status.ok());
  EXPECT_TRUE(import.value().from_cache);
  EXPECT_EQ(import.value().version, 1u);  // the stale-but-available copy
}

TEST(StalenessTest, StaleEntryRefetchedWhileConnected) {
  Testbed bed;
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "1")).ok());
  ClientNodeOptions opts;
  opts.access.subscribe_on_import = true;
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2(), nullptr, opts);
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());
  a->access()->Import("counter").Wait(bed.loop());
  bed.Run();
  b->access()->Import("counter").Wait(bed.loop());
  b->access()->Invoke("counter", "add", {"1"}).Wait(bed.loop());
  b->access()->Export("counter").Wait(bed.loop());
  bed.Run();
  auto import = a->access()->Import("counter");
  ASSERT_TRUE(import.Wait(bed.loop()));
  EXPECT_FALSE(import.value().from_cache);  // connected: fetch fresh
  EXPECT_EQ(import.value().version, 2u);
}

}  // namespace
}  // namespace rover
