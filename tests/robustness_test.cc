// Decoder robustness: every wire-facing parser must reject arbitrary and
// mutated bytes with an error -- never crash, hang, or over-allocate.
// These are deterministic fuzz-style sweeps (seeded random buffers plus
// bit-flipped valid encodings).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/simcheck.h"
#include "src/core/toolkit.h"
#include "src/qrpc/marshal.h"
#include "src/rdo/rdo.h"
#include "src/store/server.h"
#include "src/tclite/parser.h"
#include "src/tclite/value.h"
#include "src/transport/message.h"
#include "src/transport/transport.h"
#include "src/util/compress.h"
#include "src/util/rng.h"

namespace rover {
namespace {

Bytes RandomBytes(Rng* rng, size_t max_len) {
  Bytes out(rng->NextBelow(max_len + 1));
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng->NextU64());
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(FuzzTest, RandomBytesNeverCrashDecoders) {
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes data = RandomBytes(&rng_, 512);
    // Each decoder either succeeds (rare, harmless) or errors cleanly.
    (void)Message::Decode(data);
    (void)DecodeFrame(data);
    (void)RdoDescriptor::Decode(data);
    (void)RpcRequestBody::Decode(data);
    (void)RpcResponseBody::Decode(data);
    (void)LzDecompress(data);
    (void)TransportManager::DecodeEnvelope(data);
    (void)DecodeInvalidation(data);
    WireReader reader(data);
    (void)reader.ReadVarint();
    (void)reader.ReadString();
  }
}

TEST_P(FuzzTest, BitFlippedMessagesRejectedOrEquivalent) {
  Message msg;
  msg.header.message_id = 1234;
  msg.header.type = MessageType::kRequest;
  msg.header.src = "mobile";
  msg.header.dst = "server";
  msg.header.auth = "token";
  msg.payload = BytesFromString("the quick brown fox");
  const Bytes valid = msg.Encode();
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = valid;
    const size_t flips = 1 + rng_.NextBelow(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng_.NextBelow(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng_.NextBelow(8));
    }
    auto decoded = Message::Decode(mutated);
    if (decoded.ok()) {
      // A flip that survives decoding must still produce a structurally
      // sane message (bounded enums).
      EXPECT_LE(static_cast<int>(decoded->header.type), 3);
      EXPECT_LT(static_cast<int>(decoded->header.priority), kNumPriorities);
    }
  }
}

TEST_P(FuzzTest, TruncatedRdoDescriptorsRejected) {
  RdoDescriptor d;
  d.name = "fuzz/object";
  d.type = "set";
  d.code = "proc get {} { global state; return $state }";
  d.data = std::string(200, 'q');
  d.metadata["k"] = "v";
  const Bytes valid = d.Encode();
  // Every strict prefix must be rejected.
  for (size_t len = 0; len < valid.size(); ++len) {
    Bytes prefix(valid.begin(), valid.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(RdoDescriptor::Decode(prefix).ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(RdoDescriptor::Decode(valid).ok());
}

TEST_P(FuzzTest, RandomScriptsNeverCrashParserOrInterp) {
  const std::string alphabet = "ab c{}[]$\"\\;\n#01+*<";
  ExecLimits limits;
  limits.max_commands = 5000;
  limits.max_depth = 16;
  for (int trial = 0; trial < 100; ++trial) {
    std::string script;
    const size_t len = rng_.NextBelow(60);
    for (size_t i = 0; i < len; ++i) {
      script.push_back(alphabet[rng_.NextBelow(alphabet.size())]);
    }
    (void)ParseScript(script);
    Interp interp(limits);
    (void)interp.Run(script);  // may error; must terminate
  }
}

TEST_P(FuzzTest, RandomListsEitherSplitOrErrorCleanly) {
  const std::string alphabet = "ab {}\"\\ ";
  for (int trial = 0; trial < 200; ++trial) {
    std::string list;
    const size_t len = rng_.NextBelow(40);
    for (size_t i = 0; i < len; ++i) {
      list.push_back(alphabet[rng_.NextBelow(alphabet.size())]);
    }
    auto split = TclListSplit(list);
    if (split.ok()) {
      // Anything that splits must re-join and re-split to the same elements
      // (canonicalization is a fixed point).
      auto again = TclListSplit(TclListJoin(*split));
      ASSERT_TRUE(again.ok()) << list;
      EXPECT_EQ(*again, *split) << list;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(uint64_t{1}, uint64_t{7}));

// End-to-end containment of wire corruption: frames damaged by a noisy
// radio must die at the transport's CRC decode boundary -- counted by
// frames_corrupt_dropped -- and never surface to QRPC, whose retries then
// converge on the correct result.
TEST(CorruptionIsolationTest, DamagedFramesDropAtTransportNeverReachQrpc) {
  constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";
  Testbed bed;
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("counter", "lww", kCounterCode, "0")).ok());
  LinkProfile noisy = LinkProfile::WaveLan2();
  noisy.corrupt_prob = 0.3;
  RoverClientNode* client = bed.AddClient("mobile", noisy);

  constexpr int kOps = 8;
  std::vector<Promise<InvokeResult>> results(kOps);
  for (int i = 0; i < kOps; ++i) {
    bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1 + i),
                           [&, i] {
                             InvokeOptions io;
                             io.force_site = ExecutionSite::kServer;
                             results[i] = client->access()->Invoke(
                                 "counter", "add", {"1"}, io);
                           });
  }
  bed.Run();

  for (auto& r : results) {
    ASSERT_TRUE(r.ready());
    EXPECT_TRUE(r.value().status.ok());
  }
  EXPECT_EQ(bed.server()->store()->Get("counter")->data,
            std::to_string(kOps));
  // Corruption really happened on the wire, and every damaged frame was
  // dropped at decode rather than handed upward.
  EXPECT_GT(client->transport()->frames_corrupt_dropped() +
                bed.server()->transport()->frames_corrupt_dropped(),
            0u);
  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report();
}

}  // namespace
}  // namespace rover
