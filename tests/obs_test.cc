// Tests for the observability layer (metrics registry + rpc tracing) and
// regression tests for the accounting bugs it surfaced: cancelled-byte
// accounting in the scheduler, corrupt duplicate-cache entries at the qrpc
// server, double-charged overlapping stable-log flushes, and stale loss
// backoff carried across a reconnection.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/toolkit.h"
#include "src/obs/metrics.h"
#include "src/obs/rpc_trace.h"
#include "src/qrpc/qrpc.h"
#include "src/qrpc/stable_log.h"
#include "src/sim/network.h"
#include "src/transport/transport.h"

namespace rover {
namespace {

TimePoint At(double seconds) { return TimePoint::Epoch() + Duration::Seconds(seconds); }

// --- registry unit tests ---

TEST(MetricsRegistryTest, CounterCreateOrGet) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("a.hits");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(reg.counter("a.hits"), c);  // same handle back
  EXPECT_EQ(reg.CounterValue("a.hits"), 5u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge* g = reg.gauge("q.depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(reg.FindGauge("q.depth")->value(), 7);
}

TEST(MetricsRegistryTest, HistogramBuckets) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("lat", {0.001, 0.01, 0.1});
  h->Observe(0.0005);  // bucket 0
  h->Observe(0.05);    // bucket 2
  h->Observe(5.0);     // overflow
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->max(), 5.0);
  ASSERT_EQ(h->bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->bucket_counts()[0], 1u);
  EXPECT_EQ(h->bucket_counts()[2], 1u);
  EXPECT_EQ(h->bucket_counts()[3], 1u);
}

TEST(MetricsRegistryTest, RenderTextAndJson) {
  obs::Registry reg;
  reg.counter("b.count")->Increment(2);
  reg.gauge("a.depth")->Set(1);
  reg.histogram("c.lat", {0.5})->Observe(0.25);
  const std::string text = reg.Render(obs::RenderFormat::kText);
  // Deterministic, sorted, one line per instrument.
  EXPECT_NE(text.find("a.depth 1"), std::string::npos);
  EXPECT_NE(text.find("b.count 2"), std::string::npos);
  EXPECT_NE(text.find("c.lat count=1"), std::string::npos);
  const std::string json = reg.Render(obs::RenderFormat::kJson);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RpcTracerTest, RecordsOrderedEventsAndEvicts) {
  obs::RpcTracer tracer(/*max_spans=*/2);
  tracer.Record(1, obs::RpcEvent::kEnqueued, At(0.0));
  tracer.Record(1, obs::RpcEvent::kTransmitted, At(1.0));
  tracer.Record(1, obs::RpcEvent::kTransmitted, At(2.0));
  tracer.Record(1, obs::RpcEvent::kResponded, At(3.0));
  ASSERT_NE(tracer.Find(1), nullptr);
  EXPECT_EQ(tracer.Find(1)->CountOf(obs::RpcEvent::kTransmitted), 2u);
  EXPECT_EQ(tracer.Find(1)->FirstTime(obs::RpcEvent::kTransmitted), At(1.0));
  tracer.Record(2, obs::RpcEvent::kEnqueued, At(4.0));
  tracer.Record(3, obs::RpcEvent::kEnqueued, At(5.0));  // evicts span 1
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.Find(1), nullptr);
  EXPECT_NE(tracer.Find(3), nullptr);
}

// --- satellite 1: cancelled messages must not count as sent payload ---

TEST(SchedulerAccountingTest, CancelledBytesNotCountedAsSent) {
  EventLoop loop;
  Network net(&loop);
  // Link permanently down: the message can never be transmitted.
  net.Connect("mobile", "server", LinkProfile::WaveLan2(),
              std::make_unique<ConstantConnectivity>(false));
  TransportManager tm(&loop, net.FindHost("mobile"));

  Message msg;
  msg.header.message_id = 7;
  msg.header.type = MessageType::kRequest;
  msg.header.dst = "server";
  msg.payload = Bytes(300, 0xab);  // incompressible-ish small payload
  const size_t queued_payload = [&] {
    tm.Send(msg);
    return tm.scheduler()->QueueDepthFor("server");
  }();
  EXPECT_EQ(queued_payload, 1u);

  ASSERT_TRUE(tm.scheduler()->CancelMessage("server", 7));
  loop.Run();

  const SchedulerStats stats = tm.scheduler()->stats();
  EXPECT_EQ(stats.messages_enqueued, 1u);
  EXPECT_EQ(stats.payload_bytes_sent, 0u) << "cancelled payload was charged as sent";
  EXPECT_GT(stats.payload_bytes_cancelled, 0u);
  EXPECT_EQ(stats.messages_delivered, 0u);
}

TEST(SchedulerAccountingTest, DeliveredBytesCountedOnceOnSuccess) {
  EventLoop loop;
  Network net(&loop);
  net.Connect("mobile", "server", LinkProfile::Ethernet10());
  TransportManager tm(&loop, net.FindHost("mobile"));

  Message msg;
  msg.header.type = MessageType::kRequest;
  msg.header.message_id = 1;
  msg.header.dst = "server";
  msg.payload = Bytes(200, 0x5c);
  tm.Send(msg);
  loop.Run();

  const SchedulerStats stats = tm.scheduler()->stats();
  EXPECT_EQ(stats.messages_delivered, 1u);
  // Compression may shrink the payload; sent bytes equal the wire payload,
  // never zero and never double-counted.
  EXPECT_GT(stats.payload_bytes_sent, 0u);
  EXPECT_LE(stats.payload_bytes_sent, stats.payload_bytes_original);
  EXPECT_EQ(stats.payload_bytes_cancelled, 0u);
}

// --- satellite 3: overlapping serial flushes must not double-charge ---

TEST(StableLogOverlapTest, OverlappingFlushChargesOnlyRemainder) {
  EventLoop loop;
  StableLog log(&loop);  // serial mode
  log.Append(Bytes(100, 1));
  log.Flush(nullptr);  // write 1 in flight (100 + 16 framing bytes)
  log.Append(Bytes(50, 2));
  log.Flush(nullptr);  // must cover only record 2 (50 + 16 bytes)
  loop.Run();
  const StableLogStats stats = log.stats();
  EXPECT_EQ(stats.flushes, 2u);
  EXPECT_EQ(stats.bytes_flushed, (100u + 16u) + (50u + 16u))
      << "overlapping flush re-wrote bytes already in flight";
  EXPECT_TRUE(log.FullyDurable());
}

TEST(StableLogOverlapTest, RedundantFlushWritesNothingButWaitsForDurability) {
  EventLoop loop;
  StableLog log(&loop);
  log.Append(Bytes(100, 1));
  TimePoint first_done;
  TimePoint second_done;
  log.Flush([&] { first_done = loop.now(); });
  // No new appends: this flush has nothing to write, but its completion
  // still represents "everything so far is durable".
  log.Flush([&] { second_done = loop.now(); });
  loop.Run();
  EXPECT_EQ(log.stats().flushes, 1u) << "redundant flush issued a device write";
  EXPECT_GE(second_done, first_done);
  EXPECT_TRUE(log.FullyDurable());
}

// --- satellite 2: corrupt duplicate-cache entries answered honestly ---

class DuplicateCacheTest : public ::testing::Test {
 protected:
  DuplicateCacheTest() : net_(&loop_) {
    net_.Connect("mobile", "server", LinkProfile::Ethernet10());
    client_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("mobile"));
    server_tm_ = std::make_unique<TransportManager>(&loop_, net_.FindHost("server"));
    log_ = std::make_unique<StableLog>(&loop_);
    client_ = std::make_unique<QrpcClient>(&loop_, client_tm_.get(), log_.get());
    server_ = std::make_unique<QrpcServer>(&loop_, server_tm_.get());
    server_->RegisterHandler(
        "count", [this](const RpcRequestBody&, const Message&, QrpcServer::Responder respond) {
          ++executions_;
          RpcResponseBody body;
          body.result = int64_t{executions_};
          respond(body);
        });
  }

  void ResendRequest(uint64_t rpc_id) {
    Message dup;
    dup.header.message_id = rpc_id;
    dup.header.type = MessageType::kRequest;
    dup.header.dst = "server";
    RpcRequestBody body;
    body.method = "count";
    dup.payload = body.Encode();
    client_tm_->Send(std::move(dup));
  }

  EventLoop loop_;
  Network net_;
  std::unique_ptr<TransportManager> client_tm_;
  std::unique_ptr<TransportManager> server_tm_;
  std::unique_ptr<StableLog> log_;
  std::unique_ptr<QrpcClient> client_;
  std::unique_ptr<QrpcServer> server_;
  int64_t executions_ = 0;
};

TEST_F(DuplicateCacheTest, CorruptEntryAnswersDataLossNotSilentOk) {
  QrpcCall call = client_->Call("server", "count", {});
  ASSERT_TRUE(call.result.Wait(&loop_));
  ASSERT_EQ(executions_, 1);

  ASSERT_TRUE(server_->CorruptCachedResponseForTest("mobile", call.rpc_id));

  // A crash-recovery resend of the same rpc hits the corrupt cache entry.
  ResendRequest(call.rpc_id);
  // The client no longer tracks the call, so observe the raw response.
  Promise<RpcResponseBody> reply;
  client_tm_->SetHandler(MessageType::kResponse, [&](const Message& msg) {
    auto decoded = RpcResponseBody::Decode(msg.payload);
    ASSERT_TRUE(decoded.ok());
    reply.Set(*decoded);
  });
  ASSERT_TRUE(reply.Wait(&loop_));

  EXPECT_EQ(reply.value().code, StatusCode::kDataLoss)
      << "corrupt cache entry produced a fabricated OK response";
  EXPECT_EQ(executions_, 1) << "at-most-once violated";
  EXPECT_EQ(server_->stats().duplicate_cache_decode_failures, 1u);
  EXPECT_EQ(server_->stats().duplicates, 1u);
}

TEST_F(DuplicateCacheTest, IntactEntryStillReplaysCachedResponse) {
  QrpcCall call = client_->Call("server", "count", {});
  ASSERT_TRUE(call.result.Wait(&loop_));

  ResendRequest(call.rpc_id);
  Promise<RpcResponseBody> reply;
  client_tm_->SetHandler(MessageType::kResponse, [&](const Message& msg) {
    auto decoded = RpcResponseBody::Decode(msg.payload);
    ASSERT_TRUE(decoded.ok());
    reply.Set(*decoded);
  });
  ASSERT_TRUE(reply.Wait(&loop_));
  EXPECT_EQ(reply.value().code, StatusCode::kOk);
  EXPECT_EQ(executions_, 1);
  EXPECT_EQ(server_->stats().duplicate_cache_decode_failures, 0u);
}

// --- satellite 4: loss backoff resets when connectivity returns ---

TEST(SchedulerBackoffTest, ReconnectionResetsLossBackoff) {
  EventLoop loop;
  Network net(&loop);
  LinkProfile lossy = LinkProfile::WaveLan2();
  lossy.loss_prob = 1.0;  // every frame lost deterministically
  // Up for 5s (accumulating loss backoff), down until t=60, then up again.
  std::vector<IntervalConnectivity::Interval> up = {
      {At(0), At(5)},
      {At(60), At(10000)},
  };
  Link* link = net.Connect("mobile", "server", lossy,
                           std::make_unique<IntervalConnectivity>(up));
  TransportManager tm(&loop, net.FindHost("mobile"));

  Message msg;
  msg.header.type = MessageType::kRequest;
  msg.header.message_id = 1;
  msg.header.dst = "server";
  msg.payload = Bytes(64, 1);
  tm.Send(msg);

  loop.RunFor(Duration::Seconds(60));
  const uint64_t attempts_before_reconnect = link->stats().frames_sent;
  loop.RunFor(Duration::Seconds(2));
  const uint64_t attempts_after = link->stats().frames_sent - attempts_before_reconnect;

  // With the backoff reset, retries restart at the base interval (200ms,
  // doubling), giving >= 3 attempts in the first two seconds after
  // reconnection. Carrying the pre-outage backoff (6+ losses => 12.8s)
  // would allow at most one.
  EXPECT_GE(attempts_after, 3u)
      << "stale pre-outage loss backoff survived the reconnection";
}

// --- tentpole acceptance: full span timeline across a link outage ---

TEST(RpcTraceTimelineTest, SpanCoversLifecycleAcrossOutage) {
  Testbed bed;
  // Link comes up only at t=30: the call is issued, logged, and flushed
  // while disconnected, transmitted after reconnection.
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::WaveLan2(),
      std::make_unique<PeriodicConnectivity>(Duration::Seconds(1e6), Duration::Zero(),
                                             At(30)));
  bed.server()->qrpc()->RegisterHandler(
      "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        RpcResponseBody body;
        body.result = req.args.empty() ? RpcValue(std::string("")) : req.args[0];
        respond(body);
      });

  QrpcCall call = client->qrpc()->Call("server", "echo", {std::string("hi")});
  ASSERT_TRUE(call.result.Wait(bed.loop()));
  ASSERT_TRUE(call.result.value().status.ok());

  const obs::RpcSpan* span = client->tracer()->Find(call.rpc_id);
  ASSERT_NE(span, nullptr);
  const std::vector<obs::RpcEvent> expected = {
      obs::RpcEvent::kEnqueued, obs::RpcEvent::kLogged, obs::RpcEvent::kFlushedDurable,
      obs::RpcEvent::kTransmitted, obs::RpcEvent::kResponded};
  EXPECT_EQ(client->tracer()->EventSequence(call.rpc_id), expected);

  // Commit happened while disconnected; transmission waited for the link.
  EXPECT_LT(span->FirstTime(obs::RpcEvent::kFlushedDurable).seconds(), 1.0);
  EXPECT_GE(span->FirstTime(obs::RpcEvent::kTransmitted).seconds(), 30.0);
  EXPECT_GT(span->FirstTime(obs::RpcEvent::kResponded).seconds(), 30.0);

  // The rendered trace mentions the full pipeline.
  const std::string rendered = client->tracer()->Render();
  EXPECT_NE(rendered.find("flushed_durable@"), std::string::npos);
  EXPECT_NE(rendered.find("transmitted@"), std::string::npos);
}

// --- tentpole acceptance: one registry covers every subsystem ---

TEST(UnifiedRegistryTest, NodeRegistryCoversAllSubsystems) {
  Testbed bed;
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Ethernet10());
  bed.server()->qrpc()->RegisterHandler(
      "echo", [](const RpcRequestBody& req, const Message&, QrpcServer::Responder respond) {
        RpcResponseBody body;
        body.result = req.args.empty() ? RpcValue(std::string("")) : req.args[0];
        respond(body);
      });
  QrpcCall call = client->qrpc()->Call("server", "echo", {std::string("x")});
  ASSERT_TRUE(call.result.Wait(bed.loop()));

  obs::Registry* reg = client->metrics();
  EXPECT_EQ(reg->CounterValue("scheduler.messages_delivered"), 1u);
  EXPECT_EQ(reg->CounterValue("qrpc_client.calls"), 1u);
  EXPECT_EQ(reg->CounterValue("qrpc_client.completed"), 1u);
  EXPECT_GE(reg->CounterValue("stable_log.flushes"), 1u);
  EXPECT_NE(reg->FindCounter("access_manager.cache_hits"), nullptr);
  EXPECT_NE(reg->FindHistogram("qrpc_client.rpc_seconds"), nullptr);
  EXPECT_EQ(reg->FindHistogram("qrpc_client.rpc_seconds")->count(), 1u);

  const std::string text = reg->Render(obs::RenderFormat::kText);
  for (const char* prefix :
       {"scheduler.", "stable_log.", "qrpc_client.", "access_manager."}) {
    EXPECT_NE(text.find(prefix), std::string::npos) << "missing subsystem " << prefix;
  }
  EXPECT_NE(bed.server()->metrics()->Render().find("qrpc_server.requests"),
            std::string::npos);

  // stats() adapters agree with the registry.
  EXPECT_EQ(client->qrpc()->stats().completed,
            reg->CounterValue("qrpc_client.completed"));
  EXPECT_EQ(bed.server()->qrpc()->stats().requests,
            bed.server()->metrics()->CounterValue("qrpc_server.requests"));
}

}  // namespace
}  // namespace rover
