// End-to-end tests of the access manager over the full stack
// (cache -> QRPC -> scheduler -> simulated links -> server store).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/toolkit.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

constexpr char kCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

constexpr char kRosterCode[] = R"(
proc members {} { global state; return $state }
proc join {who} { global state; lappend state $who; return $state }
proc leave {who} {
  global state
  set i [lsearch $state $who]
  if {$i >= 0} { set state [concat [lrange $state 0 [expr {$i-1}]] [lrange $state [expr {$i+1}] end]] }
  return $state
}
)";

constexpr char kCalendarCode[] = R"(
proc book {slot what} { global state; set state [dict set $state $slot $what]; return booked }
proc lookup {slot} {
  global state
  if {[dict exists $state $slot]} { return [dict get $state $slot] }
  return ""
}
proc slots {} { global state; return [dict keys $state] }
)";

class AccessManagerTest : public ::testing::Test {
 protected:
  void Seed(Testbed* bed) {
    ASSERT_TRUE(bed->server()->rover()->CreateObject(
        MakeRdo("counter", "lww", kCounterCode, "0")).ok());
    ASSERT_TRUE(bed->server()->rover()->CreateObject(
        MakeRdo("roster", "set", kRosterCode, "alice bob")).ok());
    ASSERT_TRUE(bed->server()->rover()->CreateObject(
        MakeRdo("cal", "calendar", kCalendarCode, "")).ok());
  }
};

TEST_F(AccessManagerTest, ImportMissThenHit) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());

  auto p1 = client->access()->Import("counter");
  ASSERT_TRUE(p1.Wait(bed.loop()));
  EXPECT_TRUE(p1.value().status.ok());
  EXPECT_FALSE(p1.value().from_cache);
  EXPECT_EQ(p1.value().version, 1u);

  auto p2 = client->access()->Import("counter");
  ASSERT_TRUE(p2.Wait(bed.loop()));
  EXPECT_TRUE(p2.value().from_cache);
  EXPECT_EQ(client->access()->stats().cache_hits, 1u);
  EXPECT_EQ(client->access()->stats().cache_misses, 1u);
}

TEST_F(AccessManagerTest, ImportMissingObjectFails) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  auto p = client->access()->Import("nothing");
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_EQ(p.value().status.code(), StatusCode::kNotFound);
}

TEST_F(AccessManagerTest, ConcurrentImportsCoalesce) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());
  auto p1 = client->access()->Import("counter");
  auto p2 = client->access()->Import("counter");
  bed.Run();
  ASSERT_TRUE(p1.ready());
  ASSERT_TRUE(p2.ready());
  EXPECT_TRUE(p1.value().status.ok());
  EXPECT_TRUE(p2.value().status.ok());
  // Only one RPC went to the server.
  EXPECT_EQ(bed.server()->rover()->stats().imports, 1u);
}

TEST_F(AccessManagerTest, LocalInvokeMutatesAndMarksTentative) {
  Testbed bed;
  Seed(&bed);
  // WaveLAN (2 Mb/s) is under the adaptive threshold -> local execution.
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  client->access()->Import("counter").Wait(bed.loop());

  auto p = client->access()->Invoke("counter", "add", {"5"});
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().value, "5");
  EXPECT_EQ(p.value().site, ExecutionSite::kClient);
  EXPECT_TRUE(client->access()->IsTentative("counter"));
  EXPECT_EQ(*client->access()->ReadData("counter"), "5");
  // Server still has the committed 0.
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "0");
}

TEST_F(AccessManagerTest, AdaptivePolicyUsesServerOnFastLink) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("office", LinkProfile::Ethernet10());
  client->access()->Import("counter").Wait(bed.loop());
  auto p = client->access()->Invoke("counter", "add", {"3"});
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_EQ(p.value().site, ExecutionSite::kServer);
  EXPECT_EQ(p.value().value, "3");
  // Server-side execution commits immediately.
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "3");
  EXPECT_EQ(client->access()->stats().remote_invokes, 1u);
}

TEST_F(AccessManagerTest, ForceSiteOverridesPolicy) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("office", LinkProfile::Ethernet10());
  client->access()->Import("counter").Wait(bed.loop());
  InvokeOptions opts;
  opts.force_site = ExecutionSite::kClient;
  auto p = client->access()->Invoke("counter", "add", {"1"}, opts);
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_EQ(p.value().site, ExecutionSite::kClient);
}

TEST_F(AccessManagerTest, ExportCommitsTentativeState) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  client->access()->Import("counter").Wait(bed.loop());
  client->access()->Invoke("counter", "add", {"7"}).Wait(bed.loop());

  auto p = client->access()->Export("counter");
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().new_version, 2u);
  EXPECT_FALSE(p.value().server_resolved);
  EXPECT_FALSE(client->access()->IsTentative("counter"));
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "7");
  EXPECT_EQ(*client->access()->CachedVersion("counter"), 2u);
}

TEST_F(AccessManagerTest, ExportOfCleanObjectIsNoop) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  client->access()->Import("counter").Wait(bed.loop());
  auto p = client->access()->Export("counter");
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().new_version, 1u);
  EXPECT_EQ(bed.server()->rover()->stats().exports, 0u);  // no RPC issued
}

TEST_F(AccessManagerTest, DisconnectedOperationEndToEnd) {
  Testbed bed;
  Seed(&bed);
  // Connected for the first 10s, down for 90s, then up again.
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(10)},
          {TimePoint::Epoch() + Duration::Seconds(100),
           TimePoint::Epoch() + Duration::Seconds(10000)}});
  RoverClientNode* client =
      bed.AddClient("laptop", LinkProfile::WaveLan2(), std::move(schedule));

  // Warm the cache while connected.
  client->access()->Import("counter").Wait(bed.loop());
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(20));
  ASSERT_FALSE(client->access()->Connected());

  // Work while disconnected: local invocations + queued export.
  auto inv = client->access()->Invoke("counter", "add", {"4"});
  ASSERT_TRUE(inv.Wait(bed.loop()));
  EXPECT_TRUE(inv.value().status.ok());
  auto exp = client->access()->Export("counter");
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(50));
  EXPECT_FALSE(exp.ready());  // still queued
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "0");

  // Reconnect: the queue drains and the update commits.
  bed.Run();
  ASSERT_TRUE(exp.ready());
  EXPECT_TRUE(exp.value().status.ok());
  EXPECT_GT(exp.value().completed_at.seconds(), 100.0);
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "4");
}

TEST_F(AccessManagerTest, InvokeWhileDisconnectedWithoutCacheFails) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client =
      bed.AddClient("laptop", LinkProfile::WaveLan2(),
                    std::make_unique<ConstantConnectivity>(false));
  auto p = client->access()->Invoke("counter", "add", {"1"});
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_EQ(p.value().status.code(), StatusCode::kUnavailable);
}

TEST_F(AccessManagerTest, ConcurrentUpdatesResolvedByTypeResolver) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2());
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());
  a->access()->Import("roster").Wait(bed.loop());
  b->access()->Import("roster").Wait(bed.loop());

  // Both diverge from version 1.
  a->access()->Invoke("roster", "join", {"carol"}).Wait(bed.loop());
  b->access()->Invoke("roster", "join", {"dave"}).Wait(bed.loop());

  auto pa = a->access()->Export("roster");
  ASSERT_TRUE(pa.Wait(bed.loop()));
  EXPECT_TRUE(pa.value().status.ok());
  EXPECT_FALSE(pa.value().server_resolved);

  auto pb = b->access()->Export("roster");
  ASSERT_TRUE(pb.Wait(bed.loop()));
  EXPECT_TRUE(pb.value().status.ok());
  EXPECT_TRUE(pb.value().server_resolved);  // set resolver merged

  auto members = TclListSplit(bed.server()->store()->Get("roster")->data);
  std::set<std::string> set(members->begin(), members->end());
  EXPECT_EQ(set, (std::set<std::string>{"alice", "bob", "carol", "dave"}));
  // b adopted the merged state locally.
  auto local = TclListSplit(*b->access()->ReadData("roster"));
  EXPECT_EQ(std::set<std::string>(local->begin(), local->end()), set);
}

TEST_F(AccessManagerTest, UnresolvableConflictKeepsTentativeAndNotifies) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2());
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());
  a->access()->Import("cal").Wait(bed.loop());
  b->access()->Import("cal").Wait(bed.loop());

  a->access()->Invoke("cal", "book", {"10am", "staff"}).Wait(bed.loop());
  b->access()->Invoke("cal", "book", {"10am", "dentist"}).Wait(bed.loop());

  ASSERT_TRUE(a->access()->Export("cal").Wait(bed.loop()));

  std::string conflict_name;
  std::string conflict_tentative;
  RdoDescriptor conflict_committed;
  b->access()->SetConflictCallback(
      [&](const std::string& name, const std::string& tentative,
          const RdoDescriptor& committed) {
        conflict_name = name;
        conflict_tentative = tentative;
        conflict_committed = committed;
      });
  auto pb = b->access()->Export("cal");
  ASSERT_TRUE(pb.Wait(bed.loop()));
  EXPECT_EQ(pb.value().status.code(), StatusCode::kConflict);
  EXPECT_TRUE(b->access()->IsTentative("cal"));
  EXPECT_EQ(conflict_name, "cal");
  EXPECT_NE(conflict_tentative.find("dentist"), std::string::npos);
  EXPECT_NE(conflict_committed.data.find("staff"), std::string::npos);
  // Server keeps a's booking.
  EXPECT_EQ(bed.server()->store()->Get("cal")->data, "10am staff");
  EXPECT_EQ(b->access()->stats().conflicts_unresolved, 1u);
}

TEST_F(AccessManagerTest, CoalescedExportProcessesResponseOnce) {
  // Two exports of the same object queue on a down link and coalesce into
  // one rpc; both promises are chained to the same response, so both
  // handlers run -- but only the newest rpc's handler may install state and
  // bump counters, or one wire export would be counted twice.
  Testbed bed;
  Seed(&bed);
  auto schedule = std::make_unique<PeriodicConnectivity>(Duration::Seconds(60),
                                                         Duration::Seconds(60));
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::WaveLan2(), std::move(schedule));
  client->access()->Import("counter").Wait(bed.loop());
  client->access()->Invoke("counter", "add", {"5"}).Wait(bed.loop());

  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(65));  // link down
  auto p1 = client->access()->Export("counter");
  auto p2 = client->access()->Export("counter");
  EXPECT_FALSE(p1.ready());
  bed.Run();  // link returns at t=120
  ASSERT_TRUE(p1.ready());
  ASSERT_TRUE(p2.ready());
  EXPECT_TRUE(p1.value().status.ok());
  EXPECT_TRUE(p2.value().status.ok());
  EXPECT_EQ(client->qrpc()->stats().coalesced, 1u);
  EXPECT_EQ(client->access()->stats().exports_completed, 1u);
  EXPECT_FALSE(client->access()->IsTentative("counter"));
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");
}

TEST_F(AccessManagerTest, CoalescedExportReportsConflictOnce) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2());
  auto schedule = std::make_unique<PeriodicConnectivity>(Duration::Seconds(60),
                                                         Duration::Seconds(60));
  RoverClientNode* b =
      bed.AddClient("b", LinkProfile::WaveLan2(), std::move(schedule));
  a->access()->Import("cal").Wait(bed.loop());
  b->access()->Import("cal").Wait(bed.loop());
  a->access()->Invoke("cal", "book", {"10am", "staff"}).Wait(bed.loop());
  b->access()->Invoke("cal", "book", {"10am", "dentist"}).Wait(bed.loop());
  ASSERT_TRUE(a->access()->Export("cal").Wait(bed.loop()));

  int conflicts_reported = 0;
  b->access()->SetConflictCallback(
      [&](const std::string&, const std::string&, const RdoDescriptor&) {
        ++conflicts_reported;
      });
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(65));  // b down
  auto p1 = b->access()->Export("cal");
  auto p2 = b->access()->Export("cal");
  bed.Run();
  ASSERT_TRUE(p1.ready());
  ASSERT_TRUE(p2.ready());
  EXPECT_EQ(p1.value().status.code(), StatusCode::kConflict);
  EXPECT_EQ(p2.value().status.code(), StatusCode::kConflict);
  EXPECT_EQ(b->qrpc()->stats().coalesced, 1u);
  // One conflict on the wire -> one callback, one counter bump.
  EXPECT_EQ(conflicts_reported, 1);
  EXPECT_EQ(b->access()->stats().conflicts_unresolved, 1u);
}

TEST_F(AccessManagerTest, EvictionIsLruAndSparesTentativePinned) {
  Testbed bed;
  // Many small objects.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bed.server()->rover()->CreateObject(
        MakeRdo("obj/" + std::to_string(i), "lww", kCounterCode,
                std::string(200, 'x'))).ok());
  }
  ClientNodeOptions opts;
  opts.access.cache_capacity_bytes = 2500;  // fits ~4-5 entries
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::Ethernet10(), nullptr, opts);

  ImportOptions pin_opts;
  pin_opts.pin = true;
  client->access()->Import("obj/0", pin_opts).Wait(bed.loop());
  for (int i = 1; i < 10; ++i) {
    client->access()->Import("obj/" + std::to_string(i)).Wait(bed.loop());
  }
  EXPECT_GT(client->access()->stats().evictions, 0u);
  EXPECT_LE(client->access()->CacheBytes(), 2500u);
  EXPECT_TRUE(client->access()->HasCached("obj/0"));   // pinned survived
  EXPECT_FALSE(client->access()->HasCached("obj/1"));  // LRU victim
  EXPECT_TRUE(client->access()->HasCached("obj/9"));   // most recent
}

TEST_F(AccessManagerTest, PrefetchFillsCacheInBackground) {
  Testbed bed;
  Seed(&bed);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(bed.server()->rover()->CreateObject(
        MakeRdo("doc/" + std::to_string(i), "lww", kCounterCode, "0")).ok());
  }
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());
  client->access()->Prefetch({"doc/0", "doc/1", "doc/2", "doc/3", "doc/4", "doc/5"});
  bed.Run();
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(client->access()->HasCached("doc/" + std::to_string(i)));
  }
  EXPECT_EQ(client->access()->stats().prefetch_issued, 6u);
}

TEST_F(AccessManagerTest, SubscriptionInvalidatesStaleCache) {
  Testbed bed;
  Seed(&bed);
  ClientNodeOptions sub_opts;
  sub_opts.access.subscribe_on_import = true;
  RoverClientNode* a =
      bed.AddClient("a", LinkProfile::WaveLan2(), nullptr, sub_opts);
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());

  a->access()->Import("counter").Wait(bed.loop());
  bed.Run();  // let the subscription land

  // b commits a new version; the server notifies a.
  b->access()->Import("counter").Wait(bed.loop());
  b->access()->Invoke("counter", "add", {"9"}).Wait(bed.loop());
  b->access()->Export("counter").Wait(bed.loop());
  bed.Run();
  EXPECT_EQ(a->access()->stats().invalidations_received, 1u);

  // a's next import refetches the new version rather than using the cache.
  auto p = a->access()->Import("counter");
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_FALSE(p.value().from_cache);
  EXPECT_EQ(p.value().version, 2u);
  EXPECT_EQ(*a->access()->ReadData("counter"), "9");
}

TEST_F(AccessManagerTest, InvalidationFansOutOncePerSubscriberPerCommit) {
  // The server's deferred fan-out flush must deliver exactly one
  // invalidation (with the committed version) to every subscriber except
  // the exporter, per commit -- batching must not drop or duplicate.
  Testbed bed;
  Seed(&bed);
  ClientNodeOptions sub_opts;
  sub_opts.access.subscribe_on_import = true;
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2(), nullptr, sub_opts);
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2(), nullptr, sub_opts);
  RoverClientNode* c = bed.AddClient("c", LinkProfile::WaveLan2());

  a->access()->Import("counter").Wait(bed.loop());
  b->access()->Import("counter").Wait(bed.loop());
  bed.Run();  // both subscriptions land
  EXPECT_EQ(bed.server()->rover()->SubscriberCount("counter"), 2u);

  c->access()->Import("counter").Wait(bed.loop());
  c->access()->Invoke("counter", "add", {"5"}).Wait(bed.loop());
  c->access()->Export("counter").Wait(bed.loop());
  bed.Run();

  EXPECT_EQ(bed.server()->rover()->stats().invalidations_sent, 2u);
  EXPECT_EQ(a->access()->stats().invalidations_received, 1u);
  EXPECT_EQ(b->access()->stats().invalidations_received, 1u);
  EXPECT_EQ(c->access()->stats().invalidations_received, 0u);  // exporter
}

TEST_F(AccessManagerTest, SessionReadYourWritesAcrossEviction) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  Session session(1);

  ImportOptions iopts;
  iopts.session = &session;
  client->access()->Import("counter", iopts).Wait(bed.loop());
  client->access()->Invoke("counter", "add", {"2"}).Wait(bed.loop());
  auto exp = client->access()->Export("counter");
  ASSERT_TRUE(exp.Wait(bed.loop()));
  session.RecordWrite("counter", exp.value().new_version);

  // Simulate the entry being evicted, then re-imported within the session.
  client->access()->Evict("counter");
  auto p = client->access()->Import("counter", iopts);
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_GE(p.value().version, 2u);  // read-your-writes
  EXPECT_EQ(*client->access()->ReadData("counter"), "2");
}

TEST_F(AccessManagerTest, StatusCallbackTracksQueueAndTentative) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client =
      bed.AddClient("laptop", LinkProfile::WaveLan2(),
                    std::make_unique<PeriodicConnectivity>(
                        Duration::Seconds(1e6), Duration::Zero(),
                        TimePoint::Epoch() + Duration::Seconds(60)));
  std::vector<QueueStatus> updates;
  client->access()->SetStatusCallback([&](const QueueStatus& s) { updates.push_back(s); });

  auto import = client->access()->Import("counter");
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(30));
  ASSERT_FALSE(updates.empty());
  EXPECT_FALSE(updates.back().connected);
  EXPECT_GE(updates.back().queued_qrpcs, 1u);

  bed.Run();
  ASSERT_TRUE(import.ready());
  EXPECT_TRUE(updates.back().connected);
  EXPECT_EQ(updates.back().queued_qrpcs, 0u);
}

TEST_F(AccessManagerTest, CrashRecoveryCommitsQueuedExport) {
  Testbed bed;
  Seed(&bed);
  // Never connected during the first life of the client.
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(10)},
          {TimePoint::Epoch() + Duration::Seconds(100),
           TimePoint::Epoch() + Duration::Seconds(100000)}});
  RoverClientNode* client =
      bed.AddClient("laptop", LinkProfile::WaveLan2(), std::move(schedule));

  client->access()->Import("counter").Wait(bed.loop());
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(20));  // now offline
  client->access()->Invoke("counter", "add", {"8"}).Wait(bed.loop());
  auto exp = client->access()->Export("counter");
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(30));
  ASSERT_FALSE(exp.ready());

  // Crash: the export RPC survives in the stable log and is re-issued.
  client->log()->SimulateCrash();
  ASSERT_GE(client->log()->Recover(), 1u);
  EXPECT_GE(client->qrpc()->RecoverFromLog(), 1u);
  bed.Run();
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "8");
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
}

TEST_F(AccessManagerTest, ForcedRefetchBypassesCache) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* a = bed.AddClient("a", LinkProfile::WaveLan2());
  RoverClientNode* b = bed.AddClient("b", LinkProfile::WaveLan2());
  a->access()->Import("counter").Wait(bed.loop());
  // b commits version 2 behind a's back (no subscription).
  b->access()->Import("counter").Wait(bed.loop());
  b->access()->Invoke("counter", "add", {"1"}).Wait(bed.loop());
  b->access()->Export("counter").Wait(bed.loop());

  // Cached import still sees version 1.
  auto hit = a->access()->Import("counter");
  ASSERT_TRUE(hit.Wait(bed.loop()));
  EXPECT_EQ(hit.value().version, 1u);

  ImportOptions force;
  force.allow_cached = false;
  auto fresh = a->access()->Import("counter", force);
  ASSERT_TRUE(fresh.Wait(bed.loop()));
  EXPECT_EQ(fresh.value().version, 2u);
}

TEST_F(AccessManagerTest, TentativeSurvivesRefetch) {
  Testbed bed;
  Seed(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  client->access()->Import("counter").Wait(bed.loop());
  client->access()->Invoke("counter", "add", {"5"}).Wait(bed.loop());
  // A forced refetch must not clobber tentative local state.
  ImportOptions force;
  force.allow_cached = false;
  client->access()->Import("counter", force).Wait(bed.loop());
  EXPECT_TRUE(client->access()->IsTentative("counter"));
  EXPECT_EQ(*client->access()->ReadData("counter"), "5");
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(QueueStatusTest, FormatCoversAllStates) {
  QueueStatus idle;
  idle.connected = true;
  EXPECT_EQ(FormatQueueStatus(idle), "connected | 0 queued | all committed");
  QueueStatus busy;
  busy.connected = false;
  busy.queued_qrpcs = 3;
  busy.tentative_objects = 2;
  EXPECT_EQ(FormatQueueStatus(busy),
            "DISCONNECTED | 3 ops queued | 2 tentative objects");
}

}  // namespace
}  // namespace rover

// --- Delta imports: re-fetches of a cached object ship a delta against the
// --- version the client already holds, or nothing at all when unchanged.

namespace rover {
namespace {

constexpr char kPadCode[] = R"(
proc get {} { global state; return $state }
proc put {s} { global state; set state $s; return ok }
)";

class DeltaImportTest : public ::testing::Test {
 protected:
  // An object big enough that a delta is clearly cheaper than the body.
  std::string SeedBig(Testbed* bed) {
    std::string data(6000, 'x');
    for (size_t i = 0; i < data.size(); i += 97) {
      data[i] = static_cast<char>('a' + (i % 13));
    }
    EXPECT_TRUE(bed->server()->rover()->CreateObject(
        MakeRdo("big", "lww", kPadCode, data)).ok());
    return data;
  }

  // Commit a new version server-side with a small edit.
  std::string EditBig(Testbed* bed, std::string data) {
    data.replace(40, 8, "CHANGED!");
    RdoDescriptor next = *bed->server()->store()->Get("big");
    next.data = data;
    EXPECT_TRUE(bed->server()->store()->Put(next).ok());
    return data;
  }
};

TEST_F(DeltaImportTest, StaleRefetchUsesDelta) {
  Testbed bed;
  std::string data = SeedBig(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());

  ASSERT_TRUE(client->access()->Import("big").Wait(bed.loop()));
  data = EditBig(&bed, data);

  ImportOptions force;
  force.allow_cached = false;
  auto p = client->access()->Import("big", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  ASSERT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().version, 2u);
  EXPECT_EQ(*client->access()->ReadCommittedData("big"), data);

  EXPECT_EQ(client->access()->stats().delta_hits, 1u);
  EXPECT_GT(client->access()->stats().delta_bytes_saved, 0u);
  EXPECT_EQ(bed.server()->rover()->stats().deltas_sent, 1u);
  EXPECT_GT(bed.server()->rover()->stats().delta_bytes_saved, 0u);
}

TEST_F(DeltaImportTest, UnchangedRefetchIsNotModified) {
  Testbed bed;
  SeedBig(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());
  ASSERT_TRUE(client->access()->Import("big").Wait(bed.loop()));

  ImportOptions force;
  force.allow_cached = false;
  auto p = client->access()->Import("big", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  ASSERT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().version, 1u);
  EXPECT_EQ(client->access()->stats().delta_not_modified, 1u);
  EXPECT_EQ(bed.server()->rover()->stats().imports_not_modified, 1u);
}

TEST_F(DeltaImportTest, CorruptCachedImageFallsBackToFullFetch) {
  Testbed bed;
  std::string data = SeedBig(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::Cslip144());
  ASSERT_TRUE(client->access()->Import("big").Wait(bed.loop()));
  data = EditBig(&bed, data);

  // Stable-storage rot on the cached image: the delta's base CRC must catch
  // it and the import must transparently re-fetch the full body.
  ASSERT_TRUE(client->access()->CorruptImportImageForTest("big"));
  ImportOptions force;
  force.allow_cached = false;
  auto p = client->access()->Import("big", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  ASSERT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().version, 2u);
  EXPECT_EQ(*client->access()->ReadCommittedData("big"), data);
  EXPECT_EQ(client->access()->stats().delta_fallbacks, 1u);
  EXPECT_EQ(client->access()->stats().delta_hits, 0u);

  // The fallback repaired the cached image; the next refetch deltas again.
  data = EditBig(&bed, data);
  auto p2 = client->access()->Import("big", force);
  ASSERT_TRUE(p2.Wait(bed.loop()));
  ASSERT_TRUE(p2.value().status.ok());
  EXPECT_EQ(client->access()->stats().delta_hits, 1u);
  EXPECT_EQ(*client->access()->ReadCommittedData("big"), data);
}

TEST_F(DeltaImportTest, DeltaDisabledSendsLegacyImports) {
  Testbed bed;
  std::string data = SeedBig(&bed);
  ClientNodeOptions opts;
  opts.access.delta_imports = false;
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::Cslip144(), nullptr, opts);
  ASSERT_TRUE(client->access()->Import("big").Wait(bed.loop()));
  data = EditBig(&bed, data);
  ImportOptions force;
  force.allow_cached = false;
  auto p = client->access()->Import("big", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  ASSERT_TRUE(p.value().status.ok());
  EXPECT_EQ(*client->access()->ReadCommittedData("big"), data);
  EXPECT_EQ(client->access()->stats().delta_hits, 0u);
  EXPECT_EQ(client->access()->stats().delta_full, 0u);
  EXPECT_EQ(bed.server()->rover()->stats().deltas_sent, 0u);
}

TEST_F(DeltaImportTest, ImportEscalationCoalescesDuplicateRpc) {
  // A background import escalated to foreground withdraws the queued
  // background rpc instead of paying for the object twice.
  Testbed bed;
  SeedBig(&bed);
  // Link up only from t=60s so both requests queue.
  auto schedule = std::make_unique<PeriodicConnectivity>(
      Duration::Seconds(1e6), Duration::Zero(),
      TimePoint::Epoch() + Duration::Seconds(60));
  RoverClientNode* client =
      bed.AddClient("mobile", LinkProfile::Cslip144(), std::move(schedule));

  ImportOptions background;
  background.priority = Priority::kBackground;
  auto slow = client->access()->Import("big", background);
  ImportOptions foreground;
  foreground.priority = Priority::kForeground;
  auto fast = client->access()->Import("big", foreground);

  bed.Run();
  ASSERT_TRUE(slow.ready());
  ASSERT_TRUE(fast.ready());
  EXPECT_TRUE(slow.value().status.ok());
  EXPECT_TRUE(fast.value().status.ok());
  EXPECT_EQ(client->qrpc()->stats().coalesced, 1u);
  // Only one import reached the server.
  EXPECT_EQ(bed.server()->rover()->stats().imports, 1u);
}

}  // namespace
}  // namespace rover

// --- Session guarantees end to end: version floors survive delta-import
// --- short-cuts and server state loss, ObjectsTouched counts each object
// --- once, and a mid-session client restart round-trips the cache
// --- snapshot, the rpc-id counter, and the queued-export log.

namespace rover {
namespace {

TEST(SessionTest, ObjectsTouchedCountsReadWriteOverlapOnce) {
  Session s(7);
  s.RecordRead("a", 1);
  s.RecordWrite("a", 2);  // read and written: one object, not two
  EXPECT_EQ(s.ObjectsTouched(), 1u);
  s.RecordRead("a", 3);  // repeat accesses never add touches
  s.RecordWrite("a", 4);
  EXPECT_EQ(s.ObjectsTouched(), 1u);
  EXPECT_EQ(s.RequiredVersion("a"), 4u);  // floor is the max over both maps
  s.RecordWrite("b", 1);  // write-only object
  s.RecordRead("c", 1);   // read-only object
  EXPECT_EQ(s.ObjectsTouched(), 3u);
  EXPECT_EQ(s.RequiredVersion("nothing"), 0u);
}

TEST(SessionTest, ObjectsTouchedMergesInterleavedNames) {
  // Names that alternate between the read and write sets exercise the
  // sorted-merge walk: the old per-write linear rescan double-counted any
  // written name that also appeared among later reads.
  Session s;
  s.RecordRead("b", 1);
  s.RecordRead("d", 1);
  s.RecordWrite("a", 1);
  s.RecordWrite("c", 1);
  s.RecordWrite("e", 1);
  EXPECT_EQ(s.ObjectsTouched(), 5u);
  s.RecordWrite("b", 2);
  s.RecordWrite("d", 2);
  EXPECT_EQ(s.ObjectsTouched(), 5u);
}

constexpr char kSessionPadCode[] = R"(
proc get {} { global state; return $state }
proc put {s} { global state; set state $s; return ok }
)";

constexpr char kSessionCounterCode[] = R"(
proc get {} { global state; return $state }
proc add {n} { global state; set state [expr {$state + $n}]; return $state }
)";

class SessionGuaranteeTest : public ::testing::Test {
 protected:
  // An object big enough that re-fetches go down the delta path.
  std::string SeedPad(Testbed* bed) {
    std::string data(6000, 'x');
    for (size_t i = 0; i < data.size(); i += 89) {
      data[i] = static_cast<char>('a' + (i % 17));
    }
    EXPECT_TRUE(bed->server()->rover()->CreateObject(
        MakeRdo("pad", "lww", kSessionPadCode, data)).ok());
    return data;
  }

  void SeedCounter(Testbed* bed) {
    ASSERT_TRUE(bed->server()->rover()->CreateObject(
        MakeRdo("counter", "lww", kSessionCounterCode, "0")).ok());
  }

  // Commit a new version server-side behind the client's back.
  std::string EditPad(Testbed* bed, std::string data) {
    data.replace(100, 7, "EDITED!");
    RdoDescriptor next = *bed->server()->store()->Get("pad");
    next.data = data;
    EXPECT_TRUE(bed->server()->store()->Put(next).ok());
    return data;
  }
};

TEST_F(SessionGuaranteeTest, ImportBelowSessionFloorFailsAfterServerLosesState) {
  Testbed::Options topts;
  topts.server.durable = false;  // a crash loses every committed update
  Testbed bed(topts);
  SeedCounter(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  Session session(1);
  ImportOptions iopts;
  iopts.session = &session;

  ASSERT_TRUE(client->access()->Import("counter", iopts).Wait(bed.loop()));
  ASSERT_TRUE(client->access()->Invoke("counter", "add", {"2"}).Wait(bed.loop()));
  auto exp = client->access()->Export("counter");
  ASSERT_TRUE(exp.Wait(bed.loop()));
  ASSERT_TRUE(exp.value().status.ok());
  session.RecordWrite("counter", exp.value().new_version);
  EXPECT_EQ(session.RequiredVersion("counter"), 2u);

  // The volatile server forgets the export and comes back at version 1.
  client->access()->Evict("counter");
  bed.server()->SimulateCrashAndRestart();
  SeedCounter(&bed);

  // Read-your-writes: handing this session the regressed version would
  // silently rewind its own committed export, so the import must fail.
  auto p = client->access()->Import("counter", iopts);
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_EQ(p.value().status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(p.value().status.message().find("session requires"), std::string::npos);

  // A session-free import of the same object still works: the failure is
  // the session's guarantee, not the object's availability.
  auto bare = client->access()->Import("counter");
  ASSERT_TRUE(bare.Wait(bed.loop()));
  EXPECT_TRUE(bare.value().status.ok());
  EXPECT_EQ(bare.value().version, 1u);
}

TEST_F(SessionGuaranteeTest, NotModifiedBelowSessionFloorIsNotServed) {
  // The client caches pad@1 (with its delta base image). The session then
  // learns of version 2 -- an export it saw committed from another device.
  // A re-fetch goes out as a delta request with base 1; the server (still
  // at version 1 here) answers kNotModified. Serving the cached copy on
  // that short-cut would hand the session the past: the manager must fall
  // back to a full fetch, whose version-1 result then fails the floor.
  Testbed bed;
  SeedPad(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  ASSERT_TRUE(client->access()->Import("pad").Wait(bed.loop()));

  Session session(1);
  session.RecordWrite("pad", 2);
  ImportOptions force;
  force.allow_cached = false;
  force.session = &session;
  auto p = client->access()->Import("pad", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  EXPECT_EQ(p.value().status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(p.value().status.message().find("session requires"), std::string::npos);
  EXPECT_EQ(client->access()->stats().delta_not_modified, 0u);
  EXPECT_EQ(client->access()->stats().delta_fallbacks, 1u);
}

TEST_F(SessionGuaranteeTest, DeltaReplySatisfiesSessionFloor) {
  // Happy path of the same machinery: when the server really has the
  // version the session needs, the delta reply both saves bytes and
  // satisfies the floor.
  Testbed bed;
  std::string data = SeedPad(&bed);
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());
  ASSERT_TRUE(client->access()->Import("pad").Wait(bed.loop()));
  data = EditPad(&bed, data);

  Session session(1);
  session.RecordWrite("pad", 2);
  ImportOptions force;
  force.allow_cached = false;
  force.session = &session;
  auto p = client->access()->Import("pad", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  ASSERT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().version, 2u);
  EXPECT_EQ(*client->access()->ReadCommittedData("pad"), data);
  EXPECT_EQ(client->access()->stats().delta_hits, 1u);
  EXPECT_EQ(session.RequiredVersion("pad"), 2u);
  EXPECT_EQ(session.ObjectsTouched(), 1u);
}

TEST_F(SessionGuaranteeTest, MidSessionRestartRoundTripsCacheAndRpcIds) {
  // A session spanning a client crash: the cache snapshot (committed data,
  // tentative state, delta base images) and the rpc-id counter persist on
  // the client's stable storage next to the QRPC log, so the restarted
  // node resumes the session -- replaying the queued export, serving
  // cached imports offline, and delta-importing against the restored
  // image -- without ever reusing an rpc id.
  Testbed bed;
  SeedCounter(&bed);
  std::string data = SeedPad(&bed);
  auto schedule = std::make_unique<IntervalConnectivity>(
      std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(10)},
          {TimePoint::Epoch() + Duration::Seconds(100),
           TimePoint::Epoch() + Duration::Seconds(100000)}});
  RoverClientNode* client =
      bed.AddClient("laptop", LinkProfile::WaveLan2(), std::move(schedule));
  Session session(1);
  ImportOptions iopts;
  iopts.session = &session;

  ASSERT_TRUE(client->access()->Import("counter", iopts).Wait(bed.loop()));
  ASSERT_TRUE(client->access()->Import("pad", iopts).Wait(bed.loop()));
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(20));  // offline now

  ASSERT_TRUE(client->access()->Invoke("counter", "add", {"5"}).Wait(bed.loop()));
  auto exp = client->access()->Export("counter");
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(30));
  ASSERT_FALSE(exp.ready());  // queued for the link, durable in the log
  const uint64_t next_id_before = client->qrpc()->next_rpc_id();

  ASSERT_GE(client->SimulateCrashAndRestart(), 1u);

  // Still offline: the restored snapshot serves the session from cache.
  EXPECT_GE(client->qrpc()->next_rpc_id(), next_id_before);
  EXPECT_TRUE(client->access()->IsTentative("counter"));
  EXPECT_EQ(*client->access()->ReadData("counter"), "5");
  auto hit = client->access()->Import("pad", iopts);
  ASSERT_TRUE(hit.Wait(bed.loop()));
  EXPECT_TRUE(hit.value().from_cache);

  // Reconnect: the replayed export commits exactly once.
  bed.Run();
  EXPECT_EQ(bed.server()->store()->Get("counter")->data, "5");
  EXPECT_EQ(*bed.server()->store()->VersionOf("counter"), 2u);
  session.RecordWrite("counter", 2);

  // The pad's delta base image survived the snapshot round-trip: the next
  // re-fetch within the session ships a delta, not the full body.
  data = EditPad(&bed, data);
  ImportOptions force = iopts;
  force.allow_cached = false;
  auto p = client->access()->Import("pad", force);
  ASSERT_TRUE(p.Wait(bed.loop()));
  ASSERT_TRUE(p.value().status.ok());
  EXPECT_EQ(p.value().version, 2u);
  EXPECT_EQ(*client->access()->ReadCommittedData("pad"), data);
  EXPECT_EQ(client->access()->stats().delta_hits, 1u);

  // The persisted rpc-id counter kept post-restart calls out of the dup
  // cache's shadow: nothing the new incarnation sent collided with an id
  // the dead one already used.
  EXPECT_EQ(bed.server()->qrpc()->stats().duplicates, 0u);
  EXPECT_EQ(session.ObjectsTouched(), 2u);
  EXPECT_EQ(session.RequiredVersion("counter"), 2u);
}

}  // namespace
}  // namespace rover
