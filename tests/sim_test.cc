#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/connectivity.h"
#include "src/sim/event_loop.h"
#include "src/sim/link.h"
#include "src/sim/network.h"
#include "src/sim/trace.h"

namespace rover {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(TimePoint::FromMicros(300), [&] { order.push_back(3); });
  loop.ScheduleAt(TimePoint::FromMicros(100), [&] { order.push_back(1); });
  loop.ScheduleAt(TimePoint::FromMicros(200), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().micros(), 300);
}

TEST(EventLoopTest, FifoAmongEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(TimePoint::FromMicros(50), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ScheduleAfterUsesNow) {
  EventLoop loop;
  TimePoint fired;
  loop.ScheduleAt(TimePoint::FromMicros(100), [&] {
    loop.ScheduleAfter(Duration::Micros(50), [&] { fired = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired.micros(), 150);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.ScheduleAfter(Duration::Micros(10), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // double-cancel
  loop.Run();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(TimePoint::FromMicros(100), [&] { ++count; });
  loop.ScheduleAt(TimePoint::FromMicros(300), [&] { ++count; });
  loop.RunUntil(TimePoint::FromMicros(200));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now().micros(), 200);
  loop.Run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) {
      loop.ScheduleAfter(Duration::Micros(1), chain);
    }
  };
  loop.ScheduleAfter(Duration::Micros(1), chain);
  loop.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now().micros(), 10);
}

TEST(ConnectivityTest, ConstantSchedule) {
  ConstantConnectivity up(true);
  ConstantConnectivity down(false);
  EXPECT_TRUE(up.IsUp(TimePoint::Epoch()));
  EXPECT_FALSE(down.IsUp(TimePoint::FromMicros(1'000'000)));
  EXPECT_EQ(up.NextTransition(TimePoint::Epoch()).micros(), INT64_MAX);
}

TEST(ConnectivityTest, PeriodicSchedule) {
  // Up 10s, down 5s.
  PeriodicConnectivity sched(Duration::Seconds(10), Duration::Seconds(5));
  EXPECT_TRUE(sched.IsUp(TimePoint::FromMicros(0)));
  EXPECT_TRUE(sched.IsUp(TimePoint::Epoch() + Duration::Seconds(9.9)));
  EXPECT_FALSE(sched.IsUp(TimePoint::Epoch() + Duration::Seconds(12)));
  EXPECT_TRUE(sched.IsUp(TimePoint::Epoch() + Duration::Seconds(15)));
  // Next transition from t=3s is the drop at t=10s.
  EXPECT_EQ(sched.NextTransition(TimePoint::Epoch() + Duration::Seconds(3)).micros(),
            Duration::Seconds(10).micros());
  // From t=12s (down), next transition is up at 15s.
  EXPECT_EQ(sched.NextTransition(TimePoint::Epoch() + Duration::Seconds(12)).micros(),
            Duration::Seconds(15).micros());
}

TEST(ConnectivityTest, PeriodicPhaseDelaysStart) {
  PeriodicConnectivity sched(Duration::Seconds(10), Duration::Seconds(5),
                             TimePoint::Epoch() + Duration::Seconds(100));
  EXPECT_FALSE(sched.IsUp(TimePoint::Epoch() + Duration::Seconds(50)));
  EXPECT_EQ(sched.NextTransition(TimePoint::Epoch()).micros(),
            Duration::Seconds(100).micros());
  EXPECT_TRUE(sched.IsUp(TimePoint::Epoch() + Duration::Seconds(105)));
}

TEST(ConnectivityTest, IntervalSchedule) {
  IntervalConnectivity sched({{TimePoint::FromMicros(100), TimePoint::FromMicros(200)},
                              {TimePoint::FromMicros(400), TimePoint::FromMicros(500)}});
  EXPECT_FALSE(sched.IsUp(TimePoint::FromMicros(50)));
  EXPECT_TRUE(sched.IsUp(TimePoint::FromMicros(150)));
  EXPECT_FALSE(sched.IsUp(TimePoint::FromMicros(300)));
  EXPECT_TRUE(sched.IsUp(TimePoint::FromMicros(450)));
  EXPECT_FALSE(sched.IsUp(TimePoint::FromMicros(600)));
  EXPECT_EQ(sched.NextTransition(TimePoint::FromMicros(50)).micros(), 100);
  EXPECT_EQ(sched.NextTransition(TimePoint::FromMicros(150)).micros(), 200);
  EXPECT_EQ(sched.NextTransition(TimePoint::FromMicros(250)).micros(), 400);
  EXPECT_EQ(sched.NextTransition(TimePoint::FromMicros(550)).micros(), INT64_MAX);
}

TEST(ConnectivityTest, NextUpTime) {
  IntervalConnectivity sched({{TimePoint::FromMicros(100), TimePoint::FromMicros(200)}});
  EXPECT_EQ(sched.NextUpTime(TimePoint::FromMicros(0)).micros(), 100);
  EXPECT_EQ(sched.NextUpTime(TimePoint::FromMicros(150)).micros(), 150);
  EXPECT_EQ(sched.NextUpTime(TimePoint::FromMicros(250)).micros(), INT64_MAX);
}

TEST(ConnectivityTest, RandomScheduleIsDeterministic) {
  Rng rng1(42);
  Rng rng2(42);
  auto a = MakeRandomConnectivity(&rng1, Duration::Seconds(10), Duration::Seconds(5),
                                  Duration::Seconds(1000));
  auto b = MakeRandomConnectivity(&rng2, Duration::Seconds(10), Duration::Seconds(5),
                                  Duration::Seconds(1000));
  for (int64_t us = 0; us < Duration::Seconds(1000).micros(); us += 777'777) {
    EXPECT_EQ(a->IsUp(TimePoint::FromMicros(us)), b->IsUp(TimePoint::FromMicros(us)));
  }
}

TEST(LinkProfileTest, PaperNetworksOrderedByBandwidth) {
  auto nets = LinkProfile::PaperNetworks();
  ASSERT_EQ(nets.size(), 4u);
  for (size_t i = 1; i < nets.size(); ++i) {
    EXPECT_GT(nets[i - 1].bandwidth_bps, nets[i].bandwidth_bps);
  }
  EXPECT_EQ(nets[0].name, "ethernet-10Mb");
  EXPECT_EQ(nets[3].name, "cslip-2.4Kb");
}

TEST(LinkTest, TransferTimeScalesWithBandwidth) {
  EventLoop loop;
  Link fast(&loop, "a", "b", LinkProfile::Ethernet10(), nullptr);
  Link slow(&loop, "a", "b", LinkProfile::Cslip144(), nullptr);
  const Duration ft = fast.TransferTime(1000);
  const Duration st = slow.TransferTime(1000);
  EXPECT_GT(st, ft * 100.0);
  // 1000 bytes + overhead at 14.4kbit/s ~ 0.57s.
  EXPECT_NEAR(st.seconds(), (1000 + 4 * 5) * 8.0 / 14400.0, 1e-6);
}

TEST(LinkTest, PacketizationCountsOverhead) {
  EventLoop loop;
  Link link(&loop, "a", "b", LinkProfile::Cslip144(), nullptr);
  EXPECT_EQ(link.PacketCount(0), 1u);
  EXPECT_EQ(link.PacketCount(296), 1u);
  EXPECT_EQ(link.PacketCount(297), 2u);
  EXPECT_EQ(link.WireBytes(296), 296u + 5u);
  EXPECT_EQ(link.WireBytes(600), 600u + 3 * 5u);
}

TEST(LinkTest, DeliversFrameWithLatencyAndSerialization) {
  EventLoop loop;
  Network net(&loop);
  Link* link = net.Connect("client", "server", LinkProfile::Cslip144());
  Bytes received;
  net.FindHost("server")->SetReceiver(
      [&](const Bytes& frame, const std::string& from) { received = frame; });
  Bytes frame(100, 0xab);
  TimePoint delivered_at;
  link->SendFrame("client", frame, [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    delivered_at = loop.now();
  });
  loop.Run();
  EXPECT_EQ(received, frame);
  const double expected =
      (100 + 5) * 8.0 / 14400.0 + 0.050;  // serialization + latency
  EXPECT_NEAR(delivered_at.seconds(), expected, 1e-6);
}

TEST(LinkTest, SerializesBackToBackFrames) {
  EventLoop loop;
  Network net(&loop);
  Link* link = net.Connect("a", "b", LinkProfile::Cslip144());
  std::vector<double> arrivals;
  net.FindHost("b")->SetReceiver(
      [&](const Bytes& frame, const std::string&) { arrivals.push_back(loop.now().seconds()); });
  link->SendFrame("a", Bytes(296, 1), nullptr);
  link->SendFrame("a", Bytes(296, 2), nullptr);
  loop.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  const double ser = (296 + 5) * 8.0 / 14400.0;
  EXPECT_NEAR(arrivals[0], ser + 0.050, 1e-6);
  EXPECT_NEAR(arrivals[1], 2 * ser + 0.050, 1e-6);  // queued behind the first
}

TEST(LinkTest, DownLinkRejectsImmediately) {
  EventLoop loop;
  Network net(&loop);
  Link* link = net.Connect("a", "b", LinkProfile::Ethernet10(),
                           std::make_unique<ConstantConnectivity>(false));
  Status failure;
  link->SendFrame("a", Bytes(10, 0), [&](const Status& s) { failure = s; });
  loop.Run();
  EXPECT_EQ(failure.code(), StatusCode::kUnavailable);
  EXPECT_EQ(link->stats().frames_rejected, 1u);
}

TEST(LinkTest, MidTransferDisconnectLosesFrame) {
  EventLoop loop;
  Network net(&loop);
  // Link up for only 100ms; a 2.4kbit/s transfer of 296 bytes takes ~1s.
  Link* link = net.Connect(
      "a", "b", LinkProfile::Cslip24(),
      std::make_unique<IntervalConnectivity>(std::vector<IntervalConnectivity::Interval>{
          {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Millis(100)}}));
  Status failure;
  bool received = false;
  net.FindHost("b")->SetReceiver([&](const Bytes&, const std::string&) { received = true; });
  link->SendFrame("a", Bytes(296, 0), [&](const Status& s) { failure = s; });
  loop.Run();
  EXPECT_FALSE(received);
  EXPECT_EQ(failure.code(), StatusCode::kUnavailable);
  EXPECT_EQ(link->stats().frames_lost, 1u);
}

TEST(LinkTest, RandomLossReportsDataLoss) {
  EventLoop loop;
  LinkProfile lossy = LinkProfile::WaveLan2();
  lossy.loss_prob = 1.0;  // always lose
  Network net(&loop);
  Link* link = net.Connect("a", "b", lossy);
  Status failure;
  link->SendFrame("a", Bytes(10, 0), [&](const Status& s) { failure = s; });
  loop.Run();
  EXPECT_EQ(failure.code(), StatusCode::kDataLoss);
}

TEST(LinkTest, ConnectCostPaidAfterIdle) {
  EventLoop loop;
  LinkProfile dialup = LinkProfile::Cslip144();
  dialup.connect_cost = Duration::Seconds(10);
  dialup.idle_threshold = Duration::Seconds(30);
  Network net(&loop);
  Link* link = net.Connect("a", "b", dialup);
  std::vector<double> arrivals;
  net.FindHost("b")->SetReceiver(
      [&](const Bytes&, const std::string&) { arrivals.push_back(loop.now().seconds()); });
  link->SendFrame("a", Bytes(10, 0), nullptr);  // pays connect cost
  loop.Run();
  link->SendFrame("a", Bytes(10, 0), nullptr);  // still "connected"
  loop.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[0], 10.0);
  EXPECT_LT(arrivals[1] - arrivals[0], 1.0);
}

TEST(NetworkTest, MultipleLinksBetweenHosts) {
  EventLoop loop;
  Network net(&loop);
  net.Connect("mobile", "server", LinkProfile::Ethernet10(),
              std::make_unique<ConstantConnectivity>(false));
  net.Connect("mobile", "server", LinkProfile::Cslip144());
  Host* mobile = net.FindHost("mobile");
  ASSERT_NE(mobile, nullptr);
  EXPECT_EQ(mobile->links().size(), 2u);
  EXPECT_EQ(mobile->LinksTo("server").size(), 2u);
  EXPECT_TRUE(mobile->CanReach("server"));  // via the CSLIP link
}

TEST(NetworkTest, AddHostIdempotent) {
  EventLoop loop;
  Network net(&loop);
  Host* a = net.AddHost("x");
  Host* b = net.AddHost("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.FindHost("missing"), nullptr);
}

TEST(TraceTest, RecordsAndCounts) {
  EventLoop loop;
  Trace trace(&loop);
  loop.ScheduleAt(TimePoint::FromMicros(10), [&] { trace.Record("rpc", "send"); });
  loop.ScheduleAt(TimePoint::FromMicros(20), [&] { trace.Record("rpc", "recv"); });
  loop.Run();
  trace.Bump("bytes", 100);
  trace.Bump("bytes", 50);
  EXPECT_EQ(trace.CountFor("rpc"), 2u);
  EXPECT_EQ(trace.entries()[0].when.micros(), 10);
  EXPECT_DOUBLE_EQ(trace.Counter("bytes"), 150.0);
  EXPECT_DOUBLE_EQ(trace.Counter("missing"), 0.0);
  trace.Clear();
  EXPECT_EQ(trace.entries().size(), 0u);
}

}  // namespace
}  // namespace rover

namespace rover {
namespace {

TEST(LinkTest, CorruptionDamagesFrameAndInformsSender) {
  EventLoop loop;
  LinkProfile profile = LinkProfile::WaveLan2();
  profile.corrupt_prob = 1.0;
  Network net(&loop);
  Link* link = net.Connect("a", "b", profile);
  Bytes received;
  net.FindHost("b")->SetReceiver(
      [&](const Bytes& frame, const std::string&) { received = frame; });
  Status outcome;
  Bytes frame(64, 0x11);
  link->SendFrame("a", frame, [&](const Status& s) { outcome = s; });
  loop.Run();
  EXPECT_EQ(outcome.code(), StatusCode::kDataLoss);
  ASSERT_EQ(received.size(), frame.size());
  EXPECT_NE(received, frame);  // damaged copy arrived
  EXPECT_EQ(link->stats().frames_corrupted, 1u);
}

// --- Timer wheel + tombstone bounds -----------------------------------------

TEST(EventLoopTest, FarTimersParkInWheelAndCancelReclaimsImmediately) {
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(loop.ScheduleAfter(Duration::Seconds(60 + i), [] {}));
  }
  // Far timers live in the wheel, not the heap.
  EXPECT_EQ(loop.wheel_resident_events(), 1000u);
  EXPECT_EQ(loop.heap_physical_size(), 0u);
  for (EventId id : ids) {
    EXPECT_TRUE(loop.Cancel(id));
  }
  // O(1) cancel reclaims the entries: no tombstones anywhere.
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.wheel_resident_events(), 0u);
  EXPECT_EQ(loop.heap_physical_size(), 0u);
  EXPECT_EQ(loop.Run(), 0u);
}

TEST(EventLoopTest, HeapTombstonesStayBoundedUnderArmCancelChurn) {
  // The deadline-arm-then-cancel pattern (retries that succeed, TTLs that
  // never fire) must not accumulate state: pending_events() reports zero
  // and the physical heap is compacted, not grown, across 10k rounds.
  EventLoop loop;
  for (int round = 0; round < 10'000; ++round) {
    EventId id =
        loop.ScheduleAfter(Duration::Micros(1000 + (round % 97)), [] {});
    EXPECT_TRUE(loop.Cancel(id));
    EXPECT_FALSE(loop.Cancel(id));  // reclaim/tombstone is single-shot
    ASSERT_EQ(loop.pending_events(), 0u);
    ASSERT_LE(loop.heap_physical_size(), 200u);
  }
  EXPECT_EQ(loop.Run(), 0u);
}

TEST(EventLoopTest, WheelExecutionOrderMatchesHeapBitForBit) {
  // Replay one pseudo-random schedule -- same-tick ties, near and far
  // horizons, overflow-range timers, nested re-arms, and cancellations --
  // against both storage backends. Event ids are allocated in schedule
  // order, so identical execution order implies identical id streams and
  // the cancels hit the same targets in both runs.
  auto replay = [](bool wheel_on) {
    EventLoop loop;
    loop.set_timer_wheel_enabled(wheel_on);
    std::vector<uint64_t> order;
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      return rng >> 33;
    };
    std::vector<EventId> armed;
    int spawned = 0;
    std::function<void(uint64_t)> body = [&](uint64_t tag) {
      order.push_back(tag);
      if (spawned >= 3000) {
        return;
      }
      static constexpr int64_t kDeltas[] = {
          0, 1, 500, 16'383, 16'384, 250'000, 3'000'000,
          90'000'000, 5'000'000'000, 400'000'000'000};
      for (int k = 0; k < 3; ++k) {
        const Duration d = Duration::Micros(kDeltas[next() % 10]);
        const uint64_t child_tag = next();
        ++spawned;
        armed.push_back(
            loop.ScheduleAfter(d, [&body, child_tag] { body(child_tag); }));
      }
      if (!armed.empty() && next() % 3 == 0) {
        loop.Cancel(armed[next() % armed.size()]);
      }
    };
    for (uint64_t i = 0; i < 8; ++i) {
      loop.ScheduleAfter(Duration::Micros(static_cast<int64_t>(next() % 100)),
                         [&body, i] { body(i); });
    }
    loop.Run();
    return order;
  };
  const std::vector<uint64_t> with_wheel = replay(true);
  const std::vector<uint64_t> heap_only = replay(false);
  ASSERT_GT(with_wheel.size(), 1000u);
  EXPECT_EQ(with_wheel, heap_only);
}

// --- Peer-indexed connectivity ----------------------------------------------

TEST(NetworkTest, PeerLookupWorkIsFlatInAttachedLinkCount) {
  // A server with 4096 attached client links must not pay more per lookup
  // than one with 16: reachability and link selection are peer-indexed.
  auto scans_per_op = [](int peers) -> uint64_t {
    EventLoop loop;
    Network net(&loop);
    for (int i = 0; i < peers; ++i) {
      net.Connect("server", "client-" + std::to_string(i), LinkProfile::Ethernet10());
    }
    Host* server = net.FindHost("server");
    ResetHostLinkScanSteps();
    constexpr uint64_t kOps = 64;
    for (uint64_t i = 0; i < kOps; ++i) {
      EXPECT_EQ(server->LinksTo("client-0").size(), 1u);
      EXPECT_TRUE(server->CanReach("client-0"));
    }
    return HostLinkScanSteps() / kOps;
  };
  const uint64_t small = scans_per_op(16);
  const uint64_t large = scans_per_op(4096);
  EXPECT_EQ(small, large);
  EXPECT_LE(large, 4u);
}

TEST(NetworkTest, PeerObserverFiresOnAttachAndForceDownForThatPeerOnly) {
  EventLoop loop;
  Network net(&loop);
  net.Connect("server", "a", LinkProfile::Ethernet10());
  Host* server = net.FindHost("server");
  int a_fires = 0;
  int owner = 0;
  server->AddPeerObserver("a", [&] { ++a_fires; }, &owner);
  server->AddPeerObserver("b", [&] { ADD_FAILURE() << "b observer fired"; }, &owner);

  Link* second = net.Connect("server", "a", LinkProfile::WaveLan2());
  EXPECT_EQ(a_fires, 1);  // attach of a link to "a"
  net.Connect("server", "c", LinkProfile::Ethernet10());
  EXPECT_EQ(a_fires, 1);  // unrelated peer: no fire
  second->ForceDown();
  EXPECT_EQ(a_fires, 2);  // force-down of a link to "a"
  EXPECT_TRUE(server->CanReach("a"));  // first link still up

  server->RemovePeerObservers(&owner);
  net.Connect("server", "a", LinkProfile::Cslip144());
  EXPECT_EQ(a_fires, 2);  // removed: no further fires
}

TEST(NetworkTest, ForceDownUpdatesCanReachFastPath) {
  EventLoop loop;
  Network net(&loop);
  Link* only = net.Connect("server", "a", LinkProfile::Ethernet10());
  Host* server = net.FindHost("server");
  EXPECT_TRUE(server->CanReach("a"));
  only->ForceDown();
  EXPECT_FALSE(server->CanReach("a"));
}

}  // namespace
}  // namespace rover
