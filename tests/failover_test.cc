// Primary/backup replication and client-transparent failover tests.
//
// Part 1 exercises deterministic failover scenarios on a full Testbed:
// a replicated (executed + backup-acked) operation re-sent to the backup
// replays from the shipped duplicate cache without re-executing; an
// operation the primary died holding re-executes at the backup exactly
// once; a dead primary trips the circuit breaker and engages the
// configured failover route with no external trigger; a WAL fail-stop
// hands the service to the backup through the fail-stop failover handler;
// and a silent backup degrades the sender to asynchronous shipping
// instead of wedging response release.
// Part 2 is the failover chaos harness: a seeded FaultPlan kills the
// primary for good at a random point in the run (mid-WAL-flush,
// mid-coalesce, mid-anything), promotes the backup one detection delay
// later, and the at-most-once / no-acked-loss / convergence invariants
// must hold for every seed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/check/simcheck.h"
#include "src/core/fault_plan.h"
#include "src/core/toolkit.h"
#include "src/tclite/value.h"

namespace rover {
namespace {

// Appends its argument to a list-valued state: every successful execution
// leaves exactly one copy of the token behind, which is what the
// at-most-once invariants count.
constexpr char kJournalCode[] = R"(
proc get {} { global state; return $state }
proc add {t} { global state; lappend state $t; return $state }
)";

ClientNodeOptions FailoverClientOptions() {
  ClientNodeOptions copts;
  copts.qrpc.failover_primary = "server";
  copts.qrpc.failover_backup = "backup";
  return copts;
}

// --- Part 1: deterministic failover scenarios ------------------------------

// An operation executes at the primary and its transaction is shipped and
// acked by the backup, but the response is stuck behind a dead client link
// when the primary is killed. After failover the client's re-dispatch must
// be answered from the backup's replicated duplicate cache -- the handler
// never runs again, and the journal holds the token exactly once.
TEST(FailoverTest, ReplicatedResponseReplaysAtBackupWithoutReexecution) {
  Testbed::Options topts;
  // Push handler execution past the link-down edge so the response queues
  // behind a dead link instead of being delivered.
  topts.server.qrpc.dispatch_cost = Duration::Seconds(2);
  Testbed bed(topts);
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  RoverServerNode* backup = bed.AddBackup("backup", LinkProfile::Ethernet10());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());

  // Up long enough for the request to land (~0.15s), then down; the far
  // future interval keeps the scheduler waiting for the link rather than
  // declaring the primary unreachable on its own (that path has its own
  // test below).
  std::vector<IntervalConnectivity::Interval> up = {
      {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(1)},
      {TimePoint::Epoch() + Duration::Seconds(200),
       TimePoint::FromMicros(INT64_MAX)}};
  RoverClientNode* client = bed.AddClient(
      "mobile", LinkProfile::WaveLan2(),
      std::make_unique<IntervalConnectivity>(up), FailoverClientOptions());
  bed.AddLink("mobile", "backup", LinkProfile::WaveLan2());

  Promise<InvokeResult> result;
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(100), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    result = client->access()->Invoke("journal", "add", {"tok0"}, io);
  });

  // By 4s the handler ran (2.15s), the transaction journaled, shipped, and
  // the backup acked it -- but the response never reached the client.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(4));
  ASSERT_GE(bed.server()->replication_sender()->acked_watermark(), 2u);
  EXPECT_FALSE(result.ready());

  bed.server()->Kill();
  EXPECT_TRUE(bed.server()->dead());
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(4200), [&] {
    EXPECT_GT(backup->Promote(), 1u);
    client->qrpc()->TriggerFailover();
  });
  bed.Run();

  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().status.ok());
  EXPECT_TRUE(client->qrpc()->failover_engaged());
  EXPECT_EQ(client->qrpc()->stats().failovers, 1u);
  EXPECT_GE(client->qrpc()->stats().failover_redispatches, 1u);
  // Answered from the replicated duplicate cache: no execution at the
  // backup, token present exactly once.
  EXPECT_GE(backup->qrpc()->stats().duplicates, 1u);
  EXPECT_EQ(backup->rover()->stats().invokes, 0u);
  ASSERT_TRUE(backup->store()->Get("journal").ok());
  EXPECT_EQ(backup->store()->Get("journal")->data, "tok0");
  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// The primary dies holding the request -- executed nothing, shipped
// nothing. The backup has no duplicate-cache entry, so the re-dispatched
// operation executes there: exactly once, as a fresh execution.
TEST(FailoverTest, NonReplicatedOpReexecutesExactlyOnceAtBackup) {
  Testbed::Options topts;
  topts.server.qrpc.dispatch_cost = Duration::Seconds(2);
  Testbed bed(topts);
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  RoverServerNode* backup = bed.AddBackup("backup", LinkProfile::Ethernet10());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2(),
                                          nullptr, FailoverClientOptions());
  bed.AddLink("mobile", "backup", LinkProfile::WaveLan2());

  Promise<InvokeResult> result;
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(100), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    result = client->access()->Invoke("journal", "add", {"tok0"}, io);
  });
  // The request arrives ~0.15s; the handler would run at ~2.15s. Kill the
  // primary mid-dispatch, before anything is journaled or shipped.
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1), [&] {
    bed.server()->Kill();
  });
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(1200), [&] {
    backup->Promote();
    client->qrpc()->TriggerFailover();
  });
  bed.Run();

  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().status.ok());
  // Fresh execution at the backup, not a replay.
  EXPECT_EQ(backup->qrpc()->stats().duplicates, 0u);
  EXPECT_EQ(backup->rover()->stats().invokes, 1u);
  ASSERT_TRUE(backup->store()->Get("journal").ok());
  EXPECT_EQ(backup->store()->Get("journal")->data, "tok0");
  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// No external trigger: the dead primary's links will never come up again,
// so the enqueue path force-opens the destination's circuit breaker, and
// the breaker observer engages the configured failover route by itself.
TEST(FailoverTest, DeadPrimaryOpensBreakerAndEngagesFailoverAutomatically) {
  Testbed bed;
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  RoverServerNode* backup = bed.AddBackup("backup", LinkProfile::Ethernet10());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2(),
                                          nullptr, FailoverClientOptions());
  bed.AddLink("mobile", "backup", LinkProfile::WaveLan2());

  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(500), [&] {
    bed.server()->Kill();
    backup->Promote();
  });
  Promise<InvokeResult> result;
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    result = client->access()->Invoke("journal", "add", {"tok0"}, io);
  });
  bed.Run();

  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().status.ok());
  EXPECT_TRUE(client->qrpc()->failover_engaged());
  EXPECT_EQ(client->qrpc()->stats().failovers, 1u);
  EXPECT_EQ(backup->rover()->stats().invokes, 1u);
  ASSERT_TRUE(backup->store()->Get("journal").ok());
  EXPECT_EQ(backup->store()->Get("journal")->data, "tok0");
  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// Storage death as a failover trigger: the primary's WAL device fails its
// syncs permanently, the fail-stop handler Kill()s the node and hands the
// service to the backup, and the client's operation still completes there.
TEST(FailoverTest, WalFailStopKillsPrimaryAndHandsOffToBackup) {
  Testbed bed;
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  RoverServerNode* backup = bed.AddBackup("backup", LinkProfile::Ethernet10());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2(),
                                          nullptr, FailoverClientOptions());
  bed.AddLink("mobile", "backup", LinkProfile::WaveLan2());
  bed.server()->SetFailStopFailoverHandler([&] {
    backup->Promote();
    client->qrpc()->TriggerFailover();
  });

  // The device dies before the operation's journal flush can complete.
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(200), [&] {
    bed.server()->stable_store()->wal()->device()->FailSyncPermanently();
  });
  Promise<InvokeResult> result;
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Millis(500), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    result = client->access()->Invoke("journal", "add", {"tok0"}, io);
  });
  bed.Run();

  EXPECT_TRUE(bed.server()->dead());
  EXPECT_TRUE(client->qrpc()->failover_engaged());
  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().status.ok());
  // Whether the backup replays the shipped transaction or re-executes a
  // never-shipped one depends on how far the flush got; either way the
  // token lands exactly once.
  ASSERT_TRUE(backup->store()->Get("journal").ok());
  EXPECT_EQ(backup->store()->Get("journal")->data, "tok0");
  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// A backup that stops acking must not wedge the primary: past the sync
// timeout the sender degrades to asynchronous shipping, releases gated
// responses, and heals once the backup catches up.
TEST(FailoverTest, SenderDegradesToAsyncWhenBackupStopsAcking) {
  Testbed bed;
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  RoverServerNode* backup = bed.AddServer("backup");
  // The replication link is up just long enough for the initial resync,
  // then dead until 300s.
  std::vector<IntervalConnectivity::Interval> repl_up = {
      {TimePoint::Epoch(), TimePoint::Epoch() + Duration::Millis(500)},
      {TimePoint::Epoch() + Duration::Seconds(300),
       TimePoint::FromMicros(INT64_MAX)}};
  bed.AddLink("server", "backup", LinkProfile::Ethernet10(),
              std::make_unique<IntervalConnectivity>(repl_up));
  bed.server()->EnableReplicationPrimary("backup", Duration::Seconds(1));
  backup->EnableReplicationBackup("server");
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());
  RoverClientNode* client = bed.AddClient("mobile", LinkProfile::WaveLan2());

  Promise<InvokeResult> result;
  bed.loop()->ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1), [&] {
    InvokeOptions io;
    io.force_site = ExecutionSite::kServer;
    result = client->access()->Invoke("journal", "add", {"tok0"}, io);
  });

  // The transaction ships into the dead link; the release gate times out
  // after 1s and the response goes out anyway.
  bed.loop()->RunUntil(TimePoint::Epoch() + Duration::Seconds(5));
  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().status.ok());
  EXPECT_TRUE(bed.server()->replication_sender()->degraded());
  EXPECT_GE(bed.server()->replication_sender()->stats().sync_degrades, 1u);

  // The link returns at 300s: the backlog drains, the backup acks, and the
  // sender heals back to synchronous shipping.
  bed.Run();
  EXPECT_FALSE(bed.server()->replication_sender()->degraded());
  EXPECT_EQ(bed.server()->replication_sender()->acked_watermark(),
            bed.server()->replication_sender()->last_shipped());
  EXPECT_EQ(backup->replication_receiver()->last_applied(),
            bed.server()->replication_sender()->last_shipped());
  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

// --- Part 2: seeded failover chaos -----------------------------------------

// Seeds come from the environment when set (the CI failover-chaos job runs
// the binary directly with an extended list); default is 1..24. Accepts
// space/comma-separated values and "a-b" ranges, e.g. "1-48" or "3 7 9-12".
std::vector<uint64_t> FailoverSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("ROVER_FAILOVER_SEEDS")) {
    uint64_t v = 0;
    bool have = false;
    uint64_t range_start = 0;
    bool in_range = false;
    for (const char* p = env;; ++p) {
      const char c = *p;
      if (c >= '0' && c <= '9') {
        v = v * 10 + static_cast<uint64_t>(c - '0');
        have = true;
        continue;
      }
      if (have && c == '-') {
        range_start = v;
        in_range = true;
        v = 0;
        have = false;
        continue;
      }
      if (have) {
        if (in_range) {
          for (uint64_t s = range_start; s <= v; ++s) seeds.push_back(s);
        } else {
          seeds.push_back(v);
        }
      }
      v = 0;
      have = false;
      in_range = false;
      if (c == '\0') break;
    }
  }
  if (seeds.empty()) {
    for (uint64_t s = 1; s <= 24; ++s) seeds.push_back(s);
  }
  return seeds;
}

// Prints the failing seed in a grep-friendly form even when an ASSERT
// returns out of the test body early.
struct ReproPrinter {
  uint64_t seed;
  ~ReproPrinter() {
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "FAILOVER_REPRO seed=%llu\n",
                   static_cast<unsigned long long>(seed));
    }
  }
};

class FailoverChaosTest : public ::testing::TestWithParam<uint64_t> {};

// One flapping, duplicating, reordering client link; a disk-like WAL with
// real crash windows; and a primary that is killed for good at a seeded-
// random instant -- mid-WAL-flush, mid-coalesce, mid-anything -- with the
// backup promoted one detection delay later. Whatever the seed:
//   1. every journal token appears at most once on the surviving server
//      (at-most-once across replication, failover re-dispatch, and resends);
//   2. only issued tokens appear;
//   3. a call whose result resolved OK has its token present on the backup
//      (semi-sync replication: no acknowledged work lost to the failover);
//   4. the client's stable log and pending set drain to empty;
//   5. a fresh uncached import converges the client to the backup's state;
//   6. SimCheck's cross-layer audit (fencing, replicated-set coverage,
//      promise hygiene, conservation) holds throughout.
TEST_P(FailoverChaosTest, AckedWorkSurvivesPrimaryDeath) {
  ReproPrinter repro{GetParam()};
  Testbed::Options topts;
  topts.server.stable_store.wal_costs = {Duration::Millis(5), 2e6,
                                         /*group_commit=*/true};
  topts.server.stable_store.compact_after_records = 8;
  topts.server.rover.invalidation_ttl = Duration::Seconds(30);
  Testbed bed(topts);
  bed.loop()->set_event_limit(20'000'000);
  check::SimCheck simcheck;
  simcheck.Attach(&bed);
  RoverServerNode* backup = bed.AddBackup("backup", LinkProfile::Ethernet10());
  ASSERT_TRUE(bed.server()->rover()->CreateObject(
      MakeRdo("journal", "lww", kJournalCode, "")).ok());

  FaultPlan plan(bed.loop(), GetParam());
  LinkProfile wave = LinkProfile::WaveLan2();
  wave.duplicate_prob = 0.05;
  wave.reorder_prob = 0.05;
  RoverClientNode* client = bed.AddClient(
      "mobile", wave,
      plan.FlappyConnectivity(Duration::Seconds(8), Duration::Seconds(4),
                              Duration::Seconds(60)),
      FailoverClientOptions());
  bed.AddLink("mobile", "backup", wave);

  constexpr int kTokens = 12;
  std::vector<Promise<InvokeResult>> results(kTokens);
  for (int i = 0; i < kTokens; ++i) {
    bed.loop()->ScheduleAt(
        TimePoint::Epoch() + Duration::Seconds(1 + 3 * i), [&results, client, i] {
          InvokeOptions io;
          io.force_site = ExecutionSite::kServer;
          results[i] = client->access()->Invoke("journal", "add",
                                                {"tok" + std::to_string(i)}, io);
        });
  }

  // Kill anywhere in [2s, 42s): past 2s the initial resync and the journal
  // object's replicated create are safely on the backup, and the window
  // still spans the whole workload.
  FailoverOptions fopts;
  fopts.at = TimePoint::Epoch() + Duration::Seconds(2) +
             Duration::Micros(static_cast<int64_t>(plan.rng()->NextBelow(40'000'000)));
  plan.ScheduleFailover(bed.server(), backup, {client}, fopts);
  // After the link is permanently up (60s), one last restart re-sends every
  // durable unanswered request -- now to the backup -- so the run drains.
  plan.CrashClientAt(client, TimePoint::Epoch() + Duration::Seconds(61));

  bed.Run();

  EXPECT_EQ(plan.failovers_executed(), 1u);
  EXPECT_TRUE(bed.server()->dead());
  EXPECT_TRUE(client->qrpc()->failover_engaged());

  ASSERT_TRUE(backup->store()->Get("journal").ok());
  const std::string data = backup->store()->Get("journal")->data;
  auto tokens = TclListSplit(data);
  ASSERT_TRUE(tokens.ok());
  std::set<std::string> unique(tokens->begin(), tokens->end());
  EXPECT_EQ(unique.size(), tokens->size())
      << "an add executed twice: [" << data << "]";
  std::set<std::string> issued;
  for (int i = 0; i < kTokens; ++i) {
    issued.insert("tok" + std::to_string(i));
  }
  for (const std::string& tok : *tokens) {
    EXPECT_EQ(issued.count(tok), 1u) << "unknown token " << tok;
  }
  for (int i = 0; i < kTokens; ++i) {
    if (results[i].ready() && results[i].value().status.ok()) {
      EXPECT_EQ(unique.count("tok" + std::to_string(i)), 1u)
          << "acknowledged tok" << i << " lost across failover: [" << data << "]";
    }
  }
  EXPECT_EQ(client->qrpc()->LogDepth(), 0u);
  EXPECT_EQ(client->qrpc()->PendingCount(), 0u);

  ImportOptions iopts;
  iopts.allow_cached = false;
  auto converge = client->access()->Import("journal", iopts);
  ASSERT_TRUE(converge.Wait(bed.loop()));
  ASSERT_TRUE(converge.value().status.ok());
  EXPECT_EQ(*client->access()->ReadCommittedData("journal"), data);

  // Wait() stops the loop the instant the promise resolves; a duplicated or
  // retransmitted response frame can still be mid-flight. Drain before the
  // quiescence check.
  bed.Run();

  simcheck.CheckQuiesced();
  EXPECT_TRUE(simcheck.ok()) << simcheck.Report() << simcheck.TraceTail(150);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverChaosTest,
                         ::testing::ValuesIn(FailoverSeeds()));

}  // namespace
}  // namespace rover
